//! Benchmarks for the clustering baseline: pairwise dissimilarity matrix
//! construction (Pearson over rating vectors) and constrained HAC under
//! each linkage criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use prox_cluster::{cluster, matrix_of, user_dissimilarity, user_features, Linkage};
use prox_datasets::{MovieLens, MovieLensConfig};
use std::hint::black_box;

fn setup() -> (MovieLens, Vec<prox_cluster::FeatureVector>) {
    let d = MovieLens::generate(MovieLensConfig {
        users: 50,
        movies: 10,
        ratings_per_user: 4,
        seed: 21,
    });
    let interactions: Vec<_> = d
        .ratings
        .iter()
        .map(|r| (r.user, r.movie, r.stars))
        .collect();
    let feats = user_features(&d.users, &interactions, &d.store);
    (d, feats)
}

fn bench_matrix(c: &mut Criterion) {
    let (_, feats) = setup();
    c.bench_function("clustering/dissimilarity_matrix_50", |b| {
        b.iter(|| matrix_of(black_box(&feats), user_dissimilarity))
    });
}

fn bench_linkages(c: &mut Criterion) {
    let (_, feats) = setup();
    let matrix = matrix_of(&feats, user_dissimilarity);
    for linkage in [Linkage::Single, Linkage::Average, Linkage::Ward] {
        c.bench_function(&format!("clustering/hac_50_{:?}", linkage), |b| {
            b.iter(|| cluster(black_box(&matrix), linkage, |_, _| true))
        });
    }
}

fn bench_constrained(c: &mut Criterion) {
    let (d, feats) = setup();
    let matrix = matrix_of(&feats, user_dissimilarity);
    let constraints = {
        let mut d2 = d.clone();
        d2.constraints()
    };
    let users = d.users.clone();
    let store = d.store.clone();
    c.bench_function("clustering/hac_50_constrained", |b| {
        b.iter(|| {
            cluster(black_box(&matrix), Linkage::Single, |l, r| {
                let members: Vec<_> = l.iter().chain(r).map(|&ix| users[ix]).collect();
                constraints.group_ok(&members, &store, None)
            })
        })
    });
}

criterion_group!(benches, bench_matrix, bench_linkages, bench_constrained);
criterion_main!(benches);
