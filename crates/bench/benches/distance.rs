//! Benchmarks for distance computation: the exact engine over a valuation
//! class (the algorithm's inner loop, Fig 6.5a) and the Prop 4.1.2 sampler.

use prox_core::MemberOverride;

use criterion::{criterion_group, criterion_main, Criterion};
use prox_core::{approx_distance, DistanceEngine, SamplerConfig, ValFuncKind};
use prox_datasets::{MovieLens, MovieLensConfig};
use prox_provenance::{AggKind, Mapping, Phi, PhiMap, ValuationClass};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut d = MovieLens::generate(MovieLensConfig {
        users: 25,
        movies: 5,
        ratings_per_user: 2,
        seed: 7,
    });
    let p0 = d.provenance(AggKind::Max);
    let vals = d.valuations(ValuationClass::CancelSingleAttribute);
    let dom = d.store.domain("users");
    let members: Vec<_> = d.users[..2].to_vec();
    let g = d.store.add_summary("G", dom, &members);
    let h = Mapping::group(&members, g);
    let summary = p0.map(&h);
    let engine = DistanceEngine::new(&p0, &vals, PhiMap::uniform(Phi::Or), ValFuncKind::Euclidean);
    let no_override = MemberOverride::new();
    c.bench_function("distance/engine_one_candidate", |b| {
        b.iter(|| {
            engine.distance(
                black_box(&summary),
                black_box(&h),
                black_box(&d.store),
                &no_override,
            )
        })
    });
}

fn bench_sampler(c: &mut Criterion) {
    let mut d = MovieLens::generate(MovieLensConfig {
        users: 25,
        movies: 5,
        ratings_per_user: 2,
        seed: 7,
    });
    let p0 = d.provenance(AggKind::Max);
    let dom = d.store.domain("users");
    let members: Vec<_> = d.users[..2].to_vec();
    let g = d.store.add_summary("G", dom, &members);
    let h = Mapping::group(&members, g);
    let summary = p0.map(&h);
    let phis = PhiMap::uniform(Phi::Or);
    let cfg = SamplerConfig {
        epsilon: 0.05,
        delta: 0.05,
        seed: 5,
        max_samples: None,
    };
    c.bench_function("distance/sampler_eps005", |b| {
        b.iter(|| {
            approx_distance(
                black_box(&p0),
                black_box(&summary),
                &h,
                &d.store,
                &MemberOverride::new(),
                &phis,
                ValFuncKind::Euclidean,
                cfg,
            )
        })
    });
}

criterion_group!(benches, bench_engine, bench_sampler);
criterion_main!(benches);
