//! Micro-benchmarks for the provenance substrate: polynomial arithmetic,
//! expression evaluation, and homomorphic mapping + simplification.
//! These back the "evaluation time" axis of the usage-time experiment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use prox_datasets::{MovieLens, MovieLensConfig};
use prox_provenance::{AggKind, Mapping, Polynomial, Valuation};
use std::hint::black_box;

fn dataset() -> MovieLens {
    MovieLens::generate(MovieLensConfig {
        users: 50,
        movies: 10,
        ratings_per_user: 3,
        seed: 42,
    })
}

fn bench_polynomial(c: &mut Criterion) {
    let d = dataset();
    let vars: Vec<Polynomial> = d.users.iter().map(|&u| Polynomial::var(u)).collect();
    c.bench_function("polynomial/sum_50_vars", |b| {
        b.iter(|| {
            let mut acc = Polynomial::zero();
            for v in &vars {
                acc = acc.add(black_box(v));
            }
            acc
        })
    });
    c.bench_function("polynomial/product_8_vars", |b| {
        b.iter(|| {
            let mut acc = Polynomial::one();
            for v in &vars[..8] {
                acc = acc.mul(black_box(v));
            }
            acc
        })
    });
}

fn bench_eval(c: &mut Criterion) {
    let d = dataset();
    let p = d.provenance(AggKind::Max);
    let all_true = Valuation::all_true();
    let cancel = Valuation::cancel(&d.users[..5]);
    c.bench_function("eval/provexpr_150ratings_all_true", |b| {
        b.iter(|| black_box(&p).eval(black_box(&all_true)))
    });
    c.bench_function("eval/provexpr_150ratings_cancel5", |b| {
        b.iter(|| black_box(&p).eval(black_box(&cancel)))
    });
}

fn bench_mapping(c: &mut Criterion) {
    let mut d = dataset();
    let p = d.provenance(AggKind::Max);
    let dom = d.store.domain("users");
    let members: Vec<_> = d.users[..10].to_vec();
    let g = d.store.add_summary("G", dom, &members);
    let h = Mapping::group(&members, g);
    c.bench_function("mapping/apply_and_simplify", |b| {
        b.iter_batched(
            || p.clone(),
            |expr| expr.map(black_box(&h)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_polynomial, bench_eval, bench_mapping);
criterion_main!(benches);
