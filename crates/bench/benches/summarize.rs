//! Benchmarks for the summarization algorithm itself: the equivalence
//! pre-pass, candidate enumeration, one greedy step, and a full run —
//! the components behind Fig 6.5b's summarization-time curve.

// Bench harness: a failed setup should abort the run loudly.
#![allow(clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use prox_core::{candidates, equivalence_classes, group_equivalent, SummarizeConfig, Summarizer};
use prox_datasets::{MovieLens, MovieLensConfig};
use prox_provenance::{AggKind, ValuationClass};
use std::hint::black_box;

fn setup() -> (
    MovieLens,
    prox_provenance::ProvExpr,
    Vec<prox_provenance::Valuation>,
    prox_core::ConstraintConfig,
) {
    let mut d = MovieLens::generate(MovieLensConfig {
        users: 25,
        movies: 5,
        ratings_per_user: 2,
        seed: 13,
    });
    let p0 = d.provenance(AggKind::Max);
    let vals = d.valuations(ValuationClass::CancelSingleAttribute);
    let constraints = d.constraints();
    (d, p0, vals, constraints)
}

fn bench_equivalence(c: &mut Criterion) {
    let (d, p0, vals, constraints) = setup();
    let anns = d.users.clone();
    c.bench_function("summarize/equivalence_classes", |b| {
        b.iter(|| equivalence_classes(black_box(&anns), black_box(&vals)))
    });
    c.bench_function("summarize/group_equivalent", |b| {
        b.iter_batched(
            || d.store.clone(),
            |mut store| group_equivalent(&p0, &vals, &mut store, &constraints, None),
            BatchSize::SmallInput,
        )
    });
}

fn bench_candidates(c: &mut Criterion) {
    let (d, p0, _, constraints) = setup();
    let anns = prox_provenance::Summarizable::annotations(&p0);
    c.bench_function("summarize/enumerate_candidates", |b| {
        b.iter(|| candidates::enumerate(black_box(&anns), &d.store, &constraints, None, 2))
    });
}

fn bench_steps(c: &mut Criterion) {
    let (d, p0, vals, constraints) = setup();
    for steps in [1usize, 5] {
        c.bench_function(&format!("summarize/prov_approx_{steps}_steps"), |b| {
            b.iter_batched(
                || d.store.clone(),
                |mut store| {
                    let config = SummarizeConfig {
                        w_dist: 1.0,
                        w_size: 0.0,
                        max_steps: steps,
                        ..Default::default()
                    };
                    let mut s = Summarizer::new(&mut store, constraints.clone(), config);
                    s.summarize(&p0, &vals).expect("valid config")
                },
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(benches, bench_equivalence, bench_candidates, bench_steps);
criterion_main!(benches);
