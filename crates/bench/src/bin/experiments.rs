//! The experiments binary: regenerates every table and figure of the PROX
//! evaluation chapter.
//!
//! Usage: `cargo run -p prox-bench --release --bin experiments -- <exp>`
//! where `<exp>` is one of the ids below, or `all`. Results print as text
//! tables and land in `reports/` as `.txt` + `.json`.

// Top-level CLI entry point: an unwritable reports/ directory has no
// recovery path, so the expects double as the error report.
#![allow(clippy::expect_used)]

use prox_bench::experiments::{
    kway_experiment, sampler_accuracy_experiment, score_mode_experiment, steps_experiment, table51,
    target_dist_experiment, target_size_experiment, timing_experiment, usage_time_experiment,
    wdist_experiment, Scale,
};
use prox_bench::report::{emit, emit_text};
use prox_bench::workload;
use prox_bench::RunManifest;
use prox_cluster::Linkage;
use prox_provenance::{AggKind, ValuationClass};

// Route the bench binary's heap through the counting allocator so every
// manifest's `memory` section carries real peak/total/allocation numbers.
#[global_allocator]
static ALLOC: prox_obs::CountingAlloc = prox_obs::CountingAlloc::system();

const USAGE: &str = "experiments -- <exp> [--quick]
  table51            Table 5.1 (dataset/parameter matrix)
  wdist-ml           Figs 6.1a + 6.2a (MovieLens wDist sweep)
  target-size-ml     Fig 6.1b
  target-dist-ml     Fig 6.2b
  steps-ml           Figs 6.3a + 6.3b
  usage-time-ml      Figs 6.4a + 6.4b
  timing-ml          Figs 6.5a + 6.5b
  wdist-wiki         Figs 6.6a + 6.7a (Wikipedia)
  target-size-wiki   Fig 6.6b
  target-dist-wiki   Fig 6.7b
  wdist-ddp          Figs 6.8a + 6.9a (DDP)
  target-size-ddp    Fig 6.8b
  target-dist-ddp    Fig 6.9b
  kway-ml            Ablation A.1 (k-way merging)
  score-mode-ml      Ablation A.2 (rank vs normalized score)
  sampler-accuracy   Ablation A.3 (Prop 4.1.2 empirically)
  greedy-gap         Ablation A.4 (greedy vs exhaustive optimum)
  serve              prox-serve load: latency percentiles + cache hit rate
  chaos              chaos soak: faults + overload against the serve stack
  store              out-of-core segment store: build, verify, fold, summarize
  all                everything above";

fn ml(scale: Scale) -> Vec<prox_bench::Workload<prox_provenance::ProvExpr>> {
    // §6.4's setting: Cancel Single Attribute, MAX aggregation.
    workload::movielens(
        scale.instances,
        ValuationClass::CancelSingleAttribute,
        AggKind::Max,
        Linkage::Single,
    )
}

fn wiki(scale: Scale) -> Vec<prox_bench::Workload<prox_provenance::ProvExpr>> {
    // §6.10: Cancel Single Annotation, SUM aggregation.
    workload::wikipedia(
        scale.instances,
        ValuationClass::CancelSingleAnnotation,
        Linkage::Single,
    )
}

fn ddp(scale: Scale) -> Vec<prox_bench::Workload<prox_provenance::DdpExpr>> {
    // §6.10: Cancel Single Attribute for DDP.
    workload::ddp(scale.instances, ValuationClass::CancelSingleAttribute)
}

fn run_experiment(name: &str, scale: Scale, manifest: &mut RunManifest) -> bool {
    let ok = |r: std::io::Result<()>| r.expect("writing reports");
    match name {
        "table51" => ok(emit_text("table51", &table51())),
        "wdist-ml" => {
            let ws = ml(scale);
            manifest.datasets(&ws);
            let steps = if scale.quick { 5 } else { 20 };
            let (d, s) = wdist_experiment(&ws, scale, steps, "6.1a", "6.2a", "MovieLens");
            ok(emit(&d));
            ok(emit(&s));
        }
        "target-size-ml" => {
            let ws = ml(scale);
            manifest.datasets(&ws);
            ok(emit(&target_size_experiment(
                &ws,
                scale,
                "6.1b",
                "MovieLens",
            )));
        }
        "target-dist-ml" => {
            let ws = ml(scale);
            manifest.datasets(&ws);
            ok(emit(&target_dist_experiment(
                &ws,
                scale,
                "6.2b",
                "MovieLens",
            )));
        }
        "steps-ml" => {
            let ws = ml(scale);
            manifest.datasets(&ws);
            let (d, s) = steps_experiment(&ws, scale, "6.3b", "6.3a", "MovieLens");
            ok(emit(&s));
            ok(emit(&d));
        }
        "usage-time-ml" => {
            let ws = ml(scale);
            manifest.datasets(&ws);
            for fig in usage_time_experiment(&ws, scale, &[("6.4a", 20), ("6.4b", 30)]) {
                ok(emit(&fig));
            }
        }
        "timing-ml" => {
            let ws = ml(scale);
            manifest.datasets(&ws);
            let (c, s) = timing_experiment(&ws, scale, "6.5a", "6.5b");
            ok(emit(&c));
            ok(emit(&s));
        }
        "wdist-wiki" => {
            let ws = wiki(scale);
            manifest.datasets(&ws);
            let steps = if scale.quick { 5 } else { 20 };
            let (d, s) = wdist_experiment(&ws, scale, steps, "6.6a", "6.7a", "Wikipedia");
            ok(emit(&d));
            ok(emit(&s));
        }
        "target-size-wiki" => {
            let ws = wiki(scale);
            manifest.datasets(&ws);
            ok(emit(&target_size_experiment(
                &ws,
                scale,
                "6.6b",
                "Wikipedia",
            )));
        }
        "target-dist-wiki" => {
            let ws = wiki(scale);
            manifest.datasets(&ws);
            ok(emit(&target_dist_experiment(
                &ws,
                scale,
                "6.7b",
                "Wikipedia",
            )));
        }
        "wdist-ddp" => {
            let ws = ddp(scale);
            manifest.datasets(&ws);
            let steps = if scale.quick { 4 } else { 10 };
            let (d, s) = wdist_experiment(&ws, scale, steps, "6.8a", "6.9a", "DDP");
            ok(emit(&d));
            ok(emit(&s));
        }
        "target-size-ddp" => {
            let ws = ddp(scale);
            manifest.datasets(&ws);
            let fractions = if scale.quick {
                vec![0.9, 0.95]
            } else {
                vec![0.8, 0.82, 0.84, 0.86, 0.88, 0.9, 0.92, 0.94, 0.96, 0.98]
            };
            ok(emit(&prox_bench::experiments::target_size_experiment_with(
                &ws,
                scale,
                "6.8b",
                "DDP",
                Some(fractions),
            )));
        }
        "target-dist-ddp" => {
            let ws = ddp(scale);
            manifest.datasets(&ws);
            let grid = if scale.quick {
                vec![0.002, 0.008]
            } else {
                (1..=10).map(|i| i as f64 / 1000.0).collect()
            };
            ok(emit(&prox_bench::experiments::target_dist_experiment_with(
                &ws,
                scale,
                "6.9b",
                "DDP",
                Some(grid),
            )));
        }
        "kway-ml" => {
            let ws = ml(scale);
            manifest.datasets(&ws);
            ok(emit(&kway_experiment(&ws, scale)));
        }
        "score-mode-ml" => {
            let ws = ml(scale);
            manifest.datasets(&ws);
            ok(emit(&score_mode_experiment(&ws, scale)));
        }
        "sampler-accuracy" => {
            ok(emit(&sampler_accuracy_experiment(scale)));
        }
        "greedy-gap" => {
            ok(emit(&prox_bench::experiments::greedy_gap_experiment(scale)));
        }
        "serve" => {
            // A failure to even start/drive the server is an experiment
            // failure: panic so the runner's retry/skip machinery records it.
            if let Err(e) = prox_bench::serve_load::serve_load_experiment(scale, manifest) {
                panic!("serve load experiment failed: {e}");
            }
        }
        "chaos" => {
            if let Err(e) = prox_bench::chaos::chaos_experiment(scale, manifest) {
                panic!("chaos soak failed: {e}");
            }
        }
        "store" => {
            if let Err(e) = prox_bench::store_bench::store_experiment(scale, manifest) {
                panic!("store experiment failed: {e}");
            }
        }
        _ => return false,
    }
    true
}

const ALL: &[&str] = &[
    "table51",
    "wdist-ml",
    "target-size-ml",
    "target-dist-ml",
    "steps-ml",
    "usage-time-ml",
    "timing-ml",
    "wdist-wiki",
    "target-size-wiki",
    "target-dist-wiki",
    "wdist-ddp",
    "target-size-ddp",
    "target-dist-ddp",
    "kway-ml",
    "score-mode-ml",
    "sampler-accuracy",
    "greedy-gap",
    "serve",
    "chaos",
    "store",
];

/// Per-experiment wall-clock timeout (milliseconds): `PROX_EXP_TIMEOUT_MS`
/// overrides the defaults (2 minutes quick, 30 minutes full). The runner
/// tightens every run's execution budget to this deadline, so a slow
/// experiment degrades to best-so-far summaries instead of hanging the
/// suite.
fn experiment_timeout_ms(scale: Scale) -> u64 {
    std::env::var("PROX_EXP_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if scale.quick { 120_000 } else { 1_800_000 })
}

/// Executions per experiment before it is marked `skipped`.
const MAX_ATTEMPTS: u32 = 2;

/// The `run/stop/*` counters that mark a run as budget-degraded.
const BUDGET_STOPS: [&str; 3] = [
    "run/stop/deadline_exceeded",
    "run/stop/budget_exhausted",
    "run/stop/cancelled",
];

/// Run one experiment with a fresh observability window, a per-experiment
/// deadline, and bounded retry on panic; write its manifest with the
/// outcome (`completed` / `degraded` / `skipped`). Returns false for
/// unknown experiment names.
fn run_one(name: &str, scale: Scale) -> bool {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    use prox_bench::runner::{clear_experiment_deadline, set_experiment_deadline};

    let timeout_ms = experiment_timeout_ms(scale);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        eprintln!("── running {name} (attempt {attempts}/{MAX_ATTEMPTS}) ──");
        prox_obs::reset();
        let mut manifest = RunManifest::new(name, scale);
        let t = std::time::Instant::now();
        set_experiment_deadline(t + std::time::Duration::from_millis(timeout_ms));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_experiment(name, scale, &mut manifest)
        }));
        clear_experiment_deadline();
        match outcome {
            // Unknown experiment name: no manifest, caller prints usage.
            Ok(false) => return false,
            Ok(true) => {
                let degraded = BUDGET_STOPS
                    .iter()
                    .any(|c| prox_obs::counter_value(c).unwrap_or(0) > 0);
                let status = if degraded { "degraded" } else { "completed" };
                manifest.wall_time(t.elapsed());
                manifest.outcome(status, attempts, Some(timeout_ms));
                match manifest.write() {
                    Ok(path) => {
                        eprintln!("   {status}: {} ({:.1?})", path.display(), t.elapsed())
                    }
                    Err(e) => eprintln!("   manifest write failed: {e} ({:.1?})", t.elapsed()),
                }
                return true;
            }
            Err(_) => {
                eprintln!("   {name} panicked on attempt {attempts}/{MAX_ATTEMPTS}");
                if attempts >= MAX_ATTEMPTS {
                    // Record the failure so the suite's output is complete,
                    // then move on to the next experiment.
                    let mut manifest = RunManifest::new(name, scale);
                    manifest.wall_time(t.elapsed());
                    manifest.outcome("skipped", attempts, Some(timeout_ms));
                    match manifest.write() {
                        Ok(path) => eprintln!("   skipped: {}", path.display()),
                        Err(e) => eprintln!("   manifest write failed: {e}"),
                    }
                    return true;
                }
            }
        }
    }
}

fn main() {
    // Counters/spans are always collected in bench runs so manifests are
    // complete; PROX_TRACE=<path> additionally streams a JSONL trace.
    prox_obs::init_from_env();
    // PROX_FAULT arms the deterministic fault harness for chaos runs.
    prox_robust::fault::init_from_env();
    prox_obs::set_enabled(true);
    // PROX_PROFILE=<path> folds the span stacks into flamegraph input
    // covering the whole suite (boundary mode under PROX_DETERMINISTIC).
    let profile_path = prox_obs::prof::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let names: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--quick")
        .map(String::as_str)
        .collect();
    if names.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    for name in names {
        if name == "all" {
            for exp in ALL {
                run_one(exp, scale);
            }
        } else if !run_one(name, scale) {
            eprintln!("unknown experiment {name:?}\n{USAGE}");
            std::process::exit(2);
        }
    }
    if let Some(path) = profile_path {
        prox_obs::prof::disable();
        match prox_obs::prof::write_folded(&path) {
            Ok(()) => eprintln!("profile (folded stacks) written to {path}"),
            Err(e) => eprintln!("cannot write PROX_PROFILE={path}: {e}"),
        }
    }
    prox_obs::flush_sink();
}
