//! Chaos soak: drive the serve stack through a deterministic overload
//! storm with the L5 fault harness armed (`slowread` + `conndrop` +
//! `panic`) and record how the resilience layer held up.
//!
//! The driver is a single sequential client — one request in flight at a
//! time — so the fault sites' per-call counters, the circuit breaker's
//! arrival-driven state machine, and the per-tenant token buckets (virtual
//! clock under `PROX_DETERMINISTIC`) all advance in an order that is a
//! pure function of the schedule. Two same-seed runs produce byte-stable
//! `reports/manifest_chaos.json` files; `prox bench diff` gates the result
//! against the committed baseline.
//!
//! The report answers the overload questions directly: shed rate (429 +
//! 503 finals over offered), whether every shed carried `Retry-After`
//! (`missing_retry_after` must be 0), breaker transition counts, worker
//! panics recovered without a pool death, and a final `/healthz` probe
//! proving the server outlived the storm.

use std::collections::BTreeMap;
use std::thread;
use std::time::{Duration, Instant};

use prox_obs::Json;
use prox_robust::fault;
use prox_robust::{Backoff, ProxError};
use prox_serve::http::client_request_full;
use prox_serve::ratelimit::tenant_denials;
use prox_serve::{Server, ServerConfig};

use crate::manifest::RunManifest;
use crate::serve_load::percentile_us;
use crate::Scale;

/// The canonical storm: 5ms read stalls, 8% connection drops, 30%
/// injected worker panics. Used whenever the environment did not arm its
/// own `PROX_FAULT` plan; CI sets the same spec explicitly.
pub const CHAOS_FAULT_SPEC: &str = "slowread@5:41,conndrop@0.08:42,panic@0.3:43";

/// Shed/transport retries granted to each chaos request.
const MAX_RETRIES: u32 = 2;

/// The request schedule: `rounds` round-robin sweeps over `tenants`
/// tenants, bodies cycling through `distinct` summarize parameter sets.
#[derive(Clone, Copy)]
struct ChaosPlan {
    tenants: usize,
    rounds: usize,
    distinct: usize,
}

impl ChaosPlan {
    fn for_scale(scale: Scale) -> ChaosPlan {
        if scale.quick {
            ChaosPlan {
                tenants: 3,
                rounds: 16,
                distinct: 4,
            }
        } else {
            ChaosPlan {
                tenants: 4,
                rounds: 60,
                distinct: 4,
            }
        }
    }

    fn total(&self) -> usize {
        self.tenants * self.rounds
    }
}

/// Aggregated outcomes of the storm, by final response disposition.
#[derive(Default)]
struct StormTally {
    ok: u64,
    internal_500: u64,
    rate_limited_429: u64,
    shed_503: u64,
    other: u64,
    transport_errors: u64,
    retries: u64,
    missing_retry_after: u64,
    latencies_ns: Vec<u64>,
}

fn counter_delta(name: &str, before: u64) -> u64 {
    prox_obs::counter_value(name)
        .unwrap_or(0)
        .saturating_sub(before)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// Send one storm request, retrying sheds (429/503) and transport drops
/// under a seeded backoff. Every shed attempt — retried or final — is
/// checked for `Retry-After`; a shed without it counts against the run.
fn storm_request(addr: &str, tenant: &str, body: &str, seed: u64, tally: &mut StormTally) {
    let headers = [("X-Prox-Tenant", tenant.to_owned())];
    let mut backoff = Backoff::new(seed, 2, 50, MAX_RETRIES);
    loop {
        let outcome = client_request_full(
            addr,
            "POST",
            "/summarize",
            &headers,
            body.as_bytes(),
            30_000,
        );
        let shed = matches!(outcome, Ok((429 | 503, _, _)));
        if let Ok((429 | 503, ref resp_headers, _)) = outcome {
            if header(resp_headers, "retry-after").is_none() {
                tally.missing_retry_after += 1;
            }
        }
        if !shed && outcome.is_ok() {
            match outcome {
                Ok((200, _, _)) => tally.ok += 1,
                Ok((500, _, _)) => tally.internal_500 += 1,
                _ => tally.other += 1,
            }
            return;
        }
        match backoff.next_delay_ms() {
            Some(delay_ms) => {
                tally.retries += 1;
                thread::sleep(Duration::from_millis(delay_ms));
            }
            None => {
                match outcome {
                    Ok((429, _, _)) => tally.rate_limited_429 += 1,
                    Ok((503, _, _)) => tally.shed_503 += 1,
                    Ok(_) => tally.other += 1,
                    Err(_) => tally.transport_errors += 1,
                }
                return;
            }
        }
    }
}

/// Probe `/healthz` after the storm, retrying through any lingering
/// connection drops. Returns the final status and attempts consumed.
fn final_healthz(addr: &str) -> (u16, u32) {
    let mut backoff = Backoff::new(0x6EA17, 2, 50, 5);
    loop {
        match client_request_full(addr, "GET", "/healthz", &[], b"", 10_000) {
            Ok((status, _, _)) if status == 200 => return (status, backoff.attempts() + 1),
            outcome => match backoff.next_delay_ms() {
                Some(delay_ms) => thread::sleep(Duration::from_millis(delay_ms)),
                None => {
                    let status = match outcome {
                        Ok((s, _, _)) => s,
                        Err(_) => 0,
                    };
                    return (status, backoff.attempts() + 1);
                }
            },
        }
    }
}

/// Run the chaos soak and record the report as the manifest's `chaos`
/// section. Arms [`CHAOS_FAULT_SPEC`] for the storm when no ambient
/// `PROX_FAULT` plan is active, and disarms it afterwards.
pub fn chaos_experiment(scale: Scale, manifest: &mut RunManifest) -> Result<(), ProxError> {
    let plan = ChaosPlan::for_scale(scale);
    let installed_here = if fault::enabled() {
        false
    } else {
        fault::install(Some(fault::parse_spec(CHAOS_FAULT_SPEC)?));
        true
    };
    let result = chaos_storm(scale, plan, manifest);
    if installed_here {
        fault::install(None);
    }
    result
}

fn chaos_storm(
    _scale: Scale,
    plan: ChaosPlan,
    manifest: &mut RunManifest,
) -> Result<(), ProxError> {
    // A tight breaker and a slow bucket: the storm must actually trip the
    // breaker and exhaust tenants, or the soak proves nothing.
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_capacity: 8,
        cache_capacity: plan.distinct,
        default_budget_ms: 30_000,
        io_deadline_ms: 30_000,
        tenant_rate: 2.0,
        tenant_burst: 3.0,
        breaker_threshold: 2,
        ..ServerConfig::default()
    };
    let breaker_threshold = config.breaker_threshold;
    let tenant_rate = config.tenant_rate;
    let tenant_burst = config.tenant_burst;
    let workers = config.workers;

    let panics0 = prox_obs::counter_value("serve/worker_panics").unwrap_or(0);
    let opened0 = prox_obs::counter_value("serve/breaker_opened").unwrap_or(0);
    let half0 = prox_obs::counter_value("serve/breaker_half_open").unwrap_or(0);
    let closed0 = prox_obs::counter_value("serve/breaker_closed").unwrap_or(0);
    let denials0: BTreeMap<String, u64> = tenant_denials().into_iter().collect();

    let handle = Server::start(config)?;
    let addr = handle.addr().to_string();

    let t = Instant::now();
    let mut tally = StormTally::default();
    for i in 0..plan.total() {
        let tenant = format!("tenant-{}", i % plan.tenants);
        let body = format!(
            r#"{{"dataset": "small", "steps": {}, "target_size": {}}}"#,
            2 + (i / plan.tenants) % plan.distinct,
            1 + i % 2,
        );
        let req_start = Instant::now();
        storm_request(&addr, &tenant, &body, 0xC4A05 ^ i as u64, &mut tally);
        tally
            .latencies_ns
            .push(req_start.elapsed().as_nanos() as u64);
    }
    let elapsed = t.elapsed();

    // The storm is over; the pool must still be serving. Probe through any
    // remaining conndrop schedule.
    let (healthz_status, healthz_attempts) = final_healthz(&addr);
    let health_state = handle.health().state().name();
    handle.shutdown();

    let shed_finals = tally.rate_limited_429 + tally.shed_503;
    let answered =
        tally.ok + tally.internal_500 + tally.rate_limited_429 + tally.shed_503 + tally.other;
    let denials_now: BTreeMap<String, u64> = tenant_denials().into_iter().collect();
    let mut tenants_429 = Json::obj();
    for (tenant, count) in &denials_now {
        let delta = count.saturating_sub(denials0.get(tenant).copied().unwrap_or(0));
        if delta > 0 {
            tenants_429.set(tenant, delta);
        }
    }

    let mut report = Json::obj()
        .with(
            "server",
            Json::obj()
                .with("workers", workers)
                .with("breaker_threshold", breaker_threshold)
                .with("tenant_rate", tenant_rate)
                .with("tenant_burst", tenant_burst),
        )
        .with(
            "load",
            Json::obj()
                .with("tenants", plan.tenants)
                .with("rounds", plan.rounds)
                .with("total_requests", plan.total()),
        )
        .with(
            "responses",
            Json::obj()
                .with("ok", tally.ok)
                .with("internal_500", tally.internal_500)
                .with("rate_limited_429", tally.rate_limited_429)
                .with("shed_503", tally.shed_503)
                .with("other", tally.other)
                .with("transport_errors", tally.transport_errors)
                .with("retries", tally.retries)
                .with("answered", answered),
        )
        .with(
            "shed",
            Json::obj()
                .with("count", shed_finals)
                .with("rate", shed_finals as f64 / plan.total() as f64)
                .with("missing_retry_after", tally.missing_retry_after),
        )
        .with(
            "breaker",
            Json::obj()
                .with("opened", counter_delta("serve/breaker_opened", opened0))
                .with("half_open", counter_delta("serve/breaker_half_open", half0))
                .with("closed", counter_delta("serve/breaker_closed", closed0)),
        )
        .with(
            "workers_recovered",
            Json::obj()
                .with("panics", counter_delta("serve/worker_panics", panics0))
                .with("health_state_final", health_state),
        )
        .with("tenants_429", tenants_429)
        .with(
            "final_healthz",
            Json::obj()
                .with("status", u64::from(healthz_status))
                .with("attempts", healthz_attempts),
        );

    // Wall-clock overload numbers (p99 under storm, wall seconds) are
    // dropped from deterministic manifests, like every other timing.
    if !manifest.deterministic() {
        tally.latencies_ns.sort_unstable();
        report.set(
            "latency_us",
            Json::obj()
                .with("p50", percentile_us(&tally.latencies_ns, 0.50))
                .with("p99", percentile_us(&tally.latencies_ns, 0.99)),
        );
        report.set("wall_seconds", elapsed.as_secs_f64());
    }
    manifest.extra("chaos", report);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_robust::FaultGuard;

    #[test]
    fn quick_chaos_soak_recovers_and_sheds_politely() {
        // Arm the canonical storm under the global fault lock so parallel
        // tests never see injected panics.
        let _g = FaultGuard::install(CHAOS_FAULT_SPEC).expect("canonical spec parses");
        prox_obs::set_enabled(true);
        let scale = Scale::quick();
        let mut manifest = RunManifest::new("chaos", scale);
        manifest.set_deterministic(true);
        chaos_experiment(scale, &mut manifest).expect("chaos run completes");
        let json = manifest.to_json();
        let chaos = json.get("chaos").expect("chaos section recorded");

        // Every offered request was answered with a typed response —
        // conndrop finals aside, nothing hung and nothing was lost.
        let load = chaos.get("load").expect("load");
        let responses = chaos.get("responses").expect("responses");
        let total = load
            .get("total_requests")
            .and_then(Json::as_u64)
            .expect("total");
        let answered = responses
            .get("answered")
            .and_then(Json::as_u64)
            .expect("answered");
        let dropped = responses
            .get("transport_errors")
            .and_then(Json::as_u64)
            .expect("transport errors");
        assert_eq!(answered + dropped, total);

        // The storm actually stormed: panics were injected and recovered,
        // and the breaker moved.
        let workers = chaos.get("workers_recovered").expect("workers");
        assert!(workers.get("panics").and_then(Json::as_u64).unwrap_or(0) > 0);
        let breaker = chaos.get("breaker").expect("breaker");
        assert!(breaker.get("opened").and_then(Json::as_u64).unwrap_or(0) > 0);

        // Every shed carried Retry-After, and the pool outlived the storm.
        let shed = chaos.get("shed").expect("shed");
        assert_eq!(
            shed.get("missing_retry_after").and_then(Json::as_u64),
            Some(0)
        );
        let healthz = chaos.get("final_healthz").expect("final healthz");
        assert_eq!(healthz.get("status").and_then(Json::as_u64), Some(200));

        // Deterministic mode: wall-clock sections are dropped.
        assert!(chaos.get("latency_us").is_none());
        assert!(chaos.get("wall_seconds").is_none());
    }
}
