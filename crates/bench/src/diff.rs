//! The manifest regression gate: `prox bench diff <baseline> <current>`.
//!
//! Compares two `reports/manifest_*.json` files metric by metric and
//! classifies every numeric leaf as *within band*, an *improvement*, or a
//! *regression* under per-metric tolerances, so the bench trajectory can
//! accumulate run-over-run and CI can refuse perf regressions.
//!
//! ## Comparability
//!
//! Two manifests are only comparable when they describe the same
//! experiment: `experiment`, `config`, `scale`, and `datasets` (names and
//! generator seeds) must match exactly. A mismatch is an input error (the
//! runs measured different things), not a regression.
//!
//! ## Tolerances
//!
//! Each metric path (dotted, e.g. `phases.summarize/step.total_ns`) maps
//! to a [`Tolerance`]: an allowed band of `max(rel · |baseline|, abs)`
//! plus a [`Direction`]. Schedule-determined quantities (counters, phase
//! counts, stop reasons) default to **exact** — under `PROX_DETERMINISTIC`
//! two same-seed runs must agree bit for bit, so any drift is a real
//! behavior change. Measured quantities (durations, allocation deltas,
//! memory, latency quantiles) get wide relative bands and a direction, so
//! noise passes, a genuine slowdown fails, and a speedup is reported as
//! an improvement rather than flagged.
//!
//! The report is emitted as `reports/regression.json` with sorted keys
//! and sorted metric lists — on identical inputs the file is byte-stable
//! (rule L2).

use std::fmt;

use prox_obs::Json;

/// Which way is "better" for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Time, bytes, allocation counts: smaller is an improvement.
    LowerIsBetter,
    /// Throughput, cache hit rate: larger is an improvement.
    HigherIsBetter,
    /// Schedule-determined quantities: any out-of-band drift is a
    /// regression, whichever way it moves.
    Neutral,
}

/// The allowed deviation for one metric: `max(rel · |baseline|, abs)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Relative band as a fraction of the baseline value.
    pub rel: f64,
    /// Absolute band floor (covers near-zero baselines).
    pub abs: f64,
    /// Which direction of drift counts as an improvement.
    pub direction: Direction,
}

impl Tolerance {
    const fn exact() -> Tolerance {
        Tolerance {
            rel: 0.0,
            abs: 0.0,
            direction: Direction::Neutral,
        }
    }
}

/// The tolerance for a dotted metric path. First matching rule wins;
/// everything unmatched is exact (see module docs).
pub fn tolerance_for(path: &str) -> Tolerance {
    let lower = Tolerance {
        rel: 0.5,
        abs: 1_000_000.0,
        direction: Direction::LowerIsBetter,
    };
    // Process-level memory: ±25% with a 1 MiB floor (allocator behavior
    // shifts with layout, but a leak or a blown ceiling must fail).
    if path.starts_with("memory.") {
        return Tolerance {
            rel: 0.25,
            abs: (1u64 << 20) as f64,
            direction: Direction::LowerIsBetter,
        };
    }
    // Per-phase allocation deltas: same shape, smaller floor.
    if path.ends_with(".alloc_bytes") || path.ends_with(".allocs") {
        return Tolerance {
            rel: 0.25,
            abs: 65_536.0,
            direction: Direction::LowerIsBetter,
        };
    }
    // Wall-clock phase statistics: ±50% with a 1 ms floor — timing noise
    // on shared runners is large; only a gross slowdown should gate.
    if path.ends_with(".total_ns")
        || path.ends_with(".mean_ns")
        || path.ends_with(".min_ns")
        || path.ends_with(".max_ns")
    {
        return lower;
    }
    if path == "wall_time_ms" {
        return Tolerance {
            rel: 0.5,
            abs: 500.0,
            direction: Direction::LowerIsBetter,
        };
    }
    // Chaos soak: the politeness invariants are exact — every shed must
    // carry Retry-After, and the final health probe must be 200 — while
    // the storm tallies (sheds, retries, breaker trips, per-tenant 429s)
    // get a narrow neutral band. Under PROX_DETERMINISTIC they replay
    // bit-for-bit, but a wall-clock soak shifts a few requests across the
    // shed/admit boundary with scheduler timing.
    if path == "chaos.shed.missing_retry_after" || path == "chaos.final_healthz.status" {
        return Tolerance::exact();
    }
    if path == "chaos.shed.rate" {
        return Tolerance {
            rel: 0.15,
            abs: 0.1,
            direction: Direction::Neutral,
        };
    }
    if path == "chaos.wall_seconds" {
        return Tolerance {
            rel: 0.5,
            abs: 5.0,
            direction: Direction::LowerIsBetter,
        };
    }
    if path.starts_with("chaos.responses.")
        || path.starts_with("chaos.breaker.")
        || path.starts_with("chaos.tenants_429.")
        || path.starts_with("chaos.shed.")
        || path == "chaos.workers_recovered.panics"
        || path == "chaos.final_healthz.attempts"
    {
        return Tolerance {
            rel: 0.15,
            abs: 3.0,
            direction: Direction::Neutral,
        };
    }
    // Out-of-core store (the `store` experiment): dedup ratios, frame and
    // record counts, fold sizes, and the `store/*` dedup/page counters are
    // schedule-determined — they replay bit-for-bit from the seed, so they
    // stay exact (the default below). Byte volumes and wall-clock timings
    // get bands: retuning the page size or read batching legitimately
    // shifts how many bytes a fold touches without changing its result.
    if path.starts_with("store.timing_ms.") {
        return Tolerance {
            rel: 0.5,
            abs: 500.0,
            direction: Direction::LowerIsBetter,
        };
    }
    if path == "store.reader.bytes_read"
        || path == "store.verify.bytes_checked"
        || path == "store.reader.page_cache.peak_bytes"
        || path == "store.reader.page_cache.live_bytes"
        || path == "counters.store/bytes_read"
    {
        return Tolerance {
            rel: 0.25,
            abs: 65_536.0,
            direction: Direction::LowerIsBetter,
        };
    }
    // Serve latency percentiles (the `serve` experiment's extra section).
    if path.contains("p50") || path.contains("p95") || path.contains("p99") {
        return Tolerance {
            rel: 0.5,
            abs: 1_000.0,
            direction: Direction::LowerIsBetter,
        };
    }
    if path.contains("throughput") || path.contains("hit_rate") {
        return Tolerance {
            rel: 0.25,
            abs: 0.05,
            direction: Direction::HigherIsBetter,
        };
    }
    // Real-socket serve counters can shift a little with thread timing
    // even at fixed seeds; give them a narrow neutral band.
    if path.starts_with("counters.serve/") || path.starts_with("phases.service/") {
        return Tolerance {
            rel: 0.1,
            abs: 2.0,
            direction: Direction::Neutral,
        };
    }
    // Everything else — counters, phase counts, stop reasons, quality
    // metrics — is schedule-determined: exact or it regressed.
    Tolerance::exact()
}

/// Verdict for one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Inside the tolerance band.
    Within,
    /// Outside the band, in the better direction.
    Improvement,
    /// Outside the band, in the worse (or any, for neutral) direction.
    Regression,
}

impl Verdict {
    /// Stable lowercase name used in `regression.json`.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Within => "within",
            Verdict::Improvement => "improvement",
            Verdict::Regression => "regression",
        }
    }
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct MetricDiff {
    /// Dotted path, e.g. `counters.distance/evaluations`.
    pub path: String,
    /// Value in the baseline manifest (0 when absent there).
    pub baseline: f64,
    /// Value in the current manifest (0 when absent there).
    pub current: f64,
    /// The band that applied: `max(rel · |baseline|, abs)`.
    pub band: f64,
    /// The classification.
    pub verdict: Verdict,
}

/// The full comparison of two manifests.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Experiment id both manifests describe.
    pub experiment: String,
    /// Number of numeric leaves compared (union of both manifests).
    pub checked: usize,
    /// Metrics that moved outside their band, by verdict.
    pub regressions: Vec<MetricDiff>,
    /// Out-of-band improvements (reported, never gating).
    pub improvements: Vec<MetricDiff>,
}

impl DiffReport {
    /// Did any metric regress?
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// The report as JSON (the `reports/regression.json` schema). Metric
    /// lists are sorted by path and keys are sorted at render time, so
    /// identical inputs produce byte-identical files.
    pub fn to_json(&self) -> Json {
        fn metrics_json(metrics: &[MetricDiff]) -> Json {
            let mut sorted: Vec<&MetricDiff> = metrics.iter().collect();
            sorted.sort_by(|a, b| a.path.cmp(&b.path));
            Json::Arr(
                sorted
                    .into_iter()
                    .map(|m| {
                        Json::obj()
                            .with("path", m.path.as_str())
                            .with("baseline", m.baseline)
                            .with("current", m.current)
                            .with("band", m.band)
                            .with("verdict", m.verdict.name())
                    })
                    .collect(),
            )
        }
        Json::obj()
            .with("experiment", self.experiment.as_str())
            .with("checked", self.checked)
            .with("status", if self.regressed() { "regressed" } else { "ok" })
            .with("regressions", metrics_json(&self.regressions))
            .with("improvements", metrics_json(&self.improvements))
    }
}

/// Why two manifests could not be compared (input error, CLI exit 2 —
/// distinct from a regression, exit 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffError(pub String);

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifests not comparable: {}", self.0)
    }
}

impl std::error::Error for DiffError {}

/// Sections that define *what ran* rather than *how it performed*; they
/// must match exactly and are excluded from metric flattening.
const STRUCTURAL: &[&str] = &["experiment", "config", "scale", "datasets"];

/// Metadata that is neither structural nor a performance metric.
const IGNORED: &[&str] = &["attempts", "timeout_ms", "status", "memory.allocator"];

fn numeric(j: &Json) -> Option<f64> {
    match *j {
        Json::UInt(n) => Some(n as f64),
        Json::Int(n) => Some(n as f64),
        Json::Float(f) if f.is_finite() => Some(f),
        _ => None,
    }
}

/// Flatten every numeric leaf of `j` into `out` as `prefix.path -> value`.
/// Arrays index as `.0`, `.1`, ... Structural sections are skipped at the
/// top level by the caller.
fn flatten(prefix: &str, j: &Json, out: &mut Vec<(String, f64)>) {
    match j {
        Json::Obj(entries) => {
            for (k, v) in entries {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, v, out);
            }
        }
        Json::Arr(items) => {
            for (ix, v) in items.iter().enumerate() {
                flatten(&format!("{prefix}.{ix}"), v, out);
            }
        }
        leaf => {
            if let Some(v) = numeric(leaf) {
                out.push((prefix.to_owned(), v));
            }
        }
    }
}

fn metric_paths(manifest: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(entries) = manifest.entries() {
        for (k, v) in entries {
            if STRUCTURAL.contains(&k.as_str()) {
                continue;
            }
            flatten(k, v, &mut out);
        }
    }
    out.retain(|(path, _)| !IGNORED.contains(&path.as_str()));
    out
}

fn structural_mismatch(baseline: &Json, current: &Json) -> Option<String> {
    for key in STRUCTURAL {
        let b = baseline.get(key).map(|j| j.sorted().render());
        let c = current.get(key).map(|j| j.sorted().render());
        if b != c {
            return Some(format!(
                "{key} differs: baseline {} vs current {}",
                b.unwrap_or_else(|| "<absent>".into()),
                c.unwrap_or_else(|| "<absent>".into()),
            ));
        }
    }
    None
}

/// Classify one metric against its tolerance.
pub fn classify(path: &str, baseline: f64, current: f64) -> MetricDiff {
    let tol = tolerance_for(path);
    let band = (tol.rel * baseline.abs()).max(tol.abs);
    let delta = current - baseline;
    let verdict = if delta.abs() <= band {
        Verdict::Within
    } else {
        match tol.direction {
            Direction::Neutral => Verdict::Regression,
            Direction::LowerIsBetter if delta < 0.0 => Verdict::Improvement,
            Direction::LowerIsBetter => Verdict::Regression,
            Direction::HigherIsBetter if delta > 0.0 => Verdict::Improvement,
            Direction::HigherIsBetter => Verdict::Regression,
        }
    };
    MetricDiff {
        path: path.to_owned(),
        baseline,
        current,
        band,
        verdict,
    }
}

/// Compare two parsed manifests. Returns an error when they are not
/// comparable (different experiment/config/scale/datasets).
pub fn diff_manifests(baseline: &Json, current: &Json) -> Result<DiffReport, DiffError> {
    let experiment = baseline
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or_else(|| DiffError("baseline has no `experiment` field".into()))?;
    current
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or_else(|| DiffError("current has no `experiment` field".into()))?;
    if let Some(why) = structural_mismatch(baseline, current) {
        return Err(DiffError(why));
    }

    // Union of both manifests' metric paths; a metric absent on one side
    // reads as 0 there (a counter that never fired was never registered).
    let base_metrics = metric_paths(baseline);
    let cur_metrics = metric_paths(current);
    let mut paths: Vec<&str> = base_metrics
        .iter()
        .chain(cur_metrics.iter())
        .map(|(p, _)| p.as_str())
        .collect();
    paths.sort_unstable();
    paths.dedup();

    let lookup = |metrics: &[(String, f64)], path: &str| -> f64 {
        metrics
            .iter()
            .find(|(p, _)| p == path)
            .map_or(0.0, |(_, v)| *v)
    };

    let mut report = DiffReport {
        experiment: experiment.to_owned(),
        checked: paths.len(),
        regressions: Vec::new(),
        improvements: Vec::new(),
    };
    for path in paths {
        let m = classify(
            path,
            lookup(&base_metrics, path),
            lookup(&cur_metrics, path),
        );
        match m.verdict {
            Verdict::Within => {}
            Verdict::Improvement => report.improvements.push(m),
            Verdict::Regression => report.regressions.push(m),
        }
    }
    Ok(report)
}

/// Read and parse a manifest file.
pub fn load_manifest(path: &str) -> Result<Json, DiffError> {
    let body =
        std::fs::read_to_string(path).map_err(|e| DiffError(format!("cannot read {path}: {e}")))?;
    Json::parse(&body).map_err(|e| DiffError(format!("cannot parse {path}: {e}")))
}

/// Run the whole gate: load both manifests, diff them, write the report
/// to `out_path`, and print a human summary to stderr. Returns the
/// process exit code: 0 ok, 1 regression, 2 input error.
pub fn run_diff(baseline_path: &str, current_path: &str, out_path: &str) -> i32 {
    let loaded = load_manifest(baseline_path).and_then(|b| {
        let c = load_manifest(current_path)?;
        diff_manifests(&b, &c)
    });
    let report = match loaded {
        Ok(r) => r,
        Err(e) => {
            eprintln!("prox bench diff: {e}");
            return 2;
        }
    };
    let rendered = report.to_json().sorted().pretty();
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(out_path, &rendered) {
        eprintln!("prox bench diff: cannot write {out_path}: {e}");
        return 2;
    }
    eprintln!(
        "prox bench diff: {} — {} metrics checked, {} regression(s), {} improvement(s) -> {out_path}",
        report.experiment,
        report.checked,
        report.regressions.len(),
        report.improvements.len(),
    );
    for m in &report.regressions {
        eprintln!(
            "  REGRESSION {}: baseline {} -> current {} (band ±{})",
            m.path, m.baseline, m.current, m.band
        );
    }
    for m in &report.improvements {
        eprintln!(
            "  improvement {}: baseline {} -> current {} (band ±{})",
            m.path, m.baseline, m.current, m.band
        );
    }
    if report.regressed() {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal synthetic manifest with the structural sections fixed.
    fn manifest(counters: &[(&str, u64)], phases: &[(&str, u64, u64)]) -> Json {
        let mut c = Json::obj();
        for (name, v) in counters {
            c.set(name, *v);
        }
        let mut p = Json::obj();
        for (name, count, total_ns) in phases {
            p.set(
                name,
                Json::obj()
                    .with("count", *count)
                    .with("total_ns", *total_ns),
            );
        }
        Json::obj()
            .with("experiment", "t")
            .with("scale", Json::obj().with("quick", true))
            .with("config", Json::obj().with("w_dist", 0.5))
            .with(
                "datasets",
                Json::Arr(vec![Json::obj().with("name", "ml").with("seed", 1000u64)]),
            )
            .with("counters", c)
            .with("phases", p)
            .with(
                "memory",
                Json::obj()
                    .with("allocator", "counting")
                    .with("peak_bytes", 10u64 << 20),
            )
    }

    #[test]
    fn identical_manifests_pass_with_empty_lists() {
        let m = manifest(&[("core/steps", 40)], &[("summarize", 8, 1_000_000)]);
        let r = diff_manifests(&m, &m).expect("comparable");
        assert!(!r.regressed());
        assert!(r.regressions.is_empty() && r.improvements.is_empty());
        assert!(r.checked >= 4, "counters+phases+memory flattened: {r:?}");
        // Byte-stability: same inputs, same report bytes.
        assert_eq!(
            r.to_json().sorted().pretty(),
            diff_manifests(&m, &m).unwrap().to_json().sorted().pretty()
        );
    }

    #[test]
    fn exact_counter_drift_is_a_regression_either_direction() {
        let base = manifest(&[("core/steps", 40)], &[]);
        for drifted in [39u64, 41] {
            let cur = manifest(&[("core/steps", drifted)], &[]);
            let r = diff_manifests(&base, &cur).expect("comparable");
            assert_eq!(r.regressions.len(), 1, "{drifted}: {r:?}");
            assert_eq!(r.regressions[0].path, "counters.core/steps");
            assert!(r.improvements.is_empty());
        }
    }

    #[test]
    fn timing_within_band_passes_faster_improves_slower_regresses() {
        let base = manifest(&[], &[("summarize", 8, 100_000_000)]);
        // +40% < 50% band: within.
        let within = manifest(&[], &[("summarize", 8, 140_000_000)]);
        assert!(!diff_manifests(&base, &within).unwrap().regressed());
        // +60% > band: regression, naming the metric.
        let slow = manifest(&[], &[("summarize", 8, 160_000_000)]);
        let r = diff_manifests(&base, &slow).unwrap();
        assert!(r.regressed());
        assert_eq!(r.regressions[0].path, "phases.summarize.total_ns");
        // -60%: out of band in the good direction — improvement, exit 0.
        let fast = manifest(&[], &[("summarize", 8, 40_000_000)]);
        let r = diff_manifests(&base, &fast).unwrap();
        assert!(!r.regressed());
        assert_eq!(r.improvements.len(), 1);
        assert_eq!(r.improvements[0].verdict, Verdict::Improvement);
    }

    #[test]
    fn absent_metric_reads_as_zero() {
        // A counter that only fired in the current run (e.g. a fault
        // inflating run/stop/budget_exhausted from unregistered to N).
        let base = manifest(&[], &[]);
        let cur = manifest(&[("run/stop/budget_exhausted", 5)], &[]);
        let r = diff_manifests(&base, &cur).expect("comparable");
        assert!(r.regressed());
        assert_eq!(r.regressions[0].path, "counters.run/stop/budget_exhausted");
        assert_eq!(r.regressions[0].baseline, 0.0);
        assert_eq!(r.regressions[0].current, 5.0);
    }

    #[test]
    fn memory_band_has_absolute_floor_and_direction() {
        let base = manifest(&[], &[]);
        // +25% of 10 MiB is 2.5 MiB > 1 MiB floor; +3 MiB regresses.
        let mut grown = manifest(&[], &[]);
        grown.set(
            "memory",
            Json::obj()
                .with("allocator", "counting")
                .with("peak_bytes", 13u64 << 20),
        );
        let r = diff_manifests(&base, &grown).unwrap();
        assert!(r.regressed(), "{r:?}");
        assert_eq!(r.regressions[0].path, "memory.peak_bytes");
        // Shrinking the same amount is an improvement.
        let mut shrunk = manifest(&[], &[]);
        shrunk.set(
            "memory",
            Json::obj()
                .with("allocator", "counting")
                .with("peak_bytes", 7u64 << 20),
        );
        let r = diff_manifests(&base, &shrunk).unwrap();
        assert!(!r.regressed());
        assert_eq!(r.improvements.len(), 1);
    }

    #[test]
    fn allocator_tag_and_outcome_metadata_do_not_gate() {
        let base = manifest(&[], &[]);
        let mut cur = manifest(&[], &[]);
        cur.set(
            "memory",
            Json::obj()
                .with("allocator", "system")
                .with("peak_bytes", 10u64 << 20),
        );
        cur.set("attempts", 2u64).set("status", "degraded");
        let r = diff_manifests(&base, &cur).expect("comparable");
        assert!(!r.regressed(), "{r:?}");
    }

    #[test]
    fn structural_mismatch_is_an_input_error_not_a_regression() {
        let base = manifest(&[], &[]);
        let mut other = manifest(&[], &[]);
        other.set("config", Json::obj().with("w_dist", 0.9));
        let err = diff_manifests(&base, &other).unwrap_err();
        assert!(err.to_string().contains("config"), "{err}");
        let mut renamed = manifest(&[], &[]);
        renamed.set("experiment", "other");
        assert!(diff_manifests(&base, &renamed).is_err());
    }

    #[test]
    fn serve_counters_get_a_narrow_neutral_band() {
        let t = tolerance_for("counters.serve/cache_hit");
        assert_eq!(t.direction, Direction::Neutral);
        assert!(t.abs >= 1.0);
        // Band edges: baseline 100, rel 0.1 -> band 10.
        assert_eq!(
            classify("counters.serve/cache_hit", 100.0, 110.0).verdict,
            Verdict::Within
        );
        assert_eq!(
            classify("counters.serve/cache_hit", 100.0, 111.0).verdict,
            Verdict::Regression
        );
        assert_eq!(
            classify("counters.serve/cache_hit", 100.0, 89.0).verdict,
            Verdict::Regression
        );
    }

    #[test]
    fn chaos_politeness_is_exact_but_storm_tallies_get_a_band() {
        // A shed without Retry-After is a regression however small.
        assert_eq!(
            tolerance_for("chaos.shed.missing_retry_after"),
            Tolerance::exact()
        );
        assert_eq!(
            classify("chaos.shed.missing_retry_after", 0.0, 1.0).verdict,
            Verdict::Regression
        );
        // The final health probe must stay 200 exactly.
        assert_eq!(
            classify("chaos.final_healthz.status", 200.0, 503.0).verdict,
            Verdict::Regression
        );
        // Storm tallies tolerate small scheduler-driven drift either way,
        // but a collapse in sheds (e.g. the limiter stopped limiting) gates.
        assert_eq!(
            classify("chaos.responses.rate_limited_429", 20.0, 22.0).verdict,
            Verdict::Within
        );
        assert_eq!(
            classify("chaos.responses.rate_limited_429", 20.0, 0.0).verdict,
            Verdict::Regression
        );
        assert_eq!(
            classify("chaos.shed.rate", 0.4, 0.45).verdict,
            Verdict::Within
        );
        assert_eq!(
            classify("chaos.shed.rate", 0.4, 0.9).verdict,
            Verdict::Regression
        );
    }

    #[test]
    fn store_dedup_is_exact_but_bytes_and_timing_get_bands() {
        // Dedup and frame counts are functions of the seed: any drift is
        // a real behavior change.
        assert_eq!(tolerance_for("store.build.dedup_ratio"), Tolerance::exact());
        assert_eq!(tolerance_for("store.build.unique"), Tolerance::exact());
        assert_eq!(tolerance_for("store.fold.logical_seen"), Tolerance::exact());
        assert_eq!(
            tolerance_for("counters.store/dedup_hit"),
            Tolerance::exact()
        );
        assert_eq!(
            classify("store.build.dedup_ratio", 83.3, 83.4).verdict,
            Verdict::Regression
        );
        // Byte volumes tolerate page-size retuning; more bytes regresses,
        // fewer improves.
        assert_eq!(
            classify("store.reader.bytes_read", 1_000_000.0, 1_100_000.0).verdict,
            Verdict::Within
        );
        assert_eq!(
            classify("store.reader.bytes_read", 1_000_000.0, 1_600_000.0).verdict,
            Verdict::Regression
        );
        assert_eq!(
            classify("store.reader.bytes_read", 1_000_000.0, 400_000.0).verdict,
            Verdict::Improvement
        );
        // Wall-clock build/fold timings get the wide timing band.
        assert_eq!(
            classify("store.timing_ms.fold", 1_000.0, 1_400.0).verdict,
            Verdict::Within
        );
        assert_eq!(
            classify("store.timing_ms.fold", 1_000.0, 2_000.0).verdict,
            Verdict::Regression
        );
        // The cache hit rate rides the generic higher-is-better rule.
        assert_eq!(
            tolerance_for("store.reader.page_cache.hit_rate").direction,
            Direction::HigherIsBetter
        );
    }

    #[test]
    fn higher_is_better_metrics_regress_downward() {
        assert_eq!(
            classify("serve.throughput_rps", 100.0, 60.0).verdict,
            Verdict::Regression
        );
        assert_eq!(
            classify("serve.throughput_rps", 100.0, 140.0).verdict,
            Verdict::Improvement
        );
        assert_eq!(
            classify("serve.p99_us", 1.0, 90_000.0).verdict,
            Verdict::Regression
        );
    }
}
