//! The experiment suite: one function per table/figure of Chapter 6.
//!
//! Every function returns [`Figure`]s whose series reproduce the paper's
//! plots (same axes, same algorithms). `quick` mode shrinks grids and
//! instance counts so integration tests can exercise every experiment in
//! seconds; the `experiments` binary runs the full versions.

// Experiment wiring panics on impossible configurations (see the matching
// lint.allow entry): the expects assert workload setup — e.g. that cluster
// merges were precomputed for datasets that support clustering — not
// data-dependent conditions.
#![allow(clippy::expect_used)]

use prox_core::{
    approx_distance, exact_distance_all, MemberOverride, SamplerConfig, ScoreMode, SummarizeConfig,
};
use prox_provenance::{AggKind, AnnId, Mapping, ProvExpr, Summarizable, Valuation};
use prox_system::evaluator::time_valuations;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::runner::{run, Algo};
use crate::series::{average, Figure, Series};
use crate::workload::Workload;

/// Experiment scale.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Dataset instances to average over.
    pub instances: usize,
    /// Random-baseline seeds to average over.
    pub random_seeds: u64,
    /// Grid density divisor (1 = full grids).
    pub quick: bool,
}

impl Scale {
    /// Full scale (the paper's setting: several instances, full grids).
    pub fn full() -> Self {
        Scale {
            instances: 3,
            random_seeds: 5,
            quick: false,
        }
    }

    /// Quick scale for tests.
    pub fn quick() -> Self {
        Scale {
            instances: 1,
            random_seeds: 2,
            quick: true,
        }
    }

    fn wdist_grid(&self) -> Vec<f64> {
        if self.quick {
            vec![0.0, 0.5, 1.0]
        } else {
            (0..=10).map(|i| i as f64 / 10.0).collect()
        }
    }

    fn max_steps(&self) -> usize {
        if self.quick {
            5
        } else {
            20
        }
    }
}

/// Average final (distance, size) for the Random baseline across seeds.
fn random_avg<E: Summarizable>(
    workloads: &[Workload<E>],
    config: &SummarizeConfig,
    seeds: u64,
) -> (f64, f64) {
    let mut d = 0.0;
    let mut s = 0.0;
    let mut n = 0;
    for seed in 0..seeds {
        for w in workloads {
            let res = run(w, Algo::Random { seed }, config).expect("random always runs");
            d += res.final_distance;
            s += res.final_size() as f64;
            n += 1;
        }
    }
    (d / n as f64, s / n as f64)
}

/// The wDist experiment (§6.4): distance and size as functions of wDist
/// for the three algorithms. Returns `(distance figure, size figure)`.
pub fn wdist_experiment<E: Summarizable>(
    workloads: &[Workload<E>],
    scale: Scale,
    max_steps: usize,
    fig_dist: &str,
    fig_size: &str,
    dataset: &str,
) -> (Figure, Figure) {
    let grid = scale.wdist_grid();
    let mut dist_fig = Figure::new(
        fig_dist,
        format!("Average Distance as a Function of wDist ({dataset})"),
        "wDist",
        "avg normalized distance",
    );
    let mut size_fig = Figure::new(
        fig_size,
        format!("Average Size as a Function of wDist ({dataset})"),
        "wDist",
        "avg provenance size",
    );

    let mut pa_dist = Series::new("Prov-Approx");
    let mut pa_size = Series::new("Prov-Approx");
    for &w_dist in &grid {
        let config = SummarizeConfig {
            w_dist,
            w_size: 1.0 - w_dist,
            max_steps,
            ..Default::default()
        };
        let mut d_sum = 0.0;
        let mut s_sum = 0.0;
        for w in workloads {
            let res = run(w, Algo::ProvApprox, &config).expect("prov-approx runs");
            d_sum += res.final_distance;
            s_sum += res.final_size() as f64;
        }
        pa_dist.push(w_dist, d_sum / workloads.len() as f64);
        pa_size.push(w_dist, s_sum / workloads.len() as f64);
    }
    dist_fig.push(pa_dist);
    size_fig.push(pa_size);

    // Clustering and Random ignore wDist (§6.4): run once, show flat.
    let flat_config = SummarizeConfig {
        max_steps,
        ..Default::default()
    };
    if workloads.iter().all(|w| w.cluster_merges.is_some()) {
        let mut d_sum = 0.0;
        let mut s_sum = 0.0;
        for w in workloads {
            let res = run(w, Algo::Clustering, &flat_config).expect("merges present");
            d_sum += res.final_distance;
            s_sum += res.final_size() as f64;
        }
        let (d, s) = (
            d_sum / workloads.len() as f64,
            s_sum / workloads.len() as f64,
        );
        let mut cd = Series::new("Clustering");
        let mut cs = Series::new("Clustering");
        for &x in &grid {
            cd.push(x, d);
            cs.push(x, s);
        }
        dist_fig.push(cd);
        size_fig.push(cs);
    }
    let (rd, rs) = random_avg(workloads, &flat_config, scale.random_seeds);
    let mut rnd_d = Series::new("Random");
    let mut rnd_s = Series::new("Random");
    for &x in &grid {
        rnd_d.push(x, rd);
        rnd_s.push(x, rs);
    }
    dist_fig.push(rnd_d);
    size_fig.push(rnd_s);

    (dist_fig, size_fig)
}

/// The TARGET-SIZE experiment (§6.5): distance as a function of the size
/// bound, with `wDist = 1` and `TARGET-DIST = 1`.
pub fn target_size_experiment<E: Summarizable>(
    workloads: &[Workload<E>],
    scale: Scale,
    fig_id: &str,
    dataset: &str,
) -> Figure {
    target_size_experiment_with(workloads, scale, fig_id, dataset, None)
}

/// Like [`target_size_experiment`] with an explicit TARGET-SIZE grid given
/// as fractions of the initial size — DDP provenance shrinks less per
/// step, so its grid sits closer to 1.
pub fn target_size_experiment_with<E: Summarizable>(
    workloads: &[Workload<E>],
    scale: Scale,
    fig_id: &str,
    dataset: &str,
    fractions: Option<Vec<f64>>,
) -> Figure {
    let initial =
        workloads.iter().map(|w| w.initial_size()).sum::<usize>() as f64 / workloads.len() as f64;
    let fractions: Vec<f64> = fractions.unwrap_or_else(|| {
        if scale.quick {
            vec![0.5, 0.7]
        } else {
            vec![0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75]
        }
    });
    let mut fig = Figure::new(
        fig_id,
        format!("Average Distance as a Function of TARGET-SIZE ({dataset})"),
        "TARGET-SIZE",
        "avg normalized distance",
    );
    let mut pa = Series::new("Prov-Approx");
    let mut cl = Series::new("Clustering");
    let mut rn = Series::new("Random");
    let clustering_available = workloads.iter().all(|w| w.cluster_merges.is_some());
    for &f in &fractions {
        let target = (initial * f).round() as usize;
        let config = SummarizeConfig {
            w_dist: 1.0,
            w_size: 0.0,
            target_size: target,
            target_dist: 1.0,
            max_steps: usize::MAX,
            ..Default::default()
        };
        let mut d_pa = 0.0;
        for w in workloads {
            d_pa += run(w, Algo::ProvApprox, &config)
                .expect("prov-approx runs")
                .final_distance;
        }
        pa.push(target as f64, d_pa / workloads.len() as f64);
        if clustering_available {
            let mut d_cl = 0.0;
            for w in workloads {
                d_cl += run(w, Algo::Clustering, &config)
                    .expect("merges present")
                    .final_distance;
            }
            cl.push(target as f64, d_cl / workloads.len() as f64);
        }
        let (rd, _) = random_avg(workloads, &config, scale.random_seeds);
        rn.push(target as f64, rd);
    }
    fig.push(pa);
    if clustering_available {
        fig.push(cl);
    }
    fig.push(rn);
    fig
}

/// The TARGET-DIST experiment (§6.6): size as a function of the distance
/// bound, with `wSize = 1` and `TARGET-SIZE = 1`.
pub fn target_dist_experiment<E: Summarizable>(
    workloads: &[Workload<E>],
    scale: Scale,
    fig_id: &str,
    dataset: &str,
) -> Figure {
    target_dist_experiment_with(workloads, scale, fig_id, dataset, None)
}

/// Like [`target_dist_experiment`] with an explicit TARGET-DIST grid — DDP
/// merges cost far less distance per step, so its grid sits an order of
/// magnitude lower.
pub fn target_dist_experiment_with<E: Summarizable>(
    workloads: &[Workload<E>],
    scale: Scale,
    fig_id: &str,
    dataset: &str,
    grid: Option<Vec<f64>>,
) -> Figure {
    let grid: Vec<f64> = grid.unwrap_or_else(|| {
        if scale.quick {
            vec![0.02, 0.08]
        } else {
            (1..=10).map(|i| i as f64 / 100.0).collect()
        }
    });
    let mut fig = Figure::new(
        fig_id,
        format!("Average Size as a Function of TARGET-DIST ({dataset})"),
        "TARGET-DIST",
        "avg provenance size",
    );
    let mut pa = Series::new("Prov-Approx");
    let mut cl = Series::new("Clustering");
    let mut rn = Series::new("Random");
    let clustering_available = workloads.iter().all(|w| w.cluster_merges.is_some());
    for &target in &grid {
        let config = SummarizeConfig {
            w_dist: 0.0,
            w_size: 1.0,
            target_size: 1,
            target_dist: target,
            max_steps: usize::MAX,
            ..Default::default()
        };
        let mut s_pa = 0.0;
        for w in workloads {
            s_pa += run(w, Algo::ProvApprox, &config)
                .expect("prov-approx runs")
                .final_size() as f64;
        }
        pa.push(target, s_pa / workloads.len() as f64);
        if clustering_available {
            let mut s_cl = 0.0;
            for w in workloads {
                s_cl += run(w, Algo::Clustering, &config)
                    .expect("merges present")
                    .final_size() as f64;
            }
            cl.push(target, s_cl / workloads.len() as f64);
        }
        let (_, rs) = random_avg(workloads, &config, scale.random_seeds);
        rn.push(target, rs);
    }
    fig.push(pa);
    if clustering_available {
        fig.push(cl);
    }
    fig.push(rn);
    fig
}

/// The varying-steps experiment (§6.7): distance and size vs wDist for
/// several step budgets. Returns `(distance figure, size figure)`.
pub fn steps_experiment(
    workloads: &[Workload<ProvExpr>],
    scale: Scale,
    fig_dist: &str,
    fig_size: &str,
    dataset: &str,
) -> (Figure, Figure) {
    let steps = if scale.quick {
        vec![3, 5]
    } else {
        vec![20, 30, 40]
    };
    let grid = scale.wdist_grid();
    let mut dist_fig = Figure::new(
        fig_dist,
        format!("Average Distance vs wDist for Varying Steps ({dataset})"),
        "wDist",
        "avg normalized distance",
    );
    let mut size_fig = Figure::new(
        fig_size,
        format!("Average Size vs wDist for Varying Steps ({dataset})"),
        "wDist",
        "avg provenance size",
    );
    for &max_steps in &steps {
        let mut d_series = Series::new(format!("{max_steps} steps"));
        let mut s_series = Series::new(format!("{max_steps} steps"));
        for &w_dist in &grid {
            let config = SummarizeConfig {
                w_dist,
                w_size: 1.0 - w_dist,
                max_steps,
                ..Default::default()
            };
            let mut d = 0.0;
            let mut s = 0.0;
            for w in workloads {
                let res = run(w, Algo::ProvApprox, &config).expect("prov-approx runs");
                d += res.final_distance;
                s += res.final_size() as f64;
            }
            d_series.push(w_dist, d / workloads.len() as f64);
            s_series.push(w_dist, s / workloads.len() as f64);
        }
        dist_fig.push(d_series);
        size_fig.push(s_series);
    }
    (dist_fig, size_fig)
}

/// The usage-time experiment (§6.8): ratio of summary to original
/// evaluation time over 10 random valuations, vs wDist, for each step
/// budget. Returns one figure per step budget.
pub fn usage_time_experiment(
    workloads: &[Workload<ProvExpr>],
    scale: Scale,
    fig_ids: &[(&str, usize)],
) -> Vec<Figure> {
    let grid = scale.wdist_grid();
    let mut figures = Vec::new();
    for &(fig_id, max_steps) in fig_ids {
        let max_steps = if scale.quick {
            max_steps.min(5)
        } else {
            max_steps
        };
        let mut fig = Figure::new(
            fig_id,
            format!("Usage Time Ratio (summary/original), {max_steps} steps"),
            "wDist",
            "evaluation-time ratio",
        );
        let mut pa = Series::new("Prov-Approx");
        for &w_dist in &grid {
            let config = SummarizeConfig {
                w_dist,
                w_size: 1.0 - w_dist,
                max_steps,
                ..Default::default()
            };
            let mut ratio_sum = 0.0;
            for w in workloads {
                let res = run(w, Algo::ProvApprox, &config).expect("prov-approx runs");
                ratio_sum += usage_ratio(w, &res.summary, &res.mapping);
            }
            pa.push(w_dist, ratio_sum / workloads.len() as f64);
        }
        fig.push(pa);

        // Clustering/Random ignore wDist: flat averages.
        let flat = SummarizeConfig {
            max_steps,
            ..Default::default()
        };
        if workloads.iter().all(|w| w.cluster_merges.is_some()) {
            let mut r = 0.0;
            for w in workloads {
                let res = run(w, Algo::Clustering, &flat).expect("merges present");
                r += usage_ratio(w, &res.summary, &res.mapping);
            }
            let r = r / workloads.len() as f64;
            let mut s = Series::new("Clustering");
            for &x in &grid {
                s.push(x, r);
            }
            fig.push(s);
        }
        let mut r = 0.0;
        let mut n = 0;
        for seed in 0..scale.random_seeds {
            for w in workloads {
                let res = run(w, Algo::Random { seed }, &flat).expect("random runs");
                r += usage_ratio(w, &res.summary, &res.mapping);
                n += 1;
            }
        }
        let r = r / n as f64;
        let mut s = Series::new("Random");
        for &x in &grid {
            s.push(x, r);
        }
        fig.push(s);
        figures.push(fig);
    }
    figures
}

/// Evaluation-time ratio over 10 randomly chosen valuations (repeated for
/// timing stability).
fn usage_ratio(w: &Workload<ProvExpr>, summary: &ProvExpr, mapping: &Mapping) -> f64 {
    let mut rng = StdRng::seed_from_u64(99);
    let picks: Vec<Valuation> = (0..10)
        .map(|_| w.valuations[rng.random_range(0..w.valuations.len())].clone())
        .collect();
    // The summary needs lifted valuations; `time_valuations` lifts before
    // timing, so the measured section is evaluation only.
    let _ = mapping;
    const REPS: usize = 20;
    let mut orig_ns = 0u128;
    let mut summ_ns = 0u128;
    for _ in 0..REPS {
        orig_ns += time_valuations(&w.p0, &picks, &w.store);
        summ_ns += time_valuations(summary, &picks, &w.store);
    }
    if orig_ns == 0 {
        1.0
    } else {
        summ_ns as f64 / orig_ns as f64
    }
}

/// The timing experiment (§6.9): per-candidate computation time and
/// per-step summarization time as functions of the expression size, with
/// `wDist = 1` and 50 steps. Returns `(candidate-time fig, step-time fig)`.
pub fn timing_experiment(
    workloads: &[Workload<ProvExpr>],
    scale: Scale,
    fig_cand: &str,
    fig_step: &str,
) -> (Figure, Figure) {
    let max_steps = if scale.quick { 5 } else { 50 };
    let config = SummarizeConfig {
        w_dist: 1.0,
        w_size: 0.0,
        max_steps,
        ..Default::default()
    };
    let mut cand_fig = Figure::new(
        fig_cand,
        "Time per Candidate vs Provenance Size".to_owned(),
        "provenance size",
        "time per candidate (µs)",
    );
    let mut step_fig = Figure::new(
        fig_step,
        "Summarization Step Time vs Provenance Size".to_owned(),
        "provenance size",
        "step time (µs)",
    );
    for (ix, w) in workloads.iter().enumerate() {
        let res = run(w, Algo::ProvApprox, &config).expect("prov-approx runs");
        let mut cand = Series::new(format!("instance {}", ix + 1));
        let mut step = Series::new(format!("instance {}", ix + 1));
        for rec in &res.history.steps {
            cand.push(
                rec.size_before as f64,
                rec.time_per_candidate().as_nanos() as f64 / 1000.0,
            );
            step.push(rec.size_before as f64, rec.step_time.as_micros() as f64);
        }
        // Sort by size ascending for readability.
        cand.points.sort_by(|a, b| a.0.total_cmp(&b.0));
        step.points.sort_by(|a, b| a.0.total_cmp(&b.0));
        cand_fig.push(cand);
        step_fig.push(step);
    }
    let _ = scale;
    (cand_fig, step_fig)
}

/// The k-way ablation (the thesis's future work): distance and size vs k
/// at a fixed step budget.
pub fn kway_experiment(workloads: &[Workload<ProvExpr>], scale: Scale) -> Figure {
    let ks = if scale.quick {
        vec![2, 3]
    } else {
        vec![2, 3, 4, 5]
    };
    let max_steps = scale.max_steps();
    let mut fig = Figure::new(
        "A.1",
        "k-way Merging: Distance and Size vs k (fixed step budget)",
        "k",
        "avg distance / avg size",
    );
    let mut dist = Series::new("distance");
    let mut size = Series::new("size");
    for &k in &ks {
        let config = SummarizeConfig {
            w_dist: 0.5,
            w_size: 0.5,
            k,
            max_steps,
            ..Default::default()
        };
        let mut d = 0.0;
        let mut s = 0.0;
        for w in workloads {
            let res = run(w, Algo::ProvApprox, &config).expect("prov-approx runs");
            d += res.final_distance;
            s += res.final_size() as f64;
        }
        dist.push(k as f64, d / workloads.len() as f64);
        size.push(k as f64, s / workloads.len() as f64);
    }
    fig.push(dist);
    fig.push(size);
    fig
}

/// The score-mode ablation: Rank vs Normalized scoring, distance vs wDist.
pub fn score_mode_experiment(workloads: &[Workload<ProvExpr>], scale: Scale) -> Figure {
    let grid = scale.wdist_grid();
    let mut fig = Figure::new(
        "A.2",
        "Score-Mode Ablation: Distance vs wDist",
        "wDist",
        "avg normalized distance",
    );
    for (mode, label) in [
        (ScoreMode::Rank, "rank"),
        (ScoreMode::Normalized, "normalized"),
    ] {
        let mut s = Series::new(label);
        for &w_dist in &grid {
            let config = SummarizeConfig {
                w_dist,
                w_size: 1.0 - w_dist,
                score_mode: mode,
                max_steps: scale.max_steps(),
                ..Default::default()
            };
            let mut d = 0.0;
            for w in workloads {
                d += run(w, Algo::ProvApprox, &config)
                    .expect("prov-approx runs")
                    .final_distance;
            }
            s.push(w_dist, d / workloads.len() as f64);
        }
        fig.push(s);
    }
    fig
}

/// Sampler accuracy (validating Prop 4.1.2 empirically): absolute error of
/// the sampled distance vs the exhaustive one, per ε.
pub fn sampler_accuracy_experiment(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "A.3",
        "Sampling Approximation Accuracy (Prop 4.1.2)",
        "epsilon",
        "absolute estimation error",
    );
    let epsilons: Vec<f64> = if scale.quick {
        vec![0.05, 0.1]
    } else {
        vec![0.01, 0.02, 0.05, 0.1]
    };
    // A tiny dedicated workload (≤ 16 annotations) so the exhaustive 2ⁿ
    // reference stays feasible.
    let data = prox_datasets::MovieLens::generate(prox_datasets::MovieLensConfig {
        users: 6,
        movies: 2,
        ratings_per_user: 1,
        seed: 4,
    });
    let small = data.provenance(AggKind::Max);
    let mut store = data.store.clone();
    let phi = prox_provenance::PhiMap::uniform(prox_provenance::Phi::Or);
    let val_func = prox_core::ValFuncKind::Euclidean;
    let users: Vec<AnnId> = data.users.clone();
    let dom = store.domain("users");
    let g = store.add_summary("G", dom, &[users[0], users[1]]);
    let h = Mapping::group(&[users[0], users[1]], g);
    let summary = small.map(&h);
    let exact = exact_distance_all(&small, &summary, &h, &store, &phi, val_func);

    let mut err = Series::new("observed |error|");
    let mut bound = Series::new("epsilon bound");
    for &eps in &epsilons {
        let est = approx_distance(
            &small,
            &summary,
            &h,
            &store,
            &MemberOverride::new(),
            &phi,
            val_func,
            SamplerConfig {
                epsilon: eps,
                delta: 0.05,
                seed: 7,
                max_samples: None,
            },
        );
        err.push(eps, (est.distance - exact).abs());
        bound.push(eps, eps);
    }
    fig.push(err);
    fig.push(bound);
    fig
}

/// Greedy-vs-optimal ablation (A.4): on small random workloads, the
/// greedy Algorithm 1's distance under a size bound vs the exhaustive
/// optimum over all constraint-satisfying merge sequences.
pub fn greedy_gap_experiment(scale: Scale) -> Figure {
    use prox_core::greedy_gap;
    let mut fig = Figure::new(
        "A.4",
        "Greedy vs Exhaustive Optimum (distance at fixed TARGET-SIZE)",
        "instance",
        "normalized distance",
    );
    let n = if scale.quick { 2 } else { 6 };
    let mut greedy = Series::new("greedy (Algorithm 1)");
    let mut optimal = Series::new("exhaustive optimum");
    for ix in 0..n {
        let mut data = prox_datasets::MovieLens::generate(prox_datasets::MovieLensConfig {
            users: 7,
            movies: 3,
            ratings_per_user: 2,
            seed: 5000 + ix as u64,
        });
        let p0 = data.provenance(AggKind::Max);
        let vals = data.valuations(prox_provenance::ValuationClass::CancelSingleAnnotation);
        let constraints = data.constraints();
        let target = (p0.size() * 2 / 3).max(1);
        match greedy_gap(&p0, &vals, &mut data.store, &constraints, None, target) {
            Ok((g, o)) => {
                greedy.push(ix as f64, g);
                optimal.push(ix as f64, o);
            }
            Err(_) => continue, // bounds infeasible on this instance
        }
    }
    fig.push(greedy);
    fig.push(optimal);
    fig
}

/// Render Table 5.1 (dataset/parameter matrix) as text.
pub fn table51() -> String {
    let rows = [
        (
            "Movies",
            "(UserID·MovieTitle·MovieYear) ⊗ (Rating, 1) ⊕ …",
            "Gender, Age Range, Occupation, Zip Code",
            "MAX, SUM",
            "Cancel Single Annotation / Cancel Single Attribute",
            "Logical OR",
            "Euclidean Distance",
        ),
        (
            "Wikipedia",
            "(Username·PageTitle) ⊗ (EditType, 1) ⊕ …",
            "Users: isRegistered, Gender, Contribution Level; Pages: WordNet concept",
            "SUM",
            "Same, restricted to taxonomy-consistent valuations",
            "Logical OR",
            "Euclidean Distance",
        ),
        (
            "DDP",
            "⟨c₁,1⟩·⟨0,[d₁·d₂]≠0⟩ + ⟨0,[d₂·d₃]=0⟩·⟨c₂,1⟩ …",
            "DB vars: relation; cost vars: cost value",
            "Tropical (min, +) over costs",
            "Cancel Single Annotation / Cancel Single Attribute",
            "DB vars: OR; cost vars: MAX",
            "Absolute Difference",
        ),
    ];
    let mut out =
        String::from("Table 5.1 — Provenance and Summarization Parameters per Dataset\n\n");
    for (name, structure, constraints, agg, vals, phi, vf) in rows {
        out.push_str(&format!(
            "{name}\n  Structure:   {structure}\n  Constraints: {constraints}\n  Aggregation: {agg}\n  Valuations:  {vals}\n  φ:           {phi}\n  VAL-FUNC:    {vf}\n\n"
        ));
    }
    out
}

/// Shared helper for the experiments binary: average a list of series.
pub fn averaged(label: &str, runs: &[Series]) -> Series {
    average(label, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use prox_cluster::Linkage;
    use prox_provenance::ValuationClass;

    fn ml() -> Vec<Workload<ProvExpr>> {
        workload::movielens(
            1,
            ValuationClass::CancelSingleAttribute,
            AggKind::Max,
            Linkage::Single,
        )
    }

    #[test]
    fn wdist_experiment_produces_all_algorithms() {
        let ws = ml();
        let (d, s) = wdist_experiment(&ws, Scale::quick(), 3, "6.1a", "6.2a", "MovieLens");
        assert_eq!(d.series.len(), 3);
        assert_eq!(s.series.len(), 3);
        assert_eq!(d.series[0].points.len(), 3);
    }

    #[test]
    fn wdist_distance_decreases_with_weight() {
        let ws = ml();
        let (d, s) = wdist_experiment(&ws, Scale::quick(), 5, "t", "t2", "ML");
        let pa = &d.series[0];
        let first = pa.points.first().expect("points").1;
        let last = pa.points.last().expect("points").1;
        assert!(last <= first + 1e-9, "distance at wDist=1 ≤ at wDist=0");
        let pa_s = &s.series[0];
        assert!(
            pa_s.points.last().expect("points").1 >= pa_s.points.first().expect("points").1 - 1e-9,
            "size grows with wDist"
        );
    }

    #[test]
    fn target_size_experiment_respects_bounds() {
        let ws = ml();
        let fig = target_size_experiment(&ws, Scale::quick(), "6.1b", "MovieLens");
        assert!(fig.series.len() >= 2);
        for s in &fig.series {
            for &(_, d) in &s.points {
                assert!((0.0..=1.0).contains(&d));
            }
        }
    }

    #[test]
    fn target_dist_size_decreases_in_bound() {
        let ws = ml();
        let fig = target_dist_experiment(&ws, Scale::quick(), "6.2b", "MovieLens");
        let pa = &fig.series[0];
        let first = pa.points.first().expect("points").1;
        let last = pa.points.last().expect("points").1;
        assert!(last <= first + 1e-9, "looser bound → smaller size");
    }

    #[test]
    fn steps_experiment_runs() {
        let ws = ml();
        let (d, s) = steps_experiment(&ws, Scale::quick(), "6.3b", "6.3a", "MovieLens");
        assert_eq!(d.series.len(), 2);
        assert_eq!(s.series.len(), 2);
    }

    #[test]
    fn usage_time_ratio_below_or_near_one() {
        let ws = ml();
        let figs = usage_time_experiment(&ws, Scale::quick(), &[("6.4a", 5)]);
        let pa = &figs[0].series[0];
        // Summaries are smaller, so evaluation should not be slower than
        // ~parity (allow noise).
        for &(_, r) in &pa.points {
            assert!(r < 1.6, "ratio {r}");
        }
    }

    #[test]
    fn timing_experiment_emits_per_step_points() {
        let ws = ml();
        let (cand, step) = timing_experiment(&ws, Scale::quick(), "6.5a", "6.5b");
        assert_eq!(cand.series.len(), 1);
        assert!(!cand.series[0].points.is_empty());
        assert!(!step.series[0].points.is_empty());
    }

    #[test]
    fn table51_mentions_all_datasets() {
        let t = table51();
        for name in ["Movies", "Wikipedia", "DDP"] {
            assert!(t.contains(name));
        }
    }

    #[test]
    fn sampler_accuracy_within_bound() {
        let fig = sampler_accuracy_experiment(Scale::quick());
        if fig.series.is_empty() {
            return;
        }
        let err = &fig.series[0];
        let bound = &fig.series[1];
        for (&(x, e), &(_, b)) in err.points.iter().zip(&bound.points) {
            assert!(e <= b + 0.05, "eps {x}: error {e} vs bound {b}");
        }
    }

    #[test]
    fn kway_and_score_mode_run() {
        let ws = ml();
        let k = kway_experiment(&ws, Scale::quick());
        assert_eq!(k.series.len(), 2);
        let sm = score_mode_experiment(&ws, Scale::quick());
        assert_eq!(sm.series.len(), 2);
    }
}
