//! # prox-bench
//!
//! The experiment harness regenerating every table and figure of the PROX
//! evaluation (Chapter 6), plus ablations:
//!
//! | Figure | Experiment | Function |
//! |--------|------------|----------|
//! | 6.1a/6.2a | wDist sweep (MovieLens) | [`experiments::wdist_experiment`] |
//! | 6.1b | TARGET-SIZE sweep | [`experiments::target_size_experiment`] |
//! | 6.2b | TARGET-DIST sweep | [`experiments::target_dist_experiment`] |
//! | 6.3a/b | varying step budget | [`experiments::steps_experiment`] |
//! | 6.4a/b | usage-time ratio | [`experiments::usage_time_experiment`] |
//! | 6.5a/b | candidate & summarization time | [`experiments::timing_experiment`] |
//! | 6.6–6.7 | Wikipedia sweeps | same functions over [`workload::wikipedia`] |
//! | 6.8–6.9 | DDP sweeps | same functions over [`workload::ddp`] |
//! | Table 5.1 | dataset matrix | [`experiments::table51`] |
//! | — | service-layer load (latency/cache) | [`serve_load::serve_load_experiment`] |
//! | — | chaos soak (faults + overload) | [`chaos::chaos_experiment`] |
//! | A.1–A.3 | k-way, score-mode, sampler ablations | [`experiments`] |
//!
//! Run everything with
//! `cargo run -p prox-bench --release --bin experiments -- all`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod diff;
pub mod experiments;
pub mod manifest;
pub mod report;
pub mod runner;
pub mod series;
pub mod serve_load;
pub mod store_bench;
pub mod workload;

pub use experiments::Scale;
pub use manifest::RunManifest;
pub use runner::{clear_experiment_deadline, run, set_experiment_deadline, Algo};
pub use series::{Figure, Series};
pub use workload::Workload;
