//! Run manifests: one JSON file per experiment under `reports/` capturing
//! what ran (base config, dataset generator seeds, scale), how runs ended
//! (stop-reason counters), and what they cost (per-phase span durations
//! plus the full counter snapshot).
//!
//! The experiments binary resets the observability registry before each
//! experiment and writes `manifest_<experiment>.json` after it, so every
//! manifest's counters cover exactly one experiment.

use std::fs;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

use prox_core::SummarizeConfig;
use prox_obs::Json;

use crate::report::reports_dir;
use crate::workload::Workload;
use crate::Scale;

/// Builder for one experiment's manifest. Metadata (datasets, config) is
/// pushed in while the experiment runs; [`RunManifest::write`] folds in the
/// observability snapshot at that moment and writes the file.
pub struct RunManifest {
    experiment: String,
    scale: Json,
    datasets: Vec<Json>,
    config: Json,
    wall_time_ms: Option<u64>,
    status: Option<String>,
    attempts: Option<u32>,
    timeout_ms: Option<u64>,
    deterministic: bool,
    extra: Vec<(String, Json)>,
}

impl RunManifest {
    /// Start a manifest for `experiment` at `scale`. The config defaults to
    /// [`SummarizeConfig::default`], the base every sweep perturbs.
    pub fn new(experiment: &str, scale: Scale) -> Self {
        RunManifest {
            experiment: experiment.to_owned(),
            scale: Json::obj()
                .with("instances", scale.instances)
                .with("random_seeds", scale.random_seeds)
                .with("quick", scale.quick),
            datasets: Vec::new(),
            config: config_json(&SummarizeConfig::default()),
            wall_time_ms: None,
            status: None,
            attempts: None,
            timeout_ms: None,
            deterministic: deterministic_from_env(),
            extra: Vec::new(),
        }
    }

    /// Switch deterministic mode on or off explicitly (the default follows
    /// the `PROX_DETERMINISTIC` environment variable). In deterministic
    /// mode the manifest omits wall-clock measurements — `wall_time_ms`
    /// and the per-phase timing statistics (only `count` is kept) — so two
    /// same-seed runs write byte-identical files (rule L2).
    pub fn set_deterministic(&mut self, on: bool) {
        self.deterministic = on;
    }

    /// Whether the manifest is in deterministic mode (the default follows
    /// `PROX_DETERMINISTIC`; see [`RunManifest::set_deterministic`]).
    pub fn deterministic(&self) -> bool {
        self.deterministic
    }

    /// Attach an experiment-specific top-level section under `key`
    /// (e.g. the `serve` load report). Use keys that don't collide with
    /// the builder's own sections (`counters`, `phases`, ...).
    pub fn extra(&mut self, key: &str, value: Json) {
        self.extra.push((key.to_owned(), value));
    }

    /// Record the workloads (dataset name + generator seed) the experiment
    /// ran over.
    pub fn datasets<E>(&mut self, workloads: &[Workload<E>]) {
        for w in workloads {
            self.datasets
                .push(Json::obj().with("name", w.name).with("seed", w.seed));
        }
    }

    /// Override the recorded base config (for experiments whose base is not
    /// the default).
    pub fn config(&mut self, config: &SummarizeConfig) {
        self.config = config_json(config);
    }

    /// Record the experiment's wall-clock time.
    pub fn wall_time(&mut self, elapsed: Duration) {
        self.wall_time_ms = Some(elapsed.as_millis() as u64);
    }

    /// Record how the experiment ended: `status` is `completed` (all runs
    /// finished normally), `degraded` (runs were cut short by the
    /// per-experiment timeout or an injected budget), or `skipped` (the
    /// experiment panicked on every attempt); `attempts` counts executions
    /// including retries; `timeout_ms` is the per-experiment deadline that
    /// was in force, if any.
    pub fn outcome(&mut self, status: &str, attempts: u32, timeout_ms: Option<u64>) {
        self.status = Some(status.to_owned());
        self.attempts = Some(attempts);
        self.timeout_ms = timeout_ms;
    }

    /// Assemble the manifest, folding in the current observability
    /// snapshot: `stop_reasons` (the `run/stop/*` counters), `phases`
    /// (span durations), and the full `counters` object.
    pub fn to_json(&self) -> Json {
        let snapshot = prox_obs::snapshot();
        let mut stop_reasons = Json::obj();
        let mut counters = Json::obj();
        if let Some(entries) = snapshot.get("counters").and_then(Json::entries) {
            for (name, value) in entries {
                counters.set(name, value.clone());
                if let Some(reason) = name.strip_prefix("run/stop/") {
                    stop_reasons.set(reason, value.clone());
                }
            }
        }
        // Per-phase durations: the span histograms minus their buckets.
        // Deterministic mode keeps only the call counts — durations and
        // allocation deltas are measurements that differ between
        // same-seed runs (rule L2).
        let timing_keys: &[&str] = if self.deterministic {
            &["count"]
        } else {
            &[
                "count",
                "total_ns",
                "mean_ns",
                "min_ns",
                "max_ns",
                "alloc_bytes",
                "allocs",
            ]
        };
        let mut phases = Json::obj();
        if let Some(entries) = snapshot.get("spans").and_then(Json::entries) {
            for (name, span) in entries {
                let mut phase = Json::obj();
                for key in timing_keys {
                    if let Some(v) = span.get(key) {
                        phase.set(key, v.clone());
                    }
                }
                phases.set(name, phase);
            }
        }
        let mut manifest = Json::obj()
            .with("experiment", self.experiment.as_str())
            .with("scale", self.scale.clone())
            .with("config", self.config.clone())
            .with("datasets", Json::Arr(self.datasets.clone()));
        for (key, value) in &self.extra {
            manifest.set(key, value.clone());
        }
        if let Some(ms) = self.wall_time_ms {
            if !self.deterministic {
                manifest.set("wall_time_ms", ms);
            }
        }
        if let Some(status) = &self.status {
            manifest.set("status", status.as_str());
        }
        if let Some(attempts) = self.attempts {
            manifest.set("attempts", attempts);
        }
        if let Some(ms) = self.timeout_ms {
            manifest.set("timeout_ms", ms);
        }
        manifest
            .with("stop_reasons", stop_reasons)
            .with("phases", phases)
            .with("counters", counters)
            // Process-level allocator stats: peak/total bytes and event
            // count since the last registry reset (i.e. this experiment).
            // In deterministic mode only the stable `allocator` tag stays.
            .with("memory", prox_obs::alloc::memory_json(self.deterministic))
    }

    /// Write `manifest_<experiment>.json` (dots and dashes mapped to `_`)
    /// under [`reports_dir`]; returns the path written.
    pub fn write(&self) -> io::Result<PathBuf> {
        let dir = reports_dir();
        fs::create_dir_all(&dir)?;
        let stem = self.experiment.replace(['.', '-'], "_");
        let path = dir.join(format!("manifest_{stem}.json"));
        // Sorted keys: the on-disk form never depends on assembly order,
        // so same-seed runs diff clean byte for byte (rule L2).
        fs::write(&path, self.to_json().sorted().pretty())?;
        Ok(path)
    }
}

/// Whether `PROX_DETERMINISTIC` asks for reproducible manifests (any value
/// except `0` or empty counts as on).
fn deterministic_from_env() -> bool {
    std::env::var("PROX_DETERMINISTIC").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn config_json(c: &SummarizeConfig) -> Json {
    // Budget limits are opt-in; only the ones actually set are recorded
    // (absolute `deadline` instants are process-relative and omitted).
    let mut budget = Json::obj();
    if let Some(ms) = c.budget.max_millis {
        budget.set("max_millis", ms);
    }
    if let Some(steps) = c.budget.max_steps {
        budget.set("max_steps", steps);
    }
    if let Some(entries) = c.budget.max_memo_entries {
        budget.set("max_memo_entries", entries);
    }
    budget.set("cancellable", c.budget.cancel.is_some());
    Json::obj()
        .with("w_dist", c.w_dist)
        .with("w_size", c.w_size)
        .with("w_tax", c.w_tax)
        .with("target_size", c.target_size)
        .with("target_dist", c.target_dist)
        .with("max_steps", c.max_steps)
        .with("k", c.k)
        .with("score_mode", format!("{:?}", c.score_mode))
        .with("tie_break", format!("{:?}", c.tie_break))
        .with("val_func", format!("{:?}", c.val_func))
        .with("skip_group_equivalent", c.skip_group_equivalent)
        .with("budget", budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use prox_cluster::Linkage;
    use prox_provenance::{AggKind, ValuationClass};

    #[test]
    fn manifest_records_datasets_config_and_snapshot_sections() {
        let ws = workload::movielens(
            2,
            ValuationClass::CancelSingleAttribute,
            AggKind::Max,
            Linkage::Single,
        );
        let mut m = RunManifest::new("9.9-test", Scale::quick());
        m.datasets(&ws);
        m.wall_time(Duration::from_millis(12));
        let j = m.to_json();
        assert_eq!(j.get("experiment").and_then(Json::as_str), Some("9.9-test"));
        let datasets = match j.get("datasets") {
            Some(Json::Arr(items)) => items,
            other => panic!("datasets not an array: {other:?}"),
        };
        assert_eq!(datasets.len(), 2);
        assert_eq!(
            datasets[0].get("seed").and_then(Json::as_u64),
            Some(1000),
            "movielens seeds start at 1000"
        );
        assert_eq!(j.get("wall_time_ms").and_then(Json::as_u64), Some(12));
        let config = j.get("config").expect("config present");
        assert!(config.get("w_dist").is_some());
        assert!(config.get("val_func").and_then(Json::as_str).is_some());
        for section in ["stop_reasons", "phases", "counters", "memory"] {
            assert!(j.get(section).is_some(), "missing {section}");
        }
        // This test binary does not install the counting allocator, so the
        // memory section must say so instead of reporting zeros as data.
        assert!(j
            .get("memory")
            .and_then(|m| m.get("allocator"))
            .and_then(Json::as_str)
            .is_some());
        // The whole manifest round-trips through the serializer.
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn outcome_and_budget_appear_in_the_manifest() {
        let mut m = RunManifest::new("9.9-outcome", Scale::quick());
        m.outcome("degraded", 2, Some(120_000));
        let mut config = SummarizeConfig::default();
        config.budget = config.budget.with_deadline_ms(50).with_max_steps(7);
        m.config(&config);
        let j = m.to_json();
        assert_eq!(j.get("status").and_then(Json::as_str), Some("degraded"));
        assert_eq!(j.get("attempts").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("timeout_ms").and_then(Json::as_u64), Some(120_000));
        let budget = j
            .get("config")
            .and_then(|c| c.get("budget"))
            .expect("budget section");
        assert_eq!(budget.get("max_millis").and_then(Json::as_u64), Some(50));
        assert_eq!(budget.get("max_steps").and_then(Json::as_u64), Some(7));
        assert_eq!(budget.get("max_memo_entries"), None);
        assert!(budget.get("cancellable").is_some());
    }

    #[test]
    fn write_lands_under_reports_with_sanitized_name() {
        let m = RunManifest::new("9.9-wr.test", Scale::quick());
        let path = m.write().unwrap();
        assert!(path.ends_with("manifest_9_9_wr_test.json"));
        let body = fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&body).is_ok());
        let _ = fs::remove_file(&path);
    }
}
