//! Run manifests: one JSON file per experiment under `reports/` capturing
//! what ran (base config, dataset generator seeds, scale), how runs ended
//! (stop-reason counters), and what they cost (per-phase span durations
//! plus the full counter snapshot).
//!
//! The experiments binary resets the observability registry before each
//! experiment and writes `manifest_<experiment>.json` after it, so every
//! manifest's counters cover exactly one experiment.

use std::fs;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

use prox_core::SummarizeConfig;
use prox_obs::Json;

use crate::report::reports_dir;
use crate::workload::Workload;
use crate::Scale;

/// Builder for one experiment's manifest. Metadata (datasets, config) is
/// pushed in while the experiment runs; [`RunManifest::write`] folds in the
/// observability snapshot at that moment and writes the file.
pub struct RunManifest {
    experiment: String,
    scale: Json,
    datasets: Vec<Json>,
    config: Json,
    wall_time_ms: Option<u64>,
}

impl RunManifest {
    /// Start a manifest for `experiment` at `scale`. The config defaults to
    /// [`SummarizeConfig::default`], the base every sweep perturbs.
    pub fn new(experiment: &str, scale: Scale) -> Self {
        RunManifest {
            experiment: experiment.to_owned(),
            scale: Json::obj()
                .with("instances", scale.instances)
                .with("random_seeds", scale.random_seeds)
                .with("quick", scale.quick),
            datasets: Vec::new(),
            config: config_json(&SummarizeConfig::default()),
            wall_time_ms: None,
        }
    }

    /// Record the workloads (dataset name + generator seed) the experiment
    /// ran over.
    pub fn datasets<E>(&mut self, workloads: &[Workload<E>]) {
        for w in workloads {
            self.datasets
                .push(Json::obj().with("name", w.name).with("seed", w.seed));
        }
    }

    /// Override the recorded base config (for experiments whose base is not
    /// the default).
    pub fn config(&mut self, config: &SummarizeConfig) {
        self.config = config_json(config);
    }

    /// Record the experiment's wall-clock time.
    pub fn wall_time(&mut self, elapsed: Duration) {
        self.wall_time_ms = Some(elapsed.as_millis() as u64);
    }

    /// Assemble the manifest, folding in the current observability
    /// snapshot: `stop_reasons` (the `run/stop/*` counters), `phases`
    /// (span durations), and the full `counters` object.
    pub fn to_json(&self) -> Json {
        let snapshot = prox_obs::snapshot();
        let mut stop_reasons = Json::obj();
        let mut counters = Json::obj();
        if let Some(entries) = snapshot.get("counters").and_then(Json::entries) {
            for (name, value) in entries {
                counters.set(name, value.clone());
                if let Some(reason) = name.strip_prefix("run/stop/") {
                    stop_reasons.set(reason, value.clone());
                }
            }
        }
        // Per-phase durations: the span histograms minus their buckets.
        let mut phases = Json::obj();
        if let Some(entries) = snapshot.get("spans").and_then(Json::entries) {
            for (name, span) in entries {
                let mut phase = Json::obj();
                for key in ["count", "total_ns", "mean_ns", "min_ns", "max_ns"] {
                    if let Some(v) = span.get(key) {
                        phase.set(key, v.clone());
                    }
                }
                phases.set(name, phase);
            }
        }
        let mut manifest = Json::obj()
            .with("experiment", self.experiment.as_str())
            .with("scale", self.scale.clone())
            .with("config", self.config.clone())
            .with("datasets", Json::Arr(self.datasets.clone()));
        if let Some(ms) = self.wall_time_ms {
            manifest.set("wall_time_ms", ms);
        }
        manifest
            .with("stop_reasons", stop_reasons)
            .with("phases", phases)
            .with("counters", counters)
    }

    /// Write `manifest_<experiment>.json` (dots and dashes mapped to `_`)
    /// under [`reports_dir`]; returns the path written.
    pub fn write(&self) -> io::Result<PathBuf> {
        let dir = reports_dir();
        fs::create_dir_all(&dir)?;
        let stem = self.experiment.replace(['.', '-'], "_");
        let path = dir.join(format!("manifest_{stem}.json"));
        fs::write(&path, self.to_json().pretty())?;
        Ok(path)
    }
}

fn config_json(c: &SummarizeConfig) -> Json {
    Json::obj()
        .with("w_dist", c.w_dist)
        .with("w_size", c.w_size)
        .with("w_tax", c.w_tax)
        .with("target_size", c.target_size)
        .with("target_dist", c.target_dist)
        .with("max_steps", c.max_steps)
        .with("k", c.k)
        .with("score_mode", format!("{:?}", c.score_mode))
        .with("tie_break", format!("{:?}", c.tie_break))
        .with("val_func", format!("{:?}", c.val_func))
        .with("skip_group_equivalent", c.skip_group_equivalent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use prox_cluster::Linkage;
    use prox_provenance::{AggKind, ValuationClass};

    #[test]
    fn manifest_records_datasets_config_and_snapshot_sections() {
        let ws = workload::movielens(
            2,
            ValuationClass::CancelSingleAttribute,
            AggKind::Max,
            Linkage::Single,
        );
        let mut m = RunManifest::new("9.9-test", Scale::quick());
        m.datasets(&ws);
        m.wall_time(Duration::from_millis(12));
        let j = m.to_json();
        assert_eq!(j.get("experiment").and_then(Json::as_str), Some("9.9-test"));
        let datasets = match j.get("datasets") {
            Some(Json::Arr(items)) => items,
            other => panic!("datasets not an array: {other:?}"),
        };
        assert_eq!(datasets.len(), 2);
        assert_eq!(
            datasets[0].get("seed").and_then(Json::as_u64),
            Some(1000),
            "movielens seeds start at 1000"
        );
        assert_eq!(j.get("wall_time_ms").and_then(Json::as_u64), Some(12));
        let config = j.get("config").expect("config present");
        assert!(config.get("w_dist").is_some());
        assert!(config.get("val_func").and_then(Json::as_str).is_some());
        for section in ["stop_reasons", "phases", "counters"] {
            assert!(j.get(section).is_some(), "missing {section}");
        }
        // The whole manifest round-trips through the serializer.
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn write_lands_under_reports_with_sanitized_name() {
        let m = RunManifest::new("9.9-wr.test", Scale::quick());
        let path = m.write().unwrap();
        assert!(path.ends_with("manifest_9_9_wr_test.json"));
        let body = fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&body).is_ok());
        let _ = fs::remove_file(&path);
    }
}
