//! Report output: aligned text tables to stdout plus text/JSON files under
//! `reports/`.

use std::fs;
use std::path::{Path, PathBuf};

use crate::series::Figure;

/// Where reports land: `<workspace root>/reports`, resolved from this
/// crate's compile-time manifest dir so binaries invoked from any working
/// directory agree on the location. Falls back to `./reports` when the
/// build tree no longer exists (e.g. a binary copied to another machine).
pub fn reports_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/bench → nth(2) = <root>.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .filter(|root| root.exists())
        .map(|root| root.join("reports"))
        .unwrap_or_else(|| PathBuf::from("reports"))
}

/// Emit a figure: print the table and write `<id>.txt` / `<id>.json`.
pub fn emit(figure: &Figure) -> std::io::Result<()> {
    emit_to(figure, &reports_dir())
}

/// Emit into a specific directory (used by tests).
pub fn emit_to(figure: &Figure, dir: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let table = figure.render_table();
    println!("{table}");
    let stem = figure.id.replace('.', "_");
    fs::write(dir.join(format!("fig{stem}.txt")), &table)?;
    fs::write(
        dir.join(format!("fig{stem}.json")),
        figure.to_json().pretty(),
    )?;
    Ok(())
}

/// Emit a free-form text report.
pub fn emit_text(name: &str, body: &str) -> std::io::Result<()> {
    let dir = reports_dir();
    fs::create_dir_all(&dir)?;
    println!("{body}");
    fs::write(dir.join(format!("{name}.txt")), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    #[test]
    fn emit_writes_both_files() {
        let dir = std::env::temp_dir().join("prox_report_test");
        let _ = fs::remove_dir_all(&dir);
        let mut fig = Figure::new("9.9z", "test", "x", "y");
        let mut s = Series::new("a");
        s.push(1.0, 2.0);
        fig.push(s);
        emit_to(&fig, &dir).unwrap();
        assert!(dir.join("fig9_9z.txt").exists());
        let json = fs::read_to_string(dir.join("fig9_9z.json")).unwrap();
        assert!(json.contains("\"label\": \"a\""));
        let _ = fs::remove_dir_all(&dir);
    }
}
