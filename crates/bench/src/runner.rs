//! Running the three algorithms (§6.1) on a workload.

use std::sync::Mutex;
use std::time::Instant;

use prox_cluster::{random_summarize, replay};
use prox_core::{History, ProxError, StopReason, SummarizeConfig, Summarizer, SummaryResult};
use prox_obs::Counter;
use prox_provenance::{Mapping, Summarizable};

use crate::workload::Workload;

/// Runs that hit the size bound.
static STOP_TARGET_SIZE: Counter = Counter::new("run/stop/target_size");
/// Runs that hit (and backed off from) the distance bound.
static STOP_TARGET_DIST: Counter = Counter::new("run/stop/target_dist");
/// Runs that exhausted the step budget.
static STOP_MAX_STEPS: Counter = Counter::new("run/stop/max_steps");
/// Runs that ran out of constraint-satisfying candidates.
static STOP_NO_CANDIDATES: Counter = Counter::new("run/stop/no_candidates");
/// Runs stopped by an execution-budget wall-clock deadline.
static STOP_DEADLINE: Counter = Counter::new("run/stop/deadline_exceeded");
/// Runs stopped by a non-deadline budget limit (steps, injected faults).
static STOP_BUDGET: Counter = Counter::new("run/stop/budget_exhausted");
/// Runs stopped by a cooperative cancellation flag.
static STOP_CANCELLED: Counter = Counter::new("run/stop/cancelled");

fn count_stop(reason: StopReason) {
    match reason {
        StopReason::TargetSize => STOP_TARGET_SIZE.incr(),
        StopReason::TargetDist => STOP_TARGET_DIST.incr(),
        StopReason::MaxSteps => STOP_MAX_STEPS.incr(),
        StopReason::NoCandidates => STOP_NO_CANDIDATES.incr(),
        StopReason::DeadlineExceeded => STOP_DEADLINE.incr(),
        StopReason::BudgetExhausted => STOP_BUDGET.incr(),
        StopReason::Cancelled => STOP_CANCELLED.incr(),
    }
}

/// Wall-clock deadline for the experiment currently running, installed by
/// the experiments binary; [`run`] tightens every config's budget to it so
/// a stuck workload degrades into a budget stop instead of hanging the
/// whole suite.
static EXPERIMENT_DEADLINE: Mutex<Option<Instant>> = Mutex::new(None);

/// Install a per-experiment deadline (see [`EXPERIMENT_DEADLINE`]).
pub fn set_experiment_deadline(at: Instant) {
    *EXPERIMENT_DEADLINE
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = Some(at);
}

/// Remove the per-experiment deadline.
pub fn clear_experiment_deadline() {
    *EXPERIMENT_DEADLINE
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = None;
}

fn experiment_deadline() -> Option<Instant> {
    *EXPERIMENT_DEADLINE
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Which algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Algorithm 1 (this paper).
    ProvApprox,
    /// Constrained hierarchical agglomerative clustering, replayed.
    Clustering,
    /// Uniformly random constraint-satisfying merges.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

impl Algo {
    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::ProvApprox => "Prov-Approx",
            Algo::Clustering => "Clustering",
            Algo::Random { .. } => "Random",
        }
    }
}

/// Run one algorithm on a workload. The workload's store is cloned so runs
/// stay independent; φ and VAL-FUNC come from the workload, stop conditions
/// and weights from `config`.
pub fn run<E: Summarizable>(
    workload: &Workload<E>,
    algo: Algo,
    config: &SummarizeConfig,
) -> Option<SummaryResult<E>> {
    let mut store = workload.store.clone();
    let mut config = config.clone();
    config.phi = workload.phi.clone();
    config.val_func = workload.val_func;
    if let Some(at) = experiment_deadline() {
        config.budget = config.budget.clone().with_deadline_at(at);
    }
    let res = match algo {
        Algo::ProvApprox => {
            let mut s = Summarizer::new(&mut store, workload.constraints.clone(), config);
            let res = match &workload.taxonomy {
                Some(t) => s
                    .with_taxonomy(t)
                    .summarize(&workload.p0, &workload.valuations),
                None => s.summarize(&workload.p0, &workload.valuations),
            };
            match res {
                Ok(res) => Some(res),
                // A budget exhausted before the first step still yields a
                // manifest row: a degenerate zero-step result carrying the
                // budget stop, so the anytime contract holds end to end.
                Err(ProxError::Budget(stop)) => Some(SummaryResult {
                    summary: workload.p0.clone(),
                    mapping: Mapping::identity(),
                    history: History::default(),
                    snapshots: Vec::new(),
                    initial_size: workload.p0.size(),
                    final_distance: 0.0,
                    stop_reason: stop.into(),
                }),
                Err(e) => {
                    // No-panic contract (L1): report and skip the run; the
                    // experiment driver records the missing row.
                    eprintln!("runner: summarize failed: {e}");
                    None
                }
            }
        }
        Algo::Clustering => {
            let merges = workload.cluster_merges.as_ref()?;
            Some(replay(
                &workload.p0,
                merges,
                &mut store,
                &workload.valuations,
                &config,
            ))
        }
        Algo::Random { seed } => Some(random_summarize(
            &workload.p0,
            &mut store,
            &workload.constraints,
            workload.taxonomy.as_ref(),
            &workload.valuations,
            &config,
            seed,
        )),
    };
    if let Some(res) = &res {
        count_stop(res.stop_reason);
    }
    res
}

/// Average `(distance, size)` of an algorithm across workloads.
pub fn average_dist_size<E: Summarizable>(
    workloads: &[Workload<E>],
    algo: Algo,
    config: &SummarizeConfig,
) -> Option<(f64, f64)> {
    let mut dist = 0.0;
    let mut size = 0.0;
    let mut n = 0usize;
    for w in workloads {
        let res = run(w, algo, config)?;
        dist += res.final_distance;
        size += res.final_size() as f64;
        n += 1;
    }
    (n > 0).then(|| (dist / n as f64, size / n as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use prox_cluster::Linkage;
    use prox_provenance::{AggKind, ValuationClass};

    fn small_ml() -> Vec<workload::Workload<prox_provenance::ProvExpr>> {
        workload::movielens(
            1,
            ValuationClass::CancelSingleAttribute,
            AggKind::Max,
            Linkage::Single,
        )
    }

    #[test]
    fn all_algorithms_run_on_movielens() {
        let ws = small_ml();
        let config = SummarizeConfig {
            max_steps: 3,
            ..Default::default()
        };
        for algo in [Algo::ProvApprox, Algo::Clustering, Algo::Random { seed: 1 }] {
            let res = run(&ws[0], algo, &config).expect("available");
            assert!(res.final_size() <= ws[0].initial_size(), "{algo:?}");
        }
    }

    #[test]
    fn clustering_unavailable_for_ddp() {
        let ws = workload::ddp(1, ValuationClass::CancelSingleAttribute);
        let config = SummarizeConfig {
            max_steps: 2,
            ..Default::default()
        };
        assert!(run(&ws[0], Algo::Clustering, &config).is_none());
        assert!(run(&ws[0], Algo::ProvApprox, &config).is_some());
    }

    #[test]
    fn prov_approx_beats_random_on_distance_with_wdist_1() {
        let ws = small_ml();
        let config = SummarizeConfig {
            w_dist: 1.0,
            w_size: 0.0,
            max_steps: 5,
            ..Default::default()
        };
        let pa = run(&ws[0], Algo::ProvApprox, &config).unwrap();
        // Average a few random seeds for stability.
        let rnd: f64 = (0..5)
            .map(|s| {
                run(&ws[0], Algo::Random { seed: s }, &config)
                    .unwrap()
                    .final_distance
            })
            .sum::<f64>()
            / 5.0;
        assert!(
            pa.final_distance <= rnd + 1e-9,
            "prov-approx {} vs random {rnd}",
            pa.final_distance
        );
    }

    #[test]
    fn deadline_exhausted_run_degrades_and_reaches_the_manifest() {
        // The acceptance path end to end: an expired experiment deadline
        // turns a Prov-Approx run into a zero-step best-so-far result whose
        // stop reason lands in the `run/stop/*` counters and, from there,
        // in the manifest's `stop_reasons` section.
        prox_obs::set_enabled(true);
        let ws = small_ml();
        let config = SummarizeConfig::default();
        set_experiment_deadline(Instant::now());
        let res = run(&ws[0], Algo::ProvApprox, &config).expect("degenerate result");
        clear_experiment_deadline();
        assert_eq!(res.stop_reason, StopReason::DeadlineExceeded);
        assert!(res.history.is_empty());
        assert_eq!(res.final_size(), ws[0].initial_size());
        assert!(prox_obs::counter_value("run/stop/deadline_exceeded").unwrap_or(0) >= 1);

        let m = crate::manifest::RunManifest::new("9.9-deadline", crate::Scale::quick());
        let j = m.to_json();
        let stops = j.get("stop_reasons").expect("stop_reasons section");
        assert!(
            stops
                .get("deadline_exceeded")
                .and_then(prox_obs::Json::as_u64)
                .unwrap_or(0)
                >= 1,
            "deadline stop must appear in the manifest"
        );
    }

    #[test]
    fn averaging_runs_across_workloads() {
        let ws = workload::movielens(
            2,
            ValuationClass::CancelSingleAttribute,
            AggKind::Max,
            Linkage::Single,
        );
        let config = SummarizeConfig {
            max_steps: 2,
            ..Default::default()
        };
        let (d, s) = average_dist_size(&ws, Algo::ProvApprox, &config).unwrap();
        assert!(d >= 0.0);
        assert!(s > 0.0);
    }
}
