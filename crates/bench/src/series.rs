//! Data series and text tables for experiment output.
//!
//! Each figure of the paper is regenerated as a set of labelled series
//! (one per algorithm/configuration); the harness renders them as aligned
//! text tables and machine-readable JSON.

use prox_obs::Json;

/// One labelled series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label ("Prov-Approx", "Clustering", "Random").
    pub label: String,
    /// Points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// JSON form: `{"label": …, "points": [[x, y], …]}`.
    pub fn to_json(&self) -> Json {
        let points: Vec<Json> = self
            .points
            .iter()
            .map(|&(x, y)| Json::Arr(vec![Json::Float(x), Json::Float(y)]))
            .collect();
        Json::obj()
            .with("label", self.label.as_str())
            .with("points", Json::Arr(points))
    }
}

/// A figure: several series over a shared x axis.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier matching the paper ("6.1a").
    pub id: String,
    /// Human title.
    pub title: String,
    /// X axis label.
    pub xlabel: String,
    /// Y axis label.
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    /// All x values across series, sorted and deduplicated.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// JSON form mirroring the struct. Field order is fixed, so the
    /// rendering is byte-stable for identical figures (rule L2).
    pub fn to_json(&self) -> Json {
        let series: Vec<Json> = self.series.iter().map(Series::to_json).collect();
        Json::obj()
            .with("id", self.id.as_str())
            .with("title", self.title.as_str())
            .with("xlabel", self.xlabel.as_str())
            .with("ylabel", self.ylabel.as_str())
            .with("series", Json::Arr(series))
    }

    /// Render an aligned text table: one row per x, one column per series.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Figure {} — {}\n", self.id, self.title));
        out.push_str(&format!("{:<12}", self.xlabel));
        for s in &self.series {
            out.push_str(&format!(" {:>14}", truncate(&s.label, 14)));
        }
        out.push('\n');
        for x in self.xs() {
            out.push_str(&format!("{x:<12.3}"));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => out.push_str(&format!(" {y:>14.4}")),
                    None => out.push_str(&format!(" {:>14}", "—")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("(y axis: {})\n", self.ylabel));
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_owned()
    } else {
        s[..max].to_owned()
    }
}

/// Average several y values per x across runs: input is per-run series
/// with identical x grids.
pub fn average(label: &str, runs: &[Series]) -> Series {
    let mut out = Series::new(label);
    if runs.is_empty() {
        return out;
    }
    let xs = runs[0].points.iter().map(|&(x, _)| x).collect::<Vec<_>>();
    for x in xs {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in runs {
            if let Some(y) = r.y_at(x) {
                sum += y;
                n += 1;
            }
        }
        if n > 0 {
            out.push(x, sum / n as f64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup() {
        let mut s = Series::new("a");
        s.push(0.1, 2.0);
        s.push(0.2, 3.0);
        assert_eq!(s.y_at(0.2), Some(3.0));
        assert_eq!(s.y_at(0.3), None);
    }

    #[test]
    fn figure_table_renders_all_series() {
        let mut f = Figure::new("6.1a", "distance vs wDist", "wDist", "avg distance");
        let mut a = Series::new("Prov-Approx");
        a.push(0.0, 0.5);
        a.push(1.0, 0.1);
        let mut b = Series::new("Random");
        b.push(0.0, 0.9);
        f.push(a);
        f.push(b);
        let t = f.render_table();
        assert!(t.contains("Prov-Approx"));
        assert!(t.contains("Random"));
        assert!(t.contains("0.5000"));
        assert!(t.contains("—"), "missing point renders as dash");
    }

    #[test]
    fn average_combines_runs() {
        let mut r1 = Series::new("x");
        r1.push(1.0, 2.0);
        let mut r2 = Series::new("x");
        r2.push(1.0, 4.0);
        let avg = average("avg", &[r1, r2]);
        assert_eq!(avg.y_at(1.0), Some(3.0));
    }

    #[test]
    fn xs_are_sorted_unique() {
        let mut f = Figure::new("t", "t", "x", "y");
        let mut a = Series::new("a");
        a.push(2.0, 0.0);
        a.push(1.0, 0.0);
        let mut b = Series::new("b");
        b.push(1.0, 0.0);
        f.push(a);
        f.push(b);
        assert_eq!(f.xs(), vec![1.0, 2.0]);
    }
}
