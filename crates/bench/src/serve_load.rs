//! In-process load experiment against `prox-serve`.
//!
//! Starts a server on an ephemeral port and drives it with N client
//! threads, each replaying a deterministic request schedule: `distinct`
//! parameter sets (unique per thread) sent `repeats` times in rounds, so
//! round one misses the summary cache and every later round hits it. The
//! cache is sized to hold the whole working set, which makes the expected
//! hit rate exactly `(repeats - 1) / repeats` — asserted nowhere, but
//! recorded in the manifest where a regression is visible.
//!
//! The report lands as the `serve` section of
//! `reports/manifest_serve.json`: request/response counts, cache
//! hits/misses/rate, and — when not in deterministic mode — latency
//! percentiles (p50/p95/p99) and throughput. Wall-clock numbers are
//! omitted under `PROX_DETERMINISTIC` so same-seed runs diff clean, the
//! same rule the rest of the manifest follows.

use std::thread;
use std::time::{Duration, Instant};

use prox_obs::Json;
use prox_robust::{Backoff, ProxError};
use prox_serve::http::{client_request, client_request_full};
use prox_serve::{Server, ServerConfig};

use crate::manifest::RunManifest;
use crate::Scale;

/// Load shape: client threads, distinct parameter sets per thread, and
/// how many rounds each set is replayed.
#[derive(Clone, Copy, Debug)]
pub struct LoadPlan {
    /// Concurrent client threads.
    pub clients: usize,
    /// Distinct request bodies per thread (all unique across threads).
    pub distinct: usize,
    /// Rounds: each body is sent this many times in total.
    pub repeats: usize,
}

impl LoadPlan {
    /// The schedule for `scale`: 2×2×3 quick, 4×4×6 full.
    pub fn for_scale(scale: Scale) -> LoadPlan {
        if scale.quick {
            LoadPlan {
                clients: 2,
                distinct: 2,
                repeats: 3,
            }
        } else {
            LoadPlan {
                clients: 4,
                distinct: 4,
                repeats: 6,
            }
        }
    }

    /// Total requests the plan issues.
    pub fn total(&self) -> usize {
        self.clients * self.distinct * self.repeats
    }
}

/// One client thread's observations.
struct ClientReport {
    latencies_ns: Vec<u64>,
    ok: u64,
    non_ok: u64,
    transport_errors: u64,
    retries: u64,
}

/// How many shed/transport retries each request may spend.
const MAX_RETRIES: u32 = 2;

/// Send one request, retrying shed responses (429/503) and transport
/// errors under a seeded decorrelated-jitter [`Backoff`] — the retry
/// schedule is a pure function of `seed`, so loaded runs stay replayable.
/// Returns the final outcome and the retries consumed.
pub(crate) fn send_with_retry(
    addr: &str,
    headers: &[(&str, String)],
    body: &[u8],
    seed: u64,
) -> (Result<(u16, String), ProxError>, u64) {
    let mut backoff = Backoff::new(seed, 2, 50, MAX_RETRIES);
    loop {
        let outcome = client_request(addr, "POST", "/summarize", headers, body, 30_000);
        let retryable = matches!(outcome, Ok((429 | 503, _)) | Err(_));
        if !retryable {
            return (outcome, u64::from(backoff.attempts()));
        }
        match backoff.next_delay_ms() {
            Some(delay_ms) => thread::sleep(Duration::from_millis(delay_ms)),
            None => return (outcome, u64::from(backoff.attempts())),
        }
    }
}

/// The request body for client `client`, parameter set `d`. Bodies are
/// unique per `(client, d)` (distinct cache keys) and fully deterministic.
fn body_for(client: usize, d: usize) -> String {
    format!(
        "{{\"dataset\": \"small\", \"steps\": {}, \"target_size\": {}}}",
        d + 1,
        client + 1
    )
}

/// Replay one client's schedule against `addr`, timing each request.
fn client_run(addr: &str, client: usize, plan: LoadPlan) -> ClientReport {
    let mut report = ClientReport {
        latencies_ns: Vec::with_capacity(plan.distinct * plan.repeats),
        ok: 0,
        non_ok: 0,
        transport_errors: 0,
        retries: 0,
    };
    for round in 0..plan.repeats {
        for d in 0..plan.distinct {
            let body = body_for(client, d);
            // One backoff seed per (client, round, set): the whole retry
            // schedule replays from the plan alone.
            let seed = (client as u64) << 32 | (round as u64) << 16 | d as u64;
            let t = Instant::now();
            let (outcome, retries) = send_with_retry(addr, &[], body.as_bytes(), seed);
            report.retries += retries;
            match outcome {
                Ok((200, _)) => report.ok += 1,
                Ok((_, _)) => report.non_ok += 1,
                Err(_) => report.transport_errors += 1,
            }
            report.latencies_ns.push(t.elapsed().as_nanos() as u64);
        }
    }
    report
}

/// `sorted` must be ascending; `q` in [0, 1]. Nearest-rank on the last
/// index for an empty-safe percentile.
pub(crate) fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let ix = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[ix.min(sorted.len() - 1)] / 1_000
}

/// Collect every span name in a trace tree, depth-first.
fn span_names(node: &Json, out: &mut Vec<String>) {
    if let Some(name) = node.get("name").and_then(Json::as_str) {
        out.push(name.to_owned());
    }
    if let Some(Json::Arr(children)) = node.get("children") {
        for child in children {
            span_names(child, out);
        }
    }
}

/// Issue one uncached `/summarize` request and verify its retained trace
/// covers the summarizer phases end to end (request → service →
/// summarize → enumerate/cluster/evaluate). Returns the probe report for
/// the manifest; a missing header, trace, or phase is an internal error —
/// the bench treats an incomplete trace pipeline as a failed run.
fn trace_completeness_probe(addr: &str) -> Result<Json, ProxError> {
    // steps=6 is outside every load body (`steps` ≤ `plan.distinct`), so
    // the probe always misses the cache and runs the real summarizer.
    let body = br#"{"dataset": "small", "steps": 6, "target_size": 1}"#;
    let (status, headers, resp) =
        client_request_full(addr, "POST", "/summarize", &[], body, 30_000)?;
    if status != 200 {
        return Err(ProxError::internal(format!(
            "trace probe request failed with {status}: {resp}"
        )));
    }
    let trace_id = headers
        .iter()
        .find(|(n, _)| n == "x-prox-trace-id")
        .map(|(_, v)| v.clone())
        .ok_or_else(|| ProxError::internal("probe response missing X-Prox-Trace-Id"))?;
    let (status, _, tree) = client_request_full(
        addr,
        "GET",
        &format!("/debug/traces/{trace_id}"),
        &[],
        b"",
        30_000,
    )?;
    if status != 200 {
        return Err(ProxError::internal(format!(
            "retained trace {trace_id} not found ({status})"
        )));
    }
    let tree = Json::parse(&tree)
        .map_err(|e| ProxError::internal(format!("trace {trace_id} is not JSON: {e}")))?;
    let mut names = Vec::new();
    if let Some(Json::Arr(roots)) = tree.get("spans") {
        for root in roots {
            span_names(root, &mut names);
        }
    }
    let phases = [
        "request",
        "service",
        "summarize",
        "enumerate",
        "cluster",
        "evaluate",
    ];
    for phase in phases {
        if !names.iter().any(|n| n == phase) {
            return Err(ProxError::internal(format!(
                "trace {trace_id} missing phase {phase:?} (got {names:?})"
            )));
        }
    }
    Ok(Json::obj()
        .with("trace_id", trace_id)
        .with(
            "phases",
            Json::Arr(phases.iter().map(|&p| Json::from(p)).collect()),
        )
        .with("complete", true))
}

/// Run the load experiment and record the report as the manifest's
/// `serve` section. The server is in-process (loopback TCP, ephemeral
/// port), so the numbers measure the service layer, not the network.
pub fn serve_load_experiment(scale: Scale, manifest: &mut RunManifest) -> Result<(), ProxError> {
    let plan = LoadPlan::for_scale(scale);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: plan.clients,
        queue_capacity: plan.clients * 4,
        // Exactly the working set: every distinct body stays resident, so
        // rounds after the first are all hits and nothing is evicted.
        cache_capacity: plan.clients * plan.distinct,
        default_budget_ms: 30_000,
        io_deadline_ms: 30_000,
        // Retain every trace so the completeness probe below always finds
        // its span tree in the ring.
        trace_sample_rate: 1.0,
        ..ServerConfig::default()
    };
    let workers = config.workers;
    let queue_capacity = config.queue_capacity;
    let cache_capacity = config.cache_capacity;
    let handle = Server::start(config)?;
    let addr = handle.addr().to_string();

    let hits0 = prox_obs::counter_value("serve/cache_hit").unwrap_or(0);
    let misses0 = prox_obs::counter_value("serve/cache_miss").unwrap_or(0);

    let t = Instant::now();
    let mut joins = Vec::with_capacity(plan.clients);
    for client in 0..plan.clients {
        let addr = addr.clone();
        let spawned = thread::Builder::new()
            .name(format!("prox-bench-client-{client}"))
            .spawn(move || client_run(&addr, client, plan))
            .map_err(|e| ProxError::io("spawning load client", &e))?;
        joins.push(spawned);
    }
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(plan.total());
    let (mut ok, mut non_ok, mut transport_errors, mut retries) = (0u64, 0u64, 0u64, 0u64);
    for join in joins {
        match join.join() {
            Ok(report) => {
                latencies_ns.extend(report.latencies_ns);
                ok += report.ok;
                non_ok += report.non_ok;
                transport_errors += report.transport_errors;
                retries += report.retries;
            }
            Err(_) => {
                return Err(ProxError::internal("load client thread panicked"));
            }
        }
    }
    let elapsed = t.elapsed();

    // Cache deltas are read before the trace probe so the probe's own
    // miss does not perturb the load schedule's expected hit rate.
    let hits = prox_obs::counter_value("serve/cache_hit")
        .unwrap_or(0)
        .saturating_sub(hits0);
    let misses = prox_obs::counter_value("serve/cache_miss")
        .unwrap_or(0)
        .saturating_sub(misses0);
    let lookups = hits + misses;

    let trace_probe = if prox_obs::enabled() {
        Some(trace_completeness_probe(&addr)?)
    } else {
        None
    };
    handle.shutdown();

    latencies_ns.sort_unstable();
    let mut report = Json::obj()
        .with(
            "server",
            Json::obj()
                .with("workers", workers)
                .with("queue_capacity", queue_capacity)
                .with("cache_capacity", cache_capacity),
        )
        .with(
            "load",
            Json::obj()
                .with("clients", plan.clients)
                .with("distinct_requests", plan.clients * plan.distinct)
                .with("repeats", plan.repeats)
                .with("total_requests", plan.total()),
        )
        .with(
            "responses",
            Json::obj()
                .with("ok", ok)
                .with("non_ok", non_ok)
                .with("transport_errors", transport_errors)
                .with("retries", retries),
        )
        .with(
            "cache",
            Json::obj().with("hits", hits).with("misses", misses).with(
                "hit_rate",
                if lookups == 0 {
                    0.0
                } else {
                    hits as f64 / lookups as f64
                },
            ),
        );
    if let Some(probe) = trace_probe {
        report.set("trace_probe", probe);
    }
    // Latency and throughput are wall-clock: deterministic manifests drop
    // them, exactly as the builder drops `wall_time_ms` and span timings.
    // The obs window (per-endpoint p50/p95/p99 over the last minute) is
    // wall-clock derived too, so it rides the same gate.
    if !manifest.deterministic() {
        report.set("window", prox_obs::window::window_json(false));
        let total_ns: u64 = latencies_ns.iter().sum();
        let mean_us = if latencies_ns.is_empty() {
            0
        } else {
            total_ns / latencies_ns.len() as u64 / 1_000
        };
        report.set(
            "latency_us",
            Json::obj()
                .with("p50", percentile_us(&latencies_ns, 0.50))
                .with("p95", percentile_us(&latencies_ns, 0.95))
                .with("p99", percentile_us(&latencies_ns, 0.99))
                .with("mean", mean_us),
        );
        let secs = elapsed.as_secs_f64();
        report.set(
            "throughput_rps",
            if secs > 0.0 {
                plan.total() as f64 / secs
            } else {
                0.0
            },
        );
    }
    manifest.extra("serve", report);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_totals() {
        let quick = LoadPlan::for_scale(Scale::quick());
        assert_eq!(
            quick.total(),
            quick.clients * quick.distinct * quick.repeats
        );
    }

    #[test]
    fn bodies_are_unique_per_client_and_set() {
        let mut seen = std::collections::BTreeSet::new();
        for client in 0..4 {
            for d in 0..4 {
                assert!(seen.insert(body_for(client, d)));
            }
        }
    }

    #[test]
    fn percentiles_are_empty_safe_and_monotone() {
        assert_eq!(percentile_us(&[], 0.5), 0);
        let sorted: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        let p50 = percentile_us(&sorted, 0.50);
        let p99 = percentile_us(&sorted, 0.99);
        assert!(p50 <= p99);
        assert_eq!(p99, 99, "nearest rank of 0.99 over 100 samples");
        assert_eq!(percentile_us(&sorted, 1.0), 100);
    }

    #[test]
    fn quick_load_reports_full_cache_hit_tail() {
        // Serialize with fault-installing tests (the chaos harness runs in
        // this same process): an injected panic must not leak in here.
        let _fault_lock = prox_robust::FaultGuard::disabled();
        prox_obs::set_enabled(true);
        let scale = Scale::quick();
        let mut manifest = RunManifest::new("serve", scale);
        manifest.set_deterministic(true);
        serve_load_experiment(scale, &mut manifest).expect("load run completes");
        let json = manifest.to_json();
        let serve = json.get("serve").expect("serve section recorded");
        let plan = LoadPlan::for_scale(scale);
        let responses = serve.get("responses").expect("responses");
        assert_eq!(
            responses.get("ok").and_then(Json::as_u64),
            Some(plan.total() as u64)
        );
        // No faults and no tenants: nothing to retry.
        assert_eq!(responses.get("retries").and_then(Json::as_u64), Some(0));
        // Deterministic by construction: round one misses, the rest hit.
        let cache = serve.get("cache").expect("cache");
        assert_eq!(
            cache.get("misses").and_then(Json::as_u64),
            Some((plan.clients * plan.distinct) as u64)
        );
        assert_eq!(
            cache.get("hits").and_then(Json::as_u64),
            Some((plan.clients * plan.distinct * (plan.repeats - 1)) as u64)
        );
        // Deterministic mode: no wall-clock sections.
        assert!(serve.get("latency_us").is_none());
        assert!(serve.get("throughput_rps").is_none());
        assert!(serve.get("window").is_none());
        // Observability was enabled, so the trace probe ran and verified
        // the span phases end to end.
        let probe = serve.get("trace_probe").expect("trace probe recorded");
        assert!(matches!(probe.get("complete"), Some(Json::Bool(true))));
    }
}
