//! The out-of-core store experiment: build a synthetic MovieLens-shaped
//! segment store (ten million logical expressions at full scale), verify
//! it, fold it back into memory through a fixed page-cache ceiling, and
//! summarize a selection off it — proving the summarizer runs over
//! provenance that never fully resides in memory.
//!
//! The manifest's `store` section records the spec, the build and verify
//! reports, the scan outcome, the reader statistics (including the
//! page-cache peak, which must stay under the configured ceiling), and
//! the summarization result. Under `PROX_DETERMINISTIC` the section is
//! byte-identical across same-seed runs: every recorded number is a
//! function of the seed, and wall-clock measurements are omitted.

use std::time::Instant;

use prox_core::{ConstraintConfig, MergeRule, SummarizeConfig, Summarizer};
use prox_obs::Json;
use prox_provenance::{ProvExpr, ValuationClass};
use prox_robust::{ExecutionBudget, ProxError};
use prox_store::{build_synthetic, verify_store, SegmentStore, SynthSpec};

use crate::{RunManifest, Scale};

/// Generator seed for the synthetic store (the repo's canonical seed).
const STORE_SEED: u64 = 2016;
/// Page size for the bounded cache.
const PAGE_BYTES: usize = 64 * 1024;
/// Page-cache ceiling: the whole fold must fit its reads through this.
const CACHE_BYTES: usize = 2 * 1024 * 1024;
/// Objects (movies) in the summarized selection — the interactive flow
/// summarizes a selection, not the whole catalogue.
const SELECT_OBJECTS: usize = 4;
/// Merge steps for the summarization pass.
const SUMMARY_STEPS: usize = 12;

/// Build, verify, fold, and summarize a synthetic segment store; record
/// everything as the manifest's `store` section.
pub fn store_experiment(scale: Scale, manifest: &mut RunManifest) -> Result<(), ProxError> {
    let (spec, tag) = if scale.quick {
        (SynthSpec::quick(STORE_SEED), "quick")
    } else {
        (SynthSpec::full(STORE_SEED), "full")
    };
    let dir = std::env::temp_dir().join(format!("prox-store-bench-{tag}"));
    if dir.exists() {
        std::fs::remove_dir_all(&dir)
            .map_err(|e| ProxError::io(format!("remove {}", dir.display()), &e))?;
    }

    let t_build = Instant::now();
    let built = build_synthetic(&dir, &spec)?;
    let build_ms = t_build.elapsed().as_millis() as u64;

    let t_verify = Instant::now();
    let verify = verify_store(&dir)?;
    let verify_ms = t_verify.elapsed().as_millis() as u64;

    let mut store = SegmentStore::open_with(&dir, PAGE_BYTES, CACHE_BYTES)?;
    let budget = ExecutionBudget::unlimited();
    let mut session = budget.start();
    let t_fold = Instant::now();
    let (expr, outcome) = store.collect(&mut session)?;
    let fold_ms = t_fold.elapsed().as_millis() as u64;
    if outcome.logical_seen != spec.logical {
        return Err(ProxError::internal(format!(
            "store fold saw {} logical expressions, spec says {}",
            outcome.logical_seen, spec.logical
        )));
    }

    // Summarize a selection off the fold: the first few objects, the
    // way the UI summarizes a user's selection rather than the catalogue.
    let mut selection = ProvExpr::new(expr.kind());
    for (object, agg) in expr.entries().iter().take(SELECT_OBJECTS) {
        for tensor in agg.tensors() {
            selection.push(*object, tensor.clone());
        }
    }
    let mut anns = store.anns().clone();
    let mut domains = Vec::new();
    for (_, ann) in anns.iter() {
        if !domains.contains(&ann.domain) {
            domains.push(ann.domain);
        }
    }
    let mut constraints = ConstraintConfig::new();
    for &d in &domains {
        constraints = constraints.allow(d, MergeRule::SharedAttribute { attrs: vec![] });
    }
    let valuations =
        ValuationClass::CancelSingleAttribute.generate(&anns, &selection.annotations(), &domains);
    let config = SummarizeConfig {
        max_steps: SUMMARY_STEPS,
        ..SummarizeConfig::default()
    };
    let t_sum = Instant::now();
    let result =
        Summarizer::new(&mut anns, constraints, config).summarize(&selection, &valuations)?;
    let summarize_ms = t_sum.elapsed().as_millis() as u64;

    let stats = store.stats_json();
    let cache_peak = stats
        .get("page_cache")
        .and_then(|c| c.get("peak_bytes"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if cache_peak > CACHE_BYTES as u64 {
        return Err(ProxError::internal(format!(
            "page cache peaked at {cache_peak} bytes, over the {CACHE_BYTES}-byte ceiling"
        )));
    }

    let mut section = Json::obj()
        .with(
            "spec",
            Json::obj()
                .with("users", spec.users)
                .with("movies", spec.movies)
                .with("unique_frames", spec.unique_frames)
                .with("logical", spec.logical)
                .with("seed", spec.seed),
        )
        .with(
            "build",
            Json::obj()
                .with("logical", built.summary.logical)
                .with("unique", built.summary.unique)
                .with("log_entries", built.summary.log_entries)
                .with("payload_bytes", built.summary.payload_bytes)
                .with("segments", built.summary.segments.len())
                .with("dedup_ratio", round6(built.summary.dedup_ratio())),
        )
        .with("verify", verify.to_json())
        .with(
            "fold",
            Json::obj()
                .with("logical_seen", outcome.logical_seen)
                .with("records_seen", outcome.records_seen)
                .with("stopped", outcome.stopped.is_some())
                .with("objects", expr.num_objects())
                .with("tensors", expr.size()),
        )
        .with("reader", reader_stats(stats, tag))
        .with("cache_ceiling_bytes", CACHE_BYTES)
        .with(
            "summary",
            Json::obj()
                .with("selected_objects", SELECT_OBJECTS)
                .with("selection_size", selection.size())
                .with("steps", result.history.len())
                .with("initial_size", result.initial_size)
                .with("final_size", result.final_size())
                .with("final_distance", round6(result.final_distance))
                .with("stop_reason", format!("{:?}", result.stop_reason)),
        );
    if !manifest.deterministic() {
        section.set(
            "timing_ms",
            Json::obj()
                .with("build", build_ms)
                .with("verify", verify_ms)
                .with("fold", fold_ms)
                .with("summarize", summarize_ms),
        );
    }
    manifest.extra("store", section);
    Ok(())
}

/// The reader's `stats_json` with the temp-dir path replaced by a stable
/// tag, so manifests never depend on where the store was staged.
fn reader_stats(mut stats: Json, tag: &str) -> Json {
    stats.set("dir", format!("prox-store-bench-{tag}"));
    stats
}

fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}
