//! Experiment workloads: dataset instance + everything a summarization run
//! needs (constraints, valuations, φ, VAL-FUNC, clustering queue).
//!
//! Each experiment generates several instances per dataset (different
//! seeds) and averages results, as the paper does ("we generated multiple
//! input provenance expressions, executed the experiments and averaged the
//! results").

use prox_cluster::{
    cluster, matrix_of, merges_to_ann, page_dissimilarity, page_features, user_dissimilarity,
    user_features, AnnMerge, Linkage,
};
use prox_core::{ConstraintConfig, ValFuncKind};
use prox_datasets::{Ddp, DdpConfig, MovieLens, MovieLensConfig, Wikipedia, WikipediaConfig};
use prox_provenance::{
    AggKind, AnnStore, DdpExpr, Phi, PhiMap, ProvExpr, Summarizable, Valuation, ValuationClass,
};
use prox_taxonomy::Taxonomy;

/// A ready-to-run workload over expression type `E`.
pub struct Workload<E> {
    /// Short dataset tag ("movielens", "wikipedia", "ddp").
    pub name: &'static str,
    /// Annotation store (cloned per run so runs stay independent).
    pub store: AnnStore,
    /// The original provenance.
    pub p0: E,
    /// Mapping constraints.
    pub constraints: ConstraintConfig,
    /// Taxonomy, when the dataset has one.
    pub taxonomy: Option<Taxonomy>,
    /// The valuation class.
    pub valuations: Vec<Valuation>,
    /// Precomputed constrained-HAC merge queue (None for DDP — "it is not
    /// clear how to construct feature vectors" for it, §6.1).
    pub cluster_merges: Option<Vec<AnnMerge>>,
    /// φ assignment.
    pub phi: PhiMap,
    /// VAL-FUNC.
    pub val_func: ValFuncKind,
    /// Dataset generator seed (recorded in run manifests).
    pub seed: u64,
}

impl<E: Summarizable> Workload<E> {
    /// Size of the original expression.
    pub fn initial_size(&self) -> usize {
        self.p0.size()
    }
}

/// Build `n` MovieLens workloads with distinct seeds.
///
/// Defaults follow §6.4: "Cancel Single Attribute" valuations and MAX
/// aggregation; pass a different class/aggregation for other experiments.
pub fn movielens(
    n: usize,
    class: ValuationClass,
    agg: AggKind,
    linkage: Linkage,
) -> Vec<Workload<ProvExpr>> {
    (0..n)
        .map(|ix| {
            // Dense co-rating (each user rates 3 of 5 movies) so merges
            // carry real provisioning cost and the distance/size trade-off
            // has teeth — with sparse ratings almost every merge is
            // lossless and all algorithms look alike.
            let mut data = MovieLens::generate(MovieLensConfig {
                users: 25,
                movies: 5,
                ratings_per_user: 3,
                seed: 1000 + ix as u64,
            });
            let seed = 1000 + ix as u64;
            let p0 = data.provenance(agg);
            let constraints = data.constraints();
            let valuations = data.valuations(class);

            // Clustering queue over user feature vectors.
            let interactions: Vec<_> = data
                .ratings
                .iter()
                .map(|r| (r.user, r.movie, r.stars))
                .collect();
            let feats = user_features(&data.users, &interactions, &data.store);
            let matrix = matrix_of(&feats, user_dissimilarity);
            let users = data.users.clone();
            let store_ref = data.store.clone();
            let cfg = constraints.clone();
            let merges = cluster(&matrix, linkage, |l, r| {
                let members: Vec<_> = l.iter().chain(r).map(|&ix| users[ix]).collect();
                cfg.group_ok(&members, &store_ref, None)
            });
            let queue = merges_to_ann(&merges, &users);

            Workload {
                name: "movielens",
                store: data.store,
                p0,
                constraints,
                taxonomy: None,
                valuations,
                cluster_merges: Some(queue),
                phi: PhiMap::uniform(Phi::Or),
                val_func: ValFuncKind::Euclidean,
                seed,
            }
        })
        .collect()
}

/// Build `n` Wikipedia workloads (SUM aggregation, taxonomy-consistent
/// valuations, users + pages clustered separately then interleaved).
pub fn wikipedia(n: usize, class: ValuationClass, linkage: Linkage) -> Vec<Workload<ProvExpr>> {
    (0..n)
        .map(|ix| {
            let mut data = Wikipedia::generate(WikipediaConfig {
                users: 16,
                pages: 10,
                edits_per_user: 2,
                major_prob: 0.6,
                seed: 2000 + ix as u64,
            });
            let seed = 2000 + ix as u64;
            let p0 = data.provenance();
            let constraints = data.constraints();
            let valuations = data.valuations(class);

            let interactions: Vec<_> = data
                .edits
                .iter()
                .map(|e| (e.user, e.page, e.edit_type))
                .collect();
            // Users and pages are clustered separately (§6.2), then the
            // merge queues interleave by dissimilarity.
            let ufeats = user_features(&data.users, &interactions, &data.store);
            let umatrix = matrix_of(&ufeats, user_dissimilarity);
            let users = data.users.clone();
            let store_ref = data.store.clone();
            let cfg = constraints.clone();
            let umerges = cluster(&umatrix, linkage, |l, r| {
                let members: Vec<_> = l.iter().chain(r).map(|&ix| users[ix]).collect();
                cfg.group_ok(&members, &store_ref, None)
            });
            let pfeats = page_features(&data.pages, &interactions, &data.store, &data.taxonomy);
            let pmatrix = matrix_of(&pfeats, page_dissimilarity);
            let pages = data.pages.clone();
            let tax_ref = data.taxonomy.clone();
            let pmerges = cluster(&pmatrix, linkage, |l, r| {
                let members: Vec<_> = l.iter().chain(r).map(|&ix| pages[ix]).collect();
                cfg.group_ok(&members, &store_ref, Some(&tax_ref))
            });
            let queue = prox_cluster::interleave(vec![
                merges_to_ann(&umerges, &users),
                merges_to_ann(&pmerges, &pages),
            ]);

            Workload {
                name: "wikipedia",
                store: data.store,
                p0,
                constraints,
                taxonomy: Some(data.taxonomy),
                valuations,
                cluster_merges: Some(queue),
                phi: PhiMap::uniform(Phi::Or),
                val_func: ValFuncKind::Euclidean,
                seed,
            }
        })
        .collect()
}

/// Build `n` DDP workloads (no clustering baseline, per §6.1).
pub fn ddp(n: usize, class: ValuationClass) -> Vec<Workload<DdpExpr>> {
    (0..n)
        .map(|ix| {
            let mut data = Ddp::generate(DdpConfig {
                seed: 3000 + ix as u64,
                ..Default::default()
            });
            let constraints = data.constraints();
            let valuations = data.valuations(class);
            let phi = data.phi();
            Workload {
                name: "ddp",
                store: data.store,
                p0: data.provenance,
                constraints,
                taxonomy: None,
                valuations,
                cluster_merges: None,
                phi,
                val_func: ValFuncKind::DdpDiff,
                seed: 3000 + ix as u64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movielens_workloads_build() {
        let ws = movielens(
            2,
            ValuationClass::CancelSingleAttribute,
            AggKind::Max,
            Linkage::Single,
        );
        assert_eq!(ws.len(), 2);
        for w in &ws {
            assert!(w.initial_size() > 0);
            assert!(!w.valuations.is_empty());
            assert!(w.cluster_merges.as_ref().is_some_and(|m| !m.is_empty()));
        }
    }

    #[test]
    fn wikipedia_workloads_have_taxonomy() {
        let ws = wikipedia(1, ValuationClass::CancelSingleAnnotation, Linkage::Single);
        assert!(ws[0].taxonomy.is_some());
        assert!(ws[0].cluster_merges.is_some());
    }

    #[test]
    fn ddp_workloads_have_no_clustering() {
        let ws = ddp(1, ValuationClass::CancelSingleAttribute);
        assert!(ws[0].cluster_merges.is_none());
        assert_eq!(ws[0].val_func, ValFuncKind::DdpDiff);
    }
}
