//! Same-seed runs must emit byte-identical reports (rule L2).
//!
//! Runs a small experiment twice from a clean observability window and
//! diffs the deterministic-mode manifest and the figure JSON byte for
//! byte. Wall-clock fields are excluded by deterministic mode; everything
//! else — counters, stop reasons, datasets, config — must reproduce.

use prox_bench::experiments::wdist_experiment;
use prox_bench::manifest::RunManifest;
use prox_bench::{workload, Scale};
use prox_cluster::Linkage;
use prox_provenance::{AggKind, ValuationClass};

/// One full experiment pass: reset counters, run, and render the manifest
/// (deterministic mode, sorted keys), the figure JSON, and the
/// deterministic-mode Prometheus exposition (what `GET /metrics` serves
/// under `PROX_DETERMINISTIC`).
fn one_pass() -> (String, String, String) {
    prox_obs::set_enabled(true);
    prox_obs::reset();
    let ws = workload::movielens(
        1,
        ValuationClass::CancelSingleAttribute,
        AggKind::Max,
        Linkage::Single,
    );
    let scale = Scale::quick();
    let (fig, _) = wdist_experiment(&ws, scale, 3, "6.1a-det", "6.2a-det", "MovieLens");
    let mut m = RunManifest::new("6.1a-det", scale);
    m.set_deterministic(true);
    m.datasets(&ws);
    m.wall_time(std::time::Duration::from_millis(1));
    m.outcome("completed", 1, Some(120_000));
    (
        m.to_json().sorted().pretty(),
        fig.to_json().pretty(),
        prox_obs::render_prometheus(true),
    )
}

#[test]
fn same_seed_runs_emit_identical_bytes() {
    let (manifest_a, figure_a, metrics_a) = one_pass();
    let (manifest_b, figure_b, metrics_b) = one_pass();
    assert_eq!(manifest_a, manifest_b, "manifest must be byte-identical");
    assert_eq!(figure_b, figure_a, "figure JSON must be byte-identical");
    assert_eq!(
        metrics_a, metrics_b,
        "deterministic /metrics exposition must be byte-identical"
    );
    // Deterministic mode must drop every wall-clock field.
    assert!(!manifest_a.contains("wall_time_ms"));
    assert!(!manifest_a.contains("total_ns"));
    assert!(!manifest_a.contains("mean_ns"));
    // ... but keep what ran and how it ended.
    assert!(manifest_a.contains("\"stop_reasons\""));
    assert!(manifest_a.contains("\"status\": \"completed\""));
    // The exposition keeps schedule-determined counts and drops durations.
    assert!(metrics_a.contains("prox_counter_total"));
    assert!(!metrics_a.contains("prox_span_duration_ns_total"));
    assert!(!metrics_a.contains("quantile="));
}
