//! Dendrogram construction and rendering from a merge sequence.
//!
//! Turns the flat [`MergeStep`] list produced by [`crate::hac::cluster`]
//! into a navigable tree and an indented text rendering — the standard way
//! to inspect what the clustering baseline actually did.

use crate::hac::MergeStep;

/// A dendrogram node: a leaf observation or a merge of two subtrees.
#[derive(Clone, Debug, PartialEq)]
pub enum Dendrogram {
    /// A single observation (by its index).
    Leaf(usize),
    /// A merge at the given linkage dissimilarity.
    Node {
        /// Dissimilarity at which the children merged.
        dissimilarity: f64,
        /// Left subtree.
        left: Box<Dendrogram>,
        /// Right subtree.
        right: Box<Dendrogram>,
    },
}

impl Dendrogram {
    /// Observation indices covered by this subtree, sorted.
    pub fn members(&self) -> Vec<usize> {
        match self {
            Dendrogram::Leaf(ix) => vec![*ix],
            Dendrogram::Node { left, right, .. } => {
                let mut m = left.members();
                m.extend(right.members());
                m.sort_unstable();
                m
            }
        }
    }

    /// Height: the dissimilarity at the root (0 for leaves).
    pub fn height(&self) -> f64 {
        match self {
            Dendrogram::Leaf(_) => 0.0,
            Dendrogram::Node { dissimilarity, .. } => *dissimilarity,
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        match self {
            Dendrogram::Leaf(_) => 1,
            Dendrogram::Node { left, right, .. } => left.len() + right.len(),
        }
    }

    /// True for a single leaf.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Indented text rendering with a label resolver.
    pub fn render(&self, label: &dyn Fn(usize) -> String) -> String {
        let mut out = String::new();
        self.render_into(label, 0, &mut out);
        out
    }

    fn render_into(&self, label: &dyn Fn(usize) -> String, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            Dendrogram::Leaf(ix) => {
                out.push_str(&format!("{pad}• {}\n", label(*ix)));
            }
            Dendrogram::Node {
                dissimilarity,
                left,
                right,
            } => {
                out.push_str(&format!("{pad}┬ d={dissimilarity:.4}\n"));
                left.render_into(label, depth + 1, out);
                right.render_into(label, depth + 1, out);
            }
        }
    }
}

/// Build the dendrogram forest from a merge sequence over `n` observations.
/// Returns the remaining roots — a single tree when clustering ran to
/// completion, several when constraints stopped it early.
pub fn build(merges: &[MergeStep], n: usize) -> Vec<Dendrogram> {
    let mut roots: Vec<Dendrogram> = (0..n).map(Dendrogram::Leaf).collect();
    for merge in merges {
        let left_members = {
            let mut m = merge.left.clone();
            m.sort_unstable();
            m
        };
        let right_members = {
            let mut m = merge.right.clone();
            m.sort_unstable();
            m
        };
        let lpos = roots.iter().position(|r| r.members() == left_members);
        let rpos = roots.iter().position(|r| r.members() == right_members);
        let (Some(lpos), Some(rpos)) = (lpos, rpos) else {
            // A merge naming a cluster we don't have cannot come from our
            // own HAC output; stop and return the forest built so far.
            break;
        };
        if lpos == rpos {
            break;
        }
        // Remove the higher index first so the lower one stays valid.
        let (hi, lo) = if lpos > rpos {
            (lpos, rpos)
        } else {
            (rpos, lpos)
        };
        let hi_tree = roots.swap_remove(hi);
        let lo_tree = roots.swap_remove(lo);
        let (left, right) = if lpos > rpos {
            (hi_tree, lo_tree)
        } else {
            (lo_tree, hi_tree)
        };
        roots.push(Dendrogram::Node {
            dissimilarity: merge.dissimilarity,
            left: Box::new(left),
            right: Box::new(right),
        });
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hac::cluster;
    use crate::linkage::Linkage;
    use crate::matrix::DissimilarityMatrix;

    fn line_matrix() -> DissimilarityMatrix {
        let pos: [f64; 4] = [0.0, 1.0, 5.0, 6.0];
        DissimilarityMatrix::from_fn(4, |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn full_clustering_yields_one_tree() {
        let merges = cluster(&line_matrix(), Linkage::Single, |_, _| true);
        let roots = build(&merges, 4);
        assert_eq!(roots.len(), 1);
        let tree = &roots[0];
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.members(), vec![0, 1, 2, 3]);
        assert_eq!(tree.height(), 4.0, "single-linkage gap between groups");
    }

    #[test]
    fn constrained_clustering_yields_forest() {
        let merges = cluster(&line_matrix(), Linkage::Single, |l, r| {
            let mut m = l.to_vec();
            m.extend_from_slice(r);
            !(m.contains(&0) && m.contains(&3))
        });
        let roots = build(&merges, 4);
        assert_eq!(roots.len(), 2);
        let mut sizes: Vec<usize> = roots.iter().map(Dendrogram::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn render_shows_structure() {
        let merges = cluster(&line_matrix(), Linkage::Single, |_, _| true);
        let roots = build(&merges, 4);
        let txt = roots[0].render(&|ix| format!("obs{ix}"));
        assert!(txt.contains("┬ d=4.0000"));
        for ix in 0..4 {
            assert!(txt.contains(&format!("obs{ix}")));
        }
        // Nested merges are indented deeper than the root.
        assert!(txt.contains("\n  ┬"));
    }

    #[test]
    fn merge_heights_are_monotone_up_the_tree() {
        let merges = cluster(&line_matrix(), Linkage::Single, |_, _| true);
        let roots = build(&merges, 4);
        fn check(d: &Dendrogram) {
            if let Dendrogram::Node {
                dissimilarity,
                left,
                right,
            } = d
            {
                assert!(left.height() <= *dissimilarity + 1e-12);
                assert!(right.height() <= *dissimilarity + 1e-12);
                check(left);
                check(right);
            }
        }
        check(&roots[0]);
    }
}
