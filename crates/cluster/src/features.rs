//! Feature vectors and dissimilarity measures for the clustering baseline
//! (§6.2).
//!
//! MovieLens users: `(UID, Gender, AgeRange, Occupation, ZipCode,
//! (MovieTitle₁=Rating₁, …))` — attribute mismatch combined with the
//! Pearson dissimilarity of the rating vectors. Wikipedia users are
//! analogous over major-edit counts; Wikipedia pages combine taxonomy
//! ancestor overlap (Jaccard) with the Pearson dissimilarity of their
//! editor vectors.

use std::collections::{HashMap, HashSet};

use prox_provenance::{AnnId, AnnStore};
use prox_taxonomy::Taxonomy;

use crate::matrix::DissimilarityMatrix;
use crate::pearson::{pearson_dissimilarity, SparseVec};

/// A feature vector: interned attribute values plus a sparse numeric
/// vector (ratings or edit counts).
#[derive(Clone, Debug, Default)]
pub struct FeatureVector {
    /// `(attr, value)` pairs as raw interned ids.
    pub attrs: Vec<(u16, u32)>,
    /// Sparse item → value vector (item = annotation index).
    pub values: SparseVec,
    /// Ancestor concept ids (pages only).
    pub ancestors: HashSet<u32>,
}

/// Build user feature vectors from a store and an interaction list
/// (`(user, item, value)` triples).
pub fn user_features(
    users: &[AnnId],
    interactions: &[(AnnId, AnnId, f64)],
    store: &AnnStore,
) -> Vec<FeatureVector> {
    let mut by_user: HashMap<AnnId, SparseVec> = HashMap::new();
    for &(u, item, v) in interactions {
        *by_user
            .entry(u)
            .or_default()
            .entry(item.index() as u32)
            .or_insert(0.0) += v;
    }
    users
        .iter()
        .map(|&u| FeatureVector {
            attrs: store
                .get(u)
                .attrs
                .iter()
                .map(|&(a, v)| (a.index() as u16, v.index() as u32))
                .collect(),
            values: by_user.get(&u).cloned().unwrap_or_default(),
            ancestors: HashSet::new(),
        })
        .collect()
}

/// Build page feature vectors: taxonomy ancestors + editor vectors.
pub fn page_features(
    pages: &[AnnId],
    interactions: &[(AnnId, AnnId, f64)],
    store: &AnnStore,
    taxonomy: &Taxonomy,
) -> Vec<FeatureVector> {
    let mut by_page: HashMap<AnnId, SparseVec> = HashMap::new();
    for &(u, p, v) in interactions {
        *by_page
            .entry(p)
            .or_default()
            .entry(u.index() as u32)
            .or_insert(0.0) += v;
    }
    pages
        .iter()
        .map(|&p| {
            let ancestors = store
                .get(p)
                .concept
                .map(|c| {
                    taxonomy
                        .ancestors(prox_taxonomy::ConceptId(c))
                        .into_iter()
                        .map(|x| x.0)
                        .collect()
                })
                .unwrap_or_default();
            FeatureVector {
                attrs: Vec::new(),
                values: by_page.get(&p).cloned().unwrap_or_default(),
                ancestors,
            }
        })
        .collect()
}

/// Dissimilarity between two user feature vectors: mean of the attribute
/// mismatch fraction and the Pearson dissimilarity of the value vectors.
pub fn user_dissimilarity(a: &FeatureVector, b: &FeatureVector) -> f64 {
    let attr_d = attr_mismatch(a, b);
    let rating_d = pearson_dissimilarity(&a.values, &b.values);
    0.5 * attr_d + 0.5 * rating_d
}

/// Dissimilarity between two page feature vectors: mean of the Jaccard
/// distance of ancestor sets and the Pearson dissimilarity of editor
/// vectors.
pub fn page_dissimilarity(a: &FeatureVector, b: &FeatureVector) -> f64 {
    let jaccard = {
        let inter = a.ancestors.intersection(&b.ancestors).count() as f64;
        let union = a.ancestors.union(&b.ancestors).count() as f64;
        if union == 0.0 {
            1.0
        } else {
            1.0 - inter / union
        }
    };
    let editor_d = pearson_dissimilarity(&a.values, &b.values);
    0.5 * jaccard + 0.5 * editor_d
}

/// Fraction of attributes on which two vectors disagree (union of attrs).
fn attr_mismatch(a: &FeatureVector, b: &FeatureVector) -> f64 {
    let keys: HashSet<u16> = a
        .attrs
        .iter()
        .map(|&(k, _)| k)
        .chain(b.attrs.iter().map(|&(k, _)| k))
        .collect();
    if keys.is_empty() {
        return 0.0;
    }
    let lookup =
        |f: &FeatureVector, k: u16| f.attrs.iter().find(|&&(a, _)| a == k).map(|&(_, v)| v);
    let mismatches = keys
        .iter()
        .filter(|&&k| lookup(a, k) != lookup(b, k))
        .count();
    mismatches as f64 / keys.len() as f64
}

/// Build the full dissimilarity matrix for a feature set.
pub fn matrix_of(
    features: &[FeatureVector],
    dissimilarity: impl Fn(&FeatureVector, &FeatureVector) -> f64,
) -> DissimilarityMatrix {
    DissimilarityMatrix::from_fn(features.len(), |i, j| {
        dissimilarity(&features[i], &features[j])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (AnnStore, Vec<AnnId>, Vec<AnnId>) {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F"), ("age", "18-24")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "F"), ("age", "18-24")]);
        let u3 = s.add_base_with("U3", "users", &[("gender", "M"), ("age", "45-49")]);
        let m1 = s.add_base_with("M1", "movies", &[]);
        let m2 = s.add_base_with("M2", "movies", &[]);
        let m3 = s.add_base_with("M3", "movies", &[]);
        (s, vec![u1, u2, u3], vec![m1, m2, m3])
    }

    #[test]
    fn similar_users_have_small_dissimilarity() {
        let (s, users, movies) = store();
        // U1 and U2 rate identically; U3 rates oppositely.
        let interactions = vec![
            (users[0], movies[0], 1.0),
            (users[0], movies[1], 3.0),
            (users[0], movies[2], 5.0),
            (users[1], movies[0], 1.0),
            (users[1], movies[1], 3.0),
            (users[1], movies[2], 5.0),
            (users[2], movies[0], 5.0),
            (users[2], movies[1], 3.0),
            (users[2], movies[2], 1.0),
        ];
        let feats = user_features(&users, &interactions, &s);
        let d_twin = user_dissimilarity(&feats[0], &feats[1]);
        let d_opposite = user_dissimilarity(&feats[0], &feats[2]);
        assert!(d_twin < 1e-9, "identical users: {d_twin}");
        assert!(d_opposite > 0.9, "opposite users: {d_opposite}");
    }

    #[test]
    fn attribute_mismatch_contributes() {
        let (s, users, movies) = store();
        // Same ratings, different attributes (U1 vs U3-with-U1-ratings).
        let interactions = vec![
            (users[0], movies[0], 1.0),
            (users[0], movies[1], 5.0),
            (users[2], movies[0], 1.0),
            (users[2], movies[1], 5.0),
        ];
        let feats = user_features(&users, &interactions, &s);
        let d = user_dissimilarity(&feats[0], &feats[2]);
        // Ratings agree perfectly (pearson part 0) but both attributes
        // differ (attr part 1) → 0.5.
        assert!((d - 0.5).abs() < 1e-9);
    }

    #[test]
    fn page_features_use_taxonomy_ancestors() {
        let mut s = AnnStore::new();
        let u = s.add_base_with("U", "users", &[]);
        let p1 = s.add_base_with("Adele", "pages", &[]);
        let p2 = s.add_base_with("LoriBlack", "pages", &[]);
        let p3 = s.add_base_with("TelAviv", "pages", &[]);
        let t = prox_taxonomy::wordnet_fragment();
        s.set_concept(p1, t.by_name("wordnet_singer").unwrap().0);
        s.set_concept(p2, t.by_name("wordnet_guitarist").unwrap().0);
        s.set_concept(p3, t.by_name("wordnet_city").unwrap().0);
        let interactions = vec![(u, p1, 1.0), (u, p2, 1.0), (u, p3, 1.0)];
        let feats = page_features(&[p1, p2, p3], &interactions, &s, &t);
        let d_siblings = page_dissimilarity(&feats[0], &feats[1]);
        let d_far = page_dissimilarity(&feats[0], &feats[2]);
        assert!(d_siblings < d_far, "{d_siblings} vs {d_far}");
    }

    #[test]
    fn matrix_of_builds_symmetric_matrix() {
        let (s, users, movies) = store();
        let interactions = vec![(users[0], movies[0], 3.0), (users[1], movies[0], 4.0)];
        let feats = user_features(&users, &interactions, &s);
        let m = matrix_of(&feats, user_dissimilarity);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0, 1), m.get(1, 0));
    }
}
