//! Constrained hierarchical agglomerative clustering (§6.2).
//!
//! Bottom-up: every observation starts as a singleton; each step merges the
//! pair of clusters with minimal linkage dissimilarity *whose union
//! satisfies the mapping constraints* (the paper's modification: "we do not
//! allow two clusters to merge if the users that belong to these clusters
//! do not have at least one attribute in common"). Dissimilarities are
//! maintained with the Lance–Williams update.

use prox_obs::{Counter, SpanTimer};
use prox_robust::{BudgetSession, BudgetStop, ExecutionBudget};

use crate::linkage::Linkage;
use crate::matrix::DissimilarityMatrix;

/// One full constrained-HAC run.
static SPAN_LINKAGE: SpanTimer = SpanTimer::new("hac/linkage");
/// Merges performed across all runs.
static MERGES: Counter = Counter::new("hac/merges");
/// Minimal-dissimilarity pairs vetoed by the constraint callback.
static VETOES: Counter = Counter::new("hac/vetoes");

/// One merge performed by the algorithm.
#[derive(Clone, Debug, PartialEq)]
pub struct MergeStep {
    /// Observation indices of the first cluster.
    pub left: Vec<usize>,
    /// Observation indices of the second cluster.
    pub right: Vec<usize>,
    /// Linkage dissimilarity at which the merge happened.
    pub dissimilarity: f64,
}

impl MergeStep {
    /// All observation indices of the merged cluster.
    pub fn merged(&self) -> Vec<usize> {
        let mut m = self.left.clone();
        m.extend_from_slice(&self.right);
        m.sort_unstable();
        m
    }
}

/// Run constrained HAC to completion (or until no merge is allowed).
///
/// `allowed` receives the member index sets of the two clusters about to
/// merge and may veto the merge. Returns the merge sequence in execution
/// order (ascending dissimilarity for monotone linkages).
pub fn cluster(
    matrix: &DissimilarityMatrix,
    linkage: Linkage,
    allowed: impl FnMut(&[usize], &[usize]) -> bool,
) -> Vec<MergeStep> {
    let mut session = ExecutionBudget::unlimited().start();
    cluster_with_budget(matrix, linkage, allowed, &mut session).0
}

/// Budget-aware [`cluster`]: polls the session once per merge iteration and
/// stops early when the budget trips, returning the merge prefix found so
/// far plus the stop. A prefix of a HAC dendrogram is itself a valid merge
/// sequence, so callers replay it unchanged under the anytime contract.
pub fn cluster_with_budget(
    matrix: &DissimilarityMatrix,
    linkage: Linkage,
    mut allowed: impl FnMut(&[usize], &[usize]) -> bool,
    session: &mut BudgetSession,
) -> (Vec<MergeStep>, Option<BudgetStop>) {
    let n = matrix.len();
    if n < 2 {
        return (Vec::new(), None);
    }
    let _span = SPAN_LINKAGE.start();
    // Request-scoped trace: the whole HAC run is one "cluster" phase.
    let _trace_cluster = session.span("cluster");
    let mut d = matrix.clone();
    let mut members: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let mut merges = Vec::new();

    loop {
        if let Err(stop) = session.check() {
            return (merges, Some(stop));
        }
        // Find the minimal-dissimilarity allowed pair among active clusters.
        let mut best: Option<(usize, usize, f64)> = None;
        let active: Vec<usize> = (0..n).filter(|&i| members[i].is_some()).collect();
        if active.len() < 2 {
            break;
        }
        for (ai, &i) in active.iter().enumerate() {
            for &j in &active[ai + 1..] {
                let dij = d.get(i, j);
                if best.is_none_or(|(_, _, b)| dij < b) {
                    let (Some(mi), Some(mj)) = (members[i].as_deref(), members[j].as_deref())
                    else {
                        continue; // unreachable: `active` filtered on is_some
                    };
                    if allowed(mi, mj) {
                        best = Some((i, j, dij));
                    } else {
                        VETOES.incr();
                    }
                }
            }
        }
        let Some((i, j, dij)) = best else {
            break;
        };
        let Some(left) = members[i].clone() else {
            break;
        };
        let Some(right) = members[j].take() else {
            break;
        };
        let (ni, nj) = (left.len() as f64, right.len() as f64);

        // Lance–Williams update: the merged cluster lives at slot `i`.
        for &k in &active {
            if k == i || k == j {
                continue;
            }
            let Some(mk) = members[k].as_ref() else {
                continue; // unreachable: only slot j was taken above
            };
            let nk = mk.len() as f64;
            let updated = linkage.update(d.get(k, i), d.get(k, j), dij, ni, nj, nk);
            d.set(k, i, updated);
        }
        let mut merged_members = left.clone();
        merged_members.extend_from_slice(&right);
        merged_members.sort_unstable();
        members[i] = Some(merged_members);

        MERGES.incr();
        merges.push(MergeStep {
            left,
            right,
            dissimilarity: dij,
        });
    }
    (merges, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points on a line: 0, 1, 5, 6 — natural clusters {0,1} and {2,3}.
    fn line_matrix() -> DissimilarityMatrix {
        let pos: [f64; 4] = [0.0, 1.0, 5.0, 6.0];
        DissimilarityMatrix::from_fn(4, |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn single_linkage_merges_nearest_first() {
        let merges = cluster(&line_matrix(), Linkage::Single, |_, _| true);
        assert_eq!(merges.len(), 3);
        assert_eq!(merges[0].merged(), vec![0, 1]);
        assert_eq!(merges[1].merged(), vec![2, 3]);
        assert_eq!(merges[2].merged(), vec![0, 1, 2, 3]);
        // Single linkage gap between the two groups is 4.
        assert_eq!(merges[2].dissimilarity, 4.0);
    }

    #[test]
    fn complete_linkage_uses_farthest_distance() {
        let merges = cluster(&line_matrix(), Linkage::Complete, |_, _| true);
        assert_eq!(merges[2].dissimilarity, 6.0);
    }

    #[test]
    fn constraint_vetoes_merges() {
        // Disallow any cluster containing both 0 and 3.
        let merges = cluster(&line_matrix(), Linkage::Single, |l, r| {
            let mut m = l.to_vec();
            m.extend_from_slice(r);
            !(m.contains(&0) && m.contains(&3))
        });
        // {0,1} and {2,3} form, but the final merge is blocked.
        assert_eq!(merges.len(), 2);
    }

    #[test]
    fn all_linkages_terminate() {
        for l in Linkage::ALL {
            let merges = cluster(&line_matrix(), l, |_, _| true);
            assert_eq!(merges.len(), 3, "{}", l.name());
        }
    }

    #[test]
    fn tripped_budget_returns_merge_prefix() {
        let budget = ExecutionBudget::unlimited().with_deadline_at(std::time::Instant::now());
        let mut session = budget.start();
        let (merges, stop) =
            cluster_with_budget(&line_matrix(), Linkage::Single, |_, _| true, &mut session);
        assert!(merges.is_empty());
        assert_eq!(stop, Some(BudgetStop::Deadline));

        // An unlimited session reproduces the plain run.
        let mut unlimited = ExecutionBudget::unlimited().start();
        let (merges, stop) =
            cluster_with_budget(&line_matrix(), Linkage::Single, |_, _| true, &mut unlimited);
        assert_eq!(merges.len(), 3);
        assert_eq!(stop, None);
    }

    #[test]
    fn trivial_inputs() {
        assert!(cluster(&DissimilarityMatrix::zeros(0), Linkage::Single, |_, _| true).is_empty());
        assert!(cluster(&DissimilarityMatrix::zeros(1), Linkage::Single, |_, _| true).is_empty());
    }
}
