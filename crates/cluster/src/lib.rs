//! # prox-cluster
//!
//! Baseline summarizers the PROX evaluation compares against (§6.1–6.2):
//!
//! * **Clustering** — constrained hierarchical agglomerative clustering
//!   with all seven linkage criteria (Lance–Williams updates), Pearson
//!   dissimilarity over rating/edit vectors, the paper's mapping
//!   constraints as merge vetoes, and a replay layer turning merge
//!   sequences into provenance summaries with Prov-Approx's stop
//!   conditions;
//! * **Random** — uniformly random constraint-satisfying pair merges.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dendrogram;
pub mod features;
pub mod hac;
pub mod linkage;
pub mod matrix;
pub mod pearson;
pub mod random;
pub mod replay;

pub use dendrogram::{build as build_dendrogram, Dendrogram};
pub use features::{
    matrix_of, page_dissimilarity, page_features, user_dissimilarity, user_features, FeatureVector,
};
pub use hac::{cluster, cluster_with_budget, MergeStep};
pub use linkage::Linkage;
pub use matrix::DissimilarityMatrix;
pub use pearson::{pearson, pearson_dissimilarity, SparseVec};
pub use random::random_summarize;
pub use replay::{interleave, merges_to_ann, replay, AnnMerge};
