//! Linkage criteria for hierarchical agglomerative clustering (§6.2).
//!
//! All seven criteria the paper's HAC library supports, implemented through
//! the Lance–Williams update: after merging clusters `i` and `j`, the
//! dissimilarity of any other cluster `k` to the merged cluster is
//!
//! `d(k, i∪j) = αᵢ·d(k,i) + αⱼ·d(k,j) + β·d(i,j) + γ·|d(k,i) − d(k,j)|`
//!
//! with coefficients depending on the criterion (and cluster sizes).

use serde::{Deserialize, Serialize};

/// The linkage criterion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Linkage {
    /// Smallest distance between objects in opposite clusters.
    Single,
    /// Largest distance between objects in opposite clusters.
    Complete,
    /// Average of all cross-cluster pairwise distances (UPGMA).
    Average,
    /// Average linkage with clusters weighted equally (WPGMA).
    WeightedAverage,
    /// Distance between cluster centroids (UPGMC).
    Centroid,
    /// Euclidean distance between weighted centroids (WPGMC).
    Median,
    /// Minimal increase of within-group error sum of squares.
    Ward,
}

impl Linkage {
    /// All criteria, for exhaustive experiments.
    pub const ALL: [Linkage; 7] = [
        Linkage::Single,
        Linkage::Complete,
        Linkage::Average,
        Linkage::WeightedAverage,
        Linkage::Centroid,
        Linkage::Median,
        Linkage::Ward,
    ];

    /// Lance–Williams coefficients `(αᵢ, αⱼ, β, γ)` for merging clusters of
    /// sizes `ni`, `nj`, observed from a cluster of size `nk`.
    pub fn coefficients(self, ni: f64, nj: f64, nk: f64) -> (f64, f64, f64, f64) {
        match self {
            Linkage::Single => (0.5, 0.5, 0.0, -0.5),
            Linkage::Complete => (0.5, 0.5, 0.0, 0.5),
            Linkage::Average => {
                let s = ni + nj;
                (ni / s, nj / s, 0.0, 0.0)
            }
            Linkage::WeightedAverage => (0.5, 0.5, 0.0, 0.0),
            Linkage::Centroid => {
                let s = ni + nj;
                (ni / s, nj / s, -(ni * nj) / (s * s), 0.0)
            }
            Linkage::Median => (0.5, 0.5, -0.25, 0.0),
            Linkage::Ward => {
                let s = ni + nj + nk;
                ((ni + nk) / s, (nj + nk) / s, -nk / s, 0.0)
            }
        }
    }

    /// Apply the Lance–Williams update.
    pub fn update(self, d_ki: f64, d_kj: f64, d_ij: f64, ni: f64, nj: f64, nk: f64) -> f64 {
        let (ai, aj, beta, gamma) = self.coefficients(ni, nj, nk);
        ai * d_ki + aj * d_kj + beta * d_ij + gamma * (d_ki - d_kj).abs()
    }

    /// Name matching §6.2's vocabulary.
    pub fn name(self) -> &'static str {
        match self {
            Linkage::Single => "Single Linkage",
            Linkage::Complete => "Complete Linkage",
            Linkage::Average => "Average Linkage",
            Linkage::WeightedAverage => "Weighted Average",
            Linkage::Centroid => "Centroid Linkage",
            Linkage::Median => "Median Linkage",
            Linkage::Ward => "Ward Linkage",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_min_of_distances() {
        // d(k, i∪j) under single linkage = min(d_ki, d_kj).
        for (d_ki, d_kj) in [(1.0, 3.0), (4.0, 2.0), (5.0, 5.0)] {
            let d = Linkage::Single.update(d_ki, d_kj, 9.9, 1.0, 1.0, 1.0);
            assert_eq!(d, d_ki.min(d_kj));
        }
    }

    #[test]
    fn complete_is_max_of_distances() {
        for (d_ki, d_kj) in [(1.0, 3.0), (4.0, 2.0)] {
            let d = Linkage::Complete.update(d_ki, d_kj, 0.0, 1.0, 1.0, 1.0);
            assert_eq!(d, d_ki.max(d_kj));
        }
    }

    #[test]
    fn average_weights_by_cluster_size() {
        // Cluster i of size 3, j of size 1: d = 3/4·d_ki + 1/4·d_kj.
        let d = Linkage::Average.update(4.0, 8.0, 0.0, 3.0, 1.0, 1.0);
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_average_ignores_sizes() {
        let d = Linkage::WeightedAverage.update(4.0, 8.0, 0.0, 30.0, 1.0, 1.0);
        assert_eq!(d, 6.0);
    }

    #[test]
    fn ward_reduces_to_known_formula() {
        // ni=nj=nk=1: d = (2 d_ki + 2 d_kj - d_ij)/3.
        let d = Linkage::Ward.update(3.0, 6.0, 3.0, 1.0, 1.0, 1.0);
        assert!((d - (2.0 * 3.0 + 2.0 * 6.0 - 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_criteria_listed_once() {
        let set: std::collections::HashSet<_> = Linkage::ALL.iter().collect();
        assert_eq!(set.len(), 7);
        for l in Linkage::ALL {
            assert!(!l.name().is_empty());
        }
    }
}
