//! Condensed symmetric dissimilarity matrix.
//!
//! Stores the strict upper triangle of an `n × n` symmetric matrix in a
//! flat buffer — the standard representation for agglomerative clustering.

/// A symmetric `n × n` dissimilarity matrix with zero diagonal.
#[derive(Clone, Debug, PartialEq)]
pub struct DissimilarityMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DissimilarityMatrix {
    /// Matrix of `n` observations, all dissimilarities zero.
    pub fn zeros(n: usize) -> Self {
        DissimilarityMatrix {
            n,
            data: vec![0.0; n * n.saturating_sub(1) / 2],
        }
    }

    /// Build from a pairwise function.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DissimilarityMatrix::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = f(i, j);
                debug_assert!(d.is_finite(), "non-finite dissimilarity at ({i},{j})");
                m.set(i, j, d);
            }
        }
        m
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i != j && i < self.n && j < self.n);
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        // Offset of row i in the condensed triangle plus column offset.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// The dissimilarity between observations `i` and `j` (0 when `i == j`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            0.0
        } else {
            self.data[self.index(i, j)]
        }
    }

    /// Set the dissimilarity between `i` and `j` (`i ≠ j`).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, d: f64) {
        let ix = self.index(i, j);
        self.data[ix] = d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_access() {
        let mut m = DissimilarityMatrix::zeros(4);
        m.set(1, 3, 2.5);
        assert_eq!(m.get(1, 3), 2.5);
        assert_eq!(m.get(3, 1), 2.5);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn from_fn_fills_triangle() {
        let m = DissimilarityMatrix::from_fn(3, |i, j| (i + j) as f64);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 2), 3.0);
    }

    #[test]
    fn condensed_indexing_covers_all_pairs() {
        let n = 7;
        let mut m = DissimilarityMatrix::zeros(n);
        let mut v = 1.0;
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, v);
                v += 1.0;
            }
        }
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let d = m.get(i, j);
                assert!(seen.insert(d.to_bits()), "index collision at ({i},{j})");
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let m = DissimilarityMatrix::zeros(0);
        assert!(m.is_empty());
    }
}
