//! Pearson correlation over sparse rating vectors (§6.2).
//!
//! The clustering baseline measures user similarity by the Pearson
//! correlation coefficient of their co-rated items; the dissimilarity used
//! in the matrix is `(1 − r) / 2 ∈ [0, 1]`. Pairs with fewer than two
//! common items (or zero variance) fall back to maximal dissimilarity.

use std::collections::HashMap;

/// A sparse item → value vector.
pub type SparseVec = HashMap<u32, f64>;

/// Pearson correlation over the common support of two sparse vectors.
/// Returns `None` when fewer than two common items exist or either side
/// has zero variance on the common support.
pub fn pearson(a: &SparseVec, b: &SparseVec) -> Option<f64> {
    let common: Vec<u32> = a.keys().filter(|k| b.contains_key(k)).copied().collect();
    if common.len() < 2 {
        return None;
    }
    let n = common.len() as f64;
    let (mut sa, mut sb) = (0.0, 0.0);
    for &k in &common {
        sa += a[&k];
        sb += b[&k];
    }
    let (ma, mb) = (sa / n, sb / n);
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for &k in &common {
        let da = a[&k] - ma;
        let db = b[&k] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

/// Dissimilarity derived from Pearson correlation: `(1 − r) / 2`, with 1.0
/// for incomparable pairs.
pub fn pearson_dissimilarity(a: &SparseVec, b: &SparseVec) -> f64 {
    match pearson(a, b) {
        Some(r) => (1.0 - r) / 2.0,
        None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[(u32, f64)]) -> SparseVec {
        items.iter().copied().collect()
    }

    #[test]
    fn perfectly_correlated() {
        let a = sv(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let b = sv(&[(1, 2.0), (2, 4.0), (3, 6.0)]);
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson_dissimilarity(&a, &b) < 1e-12);
    }

    #[test]
    fn anti_correlated() {
        let a = sv(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let b = sv(&[(1, 3.0), (2, 2.0), (3, 1.0)]);
        assert!((pearson(&a, &b).unwrap() + 1.0).abs() < 1e-12);
        assert!((pearson_dissimilarity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn insufficient_overlap_is_incomparable() {
        let a = sv(&[(1, 1.0), (2, 2.0)]);
        let b = sv(&[(3, 1.0), (4, 2.0)]);
        assert_eq!(pearson(&a, &b), None);
        assert_eq!(pearson_dissimilarity(&a, &b), 1.0);
        let c = sv(&[(1, 5.0)]);
        assert_eq!(pearson(&a, &c), None);
    }

    #[test]
    fn zero_variance_is_incomparable() {
        let a = sv(&[(1, 3.0), (2, 3.0)]);
        let b = sv(&[(1, 1.0), (2, 5.0)]);
        assert_eq!(pearson(&a, &b), None);
    }

    #[test]
    fn only_common_support_counts() {
        // Items outside the intersection must not affect the result.
        let a = sv(&[(1, 1.0), (2, 2.0), (9, 100.0)]);
        let b = sv(&[(1, 1.0), (2, 2.0), (8, -50.0)]);
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }
}
