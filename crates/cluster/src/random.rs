//! The Random baseline (§6.1): "every pair of annotations was chosen
//! randomly from the list of pairs that satisfy the mapping constraints",
//! honouring the same stop conditions as Prov-Approx.

use prox_obs::StepTimer;

use prox_core::{
    candidates::enumerate, ConstraintConfig, DistanceEngine, History, MemberOverride, StepRecord,
    StopReason, SummarizeConfig, SummaryResult,
};
use prox_provenance::{AnnStore, Mapping, Summarizable, Valuation};
use prox_taxonomy::Taxonomy;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Run the Random baseline.
pub fn random_summarize<E: Summarizable>(
    p0: &E,
    store: &mut AnnStore,
    constraints: &ConstraintConfig,
    taxonomy: Option<&Taxonomy>,
    valuations: &[Valuation],
    config: &SummarizeConfig,
    seed: u64,
) -> SummaryResult<E> {
    let mut session = config.budget.start();
    let valuations = &valuations[..session.memo_cap(valuations.len())];
    let engine = DistanceEngine::new(p0, valuations, config.phi.clone(), config.val_func);
    let no_override = MemberOverride::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let initial_size = p0.size();

    let mut current = p0.clone();
    let mut cumulative = Mapping::identity();
    let mut current_dist = 0.0f64;
    let mut history = History::default();
    let mut snapshots = Vec::new();
    if config.record_snapshots {
        snapshots.push(current.clone());
    }
    let mut stop_reason = StopReason::MaxSteps;

    let mut step = 0usize;
    while current.size() > config.target_size {
        if step >= config.max_steps {
            stop_reason = StopReason::MaxSteps;
            break;
        }
        // Budget exhaustion mid-run keeps the best-so-far summary (anytime
        // contract) — same semantics as Prov-Approx.
        if let Err(stop) = session.note_step() {
            stop_reason = stop.into();
            break;
        }
        let mut timer = StepTimer::start();
        let size_before = current.size();

        let anns = current.annotations();
        let cands = enumerate(&anns, store, constraints, taxonomy, config.k);
        if cands.is_empty() {
            stop_reason = StopReason::NoCandidates;
            break;
        }
        let chosen = &cands[rng.random_range(0..cands.len())];

        let summary = store.add_summary(&chosen.name, chosen.domain, &chosen.members);
        let step_map = Mapping::group(&chosen.members, summary);

        let (next, h, distance) = timer.candidates(|| {
            let next = current.apply_mapping(&step_map);
            let mut h = cumulative.clone();
            h.compose_with(&step_map);
            let distance = engine.distance(&next, &h, store, &no_override);
            (next, h, distance)
        });

        if config.target_dist < 1.0 && distance >= config.target_dist {
            stop_reason = StopReason::TargetDist;
            break;
        }

        cumulative = h;
        current = next;
        current_dist = distance;
        step += 1;
        history.steps.push(StepRecord {
            step,
            merged: chosen.members.clone(),
            target: summary,
            score: 0.0,
            distance,
            size: current.size(),
            candidates: cands.len(),
            candidate_time: timer.candidate_time(),
            step_time: timer.step_time(),
            size_before,
        });
        if config.record_snapshots {
            snapshots.push(current.clone());
        }
    }
    if current.size() <= config.target_size {
        stop_reason = StopReason::TargetSize;
    }

    SummaryResult {
        summary: current,
        mapping: cumulative,
        history,
        snapshots,
        initial_size,
        final_distance: current_dist,
        stop_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_core::MergeRule;
    use prox_provenance::{AggKind, AggValue, AnnId, Polynomial, ProvExpr, Tensor, ValuationClass};

    fn setup() -> (AnnStore, ProvExpr, Vec<AnnId>, ConstraintConfig) {
        let mut s = AnnStore::new();
        let users: Vec<AnnId> = (0..6)
            .map(|i| s.add_base_with(&format!("U{i}"), "users", &[("gender", "F")]))
            .collect();
        let m = s.add_base_with("M", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        for (i, &u) in users.iter().enumerate() {
            p.push(
                m,
                Tensor::new(Polynomial::var(u), AggValue::single(1.0 + i as f64)),
            );
        }
        let dom = s.domain("users");
        let cfg = ConstraintConfig::new().allow(dom, MergeRule::SharedAttribute { attrs: vec![] });
        (s, p, users, cfg)
    }

    #[test]
    fn random_is_deterministic_under_seed() {
        let run = |seed: u64| {
            let (mut s, p, users, cfg) = setup();
            let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
            let config = SummarizeConfig {
                max_steps: 3,
                ..Default::default()
            };
            let res = random_summarize(&p, &mut s, &cfg, None, &vals, &config, seed);
            res.history
                .steps
                .iter()
                .map(|r| r.merged.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn different_seeds_usually_differ() {
        let run = |seed: u64| {
            let (mut s, p, users, cfg) = setup();
            let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
            let config = SummarizeConfig {
                max_steps: 4,
                ..Default::default()
            };
            let res = random_summarize(&p, &mut s, &cfg, None, &vals, &config, seed);
            res.history
                .steps
                .iter()
                .map(|r| r.merged.clone())
                .collect::<Vec<_>>()
        };
        // At least one of a few seeds must differ from seed 0.
        let base = run(0);
        assert!((1..5).any(|s| run(s) != base));
    }

    #[test]
    fn stops_at_target_size() {
        let (mut s, p, users, cfg) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        let config = SummarizeConfig {
            target_size: 4,
            max_steps: 100,
            ..Default::default()
        };
        let res = random_summarize(&p, &mut s, &cfg, None, &vals, &config, 7);
        assert!(res.final_size() <= 4);
        assert_eq!(res.stop_reason, StopReason::TargetSize);
    }

    #[test]
    fn budget_step_limit_returns_best_so_far() {
        let (mut s, p, users, cfg) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        let config = SummarizeConfig {
            max_steps: 100,
            budget: prox_core::ExecutionBudget::unlimited().with_max_steps(1),
            ..Default::default()
        };
        let res = random_summarize(&p, &mut s, &cfg, None, &vals, &config, 7);
        assert_eq!(res.history.len(), 1);
        assert_eq!(res.stop_reason, StopReason::BudgetExhausted);
        assert!(res.history.check_monotone().is_ok());
    }

    #[test]
    fn monotone_distance_and_size() {
        let (mut s, p, users, cfg) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        let config = SummarizeConfig {
            max_steps: 5,
            ..Default::default()
        };
        let res = random_summarize(&p, &mut s, &cfg, None, &vals, &config, 3);
        assert!(res.history.check_monotone().is_ok());
    }
}
