//! Replaying a clustering merge sequence as provenance summarization
//! (§6.2).
//!
//! "Each step of the Clustering algorithm, in which two clusters are
//! merged, corresponds to a mapping of 2 annotations to an annotation
//! summary" — the merge sequence is replayed onto the provenance
//! expression, checking the same stop conditions (`TARGET-SIZE`,
//! `TARGET-DIST`, max steps) as Prov-Approx so the two are comparable.

use prox_obs::StepTimer;

use prox_core::{DistanceEngine, History, StepRecord, StopReason, SummarizeConfig, SummaryResult};
use prox_provenance::{AnnId, AnnStore, Mapping, Summarizable, Valuation};

use crate::hac::MergeStep;

/// A merge step translated to annotation space.
#[derive(Clone, Debug)]
pub struct AnnMerge {
    /// Base annotations of both clusters.
    pub members: Vec<AnnId>,
    /// Linkage dissimilarity (used to order interleaved queues).
    pub dissimilarity: f64,
}

/// Translate observation-index merges to annotation merges.
pub fn merges_to_ann(merges: &[MergeStep], items: &[AnnId]) -> Vec<AnnMerge> {
    merges
        .iter()
        .map(|m| AnnMerge {
            members: m.merged().iter().map(|&ix| items[ix]).collect(),
            dissimilarity: m.dissimilarity,
        })
        .collect()
}

/// Interleave several merge queues (e.g. user merges and page merges) by
/// ascending dissimilarity, preserving each queue's internal order.
pub fn interleave(queues: Vec<Vec<AnnMerge>>) -> Vec<AnnMerge> {
    let mut cursors: Vec<std::vec::IntoIter<AnnMerge>> =
        queues.into_iter().map(|q| q.into_iter()).collect();
    let mut heads: Vec<Option<AnnMerge>> = cursors.iter_mut().map(|c| c.next()).collect();
    let mut out = Vec::new();
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (ix, head) in heads.iter().enumerate() {
            if let Some(h) = head {
                if best.is_none_or(|(_, d)| h.dissimilarity < d) {
                    best = Some((ix, h.dissimilarity));
                }
            }
        }
        let Some((b, _)) = best else { break };
        let Some(head) = heads[b].take() else { break };
        out.push(head);
        heads[b] = cursors[b].next();
    }
    out
}

/// Replay annotation merges onto a provenance expression with Prov-Approx's
/// stop conditions. Each merge's members are first mapped through the
/// cumulative homomorphism (clusters may contain annotations already
/// merged), then mapped to a fresh summary annotation.
pub fn replay<E: Summarizable>(
    p0: &E,
    merges: &[AnnMerge],
    store: &mut AnnStore,
    valuations: &[Valuation],
    config: &SummarizeConfig,
) -> SummaryResult<E> {
    let mut session = config.budget.start();
    let valuations = &valuations[..session.memo_cap(valuations.len())];
    let engine = DistanceEngine::new(p0, valuations, config.phi.clone(), config.val_func);
    let no_override = prox_core::MemberOverride::new();
    let initial_size = p0.size();

    let mut current = p0.clone();
    let mut cumulative = Mapping::identity();
    let mut current_dist = 0.0f64;
    let mut history = History::default();
    let mut snapshots = Vec::new();
    if config.record_snapshots {
        snapshots.push(current.clone());
    }
    let mut stop_reason = StopReason::NoCandidates; // merges exhausted

    for (ix, merge) in merges.iter().enumerate() {
        if current.size() <= config.target_size {
            stop_reason = StopReason::TargetSize;
            break;
        }
        // Budget counts *executed* merges — queue entries that were already
        // subsumed by earlier steps (see `continue` below) are free.
        if history.steps.len() >= config.max_steps {
            stop_reason = StopReason::MaxSteps;
            break;
        }
        // Budget exhaustion keeps the prefix replayed so far (anytime
        // contract) — same semantics as Prov-Approx.
        if let Err(stop) = session.note_step() {
            stop_reason = stop.into();
            break;
        }
        let mut timer = StepTimer::start();
        let size_before = current.size();

        // Current-level members: images of the cluster members.
        let mut level: Vec<AnnId> = merge.members.iter().map(|&a| cumulative.image(a)).collect();
        level.sort_unstable();
        level.dedup();
        if level.len() < 2 {
            continue; // already fully merged by earlier steps
        }
        let name = store
            .shared_attrs(&merge.members)
            .first()
            .map(|&(_, v)| store.value_name(v).to_owned())
            .unwrap_or_else(|| format!("C{}", ix + 1));
        let domain = store.get(level[0]).domain;
        let summary = store.add_summary(&name, domain, &level);
        let step_map = Mapping::group(&level, summary);

        let (next, h, distance) = timer.candidates(|| {
            let next = current.apply_mapping(&step_map);
            let mut h = cumulative.clone();
            h.compose_with(&step_map);
            let distance = engine.distance(&next, &h, store, &no_override);
            (next, h, distance)
        });

        if config.target_dist < 1.0 && distance >= config.target_dist {
            // Crossing the distance bound: keep the previous expression.
            stop_reason = StopReason::TargetDist;
            break;
        }

        cumulative = h;
        current = next;
        current_dist = distance;
        history.steps.push(StepRecord {
            step: history.steps.len() + 1,
            merged: level,
            target: summary,
            score: merge.dissimilarity,
            distance,
            size: current.size(),
            candidates: 1,
            candidate_time: timer.candidate_time(),
            step_time: timer.step_time(),
            size_before,
        });
        if config.record_snapshots {
            snapshots.push(current.clone());
        }
    }
    if current.size() <= config.target_size {
        stop_reason = StopReason::TargetSize;
    }

    SummaryResult {
        summary: current,
        mapping: cumulative,
        history,
        snapshots,
        initial_size,
        final_distance: current_dist,
        stop_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::{AggKind, AggValue, Polynomial, ProvExpr, Tensor, ValuationClass};

    fn setup() -> (AnnStore, ProvExpr, Vec<AnnId>) {
        let mut s = AnnStore::new();
        let users: Vec<AnnId> = (0..4)
            .map(|i| {
                let gender = if i < 2 { "F" } else { "M" };
                s.add_base_with(&format!("U{i}"), "users", &[("gender", gender)])
            })
            .collect();
        let m = s.add_base_with("M", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        for (i, &u) in users.iter().enumerate() {
            p.push(
                m,
                Tensor::new(Polynomial::var(u), AggValue::single(1.0 + i as f64)),
            );
        }
        (s, p, users)
    }

    #[test]
    fn replay_applies_merges_in_order() {
        let (mut s, p, users) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        let merges = vec![
            AnnMerge {
                members: vec![users[0], users[1]],
                dissimilarity: 0.1,
            },
            AnnMerge {
                members: vec![users[2], users[3]],
                dissimilarity: 0.2,
            },
        ];
        let config = SummarizeConfig {
            max_steps: 10,
            ..Default::default()
        };
        let res = replay(&p, &merges, &mut s, &vals, &config);
        assert_eq!(res.history.len(), 2);
        assert_eq!(res.final_size(), 2);
        assert!(res.final_distance > 0.0);
    }

    #[test]
    fn replay_respects_target_size() {
        let (mut s, p, users) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        let merges = vec![
            AnnMerge {
                members: vec![users[0], users[1]],
                dissimilarity: 0.1,
            },
            AnnMerge {
                members: vec![users[2], users[3]],
                dissimilarity: 0.2,
            },
        ];
        let config = SummarizeConfig {
            target_size: 3,
            max_steps: 10,
            ..Default::default()
        };
        let res = replay(&p, &merges, &mut s, &vals, &config);
        assert_eq!(res.history.len(), 1);
        assert_eq!(res.final_size(), 3);
        assert_eq!(res.stop_reason, StopReason::TargetSize);
    }

    #[test]
    fn replay_backs_off_on_target_dist() {
        let (mut s, p, users) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        // Merging the two *top* raters is lossy under MAX: cancelling the
        // best rater no longer removes their rating from the group.
        let merges = vec![AnnMerge {
            members: vec![users[2], users[3]],
            dissimilarity: 0.1,
        }];
        let config = SummarizeConfig {
            target_dist: 1e-9,
            max_steps: 10,
            ..Default::default()
        };
        let res = replay(&p, &merges, &mut s, &vals, &config);
        assert_eq!(res.history.len(), 0);
        assert_eq!(res.stop_reason, StopReason::TargetDist);
        assert_eq!(res.final_size(), p.size());
    }

    #[test]
    fn budget_limits_replayed_merges() {
        let (mut s, p, users) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        let merges = vec![
            AnnMerge {
                members: vec![users[0], users[1]],
                dissimilarity: 0.1,
            },
            AnnMerge {
                members: vec![users[2], users[3]],
                dissimilarity: 0.2,
            },
        ];
        let config = SummarizeConfig {
            max_steps: 10,
            budget: prox_core::ExecutionBudget::unlimited().with_max_steps(1),
            ..Default::default()
        };
        let res = replay(&p, &merges, &mut s, &vals, &config);
        assert_eq!(res.history.len(), 1);
        assert_eq!(res.stop_reason, StopReason::BudgetExhausted);
    }

    #[test]
    fn nested_cluster_merges_use_images() {
        // HAC merge sequence: {0,1}, then {0,1,2} — the second merge's
        // members include already-merged annotations.
        let (mut s, p, users) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        let merges = vec![
            AnnMerge {
                members: vec![users[0], users[1]],
                dissimilarity: 0.1,
            },
            AnnMerge {
                members: vec![users[0], users[1], users[2]],
                dissimilarity: 0.3,
            },
        ];
        let config = SummarizeConfig {
            max_steps: 10,
            ..Default::default()
        };
        let res = replay(&p, &merges, &mut s, &vals, &config);
        assert_eq!(res.history.len(), 2);
        assert_eq!(res.final_size(), 2); // {U0,U1,U2} + U3
    }

    #[test]
    fn interleave_orders_by_dissimilarity() {
        let q1 = vec![
            AnnMerge {
                members: vec![],
                dissimilarity: 0.1,
            },
            AnnMerge {
                members: vec![],
                dissimilarity: 0.5,
            },
        ];
        let q2 = vec![AnnMerge {
            members: vec![],
            dissimilarity: 0.3,
        }];
        let merged = interleave(vec![q1, q2]);
        let ds: Vec<f64> = merged.iter().map(|m| m.dissimilarity).collect();
        assert_eq!(ds, vec![0.1, 0.3, 0.5]);
    }

    #[test]
    fn merges_to_ann_translates_indices() {
        let (_, _, users) = setup();
        let merges = vec![MergeStep {
            left: vec![0],
            right: vec![2],
            dissimilarity: 0.4,
        }];
        let anns = merges_to_ann(&merges, &users);
        assert_eq!(anns[0].members, vec![users[0], users[2]]);
    }
}
