//! Candidate mapping enumeration (`CandidateHom` in Algorithm 1).
//!
//! Each algorithm step examines single-step mappings of `k` annotations
//! (k = 2 in the paper; larger k exercises the thesis's future-work
//! generalization) to one new annotation. Candidates must satisfy the
//! semantic constraints, and each carries the name the new annotation would
//! get — the shared attribute value ("Female") or the members' lowest
//! common taxonomy subsumer ("wordnet_musician").

use prox_obs::Counter;
use prox_provenance::{AnnId, AnnStore, DomainId};
use prox_robust::{BudgetSession, BudgetStop};
use prox_taxonomy::{ConceptId, Taxonomy};

use crate::constraints::{concepts_of, shared_attr, ConstraintConfig, MergeRule};

/// Candidates produced by [`enumerate`] across all calls.
static CANDIDATES_ENUMERATED: Counter = Counter::new("candidates/enumerated");
/// Pairs rejected by the semantic constraints during enumeration.
static CANDIDATES_REJECTED: Counter = Counter::new("candidates/rejected");

/// One candidate single-step mapping.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The current-level annotations to merge (length = k).
    pub members: Vec<AnnId>,
    /// Name proposed for the new summary annotation.
    pub name: String,
    /// Domain of the members.
    pub domain: DomainId,
    /// Concept proposed for the new annotation (the members' LCS), when
    /// the members are concept-attached.
    pub concept: Option<ConceptId>,
}

impl Candidate {
    /// Flattened base members (what the new annotation will summarize).
    pub fn base_members(&self, store: &AnnStore) -> Vec<AnnId> {
        let mut out = Vec::new();
        for &m in &self.members {
            out.extend(store.base_of(m));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Derive the display name and concept for a group of members.
fn name_for(
    members: &[AnnId],
    store: &AnnStore,
    taxonomy: Option<&Taxonomy>,
    rule: &MergeRule,
) -> (String, Option<ConceptId>) {
    // Prefer the taxonomy LCS when the rule is taxonomy-driven; otherwise
    // prefer the shared attribute value.
    let lcs = taxonomy.and_then(|t| concepts_of(members, store).and_then(|cs| t.lcs_many(&cs)));
    let attr = match rule {
        MergeRule::SharedAttribute { attrs } | MergeRule::SharedAttributeOrTaxonomy { attrs } => {
            shared_attr(members, store, attrs)
        }
        _ => shared_attr(members, store, &[]),
    };
    if matches!(rule, MergeRule::TaxonomyAncestor) {
        if let (Some(t), Some(c)) = (taxonomy, lcs) {
            return (t.name(c).to_owned(), Some(c));
        }
    }
    if let Some((_, value)) = attr {
        return (store.value_name(value).to_owned(), lcs);
    }
    if let (Some(t), Some(c)) = (taxonomy, lcs) {
        return (t.name(c).to_owned(), Some(c));
    }
    // Constraint `Any` with nothing shared: synthesize a neutral name.
    let joined = members
        .iter()
        .map(|&m| store.name(m))
        .collect::<Vec<_>>()
        .join("+");
    (format!("G({joined})"), lcs)
}

/// Enumerate candidate mappings over the given annotations.
///
/// For `k = 2` this is every constraint-satisfying unordered pair. For
/// `k > 2` each valid pair is greedily extended with further compatible
/// annotations (first-fit), giving `O(n²)` candidates of size ≤ k rather
/// than the intractable `O(n^k)`.
pub fn enumerate(
    anns: &[AnnId],
    store: &AnnStore,
    constraints: &ConstraintConfig,
    taxonomy: Option<&Taxonomy>,
    k: usize,
) -> Vec<Candidate> {
    enumerate_with(anns, store, constraints, taxonomy, k, None).0
}

/// Budget-aware [`enumerate`]: polls the session once per outer annotation
/// and stops early when the budget trips, returning the candidates found
/// so far plus the stop. Callers treat a partial enumeration as
/// best-so-far input for the anytime contract.
pub fn enumerate_with(
    anns: &[AnnId],
    store: &AnnStore,
    constraints: &ConstraintConfig,
    taxonomy: Option<&Taxonomy>,
    k: usize,
    mut budget: Option<&mut BudgetSession>,
) -> (Vec<Candidate>, Option<BudgetStop>) {
    assert!(k >= 2);
    let mergeable: Vec<AnnId> = anns
        .iter()
        .copied()
        .filter(|&a| constraints.rule(store.get(a).domain).is_some())
        .collect();
    let mut rejected = 0u64;
    let mut stopped = None;
    let mut out = Vec::new();
    'outer: for (i, &a) in mergeable.iter().enumerate() {
        if let Some(session) = budget.as_deref_mut() {
            if let Err(stop) = session.check() {
                stopped = Some(stop);
                break 'outer;
            }
        }
        for &b in &mergeable[i + 1..] {
            if !constraints.pair_ok(a, b, store, taxonomy) {
                rejected += 1;
                continue;
            }
            let mut members = vec![a, b];
            if k > 2 {
                for &c in &mergeable {
                    if members.len() >= k {
                        break;
                    }
                    if members.contains(&c) {
                        continue;
                    }
                    let mut extended = members.clone();
                    extended.push(c);
                    if constraints.group_ok(&extended, store, taxonomy) {
                        members = extended;
                    }
                }
            }
            let domain = store.get(a).domain;
            let Some(rule) = constraints.rule(domain) else {
                continue; // unreachable: mergeable() requires a rule per domain
            };
            let (name, concept) = name_for(&members, store, taxonomy, rule);
            out.push(Candidate {
                members,
                name,
                domain,
                concept,
            });
        }
    }
    CANDIDATES_ENUMERATED.add(out.len() as u64);
    CANDIDATES_REJECTED.add(rejected);
    (out, stopped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AnnStore, Vec<AnnId>, ConstraintConfig) {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F"), ("age", "18-24")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "F"), ("age", "25-34")]);
        let u3 = s.add_base_with("U3", "users", &[("gender", "M"), ("age", "25-34")]);
        let users = s.domain("users");
        let cfg =
            ConstraintConfig::new().allow(users, MergeRule::SharedAttribute { attrs: vec![] });
        (s, vec![u1, u2, u3], cfg)
    }

    #[test]
    fn pairs_respect_constraints() {
        let (s, anns, cfg) = setup();
        let cands = enumerate(&anns, &s, &cfg, None, 2);
        // (U1,U2) share gender=F; (U2,U3) share age=25-34; (U1,U3) share nothing.
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().any(|c| c.members == vec![anns[0], anns[1]]));
        assert!(cands.iter().any(|c| c.members == vec![anns[1], anns[2]]));
    }

    #[test]
    fn names_come_from_shared_attribute_value() {
        let (s, anns, cfg) = setup();
        let cands = enumerate(&anns, &s, &cfg, None, 2);
        let fem = cands
            .iter()
            .find(|c| c.members == vec![anns[0], anns[1]])
            .unwrap();
        assert_eq!(fem.name, "F");
        let age = cands
            .iter()
            .find(|c| c.members == vec![anns[1], anns[2]])
            .unwrap();
        assert_eq!(age.name, "25-34");
    }

    #[test]
    fn kway_extends_greedily() {
        let mut s = AnnStore::new();
        let anns: Vec<AnnId> = (0..4)
            .map(|i| s.add_base_with(&format!("U{i}"), "users", &[("gender", "F")]))
            .collect();
        let users = s.domain("users");
        let cfg =
            ConstraintConfig::new().allow(users, MergeRule::SharedAttribute { attrs: vec![] });
        let cands = enumerate(&anns, &s, &cfg, None, 3);
        assert!(cands.iter().all(|c| c.members.len() == 3));
        assert!(!cands.is_empty());
    }

    #[test]
    fn base_members_flatten_summaries() {
        let (mut s, anns, cfg) = setup();
        let users = s.domain("users");
        let g = s.add_summary("F", users, &[anns[0], anns[1]]);
        let cands = enumerate(&[g, anns[2]], &s, &cfg, None, 2);
        // g has attrs {gender=F}; U3 is M → nothing shared → no candidates.
        assert!(cands.is_empty());

        // But a summary of same-age users can merge with U3.
        let g2 = s.add_summary("25-34", users, &[anns[1], anns[2]]);
        let cands2 = enumerate(&[g2, anns[0]], &s, &cfg, None, 2);
        assert!(cands2.is_empty(), "g2 age=25-34 vs U1 age=18-24");
        let cands3 = enumerate(&[g2, anns[2]], &s, &cfg, None, 2);
        // g2 contains U3 already; still a legal pair structurally (shares
        // age=25-34) — the summarizer won't generate it because U3 no
        // longer appears in the expression, but enumeration is permissive.
        assert_eq!(cands3.len(), 1);
        assert_eq!(cands3[0].base_members(&s), {
            let mut v = vec![anns[1], anns[2]];
            v.sort();
            v
        });
    }

    #[test]
    fn tripped_budget_stops_enumeration_early() {
        use prox_robust::ExecutionBudget;
        let (s, anns, cfg) = setup();
        let budget = ExecutionBudget::unlimited().with_deadline_at(std::time::Instant::now());
        let mut session = budget.start();
        let (cands, stop) = enumerate_with(&anns, &s, &cfg, None, 2, Some(&mut session));
        assert!(cands.is_empty());
        assert_eq!(stop, Some(BudgetStop::Deadline));
        // Without a session the same call is the plain enumeration.
        let (cands, stop) = enumerate_with(&anns, &s, &cfg, None, 2, None);
        assert_eq!(cands.len(), 2);
        assert_eq!(stop, None);
    }

    #[test]
    fn taxonomy_lcs_names_page_groups() {
        let mut s = AnnStore::new();
        let pages = s.domain("pages");
        let p1 = s.add_base("Adele", pages, vec![]);
        let p2 = s.add_base("LoriBlack", pages, vec![]);
        let mut t = Taxonomy::new();
        t.subclass("wordnet_singer", "wordnet_musician");
        t.subclass("wordnet_guitarist", "wordnet_musician");
        s.set_concept(p1, t.by_name("wordnet_singer").unwrap().0);
        s.set_concept(p2, t.by_name("wordnet_guitarist").unwrap().0);
        let cfg = ConstraintConfig::new().allow(pages, MergeRule::TaxonomyAncestor);
        let cands = enumerate(&[p1, p2], &s, &cfg, Some(&t), 2);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].name, "wordnet_musician");
        assert_eq!(cands[0].concept, t.by_name("wordnet_musician"));
    }
}
