//! Configuration for the summarization algorithm (the knobs of the PROX
//! UI's summarization view, Fig 7.4, plus §3.2/§4.2 parameters).

use prox_provenance::{Phi, PhiMap};
use prox_robust::{ExecutionBudget, ProxError};
use serde::{Deserialize, Serialize};

use crate::val_func::ValFuncKind;

/// How candidate distance and size combine into a `CandidateScore`
/// (Definition 3.2.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoreMode {
    /// The paper's formulation: candidates are *ranked* by distance and by
    /// size; normalized ranks are combined by the weights.
    Rank,
    /// Ablation: raw normalized distance and size (size relative to the
    /// original expression) are combined directly.
    Normalized,
}

/// Fold used when taxonomy distances break ties between candidates (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TieBreak {
    /// Maximum member-to-target taxonomy distance.
    TaxonomyMax,
    /// Sum of member-to-target taxonomy distances.
    TaxonomySum,
    /// No taxonomy tie-breaking: first minimal candidate wins.
    First,
}

/// Full configuration of Algorithm 1.
#[derive(Clone, Debug)]
pub struct SummarizeConfig {
    /// Weight of the distance rank in the candidate score (`wDist`).
    pub w_dist: f64,
    /// Weight of the size rank (`wSize`); the paper requires
    /// `wDist + wSize = 1`.
    pub w_size: f64,
    /// Weight of the taxonomy-distance rank added on top of the
    /// distance/size score (§3.2: "taxonomic information ... may be
    /// incorporated as part of the computation"). 0 disables it (default);
    /// positive values prefer candidates whose members sit taxonomically
    /// close to the proposed group concept.
    pub w_tax: f64,
    /// Stop once the expression size is ≤ this bound (`TARGET-SIZE`).
    /// Set to 1 to disable (minimum possible size).
    pub target_size: usize,
    /// Stop before the distance reaches this bound (`TARGET-DIST`), in
    /// normalized `[0,1]`. Set to 1.0 to disable (maximum distance).
    pub target_dist: f64,
    /// Maximum number of algorithm steps (§6.7); `usize::MAX` to disable.
    pub max_steps: usize,
    /// The combiner function(s) φ.
    pub phi: PhiMap,
    /// The VAL-FUNC measuring per-valuation disagreement.
    pub val_func: ValFuncKind,
    /// Score combination mode.
    pub score_mode: ScoreMode,
    /// Tie-breaking rule for equal-score candidates.
    pub tie_break: TieBreak,
    /// Number of annotations merged per step (2 in Algorithm 1; larger
    /// values exercise the thesis's future-work k-way generalization).
    pub k: usize,
    /// Record a snapshot of the expression after every step (needed by the
    /// system UI's step-through view; costs memory).
    pub record_snapshots: bool,
    /// Skip the initial `GroupEquivalent` phase (ablation).
    pub skip_group_equivalent: bool,
    /// Execution limits (wall-clock deadline, step ceiling, memo cap,
    /// cooperative cancel). Unlimited by default. Exhaustion mid-run
    /// returns the best-so-far summary with a budget `StopReason`;
    /// exhaustion before any work is a `ProxError::Budget`.
    pub budget: ExecutionBudget,
}

impl Default for SummarizeConfig {
    fn default() -> Self {
        SummarizeConfig {
            w_dist: 0.5,
            w_size: 0.5,
            w_tax: 0.0,
            target_size: 1,
            target_dist: 1.0,
            max_steps: 20,
            phi: PhiMap::uniform(Phi::Or),
            val_func: ValFuncKind::Euclidean,
            score_mode: ScoreMode::Rank,
            tie_break: TieBreak::TaxonomyMax,
            k: 2,
            record_snapshots: false,
            skip_group_equivalent: false,
            budget: ExecutionBudget::unlimited(),
        }
    }
}

impl SummarizeConfig {
    /// Problem flavor 1 (§3.2): weighted optimization with explicit weights.
    pub fn weighted(w_dist: f64, max_steps: usize) -> Self {
        SummarizeConfig {
            w_dist,
            w_size: 1.0 - w_dist,
            max_steps,
            ..SummarizeConfig::default()
        }
    }

    /// Problem flavor 2 (§3.2): minimize distance subject to a size bound —
    /// `wDist = 1`, `TARGET-DIST = 1` (disabled).
    pub fn target_size(size: usize) -> Self {
        SummarizeConfig {
            w_dist: 1.0,
            w_size: 0.0,
            target_size: size,
            target_dist: 1.0,
            max_steps: usize::MAX,
            ..SummarizeConfig::default()
        }
    }

    /// Problem flavor 3 (§3.2): minimize size subject to a distance bound —
    /// `wSize = 1`, `TARGET-SIZE = 1` (disabled).
    pub fn target_dist(dist: f64) -> Self {
        SummarizeConfig {
            w_dist: 0.0,
            w_size: 1.0,
            target_size: 1,
            target_dist: dist,
            max_steps: usize::MAX,
            ..SummarizeConfig::default()
        }
    }

    /// Builder-style override of the VAL-FUNC.
    pub fn with_val_func(mut self, vf: ValFuncKind) -> Self {
        self.val_func = vf;
        self
    }

    /// Builder-style override of φ.
    pub fn with_phi(mut self, phi: PhiMap) -> Self {
        self.phi = phi;
        self
    }

    /// Builder-style snapshot recording.
    pub fn with_snapshots(mut self) -> Self {
        self.record_snapshots = true;
        self
    }

    /// Builder-style execution budget.
    pub fn with_budget(mut self, budget: ExecutionBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Validate invariants (weights sum to 1, k ≥ 2, bounds in range).
    pub fn validate(&self) -> Result<(), ProxError> {
        if (self.w_dist + self.w_size - 1.0).abs() > 1e-9 {
            return Err(ProxError::config(format!(
                "wDist + wSize must equal 1 (got {} + {})",
                self.w_dist, self.w_size
            )));
        }
        if !(0.0..=1.0).contains(&self.w_dist) {
            return Err(ProxError::config("wDist must lie in [0,1]"));
        }
        if self.k < 2 {
            return Err(ProxError::config("k must be at least 2"));
        }
        if !(0.0..=1.0).contains(&self.w_tax) {
            return Err(ProxError::config("wTax must lie in [0,1]"));
        }
        if !(0.0..=1.0).contains(&self.target_dist) {
            return Err(ProxError::config("TARGET-DIST must lie in [0,1]"));
        }
        if self.target_size == 0 {
            return Err(ProxError::config("TARGET-SIZE must be at least 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SummarizeConfig::default().validate().is_ok());
    }

    #[test]
    fn flavors_match_paper_settings() {
        let f2 = SummarizeConfig::target_size(100);
        assert_eq!(f2.w_dist, 1.0);
        assert_eq!(f2.target_dist, 1.0);
        assert_eq!(f2.target_size, 100);
        assert!(f2.validate().is_ok());

        let f3 = SummarizeConfig::target_dist(0.05);
        assert_eq!(f3.w_size, 1.0);
        assert_eq!(f3.target_size, 1);
        assert!(f3.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_weights() {
        let mut c = SummarizeConfig {
            w_dist: 0.8,
            w_size: 0.8,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.w_size = 0.2;
        assert!(c.validate().is_ok());
        c.k = 1;
        assert!(c.validate().is_err());
        c.k = 2;
        c.target_size = 0;
        assert!(c.validate().is_err());
    }
}
