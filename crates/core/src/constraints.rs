//! Semantic constraints on summarization mappings (§3.2).
//!
//! Unrelated annotations make useless summaries, so mappings are restricted:
//! annotations may only be grouped when they annotate tuples in the same
//! input table (same *domain*), and additionally satisfy a per-domain rule —
//! sharing an attribute value (so the group gets a meaningful name like
//! "Female"), sharing a taxonomy ancestor, or both alternatives.

use prox_provenance::{AnnId, AnnStore, AttrId, DomainId};
use prox_taxonomy::{ConceptId, Taxonomy};

/// The merge rule applied within one domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeRule {
    /// Members must all share at least one attribute value. When `attrs`
    /// is non-empty, only the listed attributes count (gender, age group,
    /// occupation, zip code for MovieLens).
    SharedAttribute {
        /// Attributes eligible for the shared-value test (empty = all).
        attrs: Vec<AttrId>,
    },
    /// Members' taxonomy concepts must share a common ancestor.
    TaxonomyAncestor,
    /// Either of the above suffices.
    SharedAttributeOrTaxonomy {
        /// Attributes eligible for the shared-value test (empty = all).
        attrs: Vec<AttrId>,
    },
    /// Any two annotations of the domain may merge.
    Any,
}

/// Per-domain constraint configuration. Domains with no rule are not
/// mergeable at all.
#[derive(Clone, Debug, Default)]
pub struct ConstraintConfig {
    rules: Vec<(DomainId, MergeRule)>,
}

impl ConstraintConfig {
    /// Empty configuration (nothing mergeable).
    pub fn new() -> Self {
        ConstraintConfig::default()
    }

    /// Allow merging in `domain` under `rule` (builder style).
    pub fn allow(mut self, domain: DomainId, rule: MergeRule) -> Self {
        self.rules.retain(|(d, _)| *d != domain);
        self.rules.push((domain, rule));
        self
    }

    /// The rule for a domain, if mergeable.
    pub fn rule(&self, domain: DomainId) -> Option<&MergeRule> {
        self.rules
            .iter()
            .find(|(d, _)| *d == domain)
            .map(|(_, r)| r)
    }

    /// Domains that allow merging.
    pub fn mergeable_domains(&self) -> impl Iterator<Item = DomainId> + '_ {
        self.rules.iter().map(|(d, _)| *d)
    }

    /// May this whole group be mapped to one annotation? Checks the same
    /// domain across members plus the domain's rule.
    pub fn group_ok(
        &self,
        members: &[AnnId],
        store: &AnnStore,
        taxonomy: Option<&Taxonomy>,
    ) -> bool {
        let Some((&first, rest)) = members.split_first() else {
            return false;
        };
        let domain = store.get(first).domain;
        if rest.iter().any(|&m| store.get(m).domain != domain) {
            return false;
        }
        let Some(rule) = self.rule(domain) else {
            return false;
        };
        match rule {
            MergeRule::Any => true,
            MergeRule::SharedAttribute { attrs } => shared_attr(members, store, attrs).is_some(),
            MergeRule::TaxonomyAncestor => taxonomy_compatible(members, store, taxonomy),
            MergeRule::SharedAttributeOrTaxonomy { attrs } => {
                shared_attr(members, store, attrs).is_some()
                    || taxonomy_compatible(members, store, taxonomy)
            }
        }
    }

    /// Convenience pair test.
    pub fn pair_ok(
        &self,
        a: AnnId,
        b: AnnId,
        store: &AnnStore,
        taxonomy: Option<&Taxonomy>,
    ) -> bool {
        self.group_ok(&[a, b], store, taxonomy)
    }
}

/// First attribute/value shared by all members, restricted to `attrs` when
/// non-empty. Attribute order follows the first member's (interning) order,
/// which keeps naming deterministic.
pub fn shared_attr(
    members: &[AnnId],
    store: &AnnStore,
    attrs: &[AttrId],
) -> Option<(AttrId, prox_provenance::AttrValueId)> {
    let shared = store.shared_attrs(members);
    shared
        .into_iter()
        .find(|(a, _)| attrs.is_empty() || attrs.contains(a))
}

/// Do all members carry concepts sharing a common taxonomy ancestor?
pub fn taxonomy_compatible(
    members: &[AnnId],
    store: &AnnStore,
    taxonomy: Option<&Taxonomy>,
) -> bool {
    let Some(t) = taxonomy else {
        return false;
    };
    concepts_of(members, store)
        .map(|cs| t.lcs_many(&cs).is_some())
        .unwrap_or(false)
}

/// Concepts of all members (None when any member lacks one).
pub fn concepts_of(members: &[AnnId], store: &AnnStore) -> Option<Vec<ConceptId>> {
    members
        .iter()
        .map(|&m| store.get(m).concept.map(ConceptId))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (AnnStore, Vec<AnnId>) {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F"), ("age", "18-24")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "F"), ("age", "25-34")]);
        let u3 = s.add_base_with("U3", "users", &[("gender", "M"), ("age", "25-34")]);
        let m1 = s.add_base_with("M1", "movies", &[("year", "1995")]);
        (s, vec![u1, u2, u3, m1])
    }

    #[test]
    fn unconfigured_domain_is_not_mergeable() {
        let (s, anns) = store();
        let cfg = ConstraintConfig::new();
        assert!(!cfg.pair_ok(anns[0], anns[1], &s, None));
    }

    #[test]
    fn cross_domain_pairs_rejected() {
        let (mut s, anns) = store();
        let users = s.domain("users");
        let movies = s.domain("movies");
        let cfg = ConstraintConfig::new()
            .allow(users, MergeRule::Any)
            .allow(movies, MergeRule::Any);
        assert!(!cfg.pair_ok(anns[0], anns[3], &s, None));
        assert!(cfg.pair_ok(anns[0], anns[2], &s, None));
    }

    #[test]
    fn shared_attribute_rule() {
        let (mut s, anns) = store();
        let users = s.domain("users");
        let cfg =
            ConstraintConfig::new().allow(users, MergeRule::SharedAttribute { attrs: vec![] });
        assert!(cfg.pair_ok(anns[0], anns[1], &s, None)); // gender=F
        assert!(cfg.pair_ok(anns[1], anns[2], &s, None)); // age=25-34
        assert!(!cfg.pair_ok(anns[0], anns[2], &s, None)); // nothing shared
                                                           // Triple needs a *common* attribute across all:
        assert!(!cfg.group_ok(&[anns[0], anns[1], anns[2]], &s, None));
    }

    #[test]
    fn attribute_whitelist_restricts_shared_test() {
        let (mut s, anns) = store();
        let users = s.domain("users");
        let age = s.attr("age");
        let cfg =
            ConstraintConfig::new().allow(users, MergeRule::SharedAttribute { attrs: vec![age] });
        assert!(!cfg.pair_ok(anns[0], anns[1], &s, None), "gender excluded");
        assert!(cfg.pair_ok(anns[1], anns[2], &s, None), "age shared");
    }

    #[test]
    fn taxonomy_rule_requires_concepts_and_common_ancestor() {
        let (mut s, _) = store();
        let pages = s.domain("pages");
        let p1 = s.add_base("P1", pages, vec![]);
        let p2 = s.add_base("P2", pages, vec![]);
        let p3 = s.add_base("P3", pages, vec![]);
        let mut t = Taxonomy::new();
        t.subclass("singer", "musician");
        t.subclass("guitarist", "musician");
        let lone = t.concept("lone");
        s.set_concept(p1, t.by_name("singer").unwrap().0);
        s.set_concept(p2, t.by_name("guitarist").unwrap().0);
        s.set_concept(p3, lone.0);
        let cfg = ConstraintConfig::new().allow(pages, MergeRule::TaxonomyAncestor);
        assert!(cfg.pair_ok(p1, p2, &s, Some(&t)));
        assert!(!cfg.pair_ok(p1, p3, &s, Some(&t)), "no common ancestor");
        assert!(!cfg.pair_ok(p1, p2, &s, None), "no taxonomy supplied");
    }

    #[test]
    fn either_rule_accepts_both_paths() {
        let (mut s, anns) = store();
        let users = s.domain("users");
        let cfg = ConstraintConfig::new().allow(
            users,
            MergeRule::SharedAttributeOrTaxonomy { attrs: vec![] },
        );
        assert!(cfg.pair_ok(anns[0], anns[1], &s, None), "attribute path");
    }

    #[test]
    fn shared_attr_reports_the_pair() {
        let (mut s, anns) = store();
        let gender = s.attr("gender");
        let f = s.value("F");
        let found = shared_attr(&[anns[0], anns[1]], &s, &[]);
        assert_eq!(found, Some((gender, f)));
    }
}
