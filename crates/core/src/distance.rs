//! The distance between a provenance expression and its summary
//! (Definition 3.2.2), computed exactly over an explicit valuation class.
//!
//! `dist^{h,φ}(p, p') = (Σ_{v∈V_Ann} VAL-FUNC(v, v^{h,φ}, p, p')) / |V_Ann|`
//!
//! The engine caches the original expression's evaluation under every
//! valuation — candidates share those — and, per candidate, lifts each
//! valuation to the summary's annotations via φ and evaluates the summary.
//! Reported distances are normalized by the maximum possible error so they
//! lie in `[0,1]` (§6.3).

use std::collections::BTreeMap;

use prox_obs::Counter;
use prox_provenance::{AnnId, AnnStore, EvalOutcome, Mapping, PhiMap, Summarizable, Valuation};

use crate::val_func::{ValFuncCtx, ValFuncKind};

/// Distance computations (one per [`DistanceEngine::distance_raw`] call).
static DISTANCE_EVALUATIONS: Counter = Counter::new("distance/evaluations");
/// Per-valuation lookups of the original's cached outcome.
static MEMO_LOOKUPS: Counter = Counter::new("distance/memo_lookups");
/// Lookups served from the engine's cache (everything after `new`).
static MEMO_HITS: Counter = Counter::new("distance/memo_hits");
/// Lookups that had to evaluate the original (the `new` pre-pass).
static MEMO_MISSES: Counter = Counter::new("distance/memo_misses");

/// Overrides the member set of candidate target annotations during
/// evaluation, so candidates can be scored without interning a summary
/// annotation per candidate (the winner is interned once per step).
pub type MemberOverride = BTreeMap<AnnId, Vec<AnnId>>;

/// Distance engine for one summarization run.
pub struct DistanceEngine<'a, E: Summarizable> {
    original: &'a E,
    valuations: &'a [Valuation],
    phis: PhiMap,
    val_func: ValFuncKind,
    /// Cached `v(p₀)` per valuation.
    orig_outcomes: Vec<EvalOutcome>,
    /// Normalizer: the maximum possible error of the chosen VAL-FUNC on
    /// the original expression.
    max_error: f64,
    ctx: ValFuncCtx,
}

impl<'a, E: Summarizable> DistanceEngine<'a, E> {
    /// Build an engine, evaluating the original under every valuation once.
    pub fn new(
        original: &'a E,
        valuations: &'a [Valuation],
        phis: PhiMap,
        val_func: ValFuncKind,
    ) -> Self {
        // Evaluating (and memoizing) `v(p₀)` here is the cache's fill
        // pass: one miss per valuation, never repeated afterwards.
        let orig_outcomes: Vec<EvalOutcome> =
            valuations.iter().map(|v| original.evaluate(v)).collect();
        MEMO_LOOKUPS.add(orig_outcomes.len() as u64);
        MEMO_MISSES.add(orig_outcomes.len() as u64);
        let max_error = original.max_error().max(f64::MIN_POSITIVE);
        let ctx = ValFuncCtx {
            weight: 1.0,
            mismatch_penalty: max_error,
        };
        DistanceEngine {
            original,
            valuations,
            phis,
            val_func,
            orig_outcomes,
            max_error,
            ctx,
        }
    }

    /// The valuation class size.
    pub fn num_valuations(&self) -> usize {
        self.valuations.len()
    }

    /// The normalization constant in use.
    pub fn max_error(&self) -> f64 {
        self.max_error
    }

    /// The original expression this engine measures against.
    pub fn original(&self) -> &E {
        self.original
    }

    /// Lift a valuation to the summary's annotation space: every summary
    /// (or member-overridden) annotation gets `φ` of its base members'
    /// truth values.
    fn lift(
        &self,
        v: &Valuation,
        summary_anns: &[AnnId],
        store: &AnnStore,
        overrides: &MemberOverride,
    ) -> Valuation {
        let mut out = v.clone();
        for &a in summary_anns {
            let ann = store.get(a);
            let phi = self.phis.for_domain(ann.domain);
            if let Some(members) = overrides.get(&a) {
                out.set(a, phi.combine_bool(members.iter().map(|&m| v.truth(m))));
            } else if ann.kind.is_summary() {
                out.set(
                    a,
                    phi.combine_bool(ann.base_members().iter().map(|&m| v.truth(m))),
                );
            }
        }
        out
    }

    /// Normalized distance (in `[0,1]`) between the original and `summary`,
    /// where `h` is the *cumulative* mapping that produced `summary` and
    /// `overrides` supplies member sets for not-yet-interned candidate
    /// targets.
    pub fn distance(
        &self,
        summary: &E,
        h: &Mapping,
        store: &AnnStore,
        overrides: &MemberOverride,
    ) -> f64 {
        (self.distance_raw(summary, h, store, overrides) / self.max_error).min(1.0)
    }

    /// Unnormalized average VAL-FUNC value over the valuation class.
    pub fn distance_raw(
        &self,
        summary: &E,
        h: &Mapping,
        store: &AnnStore,
        overrides: &MemberOverride,
    ) -> f64 {
        DISTANCE_EVALUATIONS.incr();
        if self.valuations.is_empty() {
            return 0.0;
        }
        // Every valuation's original outcome is served from the cache.
        MEMO_LOOKUPS.add(self.valuations.len() as u64);
        MEMO_HITS.add(self.valuations.len() as u64);
        let summary_anns = summary.annotations();
        let mut acc = 0.0f64;
        for (v, orig_out) in self.valuations.iter().zip(&self.orig_outcomes) {
            let lifted = self.lift(v, &summary_anns, store, overrides);
            let summ_out = summary.evaluate(&lifted);
            // Project vector outcomes into the summary key space
            // (Example 5.2.1's dimension alignment).
            let projected;
            let orig_ref = match orig_out {
                EvalOutcome::Vector(vec) => {
                    projected = EvalOutcome::Vector(vec.project(h));
                    &projected
                }
                other => other,
            };
            acc += self.val_func.eval(orig_ref, &summ_out, self.ctx);
        }
        acc / self.valuations.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::{AggKind, AggValue, Phi, Polynomial, ProvExpr, Tensor, ValuationClass};

    /// Build Example 4.2.3's P₀ and the two single-step candidates.
    fn setup() -> (AnnStore, ProvExpr, Vec<AnnId>) {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F"), ("role", "audience")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "F"), ("role", "critic")]);
        let u3 = s.add_base_with("U3", "users", &[("gender", "M"), ("role", "audience")]);
        let mp = s.add_base_with("MatchPoint", "movies", &[]);
        let bj = s.add_base_with("BlueJasmine", "movies", &[]);

        let mut p = ProvExpr::new(AggKind::Max);
        for (u, score) in [(u1, 3.0), (u2, 5.0), (u3, 3.0)] {
            p.push(mp, Tensor::new(Polynomial::var(u), AggValue::single(score)));
        }
        p.push(bj, Tensor::new(Polynomial::var(u2), AggValue::single(4.0)));
        (s, p, vec![u1, u2, u3])
    }

    #[test]
    fn example_4_2_3_audience_beats_female() {
        let (mut s, p0, users) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        let engine =
            DistanceEngine::new(&p0, &vals, PhiMap::uniform(Phi::Or), ValFuncKind::Euclidean);

        let users_dom = s.domain("users");
        // Candidate 1: {U1,U2} -> Female
        let female = s.add_summary("Female", users_dom, &[users[0], users[1]]);
        let h_female = Mapping::group(&[users[0], users[1]], female);
        let p_female = p0.map(&h_female);
        let d_female = engine.distance(&p_female, &h_female, &s, &BTreeMap::new());

        // Candidate 2: {U1,U3} -> Audience
        let audience = s.add_summary("Audience", users_dom, &[users[0], users[2]]);
        let h_audience = Mapping::group(&[users[0], users[2]], audience);
        let p_audience = p0.map(&h_audience);
        let d_audience = engine.distance(&p_audience, &h_audience, &s, &BTreeMap::new());

        // Paper: P₀'' (Audience) is at distance 0; P₀' (Female) differs for
        // the valuation cancelling U2.
        assert_eq!(d_audience, 0.0);
        assert!(d_female > 0.0);
    }

    #[test]
    fn member_override_matches_interned_summary() {
        // Scoring a candidate by mapping U2 -> U1 with an override must
        // give the same distance as interning the summary annotation.
        let (mut s, p0, users) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        let engine =
            DistanceEngine::new(&p0, &vals, PhiMap::uniform(Phi::Or), ValFuncKind::Euclidean);

        // Via override: map U2 onto U1, overriding U1's members.
        let h_over = Mapping::group(&[users[1]], users[0]);
        let p_over = p0.map(&h_over);
        let mut overrides = BTreeMap::new();
        overrides.insert(users[0], vec![users[0], users[1]]);
        let d_over = engine.distance(&p_over, &h_over, &s, &overrides);

        // Via interned summary.
        let dom = s.domain("users");
        let g = s.add_summary("Female", dom, &[users[0], users[1]]);
        let h_real = Mapping::group(&[users[0], users[1]], g);
        let p_real = p0.map(&h_real);
        let d_real = engine.distance(&p_real, &h_real, &s, &BTreeMap::new());

        assert!((d_over - d_real).abs() < 1e-12);
    }

    #[test]
    fn identity_summary_has_zero_distance() {
        let (s, p0, users) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        let engine =
            DistanceEngine::new(&p0, &vals, PhiMap::uniform(Phi::Or), ValFuncKind::Euclidean);
        let d = engine.distance(&p0, &Mapping::identity(), &s, &BTreeMap::new());
        assert_eq!(d, 0.0);
    }

    #[test]
    fn distance_is_normalized() {
        let (mut s, p0, users) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        let engine =
            DistanceEngine::new(&p0, &vals, PhiMap::uniform(Phi::Or), ValFuncKind::Euclidean);
        // Merge everything (users and movies) — worst realistic summary.
        let dom = s.domain("users");
        let g = s.add_summary("All", dom, &[users[0], users[1], users[2]]);
        let h = Mapping::group(&users, g);
        let p = p0.map(&h);
        let d = engine.distance(&p, &h, &s, &BTreeMap::new());
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn empty_valuation_class_yields_zero() {
        let (s, p0, _) = setup();
        let vals: Vec<Valuation> = Vec::new();
        let engine =
            DistanceEngine::new(&p0, &vals, PhiMap::uniform(Phi::Or), ValFuncKind::Euclidean);
        assert_eq!(
            engine.distance(&p0, &Mapping::identity(), &s, &BTreeMap::new()),
            0.0
        );
    }
}
