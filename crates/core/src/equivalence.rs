//! `GroupEquivalent` (Prop 4.2.1): the zero-distance pre-pass of
//! Algorithm 1.
//!
//! Two annotations are equivalent w.r.t. `V_Ann` when every valuation in the
//! class assigns them the same truth value — they can never be told apart,
//! so mapping them together costs nothing. Equivalence classes are computed
//! by partition refinement: start from one block and split by each
//! valuation's true/false sets, exactly as in the proposition's proof.

use prox_obs::{Counter, SpanTimer};
use prox_provenance::{AnnId, AnnStore, Mapping, Summarizable, Valuation};
use prox_taxonomy::Taxonomy;

use crate::constraints::{shared_attr, ConstraintConfig};

/// The `GroupEquivalent` pre-pass.
static SPAN_GROUP_EQUIVALENT: SpanTimer = SpanTimer::new("summarize/group_equivalent");
/// Annotations collapsed into equivalence-group summaries (members merged
/// away, i.e. `group.len() - 1` per created group).
static GROUPS_COLLAPSED: Counter = Counter::new("equivalence/annotations_collapsed");

/// Partition `anns` into equivalence classes w.r.t. the valuation class.
pub fn equivalence_classes(anns: &[AnnId], valuations: &[Valuation]) -> Vec<Vec<AnnId>> {
    let mut classes: Vec<Vec<AnnId>> = vec![anns.to_vec()];
    for v in valuations {
        let mut next = Vec::with_capacity(classes.len());
        for class in classes {
            let (t, f): (Vec<AnnId>, Vec<AnnId>) = class.into_iter().partition(|&a| v.truth(a));
            if !t.is_empty() {
                next.push(t);
            }
            if !f.is_empty() {
                next.push(f);
            }
        }
        classes = next;
    }
    classes
}

/// Result of the grouping pre-pass.
#[derive(Debug)]
pub struct GroupEquivalentResult<E> {
    /// The expression after grouping (unchanged when no class merged).
    pub expr: E,
    /// The mapping performed (identity when nothing merged).
    pub mapping: Mapping,
    /// Summary annotations created, one per merged class.
    pub created: Vec<AnnId>,
}

/// Apply `GroupEquivalent` to an expression: merge every equivalence class
/// with ≥ 2 members that also satisfies the semantic constraints. Classes
/// violating constraints are greedily split into constraint-satisfying
/// subgroups (first-fit) before merging.
pub fn group_equivalent<E: Summarizable>(
    expr: &E,
    valuations: &[Valuation],
    store: &mut AnnStore,
    constraints: &ConstraintConfig,
    taxonomy: Option<&Taxonomy>,
) -> GroupEquivalentResult<E> {
    let _span = SPAN_GROUP_EQUIVALENT.start();
    let anns = expr.annotations();
    let mergeable: Vec<AnnId> = anns
        .iter()
        .copied()
        .filter(|&a| constraints.rule(store.get(a).domain).is_some())
        .collect();
    let classes = equivalence_classes(&mergeable, valuations);

    let mut mapping = Mapping::identity();
    let mut created = Vec::new();
    for class in classes {
        if class.len() < 2 {
            continue;
        }
        // Split the class by domain, then greedily into constraint-ok
        // subgroups.
        let mut remaining = class;
        while let Some(seed) = remaining.first().copied() {
            let mut group = vec![seed];
            remaining.remove(0);
            let mut ix = 0;
            while ix < remaining.len() {
                let mut attempt = group.clone();
                attempt.push(remaining[ix]);
                if constraints.group_ok(&attempt, store, taxonomy) {
                    group.push(remaining.remove(ix));
                } else {
                    ix += 1;
                }
            }
            if group.len() < 2 {
                continue;
            }
            let domain = store.get(group[0]).domain;
            let name = shared_attr(&group, store, &[])
                .map(|(_, v)| store.value_name(v).to_owned())
                .unwrap_or_else(|| format!("Eq({})", store.name(group[0])));
            let summary = store.add_summary(&name, domain, &group);
            GROUPS_COLLAPSED.add(group.len() as u64 - 1);
            for &m in &group {
                mapping.set(m, summary);
            }
            created.push(summary);
        }
    }
    let result = if mapping.is_identity() {
        expr.clone()
    } else {
        expr.apply_mapping(&mapping)
    };
    GroupEquivalentResult {
        expr: result,
        mapping,
        created,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::MergeRule;
    use prox_provenance::{
        AggKind, AggValue, Phi, PhiMap, Polynomial, ProvExpr, Tensor, ValuationClass,
    };

    fn a(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    #[test]
    fn refinement_splits_by_each_valuation() {
        let anns: Vec<AnnId> = (0..4).map(a).collect();
        // v1 cancels {0,1}; v2 cancels {1}.
        let v1 = Valuation::cancel(&[a(0), a(1)]);
        let v2 = Valuation::cancel(&[a(1)]);
        let classes = equivalence_classes(&anns, &[v1, v2]);
        let mut sorted: Vec<Vec<AnnId>> = classes;
        sorted.sort();
        assert_eq!(sorted, vec![vec![a(0)], vec![a(1)], vec![a(2), a(3)]]);
    }

    #[test]
    fn no_valuations_one_class() {
        let anns: Vec<AnnId> = (0..3).map(a).collect();
        let classes = equivalence_classes(&anns, &[]);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 3);
    }

    #[test]
    fn cancel_single_annotation_makes_singletons() {
        // Under "cancel single annotation" no two annotations agree on all
        // valuations, so GroupEquivalent is a no-op.
        let mut s = AnnStore::new();
        let anns: Vec<AnnId> = (0..3)
            .map(|i| s.add_base_with(&format!("U{i}"), "users", &[("g", "x")]))
            .collect();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &anns, &[]);
        let classes = equivalence_classes(&anns, &vals);
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn group_equivalent_merges_attribute_twins_and_preserves_distance() {
        // Two users with identical attributes are indistinguishable under
        // "cancel single attribute" — they merge with distance 0.
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "F")]);
        let u3 = s.add_base_with("U3", "users", &[("gender", "M")]);
        let mv = s.add_base_with("M", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        for (u, r) in [(u1, 3.0), (u2, 4.0), (u3, 5.0)] {
            p.push(mv, Tensor::new(Polynomial::var(u), AggValue::single(r)));
        }
        let users = s.domain("users");
        let vals = ValuationClass::CancelSingleAttribute.generate(&s, &[u1, u2, u3], &[users]);
        let cfg =
            ConstraintConfig::new().allow(users, MergeRule::SharedAttribute { attrs: vec![] });
        let res = group_equivalent(&p, &vals, &mut s, &cfg, None);
        assert_eq!(res.created.len(), 1);
        assert_eq!(res.expr.size(), 2);
        assert_eq!(s.base_of(res.created[0]), vec![u1, u2]);
        assert_eq!(s.name(res.created[0]), "F");

        // Distance of the grouped expression is exactly 0.
        let engine = crate::distance::DistanceEngine::new(
            &p,
            &vals,
            PhiMap::uniform(Phi::Or),
            crate::val_func::ValFuncKind::Euclidean,
        );
        let d = engine.distance(&res.expr, &res.mapping, &s, &Default::default());
        assert_eq!(d, 0.0);
    }

    #[test]
    fn constraint_violating_class_is_split() {
        // U1,U2 equivalent but share no attribute → cannot merge.
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "M")]);
        let mv = s.add_base_with("M", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        p.push(mv, Tensor::new(Polynomial::var(u1), AggValue::single(3.0)));
        p.push(mv, Tensor::new(Polynomial::var(u2), AggValue::single(4.0)));
        let users = s.domain("users");
        let cfg =
            ConstraintConfig::new().allow(users, MergeRule::SharedAttribute { attrs: vec![] });
        // Empty valuation set → everything equivalent, but constraints block.
        let res = group_equivalent(&p, &[], &mut s, &cfg, None);
        assert!(res.created.is_empty());
        assert!(res.mapping.is_identity());
        assert_eq!(res.expr.size(), p.size());
    }
}
