//! The #P-hardness reduction of Prop 4.1.1, made executable.
//!
//! `DIST-COMP` — computing the exact distance over all valuations — is
//! #P-hard by reduction from #DNF: map every variable of a DNF formula `f`
//! (an `N[Ann]` polynomial read as a disjunction of conjunctive clauses) to
//! a single annotation `A`; then the number of *unsatisfying* valuations of
//! `f` is recoverable from the number of valuations on which `f` and
//! `h(f)` disagree. This module implements both directions exhaustively so
//! tests can certify the reduction on small formulas. It is deliberately
//! exponential — the point of the proposition is that no polynomial
//! algorithm exists (unless P = NP); the practical path is the sampler.

use prox_provenance::{AnnId, Mapping, Polynomial, Valuation};

/// Count satisfying valuations of a DNF formula over `vars` by exhaustive
/// enumeration (≤ 24 variables).
pub fn count_models_exhaustive(f: &Polynomial, vars: &[AnnId]) -> u64 {
    assert!(vars.len() <= 24, "too many variables for exhaustive count");
    let mut models = 0u64;
    for bits in 0..(1u64 << vars.len()) {
        let v = valuation_from_bits(vars, bits);
        if f.eval_bool(&v) {
            models += 1;
        }
    }
    models
}

/// The number of valuations on which `f` and `h(f)` disagree, where `h`
/// maps every variable to the single annotation `a` and the lifted
/// valuation assigns `a` the disjunction of the variables' values —
/// the un-normalized distance of the reduction (disagreement VAL-FUNC,
/// `w(v) = 1`, summed rather than averaged).
pub fn disagreement_count(f: &Polynomial, vars: &[AnnId], a: AnnId) -> u64 {
    assert!(vars.len() <= 24, "too many variables for exhaustive count");
    let h = Mapping::group(vars, a);
    let hf = f.map(&h);
    let mut disagreements = 0u64;
    for bits in 0..(1u64 << vars.len()) {
        let v = valuation_from_bits(vars, bits);
        let orig = f.eval_bool(&v);
        // φ = ∨ over all variables mapped to `a`.
        let mut lifted = Valuation::all_true();
        lifted.set(a, vars.iter().any(|&x| v.truth(x)));
        let summ = hf.eval_bool(&lifted);
        if orig != summ {
            disagreements += 1;
        }
    }
    disagreements
}

/// Recover the model count of `f` from the disagreement count, following
/// the proof of Prop 4.1.1: `h(f)` is true exactly when some variable is
/// true (for constant-free `f`), so disagreements are the unsatisfying
/// valuations minus the all-false valuation (where both sides are false).
pub fn count_models_via_distance(f: &Polynomial, vars: &[AnnId], scratch: AnnId) -> u64 {
    let n = vars.len() as u32;
    let total = 1u64 << n;
    if f.is_zero() {
        // Degenerate case outside the reduction's scope: both sides are
        // identically false, the distance is 0, and there are no models.
        return 0;
    }
    let disagreements = disagreement_count(f, vars, scratch);
    // Check agreement on the all-false valuation (step 1 of the proof's
    // decision procedure, adapted to φ = ∨):
    let all_false = {
        let mut v = Valuation::all_true();
        for &x in vars {
            v.set(x, false);
        }
        v
    };
    let f_all_false = f.eval_bool(&all_false);
    // h(f) under all-false lifts to A=false, hence false (no constant term
    // assumed). If f is also false there they agree; that valuation is
    // unsatisfying but not a disagreement.
    let unsat = if f_all_false {
        disagreements
    } else {
        disagreements + 1
    };
    total - unsat
}

fn valuation_from_bits(vars: &[AnnId], bits: u64) -> Valuation {
    let mut v = Valuation::all_true();
    for (ix, &a) in vars.iter().enumerate() {
        v.set(a, bits >> ix & 1 == 1);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::Monomial;

    fn a(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    fn vars(n: usize) -> Vec<AnnId> {
        (0..n).map(a).collect()
    }

    /// x0·x1 + x2
    fn sample_dnf() -> Polynomial {
        Polynomial::from_monomial(Monomial::from_factors(vec![a(0), a(1)]))
            .add(&Polynomial::var(a(2)))
    }

    #[test]
    fn exhaustive_count_is_correct() {
        // Models of x0x1 ∨ x2 over 3 vars: x2 true (4) + x0x1 true & x2
        // false (1) = 5.
        assert_eq!(count_models_exhaustive(&sample_dnf(), &vars(3)), 5);
    }

    #[test]
    fn reduction_recovers_model_count() {
        let f = sample_dnf();
        let vs = vars(3);
        let scratch = a(10);
        assert_eq!(
            count_models_via_distance(&f, &vs, scratch),
            count_models_exhaustive(&f, &vs)
        );
    }

    #[test]
    fn reduction_on_various_formulas() {
        let scratch = a(10);
        let cases: Vec<(Polynomial, usize)> = vec![
            // single positive literal
            (Polynomial::var(a(0)), 1),
            // x0 + x1 over 2 vars
            (Polynomial::var(a(0)).add(&Polynomial::var(a(1))), 2),
            // x0·x1·x2 over 3 vars
            (
                Polynomial::from_monomial(Monomial::from_factors(vec![a(0), a(1), a(2)])),
                3,
            ),
            // x0·x1 + x1·x2 + x0·x2 over 3 vars ("majority-ish")
            (
                Polynomial::from_monomial(Monomial::from_factors(vec![a(0), a(1)]))
                    .add(&Polynomial::from_monomial(Monomial::from_factors(vec![
                        a(1),
                        a(2),
                    ])))
                    .add(&Polynomial::from_monomial(Monomial::from_factors(vec![
                        a(0),
                        a(2),
                    ]))),
                3,
            ),
        ];
        for (f, n) in cases {
            let vs = vars(n);
            assert_eq!(
                count_models_via_distance(&f, &vs, scratch),
                count_models_exhaustive(&f, &vs),
                "formula {f:?}"
            );
        }
    }

    #[test]
    fn unsatisfiable_formula_counts_zero() {
        // The zero polynomial has no models; h(0) = 0 agrees everywhere
        // except where some var is true... actually both sides are always
        // false, so disagreements = 0 and unsat = 2^n.
        let f = Polynomial::zero();
        let vs = vars(2);
        assert_eq!(count_models_exhaustive(&f, &vs), 0);
        assert_eq!(count_models_via_distance(&f, &vs, a(10)), 0);
    }
}
