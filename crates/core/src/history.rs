//! Per-step records of a summarization run.
//!
//! Each algorithm step logs what was merged, the resulting measurements,
//! and wall-clock timings — the raw material for the paper's Figures 6.3
//! (progress over steps) and 6.5 (candidate-computation and summarization
//! times), and for the PROX UI's step-through view.

use std::time::Duration;

use prox_provenance::AnnId;
use prox_robust::BudgetStop;

/// Why the algorithm stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The expression reached `TARGET-SIZE`.
    TargetSize,
    /// The next step would have crossed `TARGET-DIST`
    /// (the previous expression was returned, per Algorithm 1).
    TargetDist,
    /// The step budget ran out (§6.7).
    MaxSteps,
    /// No candidate mapping satisfied the constraints.
    NoCandidates,
    /// The execution budget's wall-clock deadline passed mid-run; the
    /// best-so-far summary was returned (anytime contract).
    DeadlineExceeded,
    /// The execution budget's step ceiling (or a fault-injected budget
    /// trip) ended the run; the best-so-far summary was returned.
    BudgetExhausted,
    /// The cooperative cancel flag was raised; the best-so-far summary
    /// was returned.
    Cancelled,
}

impl StopReason {
    /// Stable lowercase name used in service responses, trace span
    /// attributes, and bench manifests.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::TargetSize => "target_size",
            StopReason::TargetDist => "target_dist",
            StopReason::MaxSteps => "max_steps",
            StopReason::NoCandidates => "no_candidates",
            StopReason::DeadlineExceeded => "deadline_exceeded",
            StopReason::BudgetExhausted => "budget_exhausted",
            StopReason::Cancelled => "cancelled",
        }
    }
}

impl From<BudgetStop> for StopReason {
    fn from(stop: BudgetStop) -> Self {
        match stop {
            BudgetStop::Deadline => StopReason::DeadlineExceeded,
            BudgetStop::Steps | BudgetStop::Injected => StopReason::BudgetExhausted,
            BudgetStop::Cancelled => StopReason::Cancelled,
        }
    }
}

/// Record of one algorithm step.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// 1-based step index.
    pub step: usize,
    /// Annotations merged in this step (current-level members).
    pub merged: Vec<AnnId>,
    /// The summary annotation created.
    pub target: AnnId,
    /// `CandidateScore` of the chosen candidate.
    pub score: f64,
    /// Normalized distance from the original after this step.
    pub distance: f64,
    /// Expression size after this step.
    pub size: usize,
    /// Number of candidates examined this step.
    pub candidates: usize,
    /// Total time spent measuring candidates this step.
    pub candidate_time: Duration,
    /// Total wall time of the step.
    pub step_time: Duration,
    /// Expression size *before* this step (for per-size timing plots).
    pub size_before: usize,
}

impl StepRecord {
    /// Average time spent per examined candidate.
    pub fn time_per_candidate(&self) -> Duration {
        if self.candidates == 0 {
            Duration::ZERO
        } else {
            self.candidate_time / self.candidates as u32
        }
    }
}

/// A full run's step history, with convenience accessors for the
/// experiment harness.
#[derive(Clone, Debug, Default)]
pub struct History {
    /// Steps in execution order.
    pub steps: Vec<StepRecord>,
}

impl History {
    /// Number of steps executed.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no step was executed.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Distance trajectory across steps.
    pub fn distances(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.distance).collect()
    }

    /// Size trajectory across steps.
    pub fn sizes(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.size).collect()
    }

    /// Verify Prop 4.2.2's monotonicity on this run: distances
    /// non-decreasing, sizes non-increasing. Returns the first violating
    /// step index if any.
    pub fn check_monotone(&self) -> Result<(), usize> {
        for w in self.steps.windows(2) {
            if w[1].distance + 1e-9 < w[0].distance || w[1].size > w[0].size {
                return Err(w[1].step);
            }
        }
        Ok(())
    }

    /// Total candidate-measurement time across the run.
    pub fn total_candidate_time(&self) -> Duration {
        self.steps.iter().map(|s| s.candidate_time).sum()
    }

    /// Total run time across steps.
    pub fn total_step_time(&self) -> Duration {
        self.steps.iter().map(|s| s.step_time).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(step: usize, distance: f64, size: usize) -> StepRecord {
        StepRecord {
            step,
            merged: vec![],
            target: AnnId::from_index(0),
            score: 0.0,
            distance,
            size,
            candidates: 4,
            candidate_time: Duration::from_micros(100),
            step_time: Duration::from_micros(150),
            size_before: size + 1,
        }
    }

    #[test]
    fn monotone_check_accepts_valid_runs() {
        let h = History {
            steps: vec![rec(1, 0.0, 10), rec(2, 0.1, 9), rec(3, 0.1, 8)],
        };
        assert!(h.check_monotone().is_ok());
    }

    #[test]
    fn monotone_check_flags_violations() {
        let h = History {
            steps: vec![rec(1, 0.2, 10), rec(2, 0.1, 9)],
        };
        assert_eq!(h.check_monotone(), Err(2));
        let h2 = History {
            steps: vec![rec(1, 0.1, 9), rec(2, 0.2, 10)],
        };
        assert_eq!(h2.check_monotone(), Err(2));
    }

    #[test]
    fn per_candidate_time_divides() {
        let r = rec(1, 0.0, 5);
        assert_eq!(r.time_per_candidate(), Duration::from_micros(25));
    }

    #[test]
    fn trajectories_extract_series() {
        let h = History {
            steps: vec![rec(1, 0.0, 10), rec(2, 0.3, 7)],
        };
        assert_eq!(h.distances(), vec![0.0, 0.3]);
        assert_eq!(h.sizes(), vec![10, 7]);
        assert_eq!(h.total_step_time(), Duration::from_micros(300));
    }
}
