//! # prox-core
//!
//! The PROX summarization algorithm (*Approximated Summarization of Data
//! Provenance*, EDBT 2016): everything between a provenance expression and
//! its compact, approximately-equivalent summary.
//!
//! * [`distance::DistanceEngine`] — the distance of Definition 3.2.2 over an
//!   explicit valuation class, with the VAL-FUNC family of §3.2
//!   ([`val_func::ValFuncKind`]);
//! * [`sampler`] — the (ε,δ) sampling approximation over all `2ⁿ`
//!   valuations (Prop 4.1.2), plus an exhaustive reference;
//! * [`hardness`] — the executable #DNF reduction behind the #P-hardness of
//!   exact distance computation (Prop 4.1.1);
//! * [`equivalence`] — `GroupEquivalent`, the distance-0 pre-pass
//!   (Prop 4.2.1);
//! * [`constraints`], [`candidates`] — the semantic constraints on mappings
//!   and the per-step candidate enumeration;
//! * [`score`] — `CandidateScore` (Definition 3.2.4);
//! * [`summarize::Summarizer`] — Algorithm 1 itself, generic over
//!   expression kinds (aggregated vector provenance and DDP provenance).
//!
//! ```
//! use prox_core::{
//!     ConstraintConfig, MergeRule, SummarizeConfig, Summarizer,
//! };
//! use prox_provenance::{
//!     AggKind, AggValue, AnnStore, Polynomial, ProvExpr, Tensor, ValuationClass,
//! };
//!
//! let mut store = AnnStore::new();
//! let u1 = store.add_base_with("U1", "users", &[("gender", "F")]);
//! let u2 = store.add_base_with("U2", "users", &[("gender", "F")]);
//! let movie = store.add_base_with("MatchPoint", "movies", &[]);
//! let mut p0 = ProvExpr::new(AggKind::Max);
//! p0.push(movie, Tensor::new(Polynomial::var(u1), AggValue::single(3.0)));
//! p0.push(movie, Tensor::new(Polynomial::var(u2), AggValue::single(5.0)));
//!
//! let users = store.domain("users");
//! let constraints =
//!     ConstraintConfig::new().allow(users, MergeRule::SharedAttribute { attrs: vec![] });
//! let valuations =
//!     ValuationClass::CancelSingleAnnotation.generate(&store, &[u1, u2], &[users]);
//! let mut summarizer = Summarizer::new(
//!     &mut store,
//!     constraints,
//!     SummarizeConfig::weighted(0.5, 10),
//! );
//! let result = summarizer.summarize(&p0, &valuations).unwrap();
//! assert!(result.final_size() <= 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod candidates;
pub mod config;
pub mod constraints;
pub mod distance;
pub mod equivalence;
pub mod hardness;
pub mod history;
pub mod optimal;
pub mod sampler;
pub mod score;
pub mod summarize;
pub mod val_func;

pub use candidates::{enumerate_with, Candidate};
pub use config::{ScoreMode, SummarizeConfig, TieBreak};
// Re-exported so downstream crates keep a single import surface for the
// robustness types threaded through the summarization APIs.
pub use constraints::{ConstraintConfig, MergeRule};
pub use distance::{DistanceEngine, MemberOverride};
pub use equivalence::{equivalence_classes, group_equivalent};
pub use history::{History, StepRecord, StopReason};
pub use optimal::{greedy_gap, optimal_summary, Objective, OptimalResult};
pub use prox_robust::{
    BudgetSession, BudgetStop, CancelFlag, ErrorKind, ExecutionBudget, ProxError,
};
pub use sampler::{approx_distance, exact_distance_all, SampleEstimate, SamplerConfig};
pub use score::CandidateMeasure;
pub use summarize::{Summarizer, SummaryResult};
pub use val_func::{ValFuncCtx, ValFuncKind};
