//! Exhaustive reference summarizer for small inputs.
//!
//! Algorithm 1 is a greedy heuristic; this module searches the *entire*
//! space of constraint-satisfying merge sequences (with memoization on the
//! reached partition) and returns the summary minimizing the chosen
//! objective. Exponential — usable only for ≲ 10 mergeable annotations —
//! but it turns "greedy is good" from a claim into a measured optimality
//! gap (ablation A.4).

use std::collections::HashSet;

use prox_provenance::{AnnId, AnnStore, Mapping, Summarizable, Valuation};
use prox_robust::ProxError;
use prox_taxonomy::Taxonomy;

use crate::config::SummarizeConfig;
use crate::constraints::ConstraintConfig;
use crate::distance::{DistanceEngine, MemberOverride};

/// What the exhaustive search minimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Minimal distance among summaries with size ≤ the config's
    /// `TARGET-SIZE`.
    DistanceUnderSizeBound,
    /// Minimal size among summaries with distance < the config's
    /// `TARGET-DIST`.
    SizeUnderDistanceBound,
    /// Minimal `wDist·distance + wSize·size/|p₀|` (normalized-score
    /// objective) over all reachable summaries.
    Weighted,
}

/// The best summary found.
#[derive(Clone, Debug)]
pub struct OptimalResult<E> {
    /// The optimal expression.
    pub summary: E,
    /// Its cumulative mapping.
    pub mapping: Mapping,
    /// Normalized distance from the original.
    pub distance: f64,
    /// Its size.
    pub size: usize,
    /// Number of distinct partitions explored.
    pub explored: usize,
}

/// Exhaustively search merge sequences. `config` supplies the bounds,
/// weights, φ and VAL-FUNC; constraints/taxonomy gate the merges exactly as
/// in the greedy algorithm.
pub fn optimal_summary<E: Summarizable>(
    p0: &E,
    valuations: &[Valuation],
    store: &mut AnnStore,
    constraints: &ConstraintConfig,
    taxonomy: Option<&Taxonomy>,
    config: &SummarizeConfig,
    objective: Objective,
) -> Result<OptimalResult<E>, ProxError> {
    config.validate()?;
    let mergeable: Vec<AnnId> = p0
        .annotations()
        .into_iter()
        .filter(|&a| constraints.rule(store.get(a).domain).is_some())
        .collect();
    if mergeable.len() > 12 {
        return Err(ProxError::unsupported(format!(
            "exhaustive search over {} mergeable annotations is infeasible",
            mergeable.len()
        )));
    }
    let engine = DistanceEngine::new(p0, valuations, config.phi.clone(), config.val_func);
    let initial_size = p0.size().max(1);

    // Search state: a partition of `mergeable` represented canonically as
    // sorted groups of sorted members. Every state's expression is derived
    // by mapping each non-singleton group onto its first member with a
    // member override (identical scoring semantics to the greedy path).
    let initial: Vec<Vec<AnnId>> = mergeable.iter().map(|&a| vec![a]).collect();
    let mut seen: HashSet<Vec<Vec<AnnId>>> = HashSet::new();
    let mut stack = vec![initial];
    let mut best: Option<OptimalResult<E>> = None;
    let mut explored = 0usize;

    while let Some(partition) = stack.pop() {
        if !seen.insert(partition.clone()) {
            continue;
        }
        explored += 1;

        // Evaluate this partition.
        let mut h = Mapping::identity();
        let mut overrides = MemberOverride::new();
        for group in &partition {
            if group.len() > 1 {
                let rep = group[0];
                for &m in &group[1..] {
                    h.set(m, rep);
                }
                let mut base = Vec::new();
                for &m in group {
                    base.extend(store.base_of(m));
                }
                overrides.insert(rep, base);
            }
        }
        let expr = p0.apply_mapping(&h);
        let distance = engine.distance(&expr, &h, store, &overrides);
        let size = expr.size();

        let feasible = match objective {
            Objective::DistanceUnderSizeBound => size <= config.target_size,
            Objective::SizeUnderDistanceBound => distance < config.target_dist,
            Objective::Weighted => true,
        };
        if feasible {
            let better = match (&best, objective) {
                (None, _) => true,
                (Some(b), Objective::DistanceUnderSizeBound) => distance < b.distance - 1e-12,
                (Some(b), Objective::SizeUnderDistanceBound) => size < b.size,
                (Some(b), Objective::Weighted) => {
                    let score = |d: f64, s: usize| {
                        config.w_dist * d + config.w_size * s as f64 / initial_size as f64
                    };
                    score(distance, size) < score(b.distance, b.size) - 1e-12
                }
            };
            if better {
                best = Some(OptimalResult {
                    summary: expr,
                    mapping: h.clone(),
                    distance,
                    size,
                    explored: 0,
                });
            }
        }

        // Expand: merge every constraint-satisfying pair of groups.
        for i in 0..partition.len() {
            for j in (i + 1)..partition.len() {
                let mut merged: Vec<AnnId> = partition[i]
                    .iter()
                    .chain(partition[j].iter())
                    .copied()
                    .collect();
                merged.sort_unstable();
                if !constraints.group_ok(&merged, store, taxonomy) {
                    continue;
                }
                let mut next: Vec<Vec<AnnId>> = partition
                    .iter()
                    .enumerate()
                    .filter(|&(ix, _)| ix != i && ix != j)
                    .map(|(_, g)| g.clone())
                    .collect();
                next.push(merged);
                next.sort();
                if !seen.contains(&next) {
                    stack.push(next);
                }
            }
        }
    }

    match best {
        Some(mut b) => {
            b.explored = explored;
            Ok(b)
        }
        None => Err(ProxError::unsupported(
            "no feasible summary under the requested bounds",
        )),
    }
}

/// Memo-friendly canonical key of a partition (used in tests).
#[allow(dead_code)]
fn canonical(partition: &[Vec<AnnId>]) -> Vec<Vec<AnnId>> {
    let mut p: Vec<Vec<AnnId>> = partition
        .iter()
        .map(|g| {
            let mut g = g.clone();
            g.sort_unstable();
            g
        })
        .collect();
    p.sort();
    p
}

/// Compare the greedy algorithm against the exhaustive optimum on the same
/// input; returns `(greedy, optimal)` distances for
/// [`Objective::DistanceUnderSizeBound`].
pub fn greedy_gap<E: Summarizable>(
    p0: &E,
    valuations: &[Valuation],
    store: &mut AnnStore,
    constraints: &ConstraintConfig,
    taxonomy: Option<&Taxonomy>,
    target_size: usize,
) -> Result<(f64, f64), ProxError> {
    let config = SummarizeConfig::target_size(target_size);
    let mut greedy_store = store.clone();
    let mut summarizer =
        crate::summarize::Summarizer::new(&mut greedy_store, constraints.clone(), config.clone());
    let greedy = match taxonomy {
        Some(t) => summarizer.with_taxonomy(t).summarize(p0, valuations)?,
        None => summarizer.summarize(p0, valuations)?,
    };
    let optimal = optimal_summary(
        p0,
        valuations,
        store,
        constraints,
        taxonomy,
        &config,
        Objective::DistanceUnderSizeBound,
    )?;
    Ok((greedy.final_distance, optimal.distance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::MergeRule;
    use prox_provenance::{AggKind, AggValue, Polynomial, ProvExpr, Tensor, ValuationClass};

    fn setup() -> (AnnStore, ProvExpr, Vec<AnnId>, ConstraintConfig) {
        let mut s = AnnStore::new();
        let users: Vec<AnnId> = (0..5)
            .map(|i| s.add_base_with(&format!("U{i}"), "users", &[("g", "x")]))
            .collect();
        let m = s.add_base_with("M", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        for (i, &u) in users.iter().enumerate() {
            p.push(
                m,
                Tensor::new(Polynomial::var(u), AggValue::single(1.0 + i as f64)),
            );
        }
        let dom = s.domain("users");
        let cfg = ConstraintConfig::new().allow(dom, MergeRule::SharedAttribute { attrs: vec![] });
        (s, p, users, cfg)
    }

    #[test]
    fn finds_a_lossless_merge_when_one_exists() {
        // Under MAX and single-cancellation valuations, merging the two
        // lowest raters is lossless; the optimum at target size-1 must be
        // distance 0.
        let (mut s, p, users, cfg) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        let config = SummarizeConfig::target_size(p.size() - 1);
        let res = optimal_summary(
            &p,
            &vals,
            &mut s,
            &cfg,
            None,
            &config,
            Objective::DistanceUnderSizeBound,
        )
        .expect("feasible");
        assert_eq!(res.distance, 0.0);
        assert!(res.size < p.size());
        assert!(res.explored > 1);
    }

    #[test]
    fn greedy_matches_optimum_on_small_inputs() {
        let (mut s, p, users, cfg) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        let (greedy, optimal) =
            greedy_gap(&p, &vals, &mut s, &cfg, None, p.size() - 2).expect("feasible");
        assert!(greedy + 1e-12 >= optimal, "optimum is a lower bound");
        // On this simple workload the greedy heuristic is optimal.
        assert!((greedy - optimal).abs() < 1e-9, "{greedy} vs {optimal}");
    }

    #[test]
    fn size_objective_respects_distance_bound() {
        let (mut s, p, users, cfg) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        let mut config = SummarizeConfig::target_dist(0.5);
        config.target_dist = 0.5;
        let res = optimal_summary(
            &p,
            &vals,
            &mut s,
            &cfg,
            None,
            &config,
            Objective::SizeUnderDistanceBound,
        )
        .expect("feasible");
        assert!(res.distance < 0.5);
        assert!(res.size <= p.size());
    }

    #[test]
    fn infeasible_bounds_error() {
        let (mut s, p, users, cfg) = setup();
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[]);
        // Size bound 0 is unreachable (validate requires ≥ 1; use 1 with a
        // structure that cannot reach it: 5 users, one movie → min size 1
        // is actually reachable by merging all → use distance bound 0).
        let mut config = SummarizeConfig::target_dist(0.0);
        config.target_dist = 0.0;
        let err = optimal_summary(
            &p,
            &vals,
            &mut s,
            &cfg,
            None,
            &config,
            Objective::SizeUnderDistanceBound,
        );
        assert!(err.is_err());
    }

    #[test]
    fn too_many_annotations_rejected() {
        let mut s = AnnStore::new();
        let users: Vec<AnnId> = (0..15)
            .map(|i| s.add_base_with(&format!("U{i}"), "users", &[("g", "x")]))
            .collect();
        let m = s.add_base_with("M", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        for &u in &users {
            p.push(m, Tensor::new(Polynomial::var(u), AggValue::single(1.0)));
        }
        let dom = s.domain("users");
        let cfg = ConstraintConfig::new().allow(dom, MergeRule::Any);
        let err = optimal_summary(
            &p,
            &[],
            &mut s,
            &cfg,
            None,
            &SummarizeConfig::target_size(1),
            Objective::DistanceUnderSizeBound,
        );
        assert!(err.is_err());
    }
}
