//! Sampling approximation of the distance over *all* truth valuations
//! (Prop 4.1.2).
//!
//! Computing the exact distance over the full `2ⁿ` valuation space is
//! #P-hard (Prop 4.1.1), but an `(ε, δ)` absolute approximation is
//! obtained by sampling valuations uniformly: each sample draws a truth
//! valuation, evaluates both expressions, and accumulates the VAL-FUNC
//! value. The required sample count follows from a concentration bound on
//! values normalized into `[0,1]` (the paper cites Chebyshev; we use the
//! tighter Hoeffding count and expose the Chebyshev count as well).

use std::collections::BTreeMap;

use prox_provenance::{AnnId, AnnStore, EvalOutcome, Mapping, PhiMap, Summarizable, Valuation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::distance::MemberOverride;
use crate::val_func::{ValFuncCtx, ValFuncKind};

/// Configuration for the sampling approximator.
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Absolute error bound ε.
    pub epsilon: f64,
    /// Failure probability δ (the estimate is within ε with prob ≥ 1−δ).
    pub delta: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Optional hard cap on the sample count.
    pub max_samples: Option<usize>,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            epsilon: 0.05,
            delta: 0.05,
            seed: 0xD15EA5E,
            max_samples: None,
        }
    }
}

impl SamplerConfig {
    /// Hoeffding sample count for values in `[0,1]`:
    /// `n ≥ ln(2/δ) / (2ε²)`.
    pub fn hoeffding_samples(&self) -> usize {
        ((2.0 / self.delta).ln() / (2.0 * self.epsilon * self.epsilon)).ceil() as usize
    }

    /// Chebyshev sample count for values in `[0,1]` (variance ≤ 1/4):
    /// `n ≥ 1 / (4δε²)` — the bound the paper's proof invokes.
    pub fn chebyshev_samples(&self) -> usize {
        (1.0 / (4.0 * self.delta * self.epsilon * self.epsilon)).ceil() as usize
    }

    fn effective_samples(&self) -> usize {
        let n = self.hoeffding_samples().max(1);
        match self.max_samples {
            Some(cap) => n.min(cap),
            None => n,
        }
    }
}

/// Result of a sampling run.
#[derive(Clone, Copy, Debug)]
pub struct SampleEstimate {
    /// The estimated normalized distance.
    pub distance: f64,
    /// Number of samples drawn (`SampleCounter`).
    pub samples: usize,
}

/// Approximate the normalized distance between `original` and `summary`
/// over the space of all truth valuations of the original's annotations,
/// following the constructive proof of Prop 4.1.2:
///
/// 1. draw a truth valuation for the annotations of `p`;
/// 2. compute `v(p)`;
/// 3. lift to the summary's annotations via `h, φ`;
/// 4. add the (normalized) VAL-FUNC value to `SuccCounter`;
/// 5. increment `SampleCounter`; output the ratio.
#[allow(clippy::too_many_arguments)]
pub fn approx_distance<E: Summarizable>(
    original: &E,
    summary: &E,
    h: &Mapping,
    store: &AnnStore,
    overrides: &MemberOverride,
    phis: &PhiMap,
    val_func: ValFuncKind,
    cfg: SamplerConfig,
) -> SampleEstimate {
    let anns = original.annotations();
    let summary_anns = summary.annotations();
    let max_error = original.max_error().max(f64::MIN_POSITIVE);
    let ctx = ValFuncCtx {
        weight: 1.0,
        mismatch_penalty: max_error,
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.effective_samples();
    let mut succ = 0.0f64;
    for _ in 0..n {
        // (1) uniform random truth valuation
        let mut v = Valuation::all_true();
        for &a in &anns {
            v.set(a, rng.random::<bool>());
        }
        // (2) evaluate the original
        let orig_out = original.evaluate(&v);
        // (3) lift through h, φ
        let lifted = lift(&v, &summary_anns, store, overrides, phis);
        let summ_out = summary.evaluate(&lifted);
        // (4) accumulate normalized VAL-FUNC
        let projected;
        let orig_ref = match &orig_out {
            EvalOutcome::Vector(vec) => {
                projected = EvalOutcome::Vector(vec.project(h));
                &projected
            }
            other => other,
        };
        succ += (val_func.eval(orig_ref, &summ_out, ctx) / max_error).min(1.0);
    }
    SampleEstimate {
        distance: succ / n as f64,
        samples: n,
    }
}

fn lift(
    v: &Valuation,
    summary_anns: &[AnnId],
    store: &AnnStore,
    overrides: &MemberOverride,
    phis: &PhiMap,
) -> Valuation {
    let mut out = v.clone();
    for &a in summary_anns {
        let ann = store.get(a);
        let phi = phis.for_domain(ann.domain);
        if let Some(members) = overrides.get(&a) {
            out.set(a, phi.combine_bool(members.iter().map(|&m| v.truth(m))));
        } else if ann.kind.is_summary() {
            out.set(
                a,
                phi.combine_bool(ann.base_members().iter().map(|&m| v.truth(m))),
            );
        }
    }
    out
}

/// Exact distance over all `2ⁿ` valuations by exhaustive enumeration —
/// exponential; only for validating the sampler on small inputs.
pub fn exact_distance_all<E: Summarizable>(
    original: &E,
    summary: &E,
    h: &Mapping,
    store: &AnnStore,
    phis: &PhiMap,
    val_func: ValFuncKind,
) -> f64 {
    let anns = original.annotations();
    assert!(
        anns.len() <= 20,
        "exhaustive enumeration over {} annotations is infeasible",
        anns.len()
    );
    let summary_anns = summary.annotations();
    let max_error = original.max_error().max(f64::MIN_POSITIVE);
    let ctx = ValFuncCtx {
        weight: 1.0,
        mismatch_penalty: max_error,
    };
    let n = anns.len();
    let total = 1u64 << n;
    let mut acc = 0.0;
    let no_overrides = BTreeMap::new();
    for bits in 0..total {
        let mut v = Valuation::all_true();
        for (ix, &a) in anns.iter().enumerate() {
            v.set(a, bits >> ix & 1 == 1);
        }
        let orig_out = original.evaluate(&v);
        let lifted = lift(&v, &summary_anns, store, &no_overrides, phis);
        let summ_out = summary.evaluate(&lifted);
        let projected;
        let orig_ref = match &orig_out {
            EvalOutcome::Vector(vec) => {
                projected = EvalOutcome::Vector(vec.project(h));
                &projected
            }
            other => other,
        };
        acc += (val_func.eval(orig_ref, &summ_out, ctx) / max_error).min(1.0);
    }
    acc / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::{AggKind, AggValue, Phi, Polynomial, ProvExpr, Tensor};

    fn setup() -> (AnnStore, ProvExpr, Vec<AnnId>) {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[]);
        let u2 = s.add_base_with("U2", "users", &[]);
        let u3 = s.add_base_with("U3", "users", &[]);
        let m = s.add_base_with("M", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        for (u, r) in [(u1, 3.0), (u2, 5.0), (u3, 3.0)] {
            p.push(m, Tensor::new(Polynomial::var(u), AggValue::single(r)));
        }
        (s, p, vec![u1, u2, u3])
    }

    #[test]
    fn sample_counts_follow_bounds() {
        let cfg = SamplerConfig {
            epsilon: 0.1,
            delta: 0.05,
            ..Default::default()
        };
        assert_eq!(cfg.hoeffding_samples(), 185);
        assert_eq!(cfg.chebyshev_samples(), 500);
        assert!(cfg.hoeffding_samples() < cfg.chebyshev_samples());
    }

    #[test]
    fn identity_summary_samples_to_zero() {
        let (s, p, _) = setup();
        let est = approx_distance(
            &p,
            &p,
            &Mapping::identity(),
            &s,
            &BTreeMap::new(),
            &PhiMap::uniform(Phi::Or),
            ValFuncKind::Euclidean,
            SamplerConfig::default(),
        );
        assert_eq!(est.distance, 0.0);
        assert!(est.samples > 0);
    }

    #[test]
    fn sampler_converges_to_exact() {
        let (mut s, p, users) = setup();
        let dom = s.domain("users");
        let g = s.add_summary("G", dom, &[users[0], users[1]]);
        let h = Mapping::group(&[users[0], users[1]], g);
        let summary = p.map(&h);
        let phis = PhiMap::uniform(Phi::Or);
        let exact = exact_distance_all(&p, &summary, &h, &s, &phis, ValFuncKind::Euclidean);
        let est = approx_distance(
            &p,
            &summary,
            &h,
            &s,
            &BTreeMap::new(),
            &phis,
            ValFuncKind::Euclidean,
            SamplerConfig {
                epsilon: 0.02,
                delta: 0.01,
                seed: 42,
                max_samples: None,
            },
        );
        assert!(
            (est.distance - exact).abs() <= 0.02,
            "estimate {} vs exact {exact}",
            est.distance
        );
    }

    #[test]
    fn max_samples_caps_work() {
        let (s, p, _) = setup();
        let est = approx_distance(
            &p,
            &p,
            &Mapping::identity(),
            &s,
            &BTreeMap::new(),
            &PhiMap::uniform(Phi::Or),
            ValFuncKind::Euclidean,
            SamplerConfig {
                max_samples: Some(10),
                ..Default::default()
            },
        );
        assert_eq!(est.samples, 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let (mut s, p, users) = setup();
        let dom = s.domain("users");
        let g = s.add_summary("G", dom, &[users[0], users[2]]);
        let h = Mapping::group(&[users[0], users[2]], g);
        let summary = p.map(&h);
        let phis = PhiMap::uniform(Phi::Or);
        let cfg = SamplerConfig {
            seed: 7,
            max_samples: Some(200),
            ..Default::default()
        };
        let a = approx_distance(
            &p,
            &summary,
            &h,
            &s,
            &BTreeMap::new(),
            &phis,
            ValFuncKind::Euclidean,
            cfg,
        );
        let b = approx_distance(
            &p,
            &summary,
            &h,
            &s,
            &BTreeMap::new(),
            &phis,
            ValFuncKind::Euclidean,
            cfg,
        );
        assert_eq!(a.distance, b.distance);
    }
}
