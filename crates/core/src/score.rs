//! Candidate scoring (Definition 3.2.4).
//!
//! `CandidateScore = wDist · rDist + wSize · rSize`, where `rDist` is the
//! candidate's approximated-distance rank and `rSize` its size rank. Ranks
//! are competition ranks normalized to `[0,1]` (ties share a rank), so the
//! two components are commensurable regardless of their raw magnitudes.
//! A `Normalized` mode combining the raw normalized distance with
//! size/|p₀| is provided as an ablation.

use crate::config::ScoreMode;

/// Distance/size measurements for one candidate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CandidateMeasure {
    /// Normalized distance from the original expression, in `[0,1]`.
    pub distance: f64,
    /// Size of the candidate expression.
    pub size: usize,
}

/// Compute `CandidateScore` for every candidate.
///
/// `p0_size` is the original expression's size (used by the `Normalized`
/// mode). Returns one score per measure, lower = better.
pub fn score_all(
    measures: &[CandidateMeasure],
    mode: ScoreMode,
    w_dist: f64,
    w_size: f64,
    p0_size: usize,
) -> Vec<f64> {
    match mode {
        ScoreMode::Rank => {
            let r_dist = normalized_ranks(measures.iter().map(|m| m.distance).collect());
            let r_size = normalized_ranks(measures.iter().map(|m| m.size as f64).collect());
            r_dist
                .iter()
                .zip(&r_size)
                .map(|(d, s)| w_dist * d + w_size * s)
                .collect()
        }
        ScoreMode::Normalized => measures
            .iter()
            .map(|m| {
                let rel_size = if p0_size == 0 {
                    0.0
                } else {
                    m.size as f64 / p0_size as f64
                };
                w_dist * m.distance + w_size * rel_size
            })
            .collect(),
    }
}

/// Competition ranks normalized to `[0,1]`: the minimum value ranks 0, the
/// maximum ranks 1, ties share the rank of their first position. A single
/// candidate ranks 0.
pub fn normalized_ranks(values: Vec<f64>) -> Vec<f64> {
    let n = values.len();
    if n <= 1 {
        return vec![0.0; n];
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
    let denom = (n - 1) as f64;
    let mut ranks = vec![0.0; n];
    let mut ix = 0;
    while ix < n {
        // Find the tie run starting at ix.
        let mut jx = ix;
        while jx + 1 < n && values[order[jx + 1]] == values[order[ix]] {
            jx += 1;
        }
        let rank = ix as f64 / denom;
        for &orig in &order[ix..=jx] {
            ranks[orig] = rank;
        }
        ix = jx + 1;
    }
    ranks
}

/// Indices of all minimal entries (within `eps`) — the tie set handed to
/// the taxonomy tie-breaker.
pub fn minimal_indices(scores: &[f64], eps: f64) -> Vec<usize> {
    let Some(min) = scores.iter().copied().min_by(|a, b| a.total_cmp(b)) else {
        return Vec::new();
    };
    scores
        .iter()
        .enumerate()
        .filter(|&(_, s)| (s - min).abs() <= eps)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(distance: f64, size: usize) -> CandidateMeasure {
        CandidateMeasure { distance, size }
    }

    #[test]
    fn rank_mode_orders_by_weighted_ranks() {
        let measures = [m(0.0, 10), m(0.5, 8), m(1.0, 6)];
        // wDist=1: scores follow distance ranks 0, .5, 1
        let s = score_all(&measures, ScoreMode::Rank, 1.0, 0.0, 12);
        assert_eq!(s, vec![0.0, 0.5, 1.0]);
        // wSize=1: size ranks reversed
        let s = score_all(&measures, ScoreMode::Rank, 0.0, 1.0, 12);
        assert_eq!(s, vec![1.0, 0.5, 0.0]);
        // Balanced: all equal
        let s = score_all(&measures, ScoreMode::Rank, 0.5, 0.5, 12);
        assert!(s.iter().all(|&x| (x - 0.5).abs() < 1e-12));
    }

    #[test]
    fn ties_share_rank() {
        let measures = [m(0.3, 5), m(0.3, 5), m(0.7, 5)];
        let s = score_all(&measures, ScoreMode::Rank, 1.0, 0.0, 10);
        assert_eq!(s[0], s[1]);
        assert!(s[2] > s[0]);
    }

    #[test]
    fn single_candidate_scores_zero() {
        let s = score_all(&[m(0.9, 100)], ScoreMode::Rank, 0.5, 0.5, 100);
        assert_eq!(s, vec![0.0]);
    }

    #[test]
    fn normalized_mode_uses_raw_values() {
        let measures = [m(0.2, 50), m(0.4, 25)];
        let s = score_all(&measures, ScoreMode::Normalized, 0.5, 0.5, 100);
        assert!((s[0] - (0.1 + 0.25)).abs() < 1e-12);
        assert!((s[1] - (0.2 + 0.125)).abs() < 1e-12);
    }

    #[test]
    fn minimal_indices_returns_tie_set() {
        let scores = [0.5, 0.1, 0.1 + 1e-12, 0.9];
        let min = minimal_indices(&scores, 1e-9);
        assert_eq!(min, vec![1, 2]);
        assert!(minimal_indices(&[], 0.0).is_empty());
    }
}
