//! The provenance summarization algorithm (Algorithm 1, "Prov-Approx").
//!
//! Starting from the original annotations, the greedy algorithm constructs
//! the homomorphism gradually:
//!
//! 1. group annotations that are equivalent w.r.t. the valuation class
//!    (`GroupEquivalent`, Prop 4.2.1) — free distance-0 shrinkage;
//! 2. repeatedly examine every constraint-satisfying single-step mapping of
//!    `k` annotations to one new annotation, measure each candidate's
//!    approximated distance from the *original* expression and its size,
//!    and commit the candidate with the minimal `CandidateScore`
//!    (Definition 3.2.4), breaking ties by taxonomy distance;
//! 3. stop on `TARGET-SIZE`, `TARGET-DIST` (backing off one step, as in the
//!    algorithm's final lines), the step budget, or candidate exhaustion.

use prox_obs::{Counter, SpanTimer, StepTimer};
use prox_provenance::{AnnStore, Mapping, Summarizable, Valuation};
use prox_robust::{BudgetStop, ProxError};
use prox_taxonomy::{group_distance, Taxonomy, TaxonomyFold};

use crate::candidates::{enumerate_with, Candidate};
use crate::config::{SummarizeConfig, TieBreak};
use crate::constraints::{concepts_of, ConstraintConfig};
use crate::distance::{DistanceEngine, MemberOverride};
use crate::equivalence::group_equivalent;
use crate::history::{History, StepRecord, StopReason};
use crate::score::{minimal_indices, score_all, CandidateMeasure};

/// Whole `summarize` runs.
static SPAN_SUMMARIZE: SpanTimer = SpanTimer::new("summarize");
/// One committed greedy step (records exactly the `StepRecord::step_time`).
static SPAN_STEP: SpanTimer = SpanTimer::new("summarize/step");
/// Candidate enumeration within a step.
static SPAN_ENUMERATE: SpanTimer = SpanTimer::new("summarize/step/enumerate");
/// Scoring + tie-breaking within a step.
static SPAN_SCORE: SpanTimer = SpanTimer::new("summarize/step/score");
/// Steps committed across all runs.
static STEPS_COMMITTED: Counter = Counter::new("summarize/steps_committed");
/// Steps undone by the TARGET-DIST back-off rule.
static STEPS_BACKED_OFF: Counter = Counter::new("summarize/steps_backed_off");

/// The result of a summarization run.
#[derive(Clone, Debug)]
pub struct SummaryResult<E> {
    /// The summary expression.
    pub summary: E,
    /// The cumulative homomorphism from original to summary annotations.
    pub mapping: Mapping,
    /// Per-step records.
    pub history: History,
    /// Expression snapshots: index 0 is the post-`GroupEquivalent` start,
    /// then one per step. Populated only with `record_snapshots`.
    pub snapshots: Vec<E>,
    /// Size of the original expression.
    pub initial_size: usize,
    /// Normalized distance of the returned summary from the original.
    pub final_distance: f64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
}

impl<E: Summarizable> SummaryResult<E> {
    /// Final expression size.
    pub fn final_size(&self) -> usize {
        self.summary.size()
    }
}

/// The summarizer: owns the configuration and borrows the annotation store
/// (which grows by one summary annotation per committed step).
pub struct Summarizer<'a> {
    store: &'a mut AnnStore,
    taxonomy: Option<&'a Taxonomy>,
    constraints: ConstraintConfig,
    config: SummarizeConfig,
}

impl<'a> Summarizer<'a> {
    /// Create a summarizer.
    pub fn new(
        store: &'a mut AnnStore,
        constraints: ConstraintConfig,
        config: SummarizeConfig,
    ) -> Self {
        Summarizer {
            store,
            taxonomy: None,
            constraints,
            config,
        }
    }

    /// Attach a taxonomy (constraints + tie-breaking).
    pub fn with_taxonomy(mut self, taxonomy: &'a Taxonomy) -> Self {
        self.taxonomy = Some(taxonomy);
        self
    }

    /// Run Algorithm 1 on `p0` with the given valuation class.
    ///
    /// Anytime contract: if the configured [`prox_robust::ExecutionBudget`]
    /// is exhausted *mid-run*, the best-so-far valid summary is returned
    /// with a budget [`StopReason`] (`DeadlineExceeded`, `BudgetExhausted`,
    /// or `Cancelled`). Only a budget that is already exhausted before any
    /// work starts yields `Err(ProxError::Budget)`.
    pub fn summarize<E: Summarizable>(
        &mut self,
        p0: &E,
        valuations: &[Valuation],
    ) -> Result<SummaryResult<E>, ProxError> {
        self.config.validate()?;
        let mut session = self.config.budget.start();
        // An already-exhausted budget (deadline in the past, pre-raised
        // cancel flag) means no work at all: that is an error, not an
        // empty summary.
        if let Err(stop) = session.check() {
            return Err(stop.into());
        }
        // The memo cap bounds distance-evaluation memory by truncating the
        // valuation class (silent degradation, recorded in obs counters).
        let valuations = &valuations[..session.memo_cap(valuations.len())];
        let _run_span = SPAN_SUMMARIZE.start();
        // Request-scoped trace: the "summarize" span stays open for the
        // whole run (so the final stop_reason lands on it); each phase
        // below opens a child span via the same session.
        let _trace_run = session.span("summarize");
        let initial_size = p0.size();

        // Line 1: GroupEquivalent.
        let (mut current, mut cumulative) = if self.config.skip_group_equivalent {
            (p0.clone(), Mapping::identity())
        } else {
            let _trace_cluster = session.span("cluster");
            let res =
                group_equivalent(p0, valuations, self.store, &self.constraints, self.taxonomy);
            session.trace_note(
                "groups_merged",
                p0.size().saturating_sub(res.expr.size()) as u64,
            );
            (res.expr, res.mapping)
        };

        let engine = DistanceEngine::new(
            p0,
            valuations,
            self.config.phi.clone(),
            self.config.val_func,
        );
        let no_override: MemberOverride = MemberOverride::new();
        let mut current_dist = engine.distance(&current, &cumulative, self.store, &no_override);

        let mut history = History::default();
        let mut snapshots = Vec::new();
        if self.config.record_snapshots {
            snapshots.push(current.clone());
        }

        // Back-off state for the TARGET-DIST rule.
        let mut prev: Option<(E, Mapping, f64)> = None;
        let mut break_reason: Option<StopReason> = None;

        let mut step = 0usize;
        // Line 2 of Algorithm 1 reads "while Size > TARGET-SIZE *or*
        // dist < TARGET-DIST", but the flavor settings of §3.2 ("set
        // TARGET-DIST to 1 to cancel its effect") only make sense for a
        // conjunction — with an `or`, a disabled bound would keep the loop
        // alive forever. We therefore loop while *both* bounds are slack,
        // which reproduces all three problem flavors.
        while current.size() > self.config.target_size && current_dist < self.config.target_dist {
            if step >= self.config.max_steps {
                break_reason = Some(StopReason::MaxSteps);
                break;
            }
            if let Err(stop) = session.note_step() {
                break_reason = Some(stop.into());
                break;
            }
            let mut timer = StepTimer::start();
            let size_before = current.size();

            // Lines 3-8: examine candidates, keep the minimal score.
            let anns = current.annotations();
            let (cands, enum_stop) = {
                let _span = SPAN_ENUMERATE.start();
                let _trace_enum = session.span("enumerate");
                let out = enumerate_with(
                    &anns,
                    self.store,
                    &self.constraints,
                    self.taxonomy,
                    self.config.k,
                    Some(&mut session),
                );
                session.trace_note("candidates", out.0.len() as u64);
                out
            };
            if let Some(stop) = enum_stop {
                break_reason = Some(stop.into());
                break;
            }
            if cands.is_empty() {
                break_reason = Some(StopReason::NoCandidates);
                break;
            }

            // Candidate measurement dominates step time, so poll the budget
            // every few candidates; a mid-measure trip abandons the step
            // (the best-so-far summary from prior steps stands).
            let mut measure_stop: Option<BudgetStop> = None;
            let trace_eval = session.span("evaluate");
            let measures = timer.candidates(|| {
                let mut measures = Vec::with_capacity(cands.len());
                for (ix, cand) in cands.iter().enumerate() {
                    if ix % 32 == 31 {
                        if let Err(stop) = session.check() {
                            measure_stop = Some(stop);
                            break;
                        }
                    }
                    // Evaluate by mapping all members onto the first one and
                    // overriding its base-member set — equivalent to mapping
                    // onto a fresh annotation, without interning per candidate.
                    let rep = cand.members[0];
                    let step_map = Mapping::group(&cand.members[1..], rep);
                    let expr = current.apply_mapping(&step_map);
                    let mut h = cumulative.clone();
                    h.compose_with(&step_map);
                    let mut overrides = MemberOverride::new();
                    overrides.insert(rep, cand.base_members(self.store));
                    let distance = engine.distance(&expr, &h, self.store, &overrides);
                    measures.push(CandidateMeasure {
                        distance,
                        size: expr.size(),
                    });
                }
                measures
            });
            session.trace_note("measured", measures.len() as u64);
            drop(trace_eval);
            if let Some(stop) = measure_stop {
                break_reason = Some(stop.into());
                break;
            }

            let score_span = SPAN_SCORE.start();
            let trace_score = session.span("score");
            let mut scores = score_all(
                &measures,
                self.config.score_mode,
                self.config.w_dist,
                self.config.w_size,
                initial_size,
            );
            // §3.2: taxonomy distances may enter the score itself, not only
            // break ties — rank the candidates' member-to-concept distances
            // and add the weighted rank.
            if self.config.w_tax > 0.0 {
                if let Some(taxonomy) = self.taxonomy {
                    let fold = match self.config.tie_break {
                        TieBreak::TaxonomySum => TaxonomyFold::Sum,
                        _ => TaxonomyFold::Max,
                    };
                    let tax_dists: Vec<f64> = cands
                        .iter()
                        .map(|cand| {
                            match (cand.concept, concepts_of(&cand.members, self.store)) {
                                (Some(target), Some(member_concepts)) => {
                                    group_distance(taxonomy, &member_concepts, target, fold)
                                }
                                // Concept-free candidates rank worst.
                                _ => f64::MAX,
                            }
                        })
                        .collect();
                    let tax_ranks = crate::score::normalized_ranks(tax_dists);
                    for (score, rank) in scores.iter_mut().zip(tax_ranks) {
                        *score += self.config.w_tax * rank;
                    }
                }
            }
            let ties = minimal_indices(&scores, 1e-9);
            let chosen_ix = self.break_ties(&cands, &ties);
            drop(trace_score);
            score_span.finish();
            let chosen = &cands[chosen_ix];
            let chosen_measure = measures[chosen_ix];

            // Commit: intern the real summary annotation and remap.
            let summary_ann = self
                .store
                .add_summary(&chosen.name, chosen.domain, &chosen.members);
            if let Some(c) = chosen.concept {
                self.store.set_concept(summary_ann, c.0);
            }
            let real_map = Mapping::group(&chosen.members, summary_ann);
            let next = current.apply_mapping(&real_map);
            debug_assert_eq!(next.size(), chosen_measure.size);

            prev = Some((current, cumulative.clone(), current_dist));
            cumulative.compose_with(&real_map);
            current = next;
            current_dist = chosen_measure.distance;
            step += 1;

            STEPS_COMMITTED.incr();
            let step_time = timer.step_time();
            SPAN_STEP.record(step_time);
            history.steps.push(StepRecord {
                step,
                merged: chosen.members.clone(),
                target: summary_ann,
                score: scores[chosen_ix],
                distance: current_dist,
                size: current.size(),
                candidates: cands.len(),
                candidate_time: timer.candidate_time(),
                step_time,
                size_before,
            });
            if self.config.record_snapshots {
                snapshots.push(current.clone());
            }
        }

        // Final lines of Algorithm 1: if the distance bound was crossed
        // (and is actually enabled), return p'_prev.
        if self.config.target_dist < 1.0 && current_dist >= self.config.target_dist {
            if let Some((prev_expr, prev_map, prev_dist)) = prev {
                // Drop the last step's record and snapshot — it was undone.
                STEPS_BACKED_OFF.incr();
                history.steps.pop();
                if self.config.record_snapshots {
                    snapshots.pop();
                }
                session.trace_note("stop_reason", StopReason::TargetDist.name());
                session.trace_note("steps", history.len() as u64);
                return Ok(SummaryResult {
                    summary: prev_expr,
                    mapping: prev_map,
                    history,
                    snapshots,
                    initial_size,
                    final_distance: prev_dist,
                    stop_reason: StopReason::TargetDist,
                });
            }
        }

        let stop_reason = break_reason.unwrap_or({
            if current.size() <= self.config.target_size {
                StopReason::TargetSize
            } else {
                StopReason::TargetDist
            }
        });
        session.trace_note("stop_reason", stop_reason.name());
        session.trace_note("steps", history.len() as u64);

        Ok(SummaryResult {
            summary: current,
            mapping: cumulative,
            history,
            snapshots,
            initial_size,
            final_distance: current_dist,
            stop_reason,
        })
    }

    /// Choose among equal-score candidates using taxonomy distances (§4.2):
    /// compute the MAX (or SUM) of the members' Wu–Palmer distances to the
    /// candidate's target concept and take the minimum; candidates without
    /// concepts rank last. Falls back to the first tie.
    fn break_ties(&self, cands: &[Candidate], ties: &[usize]) -> usize {
        debug_assert!(!ties.is_empty());
        if ties.len() == 1 {
            return ties[0];
        }
        let (Some(taxonomy), fold) = (
            self.taxonomy,
            match self.config.tie_break {
                TieBreak::TaxonomyMax => Some(TaxonomyFold::Max),
                TieBreak::TaxonomySum => Some(TaxonomyFold::Sum),
                TieBreak::First => None,
            },
        ) else {
            return ties[0];
        };
        let Some(fold) = fold else {
            return ties[0];
        };
        let mut best = ties[0];
        let mut best_d = f64::INFINITY;
        for &ix in ties {
            let cand = &cands[ix];
            let d = match (cand.concept, concepts_of(&cand.members, self.store)) {
                (Some(target), Some(member_concepts)) => {
                    group_distance(taxonomy, &member_concepts, target, fold)
                }
                _ => f64::INFINITY,
            };
            if d < best_d {
                best_d = d;
                best = ix;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScoreMode;
    use crate::constraints::MergeRule;
    use crate::val_func::ValFuncKind;
    use prox_provenance::{AggKind, AggValue, AnnId, Polynomial, ProvExpr, Tensor, ValuationClass};

    /// Example 4.2.3's setting: U1,U2 female; U1,U3 audience; ratings for
    /// two movies. The algorithm with wDist=1 must pick Audience first.
    fn setup() -> (AnnStore, ProvExpr, Vec<AnnId>, ConstraintConfig) {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F"), ("role", "audience")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "F"), ("role", "critic")]);
        let u3 = s.add_base_with("U3", "users", &[("gender", "M"), ("role", "audience")]);
        let mp = s.add_base_with("MatchPoint", "movies", &[]);
        let bj = s.add_base_with("BlueJasmine", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        for (u, score) in [(u1, 3.0), (u2, 5.0), (u3, 3.0)] {
            p.push(mp, Tensor::new(Polynomial::var(u), AggValue::single(score)));
        }
        p.push(bj, Tensor::new(Polynomial::var(u2), AggValue::single(4.0)));
        let users = s.domain("users");
        let cfg =
            ConstraintConfig::new().allow(users, MergeRule::SharedAttribute { attrs: vec![] });
        (s, p, vec![u1, u2, u3], cfg)
    }

    #[test]
    fn example_4_2_3_first_step_chooses_audience() {
        let (mut s, p0, users, constraints) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        let config = SummarizeConfig {
            w_dist: 1.0,
            w_size: 0.0,
            max_steps: 1,
            ..Default::default()
        };
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        let res = summarizer.summarize(&p0, &vals).unwrap();
        assert_eq!(res.history.len(), 1);
        let step = &res.history.steps[0];
        assert_eq!(step.merged, vec![users[0], users[2]], "U1,U3 → Audience");
        assert_eq!(s.name(step.target), "audience");
        assert_eq!(res.final_distance, 0.0);
    }

    #[test]
    fn target_size_stops_at_bound() {
        let (mut s, p0, users, constraints) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        let config = SummarizeConfig::target_size(3);
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        let res = summarizer.summarize(&p0, &vals).unwrap();
        assert!(res.final_size() <= 3);
        assert_eq!(res.stop_reason, StopReason::TargetSize);
    }

    #[test]
    fn target_dist_backs_off_one_step() {
        let (mut s, p0, users, constraints) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        // A tiny positive bound: the first nonzero-distance step must be
        // undone.
        let config = SummarizeConfig {
            target_dist: 1e-6,
            target_size: 1,
            w_dist: 0.0,
            w_size: 1.0,
            max_steps: 100,
            ..Default::default()
        };
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        let res = summarizer.summarize(&p0, &vals).unwrap();
        assert_eq!(res.stop_reason, StopReason::TargetDist);
        assert!(res.final_distance < 1e-6);
    }

    #[test]
    fn monotonicity_holds_along_the_run() {
        let (mut s, p0, users, constraints) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        let config = SummarizeConfig {
            w_dist: 1.0,
            w_size: 0.0,
            max_steps: 10,
            ..Default::default()
        };
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        let res = summarizer.summarize(&p0, &vals).unwrap();
        assert!(res.history.check_monotone().is_ok());
    }

    #[test]
    fn runs_until_no_candidates() {
        let (mut s, p0, users, constraints) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        let config = SummarizeConfig {
            max_steps: 100,
            ..Default::default()
        };
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        let res = summarizer.summarize(&p0, &vals).unwrap();
        // U1,U2 merge (gender), or U1,U3 (role); after one merge the summary
        // shares no attribute with the remaining user... except via shared
        // attrs. Eventually candidates dry up.
        assert_eq!(res.stop_reason, StopReason::NoCandidates);
        assert!(res.final_size() < p0.size());
    }

    #[test]
    fn snapshots_track_steps() {
        let (mut s, p0, users, constraints) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        let config = SummarizeConfig {
            max_steps: 2,
            record_snapshots: true,
            ..Default::default()
        };
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        let res = summarizer.summarize(&p0, &vals).unwrap();
        assert_eq!(res.snapshots.len(), res.history.len() + 1);
        assert_eq!(res.snapshots.last().unwrap().size(), res.final_size());
    }

    #[test]
    fn normalized_score_mode_also_works() {
        let (mut s, p0, users, constraints) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        let config = SummarizeConfig {
            score_mode: ScoreMode::Normalized,
            val_func: ValFuncKind::Euclidean,
            w_dist: 1.0,
            w_size: 0.0,
            max_steps: 1,
            ..Default::default()
        };
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        let res = summarizer.summarize(&p0, &vals).unwrap();
        assert_eq!(res.history.steps[0].merged, vec![users[0], users[2]]);
    }

    #[test]
    fn taxonomy_weight_prefers_close_concepts() {
        use prox_taxonomy::Taxonomy;
        // Two page pairs tie on distance and size; only taxonomy proximity
        // separates them: {singer, guitarist} (lcs musician, close) vs
        // {singer, city} — the latter shares only the remote root.
        let mut t = Taxonomy::new();
        t.subclass("musician", "entity");
        t.subclass("singer", "musician");
        t.subclass("guitarist", "musician");
        t.subclass("city", "entity");
        let mut s = AnnStore::new();
        let pages_dom = s.domain("pages");
        let p1 = s.add_base("Adele", pages_dom, vec![]);
        let p2 = s.add_base("LoriBlack", pages_dom, vec![]);
        let p3 = s.add_base("TelAviv", pages_dom, vec![]);
        s.set_concept(p1, t.by_name("singer").unwrap().0);
        s.set_concept(p2, t.by_name("guitarist").unwrap().0);
        s.set_concept(p3, t.by_name("city").unwrap().0);
        let u = s.add_base_with("U", "users", &[]);
        let mut p0 = ProvExpr::new(AggKind::Sum);
        for &page in &[p1, p2, p3] {
            p0.push(
                page,
                Tensor::new(
                    Polynomial::var(u).mul(&Polynomial::var(page)),
                    AggValue::single(1.0),
                ),
            );
        }
        let constraints = ConstraintConfig::new().allow(pages_dom, MergeRule::TaxonomyAncestor);
        // No valuations: every candidate has distance 0; sizes tie too, so
        // only the taxonomy term separates candidates.
        let config = SummarizeConfig {
            w_tax: 0.5,
            max_steps: 1,
            tie_break: crate::config::TieBreak::First,
            // With an empty valuation class GroupEquivalent would merge
            // everything at distance 0; skip it so the greedy step (and
            // its taxonomy term) is what decides.
            skip_group_equivalent: true,
            ..Default::default()
        };
        let mut summarizer = Summarizer::new(&mut s, constraints, config).with_taxonomy(&t);
        let res = summarizer.summarize(&p0, &[]).unwrap();
        assert_eq!(res.history.len(), 1);
        let mut merged = res.history.steps[0].merged.clone();
        merged.sort();
        assert_eq!(merged, vec![p1, p2], "singer+guitarist beat singer+city");
    }

    #[test]
    fn invalid_w_tax_rejected() {
        let (mut s, p0, _, constraints) = setup();
        let config = SummarizeConfig {
            w_tax: 1.5,
            ..Default::default()
        };
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        assert!(summarizer.summarize(&p0, &[]).is_err());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (mut s, p0, _, constraints) = setup();
        let config = SummarizeConfig {
            w_dist: 0.9,
            w_size: 0.9,
            ..Default::default()
        };
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        assert!(summarizer.summarize(&p0, &[]).is_err());
    }

    #[test]
    fn expired_deadline_before_any_work_is_an_error() {
        use prox_robust::ExecutionBudget;
        let (mut s, p0, users, constraints) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        let config = SummarizeConfig::default()
            .with_budget(ExecutionBudget::unlimited().with_deadline_at(std::time::Instant::now()));
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        match summarizer.summarize(&p0, &vals) {
            Err(ProxError::Budget(BudgetStop::Deadline)) => {}
            other => panic!("expected upfront budget error, got {other:?}"),
        }
    }

    #[test]
    fn step_budget_returns_best_so_far() {
        use prox_robust::ExecutionBudget;
        let (mut s, p0, users, constraints) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        let config = SummarizeConfig {
            w_dist: 1.0,
            w_size: 0.0,
            max_steps: 100,
            ..Default::default()
        }
        .with_budget(ExecutionBudget::unlimited().with_max_steps(1));
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        let res = summarizer.summarize(&p0, &vals).unwrap();
        assert_eq!(res.stop_reason, StopReason::BudgetExhausted);
        // Exactly one step was allowed; its summary is valid and monotone.
        assert_eq!(res.history.len(), 1);
        assert!(res.final_size() < p0.size());
        assert!(res.history.check_monotone().is_ok());
    }

    #[test]
    fn pre_raised_cancel_flag_is_an_upfront_error() {
        use prox_robust::{CancelFlag, ExecutionBudget};
        let (mut s, p0, _, constraints) = setup();
        let flag = CancelFlag::new();
        flag.cancel();
        let config =
            SummarizeConfig::default().with_budget(ExecutionBudget::unlimited().with_cancel(flag));
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        match summarizer.summarize(&p0, &[]) {
            Err(ProxError::Budget(BudgetStop::Cancelled)) => {}
            other => panic!("expected cancelled error, got {other:?}"),
        }
    }

    #[test]
    fn trace_context_records_phase_spans_and_stop_reason() {
        use prox_obs::{Json, TraceContext};
        use prox_robust::ExecutionBudget;
        let (mut s, p0, users, constraints) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        prox_obs::set_enabled(true);
        let trace = TraceContext::new(0x51ab);
        let config = SummarizeConfig {
            max_steps: 100,
            ..Default::default()
        }
        .with_budget(ExecutionBudget::unlimited().with_trace(trace.clone()));
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        let res = summarizer.summarize(&p0, &vals).unwrap();

        let tree = trace.to_json();
        let spans = match tree.get("spans") {
            Some(Json::Arr(spans)) => spans,
            other => panic!("spans not an array: {other:?}"),
        };
        let root = &spans[0];
        assert_eq!(root.get("name").and_then(Json::as_str), Some("summarize"));
        assert_eq!(
            root.get("attrs")
                .and_then(|a| a.get("stop_reason"))
                .and_then(Json::as_str),
            Some(res.stop_reason.name())
        );
        let children = match root.get("children") {
            Some(Json::Arr(children)) => children,
            other => panic!("children missing: {other:?}"),
        };
        let phase_names: Vec<&str> = children
            .iter()
            .filter_map(|c| c.get("name").and_then(Json::as_str))
            .collect();
        for phase in ["cluster", "enumerate", "evaluate", "score"] {
            assert!(
                phase_names.contains(&phase),
                "missing {phase}: {phase_names:?}"
            );
        }
        // The evaluate phase performs distance evaluations, so its counter
        // deltas must be non-empty.
        let evaluate = children
            .iter()
            .find(|c| c.get("name").and_then(Json::as_str) == Some("evaluate"))
            .expect("evaluate span");
        assert!(
            evaluate.get("counters").is_some(),
            "evaluate span should carry counter deltas: {evaluate:?}"
        );
    }

    #[test]
    fn memo_cap_truncates_the_valuation_class() {
        use prox_robust::ExecutionBudget;
        let (mut s, p0, users, constraints) = setup();
        let users_dom = s.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);
        assert!(vals.len() > 1);
        let config = SummarizeConfig {
            max_steps: 2,
            ..Default::default()
        }
        .with_budget(ExecutionBudget::unlimited().with_memo_cap(1));
        let mut summarizer = Summarizer::new(&mut s, constraints, config);
        // Degraded but valid: the run completes on the truncated class.
        let res = summarizer.summarize(&p0, &vals).unwrap();
        assert!(res.final_size() <= p0.size());
    }
}
