//! VAL-FUNC functions (§3.2): per-valuation disagreement measures between
//! the original provenance and its summary.
//!
//! `dist(p, p') = (Σ_v VAL-FUNC(v, v^{h,φ}, p, p')) / |V_Ann|`. The choice
//! of VAL-FUNC depends on the intended provenance use; the paper's examples
//! are implemented here, plus the DDP difference function of Example 5.2.2.

use prox_provenance::EvalOutcome;
use serde::{Deserialize, Serialize};

/// Which VAL-FUNC to apply.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ValFuncKind {
    /// Expected error: `w(v) · |v(p) − v'(p')|` on scalar outcomes.
    AbsDiff,
    /// Weighted fraction of disagreeing valuations: `0` when the outcomes
    /// agree, `w(v)` otherwise.
    Disagreement,
    /// Euclidean distance between aggregation vectors (the original vector
    /// must be projected into the summary key space first).
    Euclidean,
    /// The DDP difference function: `|ΔC|` when both outcomes are feasible,
    /// `0` when both are infeasible, and the maximum possible cost
    /// difference (max cost per transition × transitions per execution)
    /// on a feasibility mismatch.
    DdpDiff,
}

/// Context for one VAL-FUNC evaluation.
#[derive(Clone, Copy, Debug)]
pub struct ValFuncCtx {
    /// The valuation weight `w(v)` (1 for the uniform weighting used in
    /// the experiments).
    pub weight: f64,
    /// The feasibility-mismatch penalty for [`ValFuncKind::DdpDiff`]
    /// (the paper's `10 × 5 = 50`).
    pub mismatch_penalty: f64,
}

impl Default for ValFuncCtx {
    fn default() -> Self {
        ValFuncCtx {
            weight: 1.0,
            mismatch_penalty: 50.0,
        }
    }
}

impl ValFuncKind {
    /// Evaluate the VAL-FUNC on a pair of outcomes. `orig` must already be
    /// projected into the summary key space for vector outcomes.
    pub fn eval(self, orig: &EvalOutcome, summ: &EvalOutcome, ctx: ValFuncCtx) -> f64 {
        match self {
            ValFuncKind::AbsDiff => {
                let a = scalarize(orig);
                let b = scalarize(summ);
                ctx.weight * (a - b).abs()
            }
            ValFuncKind::Disagreement => {
                let agree = match (orig, summ) {
                    (EvalOutcome::Vector(x), EvalOutcome::Vector(y)) => x.euclidean(y) == 0.0,
                    (EvalOutcome::Ddp { cost: a }, EvalOutcome::Ddp { cost: b }) => a == b,
                    _ => (scalarize(orig) - scalarize(summ)).abs() < f64::EPSILON,
                };
                if agree {
                    0.0
                } else {
                    ctx.weight
                }
            }
            ValFuncKind::Euclidean => match (orig, summ) {
                (EvalOutcome::Vector(x), EvalOutcome::Vector(y)) => ctx.weight * x.euclidean(y),
                _ => ctx.weight * (scalarize(orig) - scalarize(summ)).abs(),
            },
            ValFuncKind::DdpDiff => match (orig, summ) {
                (EvalOutcome::Ddp { cost: a }, EvalOutcome::Ddp { cost: b }) => match (a, b) {
                    (Some(ca), Some(cb)) => ctx.weight * (ca - cb).abs(),
                    (None, None) => 0.0,
                    _ => ctx.weight * ctx.mismatch_penalty,
                },
                _ => ctx.weight * (scalarize(orig) - scalarize(summ)).abs(),
            },
        }
    }

    /// Human-readable name (matches the PROX UI's VAL-FUNC selector).
    pub fn name(self) -> &'static str {
        match self {
            ValFuncKind::AbsDiff => "Expected Error",
            ValFuncKind::Disagreement => "Disagreeing Valuations",
            ValFuncKind::Euclidean => "Euclidean Distance",
            ValFuncKind::DdpDiff => "Absolute Difference (DDP)",
        }
    }
}

fn scalarize(o: &EvalOutcome) -> f64 {
    match o {
        EvalOutcome::Scalar(x) => *x,
        EvalOutcome::Vector(v) => v.coords().iter().map(|(_, a)| a.result()).sum(),
        EvalOutcome::Ddp { cost } => cost.unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::{AggKind, AggValue, AnnId, EvalVector};

    fn vecout(items: &[(usize, f64)]) -> EvalOutcome {
        EvalOutcome::Vector(EvalVector::new(
            items
                .iter()
                .map(|&(o, v)| (AnnId::from_index(o), AggValue::new(v, 1)))
                .collect(),
            AggKind::Max,
        ))
    }

    #[test]
    fn abs_diff_on_scalars() {
        let ctx = ValFuncCtx::default();
        let d =
            ValFuncKind::AbsDiff.eval(&EvalOutcome::Scalar(5.0), &EvalOutcome::Scalar(3.0), ctx);
        assert_eq!(d, 2.0);
    }

    #[test]
    fn abs_diff_respects_weight() {
        let ctx = ValFuncCtx {
            weight: 0.25,
            ..Default::default()
        };
        let d =
            ValFuncKind::AbsDiff.eval(&EvalOutcome::Scalar(5.0), &EvalOutcome::Scalar(1.0), ctx);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn disagreement_is_zero_one() {
        let ctx = ValFuncCtx::default();
        let same = ValFuncKind::Disagreement.eval(&vecout(&[(1, 3.0)]), &vecout(&[(1, 3.0)]), ctx);
        assert_eq!(same, 0.0);
        let diff = ValFuncKind::Disagreement.eval(&vecout(&[(1, 3.0)]), &vecout(&[(1, 4.0)]), ctx);
        assert_eq!(diff, 1.0);
    }

    #[test]
    fn euclidean_on_vectors() {
        let ctx = ValFuncCtx::default();
        let d = ValFuncKind::Euclidean.eval(
            &vecout(&[(1, 3.0), (2, 0.0)]),
            &vecout(&[(1, 0.0), (2, 4.0)]),
            ctx,
        );
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ddp_diff_cases() {
        let ctx = ValFuncCtx {
            weight: 1.0,
            mismatch_penalty: 50.0,
        };
        let feasible = |c: f64| EvalOutcome::Ddp { cost: Some(c) };
        let infeasible = EvalOutcome::Ddp { cost: None };
        assert_eq!(
            ValFuncKind::DdpDiff.eval(&feasible(3.0), &feasible(5.0), ctx),
            2.0
        );
        assert_eq!(
            ValFuncKind::DdpDiff.eval(&infeasible, &infeasible, ctx),
            0.0
        );
        assert_eq!(
            ValFuncKind::DdpDiff.eval(&feasible(3.0), &infeasible, ctx),
            50.0
        );
        assert_eq!(
            ValFuncKind::DdpDiff.eval(&infeasible, &feasible(0.0), ctx),
            50.0
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ValFuncKind::Euclidean.name(), "Euclidean Distance");
    }
}
