//! Integration test: observability counters against run history.
//!
//! Lives in its own test file (= its own process) because the registry is
//! process-global: unit tests of other crates would pollute the deltas if
//! they shared the binary.

use prox_core::{ConstraintConfig, MergeRule, StopReason, SummarizeConfig, Summarizer};
use prox_provenance::{AggKind, AggValue, AnnStore, Polynomial, ProvExpr, Tensor, ValuationClass};

fn counter(name: &str) -> u64 {
    prox_obs::counter_value(name).unwrap_or(0)
}

/// MovieLens-flavoured input with enough users that the greedy loop runs
/// several steps before candidates dry up.
fn setup() -> (
    AnnStore,
    ProvExpr,
    Vec<prox_provenance::AnnId>,
    ConstraintConfig,
) {
    let mut s = AnnStore::new();
    let genders = ["F", "F", "M", "M", "F", "M"];
    let roles = [
        "audience", "critic", "audience", "critic", "critic", "audience",
    ];
    let users: Vec<_> = (0..6)
        .map(|ix| {
            s.add_base_with(
                &format!("U{ix}"),
                "users",
                &[("gender", genders[ix]), ("role", roles[ix])],
            )
        })
        .collect();
    let movies: Vec<_> = (0..3)
        .map(|ix| s.add_base_with(&format!("M{ix}"), "movies", &[]))
        .collect();
    let mut p = ProvExpr::new(AggKind::Max);
    for (ix, &u) in users.iter().enumerate() {
        let m = movies[ix % movies.len()];
        p.push(
            m,
            Tensor::new(Polynomial::var(u), AggValue::single(1.0 + ix as f64)),
        );
    }
    let users_dom = s.domain("users");
    let cfg =
        ConstraintConfig::new().allow(users_dom, MergeRule::SharedAttribute { attrs: vec![] });
    (s, p, users, cfg)
}

#[test]
fn counters_reconcile_with_history() {
    prox_obs::set_enabled(true);
    let (mut s, p0, users, constraints) = setup();
    let users_dom = s.domain("users");
    let vals = ValuationClass::CancelSingleAnnotation.generate(&s, &users, &[users_dom]);

    let before_enumerated = counter("candidates/enumerated");
    let before_lookups = counter("distance/memo_lookups");
    let before_hits = counter("distance/memo_hits");
    let before_misses = counter("distance/memo_misses");
    let before_evals = counter("distance/evaluations");
    let before_committed = counter("summarize/steps_committed");

    // Default target_dist = 1.0: the TARGET-DIST back-off never pops a
    // step, so every non-empty enumeration commits exactly one record.
    let config = SummarizeConfig {
        max_steps: 100,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut s, constraints, config);
    let res = summarizer.summarize(&p0, &vals).expect("valid config");
    assert!(
        matches!(
            res.stop_reason,
            StopReason::NoCandidates | StopReason::TargetSize
        ),
        "no back-off expected, got {:?}",
        res.stop_reason
    );
    assert!(!res.history.steps.is_empty(), "run must commit steps");

    // Candidate accounting: the counter sums every `enumerate` output; an
    // exhausted final enumeration contributes zero, and each non-empty one
    // matches its StepRecord's `candidates` field.
    let recorded: u64 = res.history.steps.iter().map(|s| s.candidates as u64).sum();
    assert_eq!(
        counter("candidates/enumerated") - before_enumerated,
        recorded,
        "candidates/enumerated delta must equal the history's candidate sum"
    );

    assert_eq!(
        counter("summarize/steps_committed") - before_committed,
        res.history.steps.len() as u64
    );

    // Memo accounting: every lookup is either a hit or a miss.
    let lookups = counter("distance/memo_lookups") - before_lookups;
    let hits = counter("distance/memo_hits") - before_hits;
    let misses = counter("distance/memo_misses") - before_misses;
    assert!(lookups > 0, "distance engine must be consulted");
    assert_eq!(hits + misses, lookups, "memo hits + misses == lookups");

    assert!(
        counter("distance/evaluations") - before_evals > 0,
        "candidate measurement must evaluate distances"
    );

    // StepTimer semantics: candidate measurement is a sub-interval of the
    // whole step.
    for step in &res.history.steps {
        assert!(
            step.candidate_time <= step.step_time,
            "step {}: candidate_time {:?} > step_time {:?}",
            step.step,
            step.candidate_time,
            step.step_time
        );
    }
}
