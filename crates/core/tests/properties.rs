//! Property-based tests for prox-core's building blocks: scoring,
//! equivalence classes, and distance bounds.

use proptest::prelude::*;
use prox_core::{
    equivalence_classes,
    score::{minimal_indices, score_all},
    CandidateMeasure, DistanceEngine, ScoreMode, ValFuncKind,
};
use prox_provenance::{
    AggKind, AggValue, AnnId, AnnStore, Mapping, Phi, PhiMap, Polynomial, ProvExpr, Tensor,
    Valuation,
};

fn ann(ix: usize) -> AnnId {
    AnnId::from_index(ix)
}

fn arb_measures() -> impl Strategy<Value = Vec<CandidateMeasure>> {
    prop::collection::vec(
        (0.0f64..1.0, 1usize..100).prop_map(|(distance, size)| CandidateMeasure { distance, size }),
        1..12,
    )
}

proptest! {
    /// Rank scores lie in [0,1] and the minimal-distance candidate has the
    /// minimal score when wDist = 1.
    #[test]
    fn rank_scores_bounded_and_faithful(measures in arb_measures()) {
        let scores = score_all(&measures, ScoreMode::Rank, 1.0, 0.0, 100);
        prop_assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        let best_ix = minimal_indices(&scores, 1e-9)[0];
        let min_dist = measures
            .iter()
            .map(|m| m.distance)
            .fold(f64::INFINITY, f64::min);
        prop_assert!((measures[best_ix].distance - min_dist).abs() < 1e-12);
    }

    /// With wSize = 1 the minimal-size candidate wins.
    #[test]
    fn size_weight_selects_smallest(measures in arb_measures()) {
        let scores = score_all(&measures, ScoreMode::Rank, 0.0, 1.0, 100);
        let best_ix = minimal_indices(&scores, 1e-9)[0];
        let min_size = measures.iter().map(|m| m.size).min().expect("nonempty");
        prop_assert_eq!(measures[best_ix].size, min_size);
    }

    /// Normalized scores are monotone in both inputs.
    #[test]
    fn normalized_scores_monotone(
        d1 in 0.0f64..1.0, d2 in 0.0f64..1.0,
        s1 in 1usize..100, s2 in 1usize..100,
    ) {
        let m = [
            CandidateMeasure { distance: d1, size: s1 },
            CandidateMeasure { distance: d2, size: s2 },
        ];
        let scores = score_all(&m, ScoreMode::Normalized, 0.5, 0.5, 100);
        if d1 <= d2 && s1 <= s2 {
            prop_assert!(scores[0] <= scores[1] + 1e-12);
        }
    }

    /// Equivalence classes form a partition, and members of one class agree
    /// with each other under every valuation.
    #[test]
    fn equivalence_classes_partition(
        truth_rows in prop::collection::vec(prop::collection::vec(any::<bool>(), 6), 0..5),
    ) {
        let anns: Vec<AnnId> = (0..6).map(ann).collect();
        let valuations: Vec<Valuation> = truth_rows
            .iter()
            .map(|row| {
                let mut v = Valuation::all_true();
                for (ix, &b) in row.iter().enumerate() {
                    v.set(ann(ix), b);
                }
                v
            })
            .collect();
        let classes = equivalence_classes(&anns, &valuations);
        // Partition: every annotation appears exactly once.
        let mut seen: Vec<AnnId> = classes.iter().flatten().copied().collect();
        seen.sort();
        prop_assert_eq!(seen, anns.clone());
        // Agreement within classes, disagreement across classes.
        for class in &classes {
            for pair in class.windows(2) {
                for v in &valuations {
                    prop_assert_eq!(v.truth(pair[0]), v.truth(pair[1]));
                }
            }
        }
        for (ix, c1) in classes.iter().enumerate() {
            for c2 in &classes[ix + 1..] {
                let a = c1[0];
                let b = c2[0];
                prop_assert!(
                    valuations.iter().any(|v| v.truth(a) != v.truth(b)),
                    "distinct classes must be separated by some valuation"
                );
            }
        }
    }

    /// The normalized distance is within [0,1] for arbitrary merges on a
    /// small random workload.
    #[test]
    fn distance_is_bounded(
        ratings in prop::collection::vec((0usize..5, 1u8..=5), 3..10),
        merge in prop::collection::vec(0usize..5, 2..4),
    ) {
        let mut store = AnnStore::new();
        let users: Vec<AnnId> = (0..5)
            .map(|i| store.add_base_with(&format!("U{i}"), "users", &[]))
            .collect();
        let movie = store.add_base_with("M", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        for &(u, s) in &ratings {
            p.push(movie, Tensor::new(Polynomial::var(users[u]), AggValue::single(s as f64)));
        }
        p.simplify();
        let vals: Vec<Valuation> = users.iter().map(|&u| Valuation::cancel(&[u])).collect();
        let engine = DistanceEngine::new(&p, &vals, PhiMap::uniform(Phi::Or), ValFuncKind::Euclidean);

        let mut members: Vec<AnnId> = merge.into_iter().map(|ix| users[ix]).collect();
        members.sort();
        members.dedup();
        if members.len() < 2 {
            return Ok(());
        }
        let dom = store.domain("users");
        let g = store.add_summary("G", dom, &members);
        let h = Mapping::group(&members, g);
        let summary = p.map(&h);
        let d = engine.distance(&summary, &h, &store, &Default::default());
        prop_assert!((0.0..=1.0).contains(&d), "distance {d}");
    }
}
