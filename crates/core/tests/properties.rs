//! Property-based tests for prox-core's building blocks: scoring,
//! equivalence classes, and distance bounds.
//!
//! Random cases come from the workspace's deterministic splitmix64
//! generator ([`prox_robust::fault::DetRng`]) rather than an external
//! property-testing framework: every failure replays from the fixed seed,
//! and the harness runs identically offline.

use prox_core::{
    equivalence_classes,
    score::{minimal_indices, score_all},
    CandidateMeasure, DistanceEngine, ScoreMode, ValFuncKind,
};
use prox_provenance::{
    AggKind, AggValue, AnnId, AnnStore, Mapping, Phi, PhiMap, Polynomial, ProvExpr, Tensor,
    Valuation,
};
use prox_robust::fault::DetRng;

/// Cases per property.
const CASES: usize = 64;

fn ann(ix: usize) -> AnnId {
    AnnId::from_index(ix)
}

/// A random distance in `[0, 1)` with three decimal digits of precision.
fn random_distance(rng: &mut DetRng) -> f64 {
    (rng.next_u64() % 1000) as f64 / 1000.0
}

/// 1–11 random candidate measures: distance in `[0,1)`, size in `1..100`.
fn random_measures(rng: &mut DetRng) -> Vec<CandidateMeasure> {
    let n = (rng.next_u64() % 11 + 1) as usize;
    (0..n)
        .map(|_| CandidateMeasure {
            distance: random_distance(rng),
            size: (rng.next_u64() % 99 + 1) as usize,
        })
        .collect()
}

/// Rank scores lie in [0,1] and the minimal-distance candidate has the
/// minimal score when wDist = 1.
#[test]
fn rank_scores_bounded_and_faithful() {
    let mut rng = DetRng::new(0x5eed_0300);
    for case in 0..CASES {
        let measures = random_measures(&mut rng);
        let scores = score_all(&measures, ScoreMode::Rank, 1.0, 0.0, 100);
        assert!(
            scores.iter().all(|s| (0.0..=1.0).contains(s)),
            "scores out of range (case {case}): {scores:?}"
        );
        let best_ix = minimal_indices(&scores, 1e-9)[0];
        let min_dist = measures
            .iter()
            .map(|m| m.distance)
            .fold(f64::INFINITY, f64::min);
        assert!(
            (measures[best_ix].distance - min_dist).abs() < 1e-12,
            "best candidate not minimal-distance (case {case})"
        );
    }
}

/// With wSize = 1 the minimal-size candidate wins.
#[test]
fn size_weight_selects_smallest() {
    let mut rng = DetRng::new(0x5eed_0301);
    for case in 0..CASES {
        let measures = random_measures(&mut rng);
        let scores = score_all(&measures, ScoreMode::Rank, 0.0, 1.0, 100);
        let best_ix = minimal_indices(&scores, 1e-9)[0];
        let min_size = measures.iter().map(|m| m.size).min().expect("nonempty");
        assert_eq!(
            measures[best_ix].size, min_size,
            "best candidate not minimal-size (case {case})"
        );
    }
}

/// Normalized scores are monotone in both inputs.
#[test]
fn normalized_scores_monotone() {
    let mut rng = DetRng::new(0x5eed_0302);
    for case in 0..CASES {
        let d1 = random_distance(&mut rng);
        let d2 = random_distance(&mut rng);
        let s1 = (rng.next_u64() % 99 + 1) as usize;
        let s2 = (rng.next_u64() % 99 + 1) as usize;
        let m = [
            CandidateMeasure {
                distance: d1,
                size: s1,
            },
            CandidateMeasure {
                distance: d2,
                size: s2,
            },
        ];
        let scores = score_all(&m, ScoreMode::Normalized, 0.5, 0.5, 100);
        if d1 <= d2 && s1 <= s2 {
            assert!(
                scores[0] <= scores[1] + 1e-12,
                "monotonicity violated (case {case}): {scores:?}"
            );
        }
    }
}

/// Equivalence classes form a partition, and members of one class agree
/// with each other under every valuation.
#[test]
fn equivalence_classes_partition() {
    let mut rng = DetRng::new(0x5eed_0303);
    for case in 0..CASES {
        let nrows = (rng.next_u64() % 5) as usize;
        let anns: Vec<AnnId> = (0..6).map(ann).collect();
        let valuations: Vec<Valuation> = (0..nrows)
            .map(|_| {
                let mut v = Valuation::all_true();
                for ix in 0..6 {
                    v.set(ann(ix), rng.next_u64().is_multiple_of(2));
                }
                v
            })
            .collect();
        let classes = equivalence_classes(&anns, &valuations);
        // Partition: every annotation appears exactly once.
        let mut seen: Vec<AnnId> = classes.iter().flatten().copied().collect();
        seen.sort();
        assert_eq!(seen, anns, "not a partition (case {case})");
        // Agreement within classes, disagreement across classes.
        for class in &classes {
            for pair in class.windows(2) {
                for v in &valuations {
                    assert_eq!(
                        v.truth(pair[0]),
                        v.truth(pair[1]),
                        "class members disagree (case {case})"
                    );
                }
            }
        }
        for (ix, c1) in classes.iter().enumerate() {
            for c2 in &classes[ix + 1..] {
                let a = c1[0];
                let b = c2[0];
                assert!(
                    valuations.iter().any(|v| v.truth(a) != v.truth(b)),
                    "distinct classes must be separated by some valuation (case {case})"
                );
            }
        }
    }
}

/// The normalized distance is within [0,1] for arbitrary merges on a
/// small random workload.
#[test]
fn distance_is_bounded() {
    let mut rng = DetRng::new(0x5eed_0304);
    for case in 0..CASES {
        let nratings = (rng.next_u64() % 7 + 3) as usize;
        let nmerge = (rng.next_u64() % 2 + 2) as usize;
        let mut store = AnnStore::new();
        let users: Vec<AnnId> = (0..5)
            .map(|i| store.add_base_with(&format!("U{i}"), "users", &[]))
            .collect();
        let movie = store.add_base_with("M", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        for _ in 0..nratings {
            let u = (rng.next_u64() as usize) % 5;
            let stars = (rng.next_u64() % 5 + 1) as f64;
            p.push(
                movie,
                Tensor::new(Polynomial::var(users[u]), AggValue::single(stars)),
            );
        }
        p.simplify();
        let vals: Vec<Valuation> = users.iter().map(|&u| Valuation::cancel(&[u])).collect();
        let engine =
            DistanceEngine::new(&p, &vals, PhiMap::uniform(Phi::Or), ValFuncKind::Euclidean);

        let mut members: Vec<AnnId> = (0..nmerge)
            .map(|_| users[(rng.next_u64() as usize) % 5])
            .collect();
        members.sort();
        members.dedup();
        if members.len() < 2 {
            continue;
        }
        let dom = store.domain("users");
        let g = store.add_summary("G", dom, &members);
        let h = Mapping::group(&members, g);
        let summary = p.map(&h);
        let d = engine.distance(&summary, &h, &store, &Default::default());
        assert!((0.0..=1.0).contains(&d), "distance {d} (case {case})");
    }
}
