//! Synthetic Data-Dependent Process dataset (§5.1, Table 5.1 row 3;
//! Example 5.2.2; structure of \[17\]).
//!
//! Generates DDP provenance: sums of executions, each a product of at most
//! five transitions mixing user choices `⟨c_k, 1⟩` (cost 1..10) and
//! database conditions `⟨0, [dᵢ·dⱼ] {=,≠} 0⟩`. Cost variables carry their
//! cost as an attribute (equal-cost variables may merge — "transitions
//! have more or less the same cost"), and DB variables carry a relation
//! attribute (variables of the same relation may merge).

use prox_core::{ConstraintConfig, MergeRule};
use prox_provenance::{
    AnnId, AnnStore, DbCondOp, DdpExecution, DdpExpr, DdpTransition, DomainId, Phi, PhiMap,
    Valuation, ValuationClass,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct DdpConfig {
    /// Number of database variables.
    pub db_vars: usize,
    /// Number of cost variables.
    pub cost_vars: usize,
    /// Number of executions in the provenance sum.
    pub executions: usize,
    /// Maximum transitions per execution (the paper's bound is 5).
    pub max_transitions: usize,
    /// Number of distinct relations DB variables belong to.
    pub relations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DdpConfig {
    fn default() -> Self {
        DdpConfig {
            db_vars: 16,
            cost_vars: 10,
            executions: 16,
            max_transitions: 5,
            relations: 3,
            seed: 31,
        }
    }
}

/// The generated DDP dataset.
#[derive(Clone, Debug)]
pub struct Ddp {
    /// Annotation store (db + cost variables).
    pub store: AnnStore,
    /// Database variable annotations.
    pub db_vars: Vec<AnnId>,
    /// Cost variable annotations.
    pub cost_vars: Vec<AnnId>,
    /// The provenance expression.
    pub provenance: DdpExpr,
    db_domain: DomainId,
    cost_domain: DomainId,
}

impl Ddp {
    /// Generate a dataset.
    pub fn generate(cfg: DdpConfig) -> Self {
        assert!(cfg.db_vars > 0 && cfg.cost_vars > 0 && cfg.executions > 0);
        assert!(cfg.max_transitions >= 2);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = AnnStore::new();
        let db_domain = store.domain("db_vars");
        let cost_domain = store.domain("cost_vars");

        // Besides the relation (the merge constraint), DB variables carry a
        // finer "partition" attribute so that attribute-level valuations
        // can distinguish variables within one relation — otherwise the
        // GroupEquivalent pre-pass would saturate the whole relation at
        // distance 0 and leave the greedy phase nothing to do.
        let db_vars: Vec<AnnId> = (0..cfg.db_vars)
            .map(|ix| {
                let rel = format!("R{}", ix % cfg.relations + 1);
                let part = format!("P{}", ix / cfg.relations + 1);
                store.add_base_with(
                    &format!("d{}", ix + 1),
                    "db_vars",
                    &[("relation", &rel), ("partition", &part)],
                )
            })
            .collect();

        let mut provenance = DdpExpr::new();
        provenance.max_transitions_per_execution = cfg.max_transitions;
        // Cost variables likewise carry a "phase" attribute finer than the
        // cost-equality merge constraint. Costs are drawn from a small
        // range so that equal-cost pairs (the mergeable ones) are common.
        let cost_vars: Vec<AnnId> = (0..cfg.cost_vars)
            .map(|ix| {
                let cost = rng.random_range(1..=5) as f64;
                let c = store.add_base_with(
                    &format!("c{}", ix + 1),
                    "cost_vars",
                    &[
                        ("cost", &format!("{cost}")),
                        ("phase", &format!("ph{}", ix % 3 + 1)),
                    ],
                );
                provenance.set_cost(c, cost);
                c
            })
            .collect();

        // Fault injection: a `truncate` site simulates a partially-recorded
        // workload by keeping only a prefix of the executions.
        for _ in 0..prox_robust::fault::truncate_keep(cfg.executions) {
            let n = rng.random_range(2..=cfg.max_transitions);
            let mut transitions = Vec::with_capacity(n);
            for _ in 0..n {
                if rng.random_bool(0.5) {
                    let c = cost_vars[rng.random_range(0..cost_vars.len())];
                    transitions.push(DdpTransition::user(c));
                } else {
                    let a = db_vars[rng.random_range(0..db_vars.len())];
                    let b = db_vars[rng.random_range(0..db_vars.len())];
                    let vars = if a == b { vec![a] } else { vec![a, b] };
                    let op = if rng.random_bool(0.7) {
                        DbCondOp::NonZero
                    } else {
                        DbCondOp::Zero
                    };
                    transitions.push(DdpTransition::db(vars, op));
                }
            }
            provenance.push(DdpExecution::new(transitions));
        }

        Ddp {
            store,
            db_vars,
            cost_vars,
            provenance,
            db_domain,
            cost_domain,
        }
    }

    /// The DB-variable domain.
    pub fn db_domain(&self) -> DomainId {
        self.db_domain
    }

    /// The cost-variable domain.
    pub fn cost_domain(&self) -> DomainId {
        self.cost_domain
    }

    /// Mapping constraints (Table 5.1): DB variables merge within a
    /// relation; cost variables merge when their costs match.
    pub fn constraints(&mut self) -> ConstraintConfig {
        let relation = self.store.attr("relation");
        let cost = self.store.attr("cost");
        ConstraintConfig::new()
            .allow(
                self.db_domain,
                MergeRule::SharedAttribute {
                    attrs: vec![relation],
                },
            )
            .allow(
                self.cost_domain,
                MergeRule::SharedAttribute { attrs: vec![cost] },
            )
    }

    /// The φ assignment of Table 5.1: logical OR for DB variables, MAX for
    /// cost variables.
    pub fn phi(&self) -> PhiMap {
        PhiMap::uniform(Phi::Or).with(self.cost_domain, Phi::Max)
    }

    /// Valuation class over all variables.
    pub fn valuations(&self, class: ValuationClass) -> Vec<Valuation> {
        let mut anns = self.db_vars.clone();
        anns.extend_from_slice(&self.cost_vars);
        class.generate(&self.store, &anns, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::{EvalOutcome, Summarizable};

    #[test]
    fn generation_is_deterministic() {
        let a = Ddp::generate(DdpConfig::default());
        let b = Ddp::generate(DdpConfig::default());
        assert_eq!(a.provenance, b.provenance);
    }

    #[test]
    fn respects_transition_bound() {
        let d = Ddp::generate(DdpConfig::default());
        for e in d.provenance.executions() {
            assert!(e.transitions.len() <= 5);
            assert!(e.transitions.len() >= 2);
        }
        assert_eq!(d.provenance.executions().len(), 16);
    }

    #[test]
    fn max_error_matches_paper_constants() {
        let d = Ddp::generate(DdpConfig::default());
        assert_eq!(Summarizable::max_error(&d.provenance), 50.0);
    }

    #[test]
    fn all_true_valuation_evaluates() {
        let d = Ddp::generate(DdpConfig::default());
        match d.provenance.eval(&Valuation::all_true()) {
            EvalOutcome::Ddp { cost } => {
                if let Some(c) = cost {
                    assert!(c >= 0.0);
                }
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn equal_cost_vars_may_merge() {
        let mut d = Ddp::generate(DdpConfig {
            cost_vars: 20,
            ..Default::default()
        });
        let cfg = d.constraints();
        let cost = d.store.attr("cost");
        // Find two cost vars with equal cost.
        let mut by_cost: std::collections::HashMap<_, Vec<AnnId>> = Default::default();
        for &c in &d.cost_vars {
            by_cost
                .entry(d.store.get(c).attr(cost).unwrap())
                .or_default()
                .push(c);
        }
        let twin = by_cost
            .values()
            .find(|v| v.len() >= 2)
            .expect("twins exist");
        assert!(cfg.pair_ok(twin[0], twin[1], &d.store, None));
        // Different relations never merge for db vars:
        let d1 = d.db_vars[0]; // R1
        let d2 = d.db_vars[1]; // R2
        assert!(!cfg.pair_ok(d1, d2, &d.store, None));
        let d4 = d.db_vars[3]; // R1 again (3 alternating relations)
        assert!(cfg.pair_ok(d1, d4, &d.store, None));
    }

    #[test]
    fn phi_map_uses_max_for_costs() {
        let d = Ddp::generate(DdpConfig::default());
        let phis = d.phi();
        assert_eq!(phis.for_domain(d.cost_domain()), Phi::Max);
        assert_eq!(phis.for_domain(d.db_domain()), Phi::Or);
    }

    #[test]
    fn valuations_cover_both_domains() {
        let d = Ddp::generate(DdpConfig::default());
        let vals = d.valuations(ValuationClass::CancelSingleAnnotation);
        assert_eq!(vals.len(), d.db_vars.len() + d.cost_vars.len());
        let attr_vals = d.valuations(ValuationClass::CancelSingleAttribute);
        assert!(!attr_vals.is_empty());
    }
}
