//! # prox-datasets
//!
//! Seeded synthetic dataset generators for the three provenance workloads
//! of the PROX evaluation (§5.1): MovieLens-style movie ratings,
//! Wikipedia-style page edits over a WordNet taxonomy, and Data-Dependent
//! Process executions. Each generator produces an annotation store, the
//! provenance expression in the paper's structure (Table 5.1), the
//! matching mapping constraints, and valuation-class builders.
//!
//! The original paper uses the real MovieLens dump, the MediaWiki API and
//! DDP traces; these generators substitute seeded synthetic equivalents
//! with the same schema and structure (see DESIGN.md §1 for the
//! substitution argument).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ddp;
pub mod movielens;
pub mod names;
pub mod wikipedia;

pub use ddp::{Ddp, DdpConfig};
pub use movielens::{MovieLens, MovieLensConfig, Rating};
pub use wikipedia::{Edit, Wikipedia, WikipediaConfig};
