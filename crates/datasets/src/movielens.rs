//! Synthetic MovieLens dataset (§5.1, Table 5.1 row 1).
//!
//! Generates users (gender, age range, occupation, zip code), movies
//! (title, year, primary genre) and 1–5 star ratings, then builds the
//! paper's provenance structure
//!
//! `(UserID₁·MovieTitle₁·MovieYear₁) ⊗ (Rating₁, 1) ⊕ …`
//!
//! keyed per movie (the `⊕_M` formal sum). Ratings follow a simple
//! user-bias + movie-bias model so aggregates have realistic structure.

use prox_core::{ConstraintConfig, MergeRule};
use prox_provenance::{
    AggKind, AggValue, AnnId, AnnStore, DomainId, Polynomial, ProvExpr, Tensor, Valuation,
    ValuationClass,
};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use crate::names;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct MovieLensConfig {
    /// Number of users.
    pub users: usize,
    /// Number of movies.
    pub movies: usize,
    /// Expected ratings per user (each user rates a random subset).
    pub ratings_per_user: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MovieLensConfig {
    fn default() -> Self {
        MovieLensConfig {
            users: 30,
            movies: 6,
            ratings_per_user: 2,
            seed: 17,
        }
    }
}

/// One generated rating.
#[derive(Clone, Copy, Debug)]
pub struct Rating {
    /// The rating user.
    pub user: AnnId,
    /// The rated movie.
    pub movie: AnnId,
    /// The movie's year annotation.
    pub year: AnnId,
    /// The star value in 1..=5.
    pub stars: f64,
}

/// The generated dataset: annotation store, entity lists and ratings.
#[derive(Clone, Debug)]
pub struct MovieLens {
    /// Annotation store holding users, movies and years.
    pub store: AnnStore,
    /// User annotations.
    pub users: Vec<AnnId>,
    /// Movie annotations.
    pub movies: Vec<AnnId>,
    /// Ratings in generation order.
    pub ratings: Vec<Rating>,
    users_domain: DomainId,
    movies_domain: DomainId,
}

impl MovieLens {
    /// Generate a dataset.
    pub fn generate(cfg: MovieLensConfig) -> Self {
        assert!(cfg.users > 0 && cfg.movies > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = AnnStore::new();
        let users_domain = store.domain("users");
        let movies_domain = store.domain("movies");

        let mut movies = Vec::with_capacity(cfg.movies);
        let mut movie_years = Vec::with_capacity(cfg.movies);
        let mut movie_bias = Vec::with_capacity(cfg.movies);
        for ix in 0..cfg.movies {
            let title = names::MOVIE_TITLES[ix % names::MOVIE_TITLES.len()];
            let title = if ix < names::MOVIE_TITLES.len() {
                title.to_owned()
            } else {
                format!("{title}{}", ix / names::MOVIE_TITLES.len() + 2)
            };
            let year: i32 = 1990 + rng.random_range(0..14);
            let genre = *names::GENRES.choose(&mut rng).unwrap_or(&names::GENRES[0]);
            let m = store.add_base_with(
                &title,
                "movies",
                &[("year", &year.to_string()), ("genre", genre)],
            );
            let y = store.add_base_with(&format!("Y{year}"), "years", &[]);
            movies.push(m);
            movie_years.push(y);
            movie_bias.push(rng.random_range(-1.0..1.0));
        }

        let mut users = Vec::with_capacity(cfg.users);
        let mut user_bias = Vec::with_capacity(cfg.users);
        for ix in 0..cfg.users {
            let gender = if rng.random_bool(0.5) { "M" } else { "F" };
            let age = *names::AGE_RANGES
                .choose(&mut rng)
                .unwrap_or(&names::AGE_RANGES[0]);
            let occupation = *names::OCCUPATIONS
                .choose(&mut rng)
                .unwrap_or(&names::OCCUPATIONS[0]);
            let zip = *names::ZIP_PREFIXES
                .choose(&mut rng)
                .unwrap_or(&names::ZIP_PREFIXES[0]);
            let u = store.add_base_with(
                &format!("UID{}", ix + 1),
                "users",
                &[
                    ("gender", gender),
                    ("age_range", age),
                    ("occupation", occupation),
                    ("zip", zip),
                ],
            );
            users.push(u);
            user_bias.push(rng.random_range(-1.0..1.0));
        }

        let mut ratings = Vec::new();
        for (uix, &user) in users.iter().enumerate() {
            // Heterogeneous activity around the configured mean (like real
            // MovieLens users): between 1 and 2·mean ratings each.
            let n = rng
                .random_range(1..=(2 * cfg.ratings_per_user).max(1))
                .min(cfg.movies)
                .max(1);
            let mut chosen: Vec<usize> = (0..cfg.movies).collect();
            // Partial Fisher–Yates: the first n entries are the sample.
            for i in 0..n {
                let j = rng.random_range(i..cfg.movies);
                chosen.swap(i, j);
            }
            for &mix in &chosen[..n] {
                let raw: f64 = 3.0 + user_bias[uix] + movie_bias[mix] + rng.random_range(-1.0..1.0);
                let stars = raw.round().clamp(1.0, 5.0);
                ratings.push(Rating {
                    user,
                    movie: movies[mix],
                    year: movie_years[mix],
                    stars,
                });
            }
        }
        // Fault injection: a `truncate` site simulates a partially-read
        // dataset by dropping a suffix of the generated ratings.
        ratings.truncate(prox_robust::fault::truncate_keep(ratings.len()));

        MovieLens {
            store,
            users,
            movies,
            ratings,
            users_domain,
            movies_domain,
        }
    }

    /// The users domain id.
    pub fn users_domain(&self) -> DomainId {
        self.users_domain
    }

    /// The movies domain id.
    pub fn movies_domain(&self) -> DomainId {
        self.movies_domain
    }

    /// Build the provenance for all movies.
    pub fn provenance(&self, agg: AggKind) -> ProvExpr {
        self.provenance_for(&self.movies, agg)
    }

    /// Build the provenance restricted to a selection of movies (the PROX
    /// selection service's job).
    pub fn provenance_for(&self, movies: &[AnnId], agg: AggKind) -> ProvExpr {
        let mut p = ProvExpr::new(agg);
        for r in &self.ratings {
            if !movies.contains(&r.movie) {
                continue;
            }
            let prov = Polynomial::var(r.user)
                .mul(&Polynomial::var(r.movie))
                .mul(&Polynomial::var(r.year));
            p.push(r.movie, Tensor::new(prov, AggValue::single(r.stars)));
        }
        p.simplify();
        p
    }

    /// The paper's mapping constraints: users may merge when they share one
    /// of gender / age range / occupation / zip code.
    pub fn constraints(&mut self) -> ConstraintConfig {
        let attrs = ["gender", "age_range", "occupation", "zip"]
            .iter()
            .map(|a| self.store.attr(a))
            .collect();
        ConstraintConfig::new().allow(self.users_domain, MergeRule::SharedAttribute { attrs })
    }

    /// Generate a valuation class over the rating users.
    pub fn valuations(&self, class: ValuationClass) -> Vec<Valuation> {
        class.generate(&self.store, &self.users, &[self.users_domain])
    }

    /// Movies whose title contains `needle` (case-insensitive) — the
    /// selection view's title search.
    pub fn search_titles(&self, needle: &str) -> Vec<AnnId> {
        let needle = needle.to_lowercase();
        self.movies
            .iter()
            .copied()
            .filter(|&m| self.store.name(m).to_lowercase().contains(&needle))
            .collect()
    }

    /// Movies matching a genre and/or year — the selection view's second
    /// mode.
    pub fn select_by(&mut self, genre: Option<&str>, year: Option<i32>) -> Vec<AnnId> {
        let genre_attr = self.store.attr("genre");
        let year_attr = self.store.attr("year");
        let genre_val = genre.map(|g| self.store.value(g));
        let year_val = year.map(|y| self.store.value(&y.to_string()));
        self.movies
            .iter()
            .copied()
            .filter(|&m| {
                let ann = self.store.get(m);
                genre_val.is_none_or(|g| ann.attr(genre_attr) == Some(g))
                    && year_val.is_none_or(|y| ann.attr(year_attr) == Some(y))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::Summarizable;

    #[test]
    fn generation_is_deterministic() {
        let a = MovieLens::generate(MovieLensConfig::default());
        let b = MovieLens::generate(MovieLensConfig::default());
        assert_eq!(a.ratings.len(), b.ratings.len());
        assert_eq!(
            a.ratings.iter().map(|r| r.stars as i64).sum::<i64>(),
            b.ratings.iter().map(|r| r.stars as i64).sum::<i64>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = MovieLens::generate(MovieLensConfig::default());
        let b = MovieLens::generate(MovieLensConfig {
            seed: 99,
            ..Default::default()
        });
        let sig = |d: &MovieLens| {
            d.ratings
                .iter()
                .map(|r| (r.user, r.movie, r.stars as i64))
                .collect::<Vec<_>>()
        };
        assert_ne!(sig(&a), sig(&b));
    }

    #[test]
    fn provenance_has_three_occurrences_per_rating() {
        let d = MovieLens::generate(MovieLensConfig::default());
        let p = d.provenance(AggKind::Max);
        assert_eq!(Summarizable::size(&p), d.ratings.len() * 3);
        assert_eq!(p.num_objects(), d.movies.len());
    }

    #[test]
    fn ratings_are_in_range() {
        let d = MovieLens::generate(MovieLensConfig {
            users: 100,
            movies: 10,
            ratings_per_user: 3,
            seed: 5,
        });
        assert!(d.ratings.iter().all(|r| (1.0..=5.0).contains(&r.stars)));
        // Heterogeneous activity: between 1 and 2·mean ratings per user.
        assert!(d.ratings.len() >= 100);
        assert!(d.ratings.len() <= 600);
    }

    #[test]
    fn selection_by_title_and_attrs() {
        let mut d = MovieLens::generate(MovieLensConfig {
            movies: 14,
            ..Default::default()
        });
        let titanic = d.search_titles("titan");
        assert!(titanic.len() >= 2, "Titanic family present");
        // select_by with no filters returns everything.
        let all = d.select_by(None, None);
        assert_eq!(all.len(), 14);
    }

    #[test]
    fn constraints_allow_shared_gender_users() {
        let mut d = MovieLens::generate(MovieLensConfig {
            users: 10,
            ..Default::default()
        });
        let cfg = d.constraints();
        let gender = d.store.attr("gender");
        let mut by_gender: Vec<Vec<AnnId>> = vec![vec![], vec![]];
        for &u in &d.users {
            let v = d.store.get(u).attr(gender).unwrap();
            by_gender[(d.store.value_name(v) == "F") as usize].push(u);
        }
        for group in by_gender.iter().filter(|g| g.len() >= 2) {
            assert!(cfg.pair_ok(group[0], group[1], &d.store, None));
        }
    }

    #[test]
    fn valuation_classes_generate() {
        let d = MovieLens::generate(MovieLensConfig::default());
        let single = d.valuations(ValuationClass::CancelSingleAnnotation);
        assert_eq!(single.len(), d.users.len());
        let attr = d.valuations(ValuationClass::CancelSingleAttribute);
        assert!(!attr.is_empty());
        assert!(attr.len() <= 2 + 7 + 19 + 10, "bounded by vocabulary");
    }

    #[test]
    fn provenance_for_subset_restricts_objects() {
        let d = MovieLens::generate(MovieLensConfig::default());
        let subset = vec![d.movies[0], d.movies[1]];
        let p = d.provenance_for(&subset, AggKind::Max);
        assert!(p.num_objects() <= 2);
        for (o, _) in p.entries() {
            assert!(subset.contains(o));
        }
    }
}
