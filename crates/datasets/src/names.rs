//! Name pools for the synthetic dataset generators.
//!
//! The pools deliberately include the names the paper's running examples
//! use ("Match Point", "Blue Jasmine", "Adele", "Lori Black", ...) so the
//! generated provenance reads like the thesis's figures.

/// Movie titles (MovieLens-flavoured).
pub const MOVIE_TITLES: &[&str] = &[
    "MatchPoint",
    "BlueJasmine",
    "PartyGirl",
    "ByeByeLove",
    "Sleepover",
    "ManOfTheHouse",
    "Friday",
    "TheFury",
    "NearDark",
    "Titanic",
    "RaiseTheTitanic",
    "RememberTheTitans",
    "TitanAE",
    "TheChambermaidOnTheTitanic",
    "TwelveMonkeys",
    "Braveheart",
    "ApolloThirteen",
    "Babe",
    "Casino",
    "SenseAndSensibility",
    "FourRooms",
    "MoneyTrain",
    "GetShorty",
    "Copycat",
    "Assassins",
    "Powder",
    "LeavingLasVegas",
    "Othello",
    "NowAndThen",
    "Persuasion",
    "CityOfLostChildren",
    "ShanghaiTriad",
    "DangerousMinds",
    "TwoBits",
    "FrenchTwist",
    "WingsOfCourage",
    "BabysittersClub",
    "DeadManWalking",
    "AcrossTheSeaOfTime",
    "ItTakesTwo",
];

/// Occupations (the MovieLens occupation vocabulary, trimmed).
pub const OCCUPATIONS: &[&str] = &[
    "academic",
    "artist",
    "clerical",
    "college_student",
    "customer_service",
    "doctor",
    "executive",
    "farmer",
    "homemaker",
    "lawyer",
    "programmer",
    "retired",
    "sales",
    "scientist",
    "self_employed",
    "technician",
    "tradesman",
    "unemployed",
    "writer",
];

/// Age ranges (MovieLens buckets).
pub const AGE_RANGES: &[&str] = &[
    "under-18", "18-24", "25-34", "35-44", "45-49", "50-55", "56+",
];

/// Zip-code prefixes (coarse buckets so that sharing is possible).
pub const ZIP_PREFIXES: &[&str] = &[
    "02xxx", "10xxx", "19xxx", "30xxx", "48xxx", "55xxx", "60xxx", "77xxx", "90xxx", "98xxx",
];

/// Wikipedia usernames (including the paper's Example 5.2.1 cast).
pub const WIKI_USERNAMES: &[&str] = &[
    "SalubriousToxin",
    "Dubulge",
    "DrBackInTheStreet",
    "JaspertheFriendlyPunk",
    "Ebyabe",
    "Smalljim",
    "Koavf",
    "RichFarmbrough",
    "WaackaData",
    "BlueMoonlet",
    "TangentCube",
    "QuietOwl",
    "VelvetRedactor",
    "MarbleArchivist",
    "NimbleCitator",
    "PatientGnome",
    "RapidReverter",
    "SteadyScribe",
    "LucidLinker",
    "CarefulCurator",
];

/// Wikipedia page titles per leaf concept (concept name → pages).
pub const WIKI_PAGES: &[(&str, &[&str])] = &[
    (
        "wordnet_singer",
        &["Adele", "CelineDion", "EttaJames", "NinaSimone"],
    ),
    (
        "wordnet_guitarist",
        &["LoriBlack", "AlecBaillie", "DannyCedrone", "EddieLang"],
    ),
    ("wordnet_pianist", &["BillEvans", "MaryLouWilliams"]),
    ("wordnet_actor", &["TakeshiKitano", "SetsukoHara"]),
    ("wordnet_comedian", &["TotoMiranda", "GildaRadner"]),
    ("wordnet_physicist", &["LiseMeitner", "EmmyNoether"]),
    ("wordnet_chemist", &["RosalindFranklin", "GlennSeaborg"]),
    ("wordnet_politician", &["ShirleyChisholm", "WillyBrandt"]),
    ("wordnet_footballer", &["FerencPuskas", "GarrinchaSantos"]),
    ("wordnet_swimmer", &["DawnFraser", "JohnnyWeissmuller"]),
    ("wordnet_novelist", &["ItaloCalvino", "ClariceLispector"]),
    ("wordnet_poet", &["WislawaSzymborska", "FernandoPessoa"]),
    ("wordnet_movie", &["MatchPointFilm", "BlueJasmineFilm"]),
    ("wordnet_album", &["NineteenAlbum", "KindOfBlue"]),
    ("wordnet_city", &["TelAviv", "Lille"]),
    ("wordnet_country", &["Andorra", "Bhutan"]),
];

/// Movie genres.
pub const GENRES: &[&str] = &[
    "Drama",
    "Comedy",
    "Action",
    "Thriller",
    "Romance",
    "SciFi",
    "Crime",
    "Adventure",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pools_are_nonempty_and_unique() {
        for pool in [
            MOVIE_TITLES,
            OCCUPATIONS,
            AGE_RANGES,
            ZIP_PREFIXES,
            WIKI_USERNAMES,
            GENRES,
        ] {
            assert!(!pool.is_empty());
            let set: HashSet<_> = pool.iter().collect();
            assert_eq!(set.len(), pool.len(), "duplicate in pool");
        }
    }

    #[test]
    fn wiki_pages_have_unique_titles_across_concepts() {
        let mut seen = HashSet::new();
        for (_, pages) in WIKI_PAGES {
            for p in *pages {
                assert!(seen.insert(p), "duplicate page {p}");
            }
        }
    }

    #[test]
    fn paper_examples_are_present() {
        assert!(MOVIE_TITLES.contains(&"MatchPoint"));
        assert!(MOVIE_TITLES.contains(&"BlueJasmine"));
        assert!(WIKI_USERNAMES.contains(&"Dubulge"));
        let singers = WIKI_PAGES
            .iter()
            .find(|(c, _)| *c == "wordnet_singer")
            .unwrap()
            .1;
        assert!(singers.contains(&"Adele"));
    }
}
