//! Synthetic Wikipedia dataset (§5.1, Table 5.1 row 2).
//!
//! Users carry `isRegistered`, `gender` and `contribution_level`
//! attributes; pages attach to leaf concepts of the WordNet-style taxonomy;
//! edits are minor (0) or major (1). The provenance structure is
//!
//! `(Username₁·PageTitle₁) ⊗ (EditType₁, 1) ⊕ …`
//!
//! keyed per page, with SUM aggregation (total major edits per page). Both
//! user annotations (shared attribute) and page annotations (taxonomy
//! ancestor) are mergeable, and valuations are filtered for taxonomy
//! consistency.

use prox_core::{ConstraintConfig, MergeRule};
use prox_provenance::{
    AggKind, AggValue, AnnId, AnnStore, DomainId, Polynomial, ProvExpr, Tensor, Valuation,
    ValuationClass,
};
use prox_taxonomy::{filter_consistent, wordnet_fragment, Taxonomy};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::names;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct WikipediaConfig {
    /// Number of users.
    pub users: usize,
    /// Number of pages (cycled over the per-concept pools).
    pub pages: usize,
    /// Expected edits per user.
    pub edits_per_user: usize,
    /// Probability an edit is major.
    pub major_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WikipediaConfig {
    fn default() -> Self {
        WikipediaConfig {
            users: 20,
            pages: 12,
            edits_per_user: 3,
            major_prob: 0.6,
            seed: 23,
        }
    }
}

/// One edit event.
#[derive(Clone, Copy, Debug)]
pub struct Edit {
    /// Editing user.
    pub user: AnnId,
    /// Edited page.
    pub page: AnnId,
    /// 1.0 for a major edit, 0.0 for minor.
    pub edit_type: f64,
}

/// The generated dataset.
#[derive(Clone, Debug)]
pub struct Wikipedia {
    /// Annotation store (users + pages).
    pub store: AnnStore,
    /// The WordNet-style taxonomy pages attach to.
    pub taxonomy: Taxonomy,
    /// User annotations.
    pub users: Vec<AnnId>,
    /// Page annotations.
    pub pages: Vec<AnnId>,
    /// Edits in generation order.
    pub edits: Vec<Edit>,
    users_domain: DomainId,
    pages_domain: DomainId,
}

impl Wikipedia {
    /// Generate a dataset.
    pub fn generate(cfg: WikipediaConfig) -> Self {
        assert!(cfg.users > 0 && cfg.pages > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = AnnStore::new();
        let users_domain = store.domain("users");
        let pages_domain = store.domain("pages");
        let taxonomy = wordnet_fragment();

        // Pages: walk the per-concept pools round-robin so concepts are
        // populated evenly (summarization needs siblings to group).
        let mut pages = Vec::with_capacity(cfg.pages);
        let mut pool: Vec<(&str, &str)> = Vec::new();
        let mut depth = 0usize;
        while pool.len() < cfg.pages {
            let mut added = false;
            for (concept, titles) in names::WIKI_PAGES {
                if let Some(t) = titles.get(depth) {
                    pool.push((concept, t));
                    added = true;
                }
            }
            if !added {
                // Pools exhausted: synthesize extra pages.
                let (concept, _) = names::WIKI_PAGES[pool.len() % names::WIKI_PAGES.len()];
                // Leak-free synthetic title handled below via owned names.
                pool.push((concept, ""));
            }
            depth += 1;
        }
        for (ix, &(concept, title)) in pool.iter().take(cfg.pages).enumerate() {
            let owned;
            let title = if title.is_empty() {
                owned = format!("Page{}", ix + 1);
                owned.as_str()
            } else {
                title
            };
            let Some(c) = taxonomy.by_name(concept) else {
                continue; // unreachable: the pool only holds fragment concepts
            };
            let p = store.add_base_with(title, "pages", &[]);
            store.set_concept(p, c.0);
            pages.push(p);
        }

        // Users.
        let levels = ["Top-Contributor", "Reviewer", "Novice"];
        let mut users = Vec::with_capacity(cfg.users);
        for ix in 0..cfg.users {
            let base = names::WIKI_USERNAMES[ix % names::WIKI_USERNAMES.len()];
            let name = if ix < names::WIKI_USERNAMES.len() {
                base.to_owned()
            } else {
                format!("{base}{}", ix / names::WIKI_USERNAMES.len() + 2)
            };
            let registered = rng.random_bool(0.8);
            let gender = if rng.random_bool(0.5) {
                "Male"
            } else {
                "Female"
            };
            let level = levels[rng.random_range(0..levels.len())];
            let u = store.add_base_with(
                &name,
                "users",
                &[
                    ("isRegistered", if registered { "yes" } else { "no" }),
                    ("gender", gender),
                    ("contribution_level", level),
                ],
            );
            users.push(u);
        }

        // Edits: contribution level drives volume.
        let mut edits = Vec::new();
        for &user in &users {
            let level_attr = store.attr("contribution_level");
            let Some(level_val) = store.get(user).attr(level_attr) else {
                continue; // unreachable: set when the user was created above
            };
            let level = store.value_name(level_val);
            let factor = match level {
                "Top-Contributor" => 2,
                "Reviewer" => 1,
                _ => 1,
            };
            let n = (cfg.edits_per_user * factor).max(1);
            for _ in 0..n {
                let page = pages[rng.random_range(0..pages.len())];
                let major = rng.random_bool(cfg.major_prob);
                edits.push(Edit {
                    user,
                    page,
                    edit_type: if major { 1.0 } else { 0.0 },
                });
            }
        }
        // Fault injection: a `truncate` site simulates a partially-read
        // edit log by dropping a suffix of the generated edits.
        edits.truncate(prox_robust::fault::truncate_keep(edits.len()));

        Wikipedia {
            store,
            taxonomy,
            users,
            pages,
            edits,
            users_domain,
            pages_domain,
        }
    }

    /// The users domain id.
    pub fn users_domain(&self) -> DomainId {
        self.users_domain
    }

    /// The pages domain id.
    pub fn pages_domain(&self) -> DomainId {
        self.pages_domain
    }

    /// Build the per-page SUM provenance over all pages.
    pub fn provenance(&self) -> ProvExpr {
        let mut p = ProvExpr::new(AggKind::Sum);
        for e in &self.edits {
            let prov = Polynomial::var(e.user).mul(&Polynomial::var(e.page));
            p.push(e.page, Tensor::new(prov, AggValue::single(e.edit_type)));
        }
        p.simplify();
        p
    }

    /// Mapping constraints: users merge on a shared attribute; pages merge
    /// when their concepts share a taxonomy ancestor.
    pub fn constraints(&mut self) -> ConstraintConfig {
        let attrs = ["isRegistered", "gender", "contribution_level"]
            .iter()
            .map(|a| self.store.attr(a))
            .collect();
        ConstraintConfig::new()
            .allow(self.users_domain, MergeRule::SharedAttribute { attrs })
            .allow(self.pages_domain, MergeRule::TaxonomyAncestor)
    }

    /// Taxonomy-consistent valuations over users *and* pages
    /// (Table 5.1: "only valuations that are consistent with the taxonomy").
    pub fn valuations(&self, class: ValuationClass) -> Vec<Valuation> {
        let mut anns = self.users.clone();
        anns.extend_from_slice(&self.pages);
        let raw = class.generate(&self.store, &anns, &[]);
        filter_consistent(raw, &anns, &self.store, &self.taxonomy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::Summarizable;

    #[test]
    fn generation_is_deterministic() {
        let a = Wikipedia::generate(WikipediaConfig::default());
        let b = Wikipedia::generate(WikipediaConfig::default());
        let sig = |d: &Wikipedia| {
            d.edits
                .iter()
                .map(|e| (e.user, e.page, e.edit_type as i64))
                .collect::<Vec<_>>()
        };
        assert_eq!(sig(&a), sig(&b));
    }

    #[test]
    fn pages_have_concepts() {
        let d = Wikipedia::generate(WikipediaConfig::default());
        for &p in &d.pages {
            let c = d.store.get(p).concept.expect("every page has a concept");
            assert!((c as usize) < d.taxonomy.len());
        }
    }

    #[test]
    fn provenance_size_counts_two_per_edit() {
        let d = Wikipedia::generate(WikipediaConfig::default());
        let p = d.provenance();
        // Simplification may merge duplicate (user, page) edits, so size is
        // at most 2 per edit and positive.
        assert!(Summarizable::size(&p) <= d.edits.len() * 2);
        assert!(Summarizable::size(&p) > 0);
    }

    #[test]
    fn sum_aggregation_counts_major_edits() {
        let d = Wikipedia::generate(WikipediaConfig::default());
        let p = d.provenance();
        let v = p.eval(&Valuation::all_true());
        let total: f64 = v.coords().iter().map(|(_, a)| a.result()).sum();
        let expected: f64 = d.edits.iter().map(|e| e.edit_type).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn valuations_are_taxonomy_consistent() {
        let d = Wikipedia::generate(WikipediaConfig::default());
        let vals = d.valuations(ValuationClass::CancelSingleAnnotation);
        // Every user cancellation is consistent; page cancellations of leaf
        // concepts survive. At least the users' worth must be present.
        assert!(vals.len() >= d.users.len());
        let mut anns = d.users.clone();
        anns.extend_from_slice(&d.pages);
        for v in &vals {
            assert!(prox_taxonomy::is_consistent(
                v,
                &anns,
                &d.store,
                &d.taxonomy
            ));
        }
    }

    #[test]
    fn constraints_allow_sibling_pages() {
        let mut d = Wikipedia::generate(WikipediaConfig::default());
        let cfg = d.constraints();
        // Adele (singer) and LoriBlack (guitarist) share wordnet_musician.
        let adele = d.store.by_name("Adele").unwrap();
        let lori = d.store.by_name("LoriBlack").unwrap();
        assert!(cfg.pair_ok(adele, lori, &d.store, Some(&d.taxonomy)));
    }

    #[test]
    fn many_pages_synthesize_names() {
        let d = Wikipedia::generate(WikipediaConfig {
            pages: 60,
            ..Default::default()
        });
        assert_eq!(d.pages.len(), 60);
    }
}
