//! The audited-exception list (`lint.allow` at the workspace root).
//!
//! Every entry is one line: `RULE PATH [NEEDLE]`.
//!
//! * `RULE` — a rule ID (`L1`..`L8`).
//! * `PATH` — a workspace-relative file, or a directory prefix ending in
//!   `/` to cover a subtree.
//! * `NEEDLE` — the rest of the line; the entry only matches diagnostics
//!   whose source line contains it. Matching on line *text* instead of
//!   line *numbers* keeps entries stable across unrelated edits. Omitted
//!   needle matches any line in the file.
//!
//! `#` starts a comment (whole line, or trailing after ` # `). Policy:
//! every entry carries a justification comment — the allowlist is an audit
//! trail, not an escape hatch. Entries that stop matching anything are
//! reported so the list cannot rot. For the cross-file rules (L6–L8) the
//! justification is *mandatory and machine-checked*: an entry without a
//! trailing ` # reason` comment is a parse error, because suppressing a
//! deadlock/ordering/determinism finding without a reviewer-checkable
//! argument is exactly the rot these rules exist to prevent.

use crate::Diagnostic;
use std::fmt;

/// One parsed allowlist entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub needle: String,
    /// 1-based line in the allowlist file (for unused-entry reports).
    pub line: u32,
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

/// A malformed allowlist line.
#[derive(Debug)]
pub struct AllowParseError {
    pub line: u32,
    pub reason: String,
}

impl fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.allow:{}: {}", self.line, self.reason)
    }
}

impl std::error::Error for AllowParseError {}

impl Allowlist {
    /// Parse the allowlist text.
    pub fn parse(text: &str) -> Result<Allowlist, AllowParseError> {
        let mut entries = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line_no = (n + 1) as u32;
            // Trailing comments need the ` # ` form so a `#` inside a
            // needle (rare but possible) survives.
            let (body, comment) = match raw.split_once(" # ") {
                Some((b, c)) => (b, c.trim()),
                None => (raw, ""),
            };
            let body = body.trim();
            if body.is_empty() || body.starts_with('#') {
                continue;
            }
            let (rule, rest) = body.split_once(char::is_whitespace).unwrap_or((body, ""));
            let rest = rest.trim_start();
            let (path, needle) = rest
                .split_once(char::is_whitespace)
                .map(|(p, n)| (p, n.trim()))
                .unwrap_or((rest, ""));
            if path.is_empty() {
                return Err(AllowParseError {
                    line: line_no,
                    reason: "expected `RULE PATH [NEEDLE]`".to_string(),
                });
            }
            if !matches!(rule, "L1" | "L2" | "L3" | "L4" | "L5" | "L6" | "L7" | "L8") {
                return Err(AllowParseError {
                    line: line_no,
                    reason: format!("unknown rule ID '{rule}' (expected L1..L8)"),
                });
            }
            if matches!(rule, "L6" | "L7" | "L8") && comment.is_empty() {
                return Err(AllowParseError {
                    line: line_no,
                    reason: format!(
                        "{rule} entries require a trailing ` # reason` justification \
                         (cross-file findings may only be suppressed with a \
                         reviewer-checkable argument)"
                    ),
                });
            }
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path: path.to_string(),
                needle: needle.to_string(),
                line: line_no,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Index of the first entry covering this diagnostic, if any.
    pub fn matches(&self, d: &Diagnostic) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == d.rule
                && (e.path == d.file || (e.path.ends_with('/') && d.file.starts_with(&e.path)))
                && (e.needle.is_empty() || d.line_text.contains(&e.needle))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line_text: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line: 1,
            line_text: line_text.to_string(),
            message: String::new(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn entries_match_by_rule_path_and_needle() {
        let text = "\
# audited exceptions
L1 crates/obs/src/json.rs panic!(\"Json::set on non-object\") # documented invariant
L2 crates/workflow/ # workflow graphs are unordered inputs
";
        let allow = Allowlist::parse(text).unwrap();
        assert_eq!(allow.entries.len(), 2);

        let hit = diag(
            "L1",
            "crates/obs/src/json.rs",
            "other => panic!(\"Json::set on non-object\"),",
        );
        assert_eq!(allow.matches(&hit), Some(0));

        let wrong_line = diag("L1", "crates/obs/src/json.rs", "x.unwrap()");
        assert_eq!(allow.matches(&wrong_line), None);

        let prefixed = diag("L2", "crates/workflow/src/query.rs", "HashMap::new()");
        assert_eq!(allow.matches(&prefixed), Some(1));

        let wrong_rule = diag("L1", "crates/workflow/src/query.rs", "x.unwrap()");
        assert_eq!(allow.matches(&wrong_rule), None);
    }

    #[test]
    fn needleless_entry_covers_whole_file() {
        let allow = Allowlist::parse("L4 crates/foo/src/lib.rs\n").unwrap();
        let d = diag(
            "L4",
            "crates/foo/src/lib.rs",
            "pub fn f() -> Result<(), String>",
        );
        assert_eq!(allow.matches(&d), Some(0));
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        assert!(Allowlist::parse("L1\n").is_err());
        assert!(Allowlist::parse("L9 crates/foo.rs\n").is_err());
        assert!(Allowlist::parse("\n# just comments\n")
            .unwrap()
            .entries
            .is_empty());
    }

    #[test]
    fn cross_file_rules_require_justification() {
        assert!(Allowlist::parse("L6 crates/foo.rs\n").is_err());
        assert!(Allowlist::parse("L7 crates/foo.rs needle\n").is_err());
        assert!(Allowlist::parse("L8 crates/foo.rs\n").is_err());
        let ok = Allowlist::parse("L6 crates/foo.rs # guards never interleave: X before Y only\n")
            .unwrap();
        assert_eq!(ok.entries.len(), 1);
        assert_eq!(ok.entries[0].rule, "L6");
        // L1–L5 entries keep working without a trailing comment.
        assert_eq!(
            Allowlist::parse("L1 crates/foo.rs\n")
                .unwrap()
                .entries
                .len(),
            1
        );
    }
}
