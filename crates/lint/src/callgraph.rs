//! An approximate, over-inclusive call graph over the symbol table.
//!
//! Edges are found syntactically: an identifier followed by `(` inside a
//! fn body is a call. Resolution is name-based with three precision
//! tiers (same file > same crate > anywhere) and a path qualifier filter
//! for `module::fn` / `Type::method` calls. Method calls resolve only
//! when the name is rare enough to be meaningful — ubiquitous trait
//! methods (`clone`, `next`, `write`…) would connect everything to
//! everything, so they are dropped. The result over-approximates real
//! calls on the names it keeps and under-approximates on the names it
//! drops; DESIGN.md §13 spells out what that means for L8 soundness.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::symbols::SymbolTable;
use crate::AnalyzedFile;

/// One resolved call edge: `caller` (fn index) calls `callee` at `line`.
#[derive(Clone, Debug)]
pub struct CallEdge {
    pub caller: usize,
    pub callee: usize,
    pub line: u32,
}

/// The workspace call graph. `callers_of[f]` lists edges into `f`.
#[derive(Default)]
pub struct CallGraph {
    pub edges: Vec<CallEdge>,
    pub callers_of: BTreeMap<usize, Vec<usize>>,
    pub callees_of: BTreeMap<usize, Vec<usize>>,
}

/// Method names too common to resolve meaningfully: std/core trait
/// methods and collection APIs that appear on dozens of types. A method
/// call with one of these names never produces an edge.
const COMMON_METHODS: &[&str] = &[
    "clone",
    "to_string",
    "into",
    "from",
    "new",
    "default",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "next",
    "iter",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "contains",
    "clear",
    "extend",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "to_owned",
    "to_vec",
    "collect",
    "filter",
    "fold",
    "find",
    "any",
    "all",
    "count",
    "sum",
    "min",
    "max",
    "sort",
    "sort_by",
    "split",
    "trim",
    "parse",
    "join",
    "write",
    "read",
    "flush",
    "send",
    "recv",
    "lock",
    "push_str",
    "starts_with",
    "ends_with",
    "contains_key",
    "entry",
    "keys",
    "values",
    "drain",
    "take",
    "replace",
    "swap",
    "load",
    "store",
    "get_or_insert_with",
    "expect",
    "unwrap",
    "finish",
];

/// Keywords and control-flow idents that look like calls (`if (x)`,
/// `match (a, b)`, `return (x)`, …).
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "else", "fn", "move", "in", "as",
    "ref", "mut", "pub", "use", "impl", "struct", "enum", "trait", "where", "unsafe", "break",
    "continue", "dyn", "box", "await", "async", "static", "const", "crate", "super", "self",
    "Self", "type", "mod", "extern", "yield",
];

/// If a plain/method name resolves to definitions spread over more than
/// this many files, treat it as ubiquitous and drop the edge (same
/// rationale as `COMMON_METHODS`, but data-driven).
const UBIQUITY_FILE_LIMIT: usize = 3;

impl CallGraph {
    /// Build the graph: scan every fn body in `table` over its file's
    /// token stream.
    pub fn build(table: &SymbolTable, files: &BTreeMap<String, AnalyzedFile>) -> Self {
        let mut g = CallGraph::default();
        for (caller_ix, f) in table.fns.iter().enumerate() {
            let Some((open, close)) = f.body else {
                continue;
            };
            let Some(af) = files.get(&f.file) else {
                continue;
            };
            let (toks, exempt) = (&af.toks, &af.exempt);
            for i in open..close.min(toks.len()) {
                if exempt[i] {
                    continue;
                }
                let t = &toks[i];
                if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                    continue;
                }
                let name = t.text.as_str();
                if NON_CALL_KEYWORDS.contains(&name) {
                    continue;
                }
                // Skip a nested fn's own header (`fn name (`).
                if i > 0 && toks[i - 1].is_ident("fn") {
                    continue;
                }
                // Macros (`name!(...)`) are not fn calls.
                if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    continue;
                }
                let site = CallSite::classify(toks, i);
                if let Some(callee) = resolve(table, caller_ix, name, &site) {
                    // Skip fns calling themselves through resolution noise.
                    if callee != caller_ix {
                        g.edges.push(CallEdge {
                            caller: caller_ix,
                            callee,
                            line: t.line,
                        });
                    }
                }
            }
        }
        for (ix, e) in g.edges.iter().enumerate() {
            g.callers_of.entry(e.callee).or_default().push(ix);
            g.callees_of.entry(e.caller).or_default().push(ix);
        }
        g
    }
}

/// How a call site is spelled, which drives resolution.
enum CallSite {
    /// `name(...)` — a plain call.
    Plain,
    /// `recv.name(...)` — a method call.
    Method,
    /// `Qual::name(...)` — qualifier is the last path segment before `::`.
    Path(String),
}

impl CallSite {
    fn classify(toks: &[Tok], i: usize) -> CallSite {
        if i >= 1 && toks[i - 1].is_punct('.') {
            return CallSite::Method;
        }
        if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            if i >= 3 && toks[i - 3].kind == TokKind::Ident {
                return CallSite::Path(toks[i - 3].text.clone());
            }
            return CallSite::Plain; // `::name(...)` — global path, rare
        }
        CallSite::Plain
    }
}

/// Normalize a path qualifier for crate matching: `prox_serve` → `serve`.
fn norm_crate(q: &str) -> &str {
    q.strip_prefix("prox_").unwrap_or(q)
}

fn resolve(table: &SymbolTable, caller_ix: usize, name: &str, site: &CallSite) -> Option<usize> {
    let cands = table.fns_by_name.get(name)?;
    let caller = &table.fns[caller_ix];

    let pick = |filtered: Vec<usize>| -> Option<usize> {
        match filtered.len() {
            0 => None,
            1 => Some(filtered[0]),
            _ => {
                // Prefer same file, then same crate; ambiguity beyond that
                // is dropped rather than guessed.
                let same_file: Vec<usize> = filtered
                    .iter()
                    .copied()
                    .filter(|&c| table.fns[c].file == caller.file)
                    .collect();
                if same_file.len() == 1 {
                    return Some(same_file[0]);
                }
                let same_crate: Vec<usize> = filtered
                    .iter()
                    .copied()
                    .filter(|&c| table.fns[c].crate_name == caller.crate_name)
                    .collect();
                if same_crate.len() == 1 {
                    return Some(same_crate[0]);
                }
                None
            }
        }
    };

    match site {
        CallSite::Plain => {
            if too_ubiquitous(table, cands) {
                return None;
            }
            pick(cands.clone())
        }
        CallSite::Path(q) => {
            // Qualifier must match the impl owner (`Type::method`), the
            // module (`module::fn`), or the crate (`prox_x::fn`).
            let filtered: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    let f = &table.fns[c];
                    f.owner.as_deref() == Some(q.as_str())
                        || f.module == *q
                        || f.crate_name == norm_crate(q)
                })
                .collect();
            if !filtered.is_empty() {
                return pick(filtered);
            }
            // Qualifier unknown (std type, re-export): fall back to name
            // resolution unless the name is everywhere.
            if too_ubiquitous(table, cands) {
                return None;
            }
            pick(cands.clone())
        }
        CallSite::Method => {
            if COMMON_METHODS.contains(&name) || too_ubiquitous(table, cands) {
                return None;
            }
            pick(cands.clone())
        }
    }
}

fn too_ubiquitous(table: &SymbolTable, cands: &[usize]) -> bool {
    let mut files: Vec<&str> = cands.iter().map(|&c| table.fns[c].file.as_str()).collect();
    files.sort_unstable();
    files.dedup();
    files.len() > UBIQUITY_FILE_LIMIT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::test_exempt;

    fn graph(files: &[(&str, &str)]) -> (SymbolTable, CallGraph) {
        let mut table = SymbolTable::default();
        let mut streams = BTreeMap::new();
        for (rel, src) in files {
            let toks = lex(src);
            let ex = test_exempt(&toks);
            table.add_file(rel, &toks, &ex);
            streams.insert(
                rel.to_string(),
                AnalyzedFile {
                    rel: rel.to_string(),
                    src: src.to_string(),
                    toks,
                    exempt: ex,
                    scope: crate::scope::classify(rel),
                },
            );
        }
        table.index();
        let g = CallGraph::build(&table, &streams);
        (table, g)
    }

    fn edge_names(table: &SymbolTable, g: &CallGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| {
                (
                    table.fns[e.caller].name.clone(),
                    table.fns[e.callee].name.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn plain_call_same_file() {
        let (t, g) = graph(&[("crates/a/src/m.rs", "fn leaf() {} fn top() { leaf(); }")]);
        assert_eq!(
            edge_names(&t, &g),
            vec![("top".to_string(), "leaf".to_string())]
        );
    }

    #[test]
    fn cross_crate_path_call() {
        let (t, g) = graph(&[
            ("crates/obs/src/json.rs", "pub fn render_it() {}"),
            (
                "crates/serve/src/http.rs",
                "fn respond() { prox_obs::json::render_it(); }",
            ),
        ]);
        assert_eq!(
            edge_names(&t, &g),
            vec![("respond".to_string(), "render_it".to_string())]
        );
    }

    #[test]
    fn method_call_resolves_rare_names_only() {
        let (t, g) = graph(&[
            (
                "crates/a/src/w.rs",
                "impl Widget { pub fn refresh_counts(&self) {} pub fn clone(&self) {} }",
            ),
            (
                "crates/b/src/u.rs",
                "fn tick(w: &Widget) { w.refresh_counts(); w.clone(); }",
            ),
        ]);
        assert_eq!(
            edge_names(&t, &g),
            vec![("tick".to_string(), "refresh_counts".to_string())]
        );
    }

    #[test]
    fn ambiguous_cross_crate_plain_name_dropped() {
        let (t, g) = graph(&[
            ("crates/a/src/x.rs", "pub fn setup() {}"),
            ("crates/b/src/y.rs", "pub fn setup() {}"),
            ("crates/c/src/z.rs", "fn run() { setup(); }"),
        ]);
        assert!(edge_names(&t, &g).is_empty());
    }

    #[test]
    fn type_qualified_call_filters_by_owner() {
        let (t, g) = graph(&[
            (
                "crates/a/src/x.rs",
                "impl Alpha { pub fn make_thing() {} } impl Beta { pub fn make_thing() {} }",
            ),
            ("crates/b/src/y.rs", "fn run() { Alpha::make_thing(); }"),
        ]);
        let edges = edge_names(&t, &g);
        assert_eq!(edges.len(), 1);
        let callee = &t.fns[g.edges[0].callee];
        assert_eq!(callee.owner.as_deref(), Some("Alpha"));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (t, g) = graph(&[(
            "crates/a/src/m.rs",
            "fn noisy() { println!(\"x\"); if (1 > 0) { return (); } }",
        )]);
        assert!(edge_names(&t, &g).is_empty());
    }

    #[test]
    fn test_gated_calls_are_excluded() {
        let (t, g) = graph(&[(
            "crates/a/src/m.rs",
            "fn leaf() {} #[cfg(test)] mod tests { fn t() { leaf(); } }",
        )]);
        assert!(edge_names(&t, &g).is_empty());
    }
}
