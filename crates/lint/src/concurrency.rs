//! L6 lock discipline and L7 atomic-ordering consistency.
//!
//! **L6** builds a global lock-acquisition-order graph over the
//! `Mutex`/`RwLock` declarations in the symbol table. An edge A→B is
//! recorded when a guard on A is still live where B is acquired; a cycle
//! in the graph is a potential deadlock, and a guard held across a
//! blocking call (`recv`, `accept`, `join`, `sleep`, `read_exact`, …)
//! stalls every other thread contending for that lock. Guard lifetime is
//! approximated: a `let`-bound guard lives to the end of its enclosing
//! block, a temporary (`lock(&m).push(x)`) to the end of its statement;
//! early `drop(guard)` is not modeled (over-approximation, see DESIGN.md
//! §13). `Condvar::wait` is *not* blocking for this rule — it releases
//! the guard while parked.
//!
//! **L7** collects every `load`/`store`/`swap`/`fetch_*`/
//! `compare_exchange*` on each atomic declaration and checks the
//! `Ordering` arguments for consistency: an `AtomicBool` written and read
//! with `Relaxed` is a cross-thread handoff flag whose contract must be
//! documented (a comment mentioning "relaxed" in the declaring file)
//! or upgraded to `Release`/`Acquire`.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::lexer::{Tok, TokKind};
use crate::rules::line_text;
use crate::symbols::{SymbolTable, SyncKind};
use crate::{AnalyzedFile, Diagnostic};

/// Methods that park or perform unbounded I/O while a guard is live.
/// `read`/`write` themselves are too common (buffers, registers) to flag.
const BLOCKING_CALLS: &[&str] = &[
    "recv",
    "recv_timeout",
    "accept",
    "join",
    "sleep",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
];

/// One lock acquisition with its approximate guard scope `[start, end)`.
struct Acquisition {
    decl: usize,
    tok_ix: usize,
    line: u32,
    scope_end: usize,
}

struct OrderEdge {
    /// decl index acquired first / second.
    a: usize,
    b: usize,
    file: String,
    line: u32,
    a_line: u32,
}

pub fn check(table: &SymbolTable, files: &BTreeMap<String, AnalyzedFile>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut edges: Vec<OrderEdge> = Vec::new();
    for af in files.values() {
        let acqs = find_acquisitions(table, af);
        for acq in &acqs {
            // Later acquisitions inside this guard's scope order after it.
            for other in &acqs {
                if other.tok_ix > acq.tok_ix
                    && other.tok_ix < acq.scope_end
                    && other.decl != acq.decl
                    && !edges.iter().any(|e| e.a == acq.decl && e.b == other.decl)
                {
                    edges.push(OrderEdge {
                        a: acq.decl,
                        b: other.decl,
                        file: af.rel.clone(),
                        line: other.line,
                        a_line: acq.line,
                    });
                }
            }
            // Blocking calls inside the guard's scope.
            for i in acq.tok_ix + 1..acq.scope_end.min(af.toks.len()) {
                let t = &af.toks[i];
                if af.exempt[i] || t.kind != TokKind::Ident {
                    continue;
                }
                if BLOCKING_CALLS.contains(&t.text.as_str())
                    && af.toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    // `join` blocks only as `handle.join()` — zero args.
                    // `slice.join(",")` is string concatenation.
                    && (t.text != "join"
                        || af.toks.get(i + 2).is_some_and(|n| n.is_punct(')')))
                {
                    diags.push(Diagnostic {
                        rule: "L6",
                        file: af.rel.clone(),
                        line: t.line,
                        line_text: line_text(&af.src, t.line),
                        message: format!(
                            "guard on `{}` (acquired line {}) is held across \
                             blocking call `{}`; drop the guard first",
                            table.locks[acq.decl].name, acq.line, t.text
                        ),
                        trace: Vec::new(),
                    });
                }
            }
        }
    }
    diags.extend(cycle_diags(table, files, &edges));
    diags.extend(l7_atomics(table, files));
    diags
}

/// Find lock acquisitions in one file and bind them to declarations.
fn find_acquisitions(table: &SymbolTable, af: &AnalyzedFile) -> Vec<Acquisition> {
    let toks = &af.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if af.exempt[i] || t.kind != TokKind::Ident {
            continue;
        }
        let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !next_paren {
            continue;
        }
        let prev_dot = i >= 1 && toks[i - 1].is_punct('.');
        let name: Option<String> = match t.text.as_str() {
            // Free helper `lock(&ctx.cache)`: the repo's poison-recovering
            // wrapper. The lock is the last path ident in the argument.
            "lock" if !prev_dot => last_ident_in_parens(toks, i + 1),
            // `m.lock()`, `self.state.lock()`.
            "lock" if prev_dot => receiver_name(table, af, toks, i),
            // `.read()`/`.write()` count only when the receiver binds to an
            // RwLock declaration (I/O methods share these names).
            "read" | "write" if prev_dot => {
                let n = receiver_name(table, af, toks, i);
                match n.as_deref().and_then(|n| bind_lock(table, af, n)) {
                    Some(d) if table.locks[d].kind == SyncKind::RwLock => n,
                    _ => None,
                }
            }
            _ => None,
        };
        let Some(name) = name else { continue };
        let Some(decl) = bind_lock(table, af, &name) else {
            continue;
        };
        out.push(Acquisition {
            decl,
            tok_ix: i,
            line: t.line,
            scope_end: guard_scope_end(toks, i),
        });
    }
    out
}

/// The last identifier inside the paren group opening at `open` —
/// `lock(&ctx.cache)` → `cache`, `lock(&PLAN)` → `PLAN`.
fn last_ident_in_parens(toks: &[Tok], open: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut last = None;
    for t in toks.iter().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident {
            last = Some(t.text.clone());
        }
    }
    last
}

/// The receiver name of a method call at `i` (`recv.name(...)`): the
/// ident before the dot. A tuple-field receiver (`self.0.lock()`) binds
/// through the enclosing impl type's tuple-struct declaration.
fn receiver_name(table: &SymbolTable, af: &AnalyzedFile, toks: &[Tok], i: usize) -> Option<String> {
    let r = i.checked_sub(2)?;
    match toks[r].kind {
        TokKind::Ident if toks[r].text != "self" => Some(toks[r].text.clone()),
        TokKind::Num => {
            // `self.0.lock()`: use the impl owner's name (tuple-struct
            // declarations are recorded under the type name).
            let f = table.enclosing_fn(&af.rel, i)?;
            table.fns[f].owner.clone()
        }
        _ => None,
    }
}

/// Bind a receiver/argument name to a lock declaration: same file first,
/// then a unique global match, then a unique same-crate match.
fn bind_lock(table: &SymbolTable, af: &AnalyzedFile, name: &str) -> Option<usize> {
    let mut same_file = None;
    let mut global: Vec<usize> = Vec::new();
    for (ix, d) in table.locks.iter().enumerate() {
        if d.name != name {
            continue;
        }
        if d.file == af.rel && same_file.is_none() {
            same_file = Some(ix);
        }
        global.push(ix);
    }
    if same_file.is_some() {
        return same_file;
    }
    if global.len() == 1 {
        return Some(global[0]);
    }
    let crate_name = crate::symbols::crate_of(&af.rel);
    let same_crate: Vec<usize> = global
        .iter()
        .copied()
        .filter(|&ix| table.locks[ix].crate_name == crate_name)
        .collect();
    if same_crate.len() == 1 {
        return Some(same_crate[0]);
    }
    None
}

/// Approximate where the guard created at token `i` dies.
///
/// * `let guard = lock(&m);` — the guard itself is bound: end of the
///   enclosing block.
/// * `match m.lock() { … }` / `if let Ok(g) = m.lock() { … }` — scrutinee
///   temporaries live for the whole braced statement.
/// * `lock(&m).push(x);`, `let v = lock(&m).take();` — the guard is a
///   chained temporary: end of its statement.
///
/// Early `drop(guard)` is not modeled (over-approximation).
fn guard_scope_end(toks: &[Tok], i: usize) -> usize {
    // A `let` between the statement start and the call means something is
    // bound — but the *guard* is bound only when the call is the whole
    // right-hand side.
    let mut bound = false;
    let mut k = i;
    while k > 0 {
        let t = &toks[k - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("let") {
            bound = true;
            break;
        }
        k -= 1;
    }
    // The call's closing paren.
    let mut close = i + 1;
    let mut depth = 0i32;
    while close < toks.len() {
        if toks[close].is_punct('(') {
            depth += 1;
        } else if toks[close].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        close += 1;
    }
    let after = toks.get(close + 1);
    if bound && after.is_some_and(|t| t.is_punct(';')) {
        // Bound guard: to the end of the enclosing block.
        let mut depth = 0i32;
        let mut j = close + 1;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            j += 1;
        }
        return toks.len();
    }
    if after.is_some_and(|t| t.is_punct('{')) {
        // Scrutinee of `match`/`if let`: temporary lives for the block.
        return crate::scope::skip_brace_group(toks, close + 1);
    }
    // Chained temporary: to the end of its statement.
    let mut depth = 0i32;
    let mut j = close;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j;
        }
        j += 1;
    }
    toks.len()
}

/// Report each lock-order cycle once, at one of its edges.
fn cycle_diags(
    table: &SymbolTable,
    files: &BTreeMap<String, AnalyzedFile>,
    edges: &[OrderEdge],
) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.a).or_default().push(e.b);
    }
    let mut seen_cycles: Vec<Vec<usize>> = Vec::new();
    let mut out = Vec::new();
    for e in edges {
        // Path b → … → a closes a cycle through this edge.
        let Some(path) = bfs_path(&adj, e.b, e.a) else {
            continue;
        };
        let mut cycle: Vec<usize> = path;
        cycle.push(e.b);
        cycle.sort_unstable();
        cycle.dedup();
        if seen_cycles.contains(&cycle) {
            continue;
        }
        seen_cycles.push(cycle.clone());
        let names: Vec<&str> = cycle
            .iter()
            .map(|&d| table.locks[d].name.as_str())
            .collect();
        let src = files.get(&e.file).map(|af| af.src.as_str()).unwrap_or("");
        out.push(Diagnostic {
            rule: "L6",
            file: e.file.clone(),
            line: e.line,
            line_text: line_text(src, e.line),
            message: format!(
                "lock order cycle {{{}}}: `{}` (acquired line {}) is held while \
                 acquiring `{}` here, but the opposite order also occurs \
                 (potential deadlock)",
                names.join(", "),
                table.locks[e.a].name,
                e.a_line,
                table.locks[e.b].name
            ),
            trace: Vec::new(),
        });
    }
    out
}

fn bfs_path(adj: &BTreeMap<usize, Vec<usize>>, from: usize, to: usize) -> Option<Vec<usize>> {
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = prev[&cur];
                path.push(cur);
            }
            return Some(path);
        }
        for &m in adj.get(&n).into_iter().flatten() {
            if m != from && !prev.contains_key(&m) {
                prev.insert(m, n);
                queue.push_back(m);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// L7 — atomic ordering consistency
// ---------------------------------------------------------------------------

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

struct AtomicUse {
    line: u32,
    is_load: bool,
    orderings: Vec<String>,
}

fn l7_atomics(table: &SymbolTable, files: &BTreeMap<String, AnalyzedFile>) -> Vec<Diagnostic> {
    // decl index → uses across the workspace.
    let mut uses: BTreeMap<usize, Vec<(String, AtomicUse)>> = BTreeMap::new();
    for af in files.values() {
        for (i, t) in af.toks.iter().enumerate() {
            if af.exempt[i]
                || t.kind != TokKind::Ident
                || !ATOMIC_METHODS.contains(&t.text.as_str())
                || i < 2
                || !af.toks[i - 1].is_punct('.')
                || !af.toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            let Some(name) = receiver_name(table, af, &af.toks, i) else {
                continue;
            };
            let Some(decl) = bind_atomic(table, af, &name) else {
                continue;
            };
            uses.entry(decl).or_default().push((
                af.rel.clone(),
                AtomicUse {
                    line: t.line,
                    is_load: t.text == "load",
                    orderings: call_orderings(&af.toks, i + 1),
                },
            ));
        }
    }

    let mut out = Vec::new();
    for (decl, sites) in &uses {
        let d = &table.atomics[decl.to_owned()];
        let relaxed_only =
            |u: &AtomicUse| !u.orderings.is_empty() && u.orderings.iter().all(|o| o == "Relaxed");
        let store_relaxed = sites.iter().find(|(_, u)| !u.is_load && relaxed_only(u));
        let load_relaxed = sites.iter().any(|(_, u)| u.is_load && relaxed_only(u));
        if d.ty == "AtomicBool" && load_relaxed {
            if let Some((file, u)) = store_relaxed {
                if !file_documents_relaxed(files, &d.file) {
                    let src = files.get(file).map(|af| af.src.as_str()).unwrap_or("");
                    out.push(Diagnostic {
                        rule: "L7",
                        file: file.clone(),
                        line: u.line,
                        line_text: line_text(src, u.line),
                        message: format!(
                            "AtomicBool `{}` is stored and loaded with Ordering::Relaxed \
                             as a cross-thread flag; document the Relaxed contract in \
                             {} or use Release/Acquire",
                            d.name, d.file
                        ),
                        trace: Vec::new(),
                    });
                }
            }
        }
        // Mixed discipline: some sites Relaxed-only, others strictly
        // stronger (per-call mixes like compare_exchange(SeqCst, Relaxed)
        // don't count).
        let has_relaxed_only = sites.iter().any(|(_, u)| relaxed_only(u));
        let stronger_only =
            |u: &AtomicUse| !u.orderings.is_empty() && u.orderings.iter().all(|o| o != "Relaxed");
        let has_stronger_only = sites.iter().any(|(_, u)| stronger_only(u));
        if has_relaxed_only && has_stronger_only {
            let lines: Vec<String> = sites
                .iter()
                .map(|(f, u)| format!("{f}:{}", u.line))
                .collect();
            let src = files.get(&d.file).map(|af| af.src.as_str()).unwrap_or("");
            out.push(Diagnostic {
                rule: "L7",
                file: d.file.clone(),
                line: d.line,
                line_text: line_text(src, d.line),
                message: format!(
                    "atomic `{}` mixes Ordering::Relaxed with stronger orderings \
                     across its uses ({}); pick one discipline",
                    d.name,
                    lines.join(", ")
                ),
                trace: Vec::new(),
            });
        }
    }
    out
}

fn bind_atomic(table: &SymbolTable, af: &AnalyzedFile, name: &str) -> Option<usize> {
    let mut same_file = None;
    let mut global: Vec<usize> = Vec::new();
    for (ix, d) in table.atomics.iter().enumerate() {
        if d.name != name {
            continue;
        }
        if d.file == af.rel && same_file.is_none() {
            same_file = Some(ix);
        }
        global.push(ix);
    }
    same_file.or(if global.len() == 1 {
        Some(global[0])
    } else {
        None
    })
}

/// `Ordering` idents inside the call's argument parens.
fn call_orderings(toks: &[Tok], open: usize) -> Vec<String> {
    let mut depth = 0i32;
    let mut out = Vec::new();
    for t in toks.iter().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident && ORDERINGS.contains(&t.text.as_str()) {
            out.push(t.text.clone());
        }
    }
    out
}

/// Does the file declaring the atomic document its Relaxed contract?
/// Any comment line mentioning "relaxed" counts — the point is that a
/// reviewer was forced to write the reasoning down.
fn file_documents_relaxed(files: &BTreeMap<String, AnalyzedFile>, rel: &str) -> bool {
    let Some(af) = files.get(rel) else {
        return false;
    };
    af.src.lines().any(|l| {
        l.split_once("//")
            .is_some_and(|(_, c)| c.to_ascii_lowercase().contains("relaxed"))
    })
}
