//! A hand-rolled, comment- and string-aware token scanner for Rust sources.
//!
//! The linter's rules operate on token streams, never on raw text, so a
//! `panic!` inside a comment, a doc example, or a string literal is never
//! mistaken for a call site. The scanner is deliberately lossy — numbers
//! keep no value, escapes are not decoded — because the rules only need
//! identifier spelling, string contents, punctuation shape, and line
//! numbers.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `while`, `pub`).
    Ident,
    /// String literal; `text` holds the raw content without quotes.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) or loop label (`'outer`), without the quote.
    Lifetime,
    /// Numeric literal, raw text.
    Num,
    /// One punctuation character (`.`, `!`, `{`, …).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Raw text (content only for strings, single char for punctuation).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Is this punctuation `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Is this the identifier/keyword `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize Rust source. Unterminated constructs end quietly at EOF — the
/// linter reports on what it can see rather than failing the file.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let len = chars.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($kind:expr, $text:expr, $line:expr) => {
            toks.push(Tok {
                kind: $kind,
                text: $text,
                line: $line,
            })
        };
    }

    while i < len {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < len && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment; Rust block comments nest.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            i += 2;
            while i < len && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings (r"", r#""#), byte strings (b"", br#""#), byte chars
        // (b'x'), and raw identifiers (r#type).
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"')
                && (hashes > 0 || c == 'b' || chars.get(i + 1) == Some(&'"'))
            {
                // Raw or byte string: scan to closing quote + hashes.
                let start_line = line;
                let raw = hashes > 0 || (c == 'r') || (c == 'b' && chars.get(i + 1) == Some(&'r'));
                let mut k = j + 1;
                let mut content = String::new();
                while k < len {
                    if chars[k] == '\n' {
                        line += 1;
                    }
                    if chars[k] == '\\' && !raw {
                        // Escaped char in a (non-raw) byte string.
                        content.push(chars[k]);
                        if k + 1 < len {
                            content.push(chars[k + 1]);
                        }
                        k += 2;
                        continue;
                    }
                    if chars[k] == '"' {
                        let mut h = 0usize;
                        while h < hashes && chars.get(k + 1 + h) == Some(&'#') {
                            h += 1;
                        }
                        if h == hashes {
                            k += 1 + hashes;
                            break;
                        }
                    }
                    content.push(chars[k]);
                    k += 1;
                }
                push!(TokKind::Str, content, start_line);
                i = k;
                continue;
            }
            if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                // Byte char b'x' / b'\n'.
                let start_line = line;
                let mut k = i + 2;
                if chars.get(k) == Some(&'\\') {
                    k += 2;
                } else {
                    k += 1;
                }
                if chars.get(k) == Some(&'\'') {
                    k += 1;
                }
                push!(TokKind::Char, String::new(), start_line);
                i = k;
                continue;
            }
            if hashes > 0 && chars.get(j).copied().is_some_and(is_ident_start) {
                // Raw identifier r#type.
                let mut k = j;
                while k < len && is_ident_continue(chars[k]) {
                    k += 1;
                }
                push!(TokKind::Ident, chars[j..k].iter().collect(), line);
                i = k;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        if c == '"' {
            let start_line = line;
            let mut k = i + 1;
            let mut content = String::new();
            while k < len {
                match chars[k] {
                    '\\' => {
                        content.push('\\');
                        if k + 1 < len {
                            if chars[k + 1] == '\n' {
                                line += 1;
                            }
                            content.push(chars[k + 1]);
                        }
                        k += 2;
                    }
                    '"' => {
                        k += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        content.push(ch);
                        k += 1;
                    }
                }
            }
            push!(TokKind::Str, content, start_line);
            i = k;
            continue;
        }
        if c == '\'' {
            // Lifetime/label ('a, 'outer) vs char literal ('a', '\n', '(').
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            if next.is_some_and(is_ident_start) && after != Some('\'') {
                let mut k = i + 1;
                while k < len && is_ident_continue(chars[k]) {
                    k += 1;
                }
                push!(TokKind::Lifetime, chars[i + 1..k].iter().collect(), line);
                i = k;
                continue;
            }
            let mut k = i + 1;
            if chars.get(k) == Some(&'\\') {
                k += 2;
                // Multi-char escapes like '\u{1f}' run to the closing quote.
                while k < len && chars[k] != '\'' {
                    k += 1;
                }
            } else if k < len {
                k += 1;
            }
            if chars.get(k) == Some(&'\'') {
                k += 1;
            }
            push!(TokKind::Char, String::new(), line);
            i = k;
            continue;
        }
        if is_ident_start(c) {
            let mut k = i;
            while k < len && is_ident_continue(chars[k]) {
                k += 1;
            }
            push!(TokKind::Ident, chars[i..k].iter().collect(), line);
            i = k;
            continue;
        }
        if c.is_ascii_digit() {
            let mut k = i;
            while k < len
                && (is_ident_continue(chars[k])
                    || (chars[k] == '.'
                        && chars
                            .get(k + 1)
                            .copied()
                            .is_some_and(|d| d.is_ascii_digit())
                        && !chars.get(k.wrapping_sub(1)).copied().eq(&Some('.'))))
            {
                if chars[k] == '.' && chars.get(k + 1) == Some(&'.') {
                    break;
                }
                k += 1;
            }
            push!(TokKind::Num, chars[i..k].iter().collect(), line);
            i = k;
            continue;
        }
        push!(TokKind::Punct, c.to_string(), line);
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // x.unwrap() in a line comment
            /* panic!() in /* a nested */ block */
            let s = "y.unwrap() in a string";
            let r = r#"panic!() in a raw string"#;
            real.unwrap();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|s| s.as_str() == "unwrap").count(),
            1,
            "{ids:?}"
        );
        assert!(!ids.contains(&"panic".to_owned()));
    }

    #[test]
    fn string_contents_are_captured() {
        let toks = lex(r#"install("corrupt@0.5:1")"#);
        let s: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].text, "corrupt@0.5:1");
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str, c: char) { let y = 'z'; }");
        let lifetimes: Vec<&Tok> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn loop_labels_lex_as_lifetimes() {
        let toks = lex("'outer: for x in v { break 'outer; }");
        assert_eq!(toks[0].kind, TokKind::Lifetime);
        assert_eq!(toks[0].text, "outer");
        assert!(toks.iter().any(|t| t.is_ident("for")));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n/* c\nc */ b\n\"s\ns\" d";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(3));
        assert_eq!(find("d"), Some(5));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.is_ident("type")));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 0..n.unwrap() {}");
        assert!(toks.iter().any(|t| t.kind == TokKind::Num && t.text == "0"));
        assert!(toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(toks.iter().filter(|t| t.is_punct('.')).count(), 3);
    }
}
