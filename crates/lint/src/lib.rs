//! prox-lint: the workspace invariant linter.
//!
//! PROX's claims rest on contracts that rustc cannot check: seeded
//! determinism of every figure, the anytime best-so-far budget contract,
//! the typed-error discipline, and the fault-injection registry. This
//! crate makes those contracts machine-checked properties of the source
//! tree — a zero-dependency static pass (`cargo run -p prox-lint`) that
//! lexes every Rust file in the workspace and enforces rules L1–L5 (see
//! [`rules`]), with audited exceptions in `lint.allow` (see [`allow`]).

pub mod allow;
pub mod lexer;
pub mod rules;
pub mod scope;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allow::{AllowEntry, AllowParseError, Allowlist};
use rules::FaultRegistry;
use scope::Scope;

/// One rule violation, anchored to a source line.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule ID (`L1`..`L5`).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Trimmed text of that line (what allowlist needles match against).
    pub line_text: String,
    /// Human explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    | {}",
            self.file, self.line, self.rule, self.message, self.line_text
        )
    }
}

/// Failures of the linter itself (not of the linted code).
#[derive(Debug)]
pub enum LintError {
    /// Reading a source file or directory failed.
    Io { path: PathBuf, source: io::Error },
    /// `lint.allow` is malformed.
    Allow(AllowParseError),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{}: {}", path.display(), source),
            LintError::Allow(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            LintError::Allow(e) => Some(e),
        }
    }
}

/// Which files each targeted rule applies to.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// L3: budget-governed hot modules (every loop must be poll-covered).
    pub budget_files: Vec<String>,
    /// L2 (hash-order half): files whose output must be byte-stable.
    pub det_files: Vec<String>,
    /// L5: the file whose `"site" =>` match arms define the fault grammar.
    pub fault_grammar_file: String,
}

impl Default for LintConfig {
    fn default() -> Self {
        let s = |x: &str| x.to_string();
        LintConfig {
            budget_files: vec![
                s("crates/core/src/candidates.rs"),
                s("crates/core/src/summarize.rs"),
                s("crates/cluster/src/hac.rs"),
                s("crates/cluster/src/random.rs"),
                s("crates/serve/src/http.rs"),
                s("crates/serve/src/queue.rs"),
                s("crates/serve/src/server.rs"),
                s("crates/serve/src/service.rs"),
            ],
            det_files: vec![
                s("crates/bench/src/report.rs"),
                s("crates/bench/src/manifest.rs"),
                s("crates/bench/src/series.rs"),
                s("crates/bench/src/experiments.rs"),
                s("crates/bench/src/runner.rs"),
                s("crates/bench/src/serve_load.rs"),
                s("crates/bench/src/chaos.rs"),
                s("crates/bench/src/workload.rs"),
                s("crates/bench/src/bin/experiments.rs"),
                s("crates/obs/src/json.rs"),
                s("crates/obs/src/registry.rs"),
                s("crates/obs/src/sink.rs"),
                s("crates/obs/src/prom.rs"),
                s("crates/obs/src/trace.rs"),
                s("crates/obs/src/window.rs"),
                s("crates/obs/src/alloc.rs"),
                s("crates/obs/src/prof.rs"),
                s("crates/serve/src/breaker.rs"),
                s("crates/serve/src/health.rs"),
                s("crates/serve/src/ratelimit.rs"),
                s("crates/bench/src/diff.rs"),
                s("crates/system/src/render.rs"),
                s("crates/system/src/insights.rs"),
            ],
            fault_grammar_file: s("crates/robust/src/fault.rs"),
        }
    }
}

/// Accumulates diagnostics across files (L5 needs the whole workspace
/// before it can report anything).
pub struct Linter {
    cfg: LintConfig,
    registry: FaultRegistry,
    diags: Vec<Diagnostic>,
    files_scanned: usize,
}

impl Linter {
    pub fn new(cfg: LintConfig) -> Self {
        Linter {
            cfg,
            registry: FaultRegistry::default(),
            diags: Vec::new(),
            files_scanned: 0,
        }
    }

    /// Lint one Rust source file.
    pub fn check_source(&mut self, rel: &str, src: &str) {
        self.files_scanned += 1;
        let toks = lexer::lex(src);
        let exempt = scope::test_exempt(&toks);
        let file_scope = scope::classify(rel);

        self.registry.collect_strings(rel, src, &toks);
        if rel == self.cfg.fault_grammar_file {
            self.registry.collect_grammar(src, &toks, &exempt);
        }
        if file_scope == Scope::Test {
            return;
        }
        // L2 ambient sources apply to libraries and binaries alike: the
        // experiments binary writes the manifests.
        self.diags
            .extend(rules::l2_ambient(rel, src, &toks, &exempt));
        if file_scope == Scope::Lib {
            self.diags
                .extend(rules::l1_no_panic(rel, src, &toks, &exempt));
            self.diags
                .extend(rules::l4_typed_errors(rel, src, &toks, &exempt));
        }
        if self.cfg.det_files.iter().any(|f| f == rel) {
            self.diags
                .extend(rules::l2_hash_order(rel, src, &toks, &exempt));
        }
        if self.cfg.budget_files.iter().any(|f| f == rel) {
            self.diags
                .extend(rules::l3_budget(rel, src, &toks, &exempt));
        }
    }

    /// Scan a CI workflow file for fault specs (L5).
    pub fn check_yaml(&mut self, rel: &str, text: &str) {
        self.files_scanned += 1;
        self.registry.collect_yaml(rel, text);
    }

    /// Reconcile L5 and return all diagnostics sorted by location.
    pub fn finish(mut self) -> (Vec<Diagnostic>, usize) {
        let grammar_file = self.cfg.fault_grammar_file.clone();
        self.diags.extend(self.registry.finish(&grammar_file));
        self.diags
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        (self.diags, self.files_scanned)
    }
}

/// The outcome of a workspace lint run.
pub struct Report {
    /// Non-allowlisted violations (the build-failing set).
    pub violations: Vec<Diagnostic>,
    /// Diagnostics suppressed by `lint.allow`.
    pub allowed: Vec<Diagnostic>,
    /// Allowlist entries that matched nothing (stale; reported as notes).
    pub unused_allow: Vec<AllowEntry>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

/// Lint the workspace rooted at `root`. `allow_path` overrides the
/// default `<root>/lint.allow`; a missing allowlist file means no
/// exceptions.
pub fn run_workspace(root: &Path, allow_path: Option<&Path>) -> Result<Report, LintError> {
    let default_allow = root.join("lint.allow");
    let allow_path = allow_path.unwrap_or(&default_allow);
    let allowlist = match fs::read_to_string(allow_path) {
        Ok(text) => Allowlist::parse(&text).map_err(LintError::Allow)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => {
            return Err(LintError::Io {
                path: allow_path.to_path_buf(),
                source: e,
            })
        }
    };

    let mut linter = Linter::new(LintConfig::default());

    let mut sources = Vec::new();
    walk_rs(root, &mut sources).map_err(|(path, source)| LintError::Io { path, source })?;
    sources.sort();
    for path in &sources {
        let src = fs::read_to_string(path).map_err(|e| LintError::Io {
            path: path.clone(),
            source: e,
        })?;
        linter.check_source(&rel_path(root, path), &src);
    }

    let workflows = root.join(".github").join("workflows");
    if workflows.is_dir() {
        let mut ymls = Vec::new();
        list_dir(&workflows, &mut ymls).map_err(|(path, source)| LintError::Io { path, source })?;
        ymls.sort();
        for path in &ymls {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let is_yaml = name
                .as_deref()
                .is_some_and(|n| n.ends_with(".yml") || n.ends_with(".yaml"));
            if !is_yaml {
                continue;
            }
            let text = fs::read_to_string(path).map_err(|e| LintError::Io {
                path: path.clone(),
                source: e,
            })?;
            linter.check_yaml(&rel_path(root, path), &text);
        }
    }

    let (diags, files_scanned) = linter.finish();
    let mut violations = Vec::new();
    let mut allowed = Vec::new();
    let mut used = vec![false; allowlist.entries.len()];
    for d in diags {
        match allowlist.matches(&d) {
            Some(i) => {
                used[i] = true;
                allowed.push(d);
            }
            None => violations.push(d),
        }
    }
    let unused_allow = allowlist
        .entries
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(e, _)| e)
        .collect();
    Ok(Report {
        violations,
        allowed,
        unused_allow,
        files_scanned,
    })
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Deterministic recursive walk collecting `.rs` files; skips build
/// output, VCS metadata, and generated reports.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), (PathBuf, io::Error)> {
    let rd = fs::read_dir(dir).map_err(|e| (dir.to_path_buf(), e))?;
    let mut entries = Vec::new();
    for e in rd {
        entries.push(e.map_err(|e| (dir.to_path_buf(), e))?);
    }
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        let ft = e.file_type().map_err(|err| (path.clone(), err))?;
        if ft.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | ".github" | "reports") {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn list_dir(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), (PathBuf, io::Error)> {
    let rd = fs::read_dir(dir).map_err(|e| (dir.to_path_buf(), e))?;
    for e in rd {
        let e = e.map_err(|e| (dir.to_path_buf(), e))?;
        out.push(e.path());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linter_runs_all_rules_per_file() {
        let mut linter = Linter::new(LintConfig {
            budget_files: vec!["crates/x/src/hot.rs".to_string()],
            det_files: vec!["crates/x/src/emit.rs".to_string()],
            fault_grammar_file: "crates/x/src/fault.rs".to_string(),
        });
        linter.check_source("crates/x/src/hot.rs", "pub fn spin() { loop { step(); } }");
        linter.check_source(
            "crates/x/src/emit.rs",
            "use std::collections::HashMap;\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }",
        );
        linter.check_source(
            "crates/x/src/fault.rs",
            "fn p(s: &str) -> u8 { match s { \"zap\" => 1, _ => 0 } }",
        );
        let (diags, files) = linter.finish();
        assert_eq!(files, 3);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        // emit.rs: L1 unwrap + L2 HashMap; hot.rs: L3; fault.rs: L5
        // ('zap' documented but never exercised).
        assert!(rules.contains(&"L1"), "{diags:?}");
        assert!(rules.contains(&"L2"), "{diags:?}");
        assert!(rules.contains(&"L3"), "{diags:?}");
        assert!(rules.contains(&"L5"), "{diags:?}");
    }

    #[test]
    fn test_files_only_feed_l5() {
        let mut linter = Linter::new(LintConfig::default());
        linter.check_source(
            "crates/x/tests/adversarial.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }",
        );
        let (diags, _) = linter.finish();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn diagnostics_render_with_location_and_rule() {
        let d = Diagnostic {
            rule: "L1",
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            line_text: "x.unwrap();".to_string(),
            message: "boom".to_string(),
        };
        let s = d.to_string();
        assert!(s.contains("crates/x/src/lib.rs:7: [L1] boom"));
        assert!(s.contains("x.unwrap();"));
    }
}
