//! prox-lint: the workspace invariant linter.
//!
//! PROX's claims rest on contracts that rustc cannot check: seeded
//! determinism of every figure, the anytime best-so-far budget contract,
//! the typed-error discipline, and the fault-injection registry. This
//! crate makes those contracts machine-checked properties of the source
//! tree — a zero-dependency static pass (`cargo run -p prox-lint`) that
//! lexes every Rust file in the workspace and enforces rules L1–L8, with
//! audited exceptions in `lint.allow` (see [`allow`]).
//!
//! Rules L1–L5 (see [`rules`]) are per-file token-stream passes. Rules
//! L6–L8 (see [`concurrency`] and [`taint`]) are cross-file: a lightweight
//! symbol table ([`symbols`]) and approximate call graph ([`callgraph`])
//! over the whole workspace drive lock-discipline, atomic-ordering, and
//! determinism-taint analysis. DESIGN.md §13 documents the semantics and
//! the soundness caveats of the approximation.

pub mod allow;
pub mod callgraph;
pub mod concurrency;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod symbols;
pub mod taint;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allow::{AllowEntry, AllowParseError, Allowlist};
use callgraph::CallGraph;
use rules::FaultRegistry;
use scope::Scope;
use symbols::SymbolTable;

/// One rule violation, anchored to a source line.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule ID (`L1`..`L8`).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Trimmed text of that line (what allowlist needles match against).
    pub line_text: String,
    /// Human explanation.
    pub message: String,
    /// For cross-file rules: the call-graph hops that justify the
    /// diagnostic (rendered by `prox-lint --explain`). Empty for the
    /// per-file rules.
    pub trace: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    | {}",
            self.file, self.line, self.rule, self.message, self.line_text
        )
    }
}

/// Failures of the linter itself (not of the linted code).
#[derive(Debug)]
pub enum LintError {
    /// Reading a source file or directory failed.
    Io { path: PathBuf, source: io::Error },
    /// `lint.allow` is malformed.
    Allow(AllowParseError),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{}: {}", path.display(), source),
            LintError::Allow(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            LintError::Allow(e) => Some(e),
        }
    }
}

/// One lexed, classified source file, retained for the cross-file passes.
pub struct AnalyzedFile {
    /// Workspace-relative path (forward slashes).
    pub rel: String,
    /// Raw source (for line-text rendering and comment scans).
    pub src: String,
    /// Token stream.
    pub toks: Vec<lexer::Tok>,
    /// Per-token `#[cfg(test)]` exemption.
    pub exempt: Vec<bool>,
    /// Compilation target kind.
    pub scope: Scope,
}

/// Rule configuration: which files each targeted rule applies to, and the
/// roots of the determinism-taint analysis.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// L3: budget-governed hot modules (every loop must be poll-covered).
    pub budget_files: Vec<String>,
    /// L5: the file whose `"site" =>` match arms define the fault grammar.
    pub fault_grammar_file: String,
    /// L8 sink roots: `(file, fn_name)` pairs whose bodies emit output
    /// bytes; `"*"` as the name covers every fn in the file. `fs::write`
    /// and `File::create` in any fn body are sinks implicitly.
    pub sink_fns: Vec<(String, String)>,
    /// L8 barriers: files whose fns never propagate taint to callers —
    /// instrumentation that records metadata about the run, not result
    /// bytes. Audited in DESIGN.md §13.
    pub barrier_files: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        let s = |x: &str| x.to_string();
        let f = |file: &str, name: &str| (file.to_string(), name.to_string());
        LintConfig {
            budget_files: vec![
                s("crates/core/src/candidates.rs"),
                s("crates/core/src/summarize.rs"),
                s("crates/cluster/src/hac.rs"),
                s("crates/cluster/src/random.rs"),
                s("crates/serve/src/http.rs"),
                s("crates/serve/src/queue.rs"),
                s("crates/serve/src/server.rs"),
                s("crates/serve/src/service.rs"),
                s("crates/store/src/reader.rs"),
            ],
            fault_grammar_file: s("crates/robust/src/fault.rs"),
            sink_fns: vec![
                // The obs Json writer: every manifest, metrics body, and
                // summarize response renders through it.
                f("crates/obs/src/json.rs", "render"),
                f("crates/obs/src/json.rs", "pretty"),
                // The JSONL event sink.
                f("crates/obs/src/sink.rs", "emit"),
                // HTTP response bodies.
                f("crates/serve/src/http.rs", "write_response"),
                f("crates/serve/src/http.rs", "json"),
                f("crates/serve/src/http.rs", "text"),
                // Prometheus exposition and the snapshot registry.
                f("crates/obs/src/prom.rs", "*"),
                f("crates/obs/src/registry.rs", "*"),
                // Rendered summaries and insights shown to the user.
                f("crates/system/src/render.rs", "*"),
            ],
            barrier_files: vec![
                // Span/metric instrumentation: callers hand it metadata
                // about the run; the call does not make the caller's own
                // output sink-reaching.
                s("crates/obs/src/span.rs"),
                s("crates/obs/src/timer.rs"),
                s("crates/obs/src/counter.rs"),
                s("crates/obs/src/gauge.rs"),
                s("crates/obs/src/histogram.rs"),
                s("crates/obs/src/window.rs"),
                s("crates/obs/src/trace.rs"),
                s("crates/obs/src/prof.rs"),
                s("crates/obs/src/alloc.rs"),
                // The budget clock: polled everywhere, emits nothing.
                s("crates/robust/src/budget.rs"),
            ],
        }
    }
}

/// Accumulates per-file diagnostics and the analyzed files, then runs the
/// cross-file passes (L5 reconciliation, symbol table, call graph,
/// L6–L8) in [`Linter::finish`].
pub struct Linter {
    cfg: LintConfig,
    registry: FaultRegistry,
    diags: Vec<Diagnostic>,
    files_scanned: usize,
    files: BTreeMap<String, AnalyzedFile>,
}

impl Linter {
    pub fn new(cfg: LintConfig) -> Self {
        Linter {
            cfg,
            registry: FaultRegistry::default(),
            diags: Vec::new(),
            files_scanned: 0,
            files: BTreeMap::new(),
        }
    }

    /// Lint one Rust source file.
    pub fn check_source(&mut self, rel: &str, src: &str) {
        self.files_scanned += 1;
        let toks = lexer::lex(src);
        let exempt = scope::test_exempt(&toks);
        let file_scope = scope::classify(rel);

        self.registry.collect_strings(rel, src, &toks);
        if rel == self.cfg.fault_grammar_file {
            self.registry.collect_grammar(src, &toks, &exempt);
        }
        if file_scope == Scope::Test {
            return;
        }
        // L2 ambient sources apply to libraries and binaries alike: the
        // experiments binary writes the manifests.
        self.diags
            .extend(rules::l2_ambient(rel, src, &toks, &exempt));
        if file_scope == Scope::Lib {
            self.diags
                .extend(rules::l1_no_panic(rel, src, &toks, &exempt));
            self.diags
                .extend(rules::l4_typed_errors(rel, src, &toks, &exempt));
        }
        if self.cfg.budget_files.iter().any(|f| f == rel) {
            self.diags
                .extend(rules::l3_budget(rel, src, &toks, &exempt));
        }
        // Retain for the cross-file passes (tests are outside every
        // shipping contract, so they never enter the symbol table).
        self.files.insert(
            rel.to_string(),
            AnalyzedFile {
                rel: rel.to_string(),
                src: src.to_string(),
                toks,
                exempt,
                scope: file_scope,
            },
        );
    }

    /// Scan a CI workflow file for fault specs (L5).
    pub fn check_yaml(&mut self, rel: &str, text: &str) {
        self.files_scanned += 1;
        self.registry.collect_yaml(rel, text);
    }

    /// Run the cross-file passes and return all diagnostics sorted by
    /// location, the file count, and the computed determinism-relevant
    /// file set (L8's replacement for the old `det_files` config).
    pub fn finish(mut self) -> (Vec<Diagnostic>, usize, Vec<String>) {
        let grammar_file = self.cfg.fault_grammar_file.clone();
        self.diags.extend(self.registry.finish(&grammar_file));

        let mut table = SymbolTable::default();
        for f in self.files.values() {
            table.add_file(&f.rel, &f.toks, &f.exempt);
        }
        table.index();
        let graph = CallGraph::build(&table, &self.files);
        self.diags.extend(concurrency::check(&table, &self.files));
        let taint = taint::check(
            &table,
            &graph,
            &self.files,
            &self.cfg.sink_fns,
            &self.cfg.barrier_files,
        );
        self.diags.extend(taint.diags);

        self.diags
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        (self.diags, self.files_scanned, taint.det_files)
    }
}

/// The outcome of a workspace lint run.
pub struct Report {
    /// Non-allowlisted violations (the build-failing set).
    pub violations: Vec<Diagnostic>,
    /// Diagnostics suppressed by `lint.allow`.
    pub allowed: Vec<Diagnostic>,
    /// Allowlist entries that matched nothing (stale; reported as notes).
    pub unused_allow: Vec<AllowEntry>,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// Files the taint pass proved determinism-relevant (sorted).
    pub det_files: Vec<String>,
}

/// Lint the workspace rooted at `root`. `allow_path` overrides the
/// default `<root>/lint.allow`; a missing allowlist file means no
/// exceptions.
pub fn run_workspace(root: &Path, allow_path: Option<&Path>) -> Result<Report, LintError> {
    let default_allow = root.join("lint.allow");
    let allow_path = allow_path.unwrap_or(&default_allow);
    let allowlist = match fs::read_to_string(allow_path) {
        Ok(text) => Allowlist::parse(&text).map_err(LintError::Allow)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => {
            return Err(LintError::Io {
                path: allow_path.to_path_buf(),
                source: e,
            })
        }
    };

    let mut linter = Linter::new(LintConfig::default());

    let mut sources = Vec::new();
    walk_rs(root, &mut sources).map_err(|(path, source)| LintError::Io { path, source })?;
    sources.sort();
    for path in &sources {
        let src = fs::read_to_string(path).map_err(|e| LintError::Io {
            path: path.clone(),
            source: e,
        })?;
        linter.check_source(&rel_path(root, path), &src);
    }

    let workflows = root.join(".github").join("workflows");
    if workflows.is_dir() {
        let mut ymls = Vec::new();
        list_dir(&workflows, &mut ymls).map_err(|(path, source)| LintError::Io { path, source })?;
        ymls.sort();
        for path in &ymls {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let is_yaml = name
                .as_deref()
                .is_some_and(|n| n.ends_with(".yml") || n.ends_with(".yaml"));
            if !is_yaml {
                continue;
            }
            let text = fs::read_to_string(path).map_err(|e| LintError::Io {
                path: path.clone(),
                source: e,
            })?;
            linter.check_yaml(&rel_path(root, path), &text);
        }
    }

    let (diags, files_scanned, det_files) = linter.finish();
    let mut violations = Vec::new();
    let mut allowed = Vec::new();
    let mut used = vec![false; allowlist.entries.len()];
    for d in diags {
        match allowlist.matches(&d) {
            Some(i) => {
                used[i] = true;
                allowed.push(d);
            }
            None => violations.push(d),
        }
    }
    let unused_allow = allowlist
        .entries
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(e, _)| e)
        .collect();
    Ok(Report {
        violations,
        allowed,
        unused_allow,
        files_scanned,
        det_files,
    })
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Deterministic recursive walk collecting `.rs` files; skips build
/// output, VCS metadata, and generated reports.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), (PathBuf, io::Error)> {
    let rd = fs::read_dir(dir).map_err(|e| (dir.to_path_buf(), e))?;
    let mut entries = Vec::new();
    for e in rd {
        entries.push(e.map_err(|e| (dir.to_path_buf(), e))?);
    }
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        let ft = e.file_type().map_err(|err| (path.clone(), err))?;
        if ft.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | ".github" | "reports") {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn list_dir(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), (PathBuf, io::Error)> {
    let rd = fs::read_dir(dir).map_err(|e| (dir.to_path_buf(), e))?;
    for e in rd {
        let e = e.map_err(|e| (dir.to_path_buf(), e))?;
        out.push(e.path());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LintConfig {
        LintConfig {
            budget_files: vec!["crates/x/src/hot.rs".to_string()],
            fault_grammar_file: "crates/x/src/fault.rs".to_string(),
            sink_fns: vec![("crates/x/src/emit.rs".to_string(), "*".to_string())],
            barrier_files: Vec::new(),
        }
    }

    #[test]
    fn linter_runs_all_rules_per_file() {
        let mut linter = Linter::new(cfg());
        linter.check_source("crates/x/src/hot.rs", "pub fn spin() { loop { step(); } }");
        linter.check_source(
            "crates/x/src/emit.rs",
            "use std::collections::HashMap;\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }",
        );
        linter.check_source(
            "crates/x/src/fault.rs",
            "fn p(s: &str) -> u8 { match s { \"zap\" => 1, _ => 0 } }",
        );
        let (diags, files, _) = linter.finish();
        assert_eq!(files, 3);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        // emit.rs: L1 unwrap + L8 HashMap (it is a configured sink);
        // hot.rs: L3; fault.rs: L5 ('zap' documented but never exercised).
        assert!(rules.contains(&"L1"), "{diags:?}");
        assert!(rules.contains(&"L8"), "{diags:?}");
        assert!(rules.contains(&"L3"), "{diags:?}");
        assert!(rules.contains(&"L5"), "{diags:?}");
    }

    #[test]
    fn taint_spreads_to_callers_of_sinks() {
        let mut linter = Linter::new(cfg());
        linter.check_source("crates/x/src/emit.rs", "pub fn render_out() {}");
        linter.check_source(
            "crates/x/src/mid.rs",
            "use std::collections::HashMap;\npub fn assemble() { render_out(); }",
        );
        let (diags, _, det) = linter.finish();
        // mid.rs calls into the sink file, so its HashMap is flagged and
        // the diagnostic explains the path.
        let l8: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "L8").collect();
        assert_eq!(l8.len(), 1, "{diags:?}");
        assert_eq!(l8[0].file, "crates/x/src/mid.rs");
        assert!(!l8[0].trace.is_empty());
        assert!(det.contains(&"crates/x/src/mid.rs".to_string()), "{det:?}");
    }

    #[test]
    fn test_files_only_feed_l5() {
        let mut linter = Linter::new(LintConfig::default());
        linter.check_source(
            "crates/x/tests/adversarial.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }",
        );
        let (diags, _, _) = linter.finish();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn diagnostics_render_with_location_and_rule() {
        let d = Diagnostic {
            rule: "L1",
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            line_text: "x.unwrap();".to_string(),
            message: "boom".to_string(),
            trace: Vec::new(),
        };
        let s = d.to_string();
        assert!(s.contains("crates/x/src/lib.rs:7: [L1] boom"));
        assert!(s.contains("x.unwrap();"));
    }
}
