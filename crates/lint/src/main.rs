//! CLI entry point: `cargo run -p prox-lint [-- --root DIR --allow FILE]`.
//!
//! Modes:
//! * default — print violations, exit 1 when any exist
//! * `--json` — additionally write `<root>/reports/lint.json` (sorted
//!   keys, byte-identical across runs on an unchanged tree; CI double-runs
//!   and `cmp`s the bytes)
//! * `--explain FILE:LINE[:RULE]` — print the diagnostic at that location
//!   (violation or allowlisted) with its full source→sink call-graph
//!   trace
//!
//! Exit codes: 0 = clean, 1 = violations, 2 = the linter itself failed
//! (IO error, malformed allowlist, bad arguments).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use prox_lint::{Diagnostic, Report};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allow: Option<PathBuf> = None;
    let mut json = false;
    let mut explain: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root requires a path"),
            },
            "--allow" => match args.next() {
                Some(v) => allow = Some(PathBuf::from(v)),
                None => return usage("--allow requires a path"),
            },
            "--json" => json = true,
            "--explain" => match args.next() {
                Some(v) => explain = Some(v),
                None => return usage("--explain requires FILE:LINE[:RULE]"),
            },
            "--help" | "-h" => {
                println!(
                    "prox-lint: enforce the PROX workspace invariants (rules L1-L8)\n\n\
                     USAGE: prox-lint [--root DIR] [--allow FILE] [--json] [--explain LOC]\n\n\
                     --root DIR     workspace root (default: this crate's workspace)\n\
                     --allow FILE   allowlist (default: <root>/lint.allow)\n\
                     --json         also write <root>/reports/lint.json (byte-stable)\n\
                     --explain LOC  print the diagnostic at FILE:LINE[:RULE] with its\n\
                                    source->sink call-graph trace"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    // When run via `cargo run -p prox-lint`, the manifest dir is
    // crates/lint; the workspace root is two levels up.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let report = match prox_lint::run_workspace(&root, allow.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("prox-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(loc) = explain {
        return run_explain(&report, &loc);
    }

    for d in &report.violations {
        println!("{d}");
    }
    for e in &report.unused_allow {
        eprintln!(
            "prox-lint: note: lint.allow:{}: entry never matched ({} {}), remove it",
            e.line, e.rule, e.path
        );
    }
    if json {
        let out_dir = root.join("reports");
        let out_path = out_dir.join("lint.json");
        let bytes = render_json(&report);
        if let Err(e) = std::fs::create_dir_all(&out_dir)
            .and_then(|()| std::fs::write(&out_path, bytes.as_bytes()))
        {
            eprintln!("prox-lint: error: {}: {e}", out_path.display());
            return ExitCode::from(2);
        }
        println!("prox-lint: wrote {}", out_path.display());
    }
    println!(
        "prox-lint: {} violation(s), {} allowlisted, {} file(s) scanned, {} det file(s)",
        report.violations.len(),
        report.allowed.len(),
        report.files_scanned,
        report.det_files.len()
    );
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Find and print the diagnostic at `FILE:LINE[:RULE]` with its trace.
fn run_explain(report: &Report, loc: &str) -> ExitCode {
    let mut parts = loc.rsplitn(3, ':');
    // rsplitn yields from the right: RULE or LINE first.
    let (mut rule, mut line_s) = (None, parts.next().unwrap_or(""));
    if line_s.starts_with('L') {
        rule = Some(line_s.to_string());
        line_s = parts.next().unwrap_or("");
    }
    let Ok(line) = line_s.parse::<u32>() else {
        return usage("--explain expects FILE:LINE[:RULE]");
    };
    let file: String = {
        let mut rest: Vec<&str> = parts.collect();
        rest.reverse();
        rest.join(":")
    };
    if file.is_empty() {
        return usage("--explain expects FILE:LINE[:RULE]");
    }
    let matches: Vec<(&Diagnostic, bool)> = report
        .violations
        .iter()
        .map(|d| (d, false))
        .chain(report.allowed.iter().map(|d| (d, true)))
        .filter(|(d, _)| {
            d.file == file && d.line == line && rule.as_deref().is_none_or(|r| r == d.rule)
        })
        .collect();
    if matches.is_empty() {
        eprintln!("prox-lint: no diagnostic at {file}:{line} (violation or allowlisted)");
        return ExitCode::from(1);
    }
    for (d, allowed) in matches {
        println!("{d}");
        if allowed {
            println!("    (suppressed by lint.allow)");
        }
        if d.trace.is_empty() {
            println!("    per-file rule: no call-graph trace");
        } else {
            for (i, hop) in d.trace.iter().enumerate() {
                println!("    {:>2}. {hop}", i + 1);
            }
        }
    }
    ExitCode::SUCCESS
}

/// Render the machine-readable report: keys sorted, arrays in the
/// report's deterministic order, no timestamps — byte-identical across
/// runs on an unchanged tree.
fn render_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"allowed\": {},", report.allowed.len());
    s.push_str("  \"det_files\": [");
    for (i, f) in report.det_files.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    ");
        push_json_str(&mut s, f);
    }
    if !report.det_files.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    let _ = writeln!(s, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(s, "  \"unused_allow\": {},", report.unused_allow.len());
    s.push_str("  \"violations\": [");
    for (i, d) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {\"file\": ");
        push_json_str(&mut s, &d.file);
        let _ = write!(s, ", \"line\": {}, \"message\": ", d.line);
        push_json_str(&mut s, &d.message);
        s.push_str(", \"rule\": ");
        push_json_str(&mut s, d.rule);
        s.push('}');
    }
    if !report.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    s.push_str("  \"violations_by_rule\": {");
    for (i, rule) in ["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8"]
        .iter()
        .enumerate()
    {
        if i > 0 {
            s.push_str(", ");
        }
        let n = report.violations.iter().filter(|d| d.rule == *rule).count()
            + report.allowed.iter().filter(|d| d.rule == *rule).count();
        let _ = write!(s, "\"{rule}\": {n}");
    }
    s.push_str("}\n");
    s.push_str("}\n");
    s
}

fn push_json_str(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("prox-lint: {msg} (see --help)");
    ExitCode::from(2)
}
