//! CLI entry point: `cargo run -p prox-lint [-- --root DIR --allow FILE]`.
//!
//! Exit codes: 0 = clean, 1 = violations, 2 = the linter itself failed
//! (IO error, malformed allowlist, bad arguments).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allow: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root requires a path"),
            },
            "--allow" => match args.next() {
                Some(v) => allow = Some(PathBuf::from(v)),
                None => return usage("--allow requires a path"),
            },
            "--help" | "-h" => {
                println!(
                    "prox-lint: enforce the PROX workspace invariants (rules L1-L5)\n\n\
                     USAGE: prox-lint [--root DIR] [--allow FILE]\n\n\
                     --root DIR    workspace root (default: this crate's workspace)\n\
                     --allow FILE  allowlist (default: <root>/lint.allow)"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    // When run via `cargo run -p prox-lint`, the manifest dir is
    // crates/lint; the workspace root is two levels up.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let report = match prox_lint::run_workspace(&root, allow.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("prox-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.violations {
        println!("{d}");
    }
    for e in &report.unused_allow {
        eprintln!(
            "prox-lint: note: lint.allow:{}: entry never matched ({} {}), remove it",
            e.line, e.rule, e.path
        );
    }
    println!(
        "prox-lint: {} violation(s), {} allowlisted, {} file(s) scanned",
        report.violations.len(),
        report.allowed.len(),
        report.files_scanned
    );
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("prox-lint: {msg} (see --help)");
    ExitCode::from(2)
}
