//! The per-file PROX invariant rules (L1–L5).
//!
//! | rule | contract |
//! |------|----------|
//! | L1   | no-panic: `unwrap`/`expect`/`panic!`/`unreachable!` forbidden in library code |
//! | L2   | determinism: no ambient clocks/randomness anywhere in shipping code |
//! | L3   | budget coverage: loops in the designated hot modules poll a `BudgetSession` |
//! | L4   | typed errors: no `Result<_, String>` / `Box<dyn Error>` in public library APIs |
//! | L5   | fault-site registry: `PROX_FAULT` specs and the documented grammar stay in sync |
//!
//! Hash-order iteration in output paths — the old file-list-scoped half
//! of L2 — is now L8: the determinism-taint pass in [`crate::taint`]
//! decides *which* files are output paths from the call graph instead of
//! a hand-maintained list.
//!
//! Every rule works on the lexed token stream (see [`crate::lexer`]), so
//! comments and string literals can never produce false positives for
//! L1–L4, and string literals are exactly what L5 inspects.

use crate::lexer::{Tok, TokKind};
use crate::scope::skip_brace_group;
use crate::Diagnostic;

/// The trimmed source text of a 1-based line (empty if out of range).
pub fn line_text(src: &str, line: u32) -> String {
    src.lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim()
        .to_string()
}

fn diag(rule: &'static str, file: &str, line: u32, src: &str, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        file: file.to_string(),
        line,
        line_text: line_text(src, line),
        message,
        trace: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// L1 — no-panic
// ---------------------------------------------------------------------------

/// Flag `.unwrap()`, `.expect(...)`, and the panic-family macros outside
/// test code. Library code reports failures as `ProxError`; a panic tears
/// down the anytime best-so-far contract.
pub fn l1_no_panic(file: &str, src: &str, toks: &[Tok], exempt: &[bool]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if exempt[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next_paren => out.push(diag(
                "L1",
                file,
                t.line,
                src,
                format!(
                    ".{}() in library code: handle the None/Err (no-panic contract)",
                    t.text
                ),
            )),
            "panic" | "unreachable" | "todo" | "unimplemented" if next_bang => out.push(diag(
                "L1",
                file,
                t.line,
                src,
                format!(
                    "{}! in library code: return a ProxError instead (no-panic contract)",
                    t.text
                ),
            )),
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L2 — determinism
// ---------------------------------------------------------------------------

/// Flag ambient time and ambient randomness: `SystemTime::now`,
/// `thread_rng`/`from_entropy`/`OsRng`, `rand::random`. Every source of
/// variation must flow from an explicit seed or be confined to
/// observability metadata. (`Instant` is allowed: span timing never feeds
/// summary content.)
pub fn l2_ambient(file: &str, src: &str, toks: &[Tok], exempt: &[bool]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if exempt[i] || t.kind != TokKind::Ident {
            continue;
        }
        let path_call = |name: &str| {
            toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
                && toks.get(i + 3).is_some_and(|c| c.is_ident(name))
        };
        match t.text.as_str() {
            "SystemTime" if path_call("now") => out.push(diag(
                "L2",
                file,
                t.line,
                src,
                "SystemTime::now(): ambient wall-clock time; results must be \
                 reproducible from the seed"
                    .to_string(),
            )),
            "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng" => out.push(diag(
                "L2",
                file,
                t.line,
                src,
                format!(
                    "{}: ambient randomness; derive every RNG from an explicit seed",
                    t.text
                ),
            )),
            "rand" if path_call("random") => out.push(diag(
                "L2",
                file,
                t.line,
                src,
                "rand::random(): ambient randomness; derive every RNG from an explicit seed"
                    .to_string(),
            )),
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L3 — budget coverage
// ---------------------------------------------------------------------------

struct LoopSite {
    kw: usize,
    kind: &'static str,
    line: u32,
    /// `(open_brace, past_close_brace)` token range of the body.
    body: (usize, usize),
}

/// Find loop constructs in non-exempt code. `for` in `impl Trait for Type`
/// and higher-ranked `for<'a>` bounds are not loops and are skipped.
fn find_loops(toks: &[Tok], exempt: &[bool]) -> Vec<LoopSite> {
    let mut loops = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if exempt[i] || t.kind != TokKind::Ident {
            continue;
        }
        let kind = match t.text.as_str() {
            "loop" => "loop",
            "while" => "while",
            "for" => "for",
            _ => continue,
        };
        if kind == "for" {
            let prev = i.checked_sub(1).and_then(|p| toks.get(p));
            if prev.is_some_and(|p| p.kind == TokKind::Ident || p.is_punct('>')) {
                continue; // `impl Trait for Type`
            }
            if toks.get(i + 1).is_some_and(|n| n.is_punct('<')) {
                continue; // `for<'a> Fn(...)`
            }
        }
        // Body = first `{` at zero paren/bracket depth after the keyword.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut k = i + 1;
        let mut open = None;
        while k < toks.len() {
            let p = &toks[k];
            if p.kind == TokKind::Punct {
                match p.text.as_bytes().first() {
                    Some(b'(') => paren += 1,
                    Some(b')') => paren -= 1,
                    Some(b'[') => bracket += 1,
                    Some(b']') => bracket -= 1,
                    Some(b'{') if paren == 0 && bracket == 0 => {
                        open = Some(k);
                        break;
                    }
                    Some(b';') if paren == 0 && bracket == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let Some(open) = open else { continue };
        loops.push(LoopSite {
            kw: i,
            kind,
            line: t.line,
            body: (open, skip_brace_group(toks, open)),
        });
    }
    loops
}

/// In the designated hot modules, every `loop`/`while` must poll a budget
/// session (`.check()`, `.note_step()`, or `.memo_cap()`) in its own body,
/// and every `for` that nests another loop must poll in its own body or be
/// covered by an enclosing loop that does.
pub fn l3_budget(file: &str, src: &str, toks: &[Tok], exempt: &[bool]) -> Vec<Diagnostic> {
    let loops = find_loops(toks, exempt);
    let polls: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            matches!(t.text.as_str(), "check" | "note_step" | "memo_cap")
                && t.kind == TokKind::Ident
                && i.checked_sub(1)
                    .and_then(|p| toks.get(p))
                    .is_some_and(|p| p.is_punct('.'))
        })
        .map(|(i, _)| i)
        .collect();
    // Coverage spans the whole construct from the keyword: a poll in a
    // `while` condition (`while session.note_step() { ... }`) counts.
    let polled = |range: (usize, usize)| polls.iter().any(|&p| range.0 < p && p < range.1);

    let mut out = Vec::new();
    for l in &loops {
        let own = polled((l.kw, l.body.1));
        match l.kind {
            "loop" | "while" => {
                if !own {
                    out.push(diag(
                        "L3",
                        file,
                        l.line,
                        src,
                        format!(
                            "{} loop in a budget-governed module never polls the \
                             BudgetSession (.check()/.note_step()) in its body",
                            l.kind
                        ),
                    ));
                }
            }
            _ => {
                // `for`: unbounded only when it multiplies another loop.
                let nests = loops.iter().any(|n| l.body.0 < n.kw && n.kw < l.body.1);
                if !nests || own {
                    continue;
                }
                let covered = loops
                    .iter()
                    .any(|a| a.body.0 < l.kw && l.body.1 <= a.body.1 && polled((a.kw, a.body.1)));
                if !covered {
                    out.push(diag(
                        "L3",
                        file,
                        l.line,
                        src,
                        "nested for loop in a budget-governed module is not covered \
                         by any BudgetSession poll (own or enclosing loop body)"
                            .to_string(),
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L4 — typed errors
// ---------------------------------------------------------------------------

/// Flag `pub fn` signatures whose error channel is stringly or erased:
/// `Result<_, String>` or `Box<dyn ... Error ...>`. Public library APIs
/// carry `ProxError` (or a crate error convertible into it) so exit codes
/// and retry classification survive the call chain.
pub fn l4_typed_errors(file: &str, src: &str, toks: &[Tok], exempt: &[bool]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if exempt[i] || !toks[i].is_ident("pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('(')) {
            // pub(crate) / pub(super) / pub(in ...): not public API.
            i = j;
            continue;
        }
        while toks.get(j).is_some_and(|t| {
            t.is_ident("async")
                || t.is_ident("unsafe")
                || t.is_ident("const")
                || t.is_ident("extern")
                || t.kind == TokKind::Str
        }) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
            i = j;
            continue;
        }
        let fn_line = toks[j].line;
        // Signature runs to the body `{` or a trait-decl `;` at zero
        // paren/bracket depth.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut k = j + 1;
        let mut end = toks.len();
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_bytes().first() {
                    Some(b'(') => paren += 1,
                    Some(b')') => paren -= 1,
                    Some(b'[') => bracket += 1,
                    Some(b']') => bracket -= 1,
                    Some(b'{') | Some(b';') if paren == 0 && bracket == 0 => {
                        end = k;
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        let sig = &toks[j..end];
        if let Some(found) = banned_error_channel(sig) {
            out.push(diag("L4", file, fn_line, src, found));
        }
        i = end;
    }
    out
}

/// Scan one `fn` signature for a banned error channel; returns the message.
fn banned_error_channel(sig: &[Tok]) -> Option<String> {
    // `dyn ... Error` anywhere in the signature (covers Box<dyn Error> in
    // both return and argument position).
    for (d, t) in sig.iter().enumerate() {
        if !t.is_ident("dyn") {
            continue;
        }
        let mut k = d + 1;
        while sig
            .get(k)
            .is_some_and(|t| t.kind == TokKind::Ident || t.is_punct(':') || t.is_punct('+'))
        {
            if sig[k].is_ident("Error") {
                return Some(
                    "public API uses a type-erased Box<dyn Error>; use ProxError \
                     (typed-error contract)"
                        .to_string(),
                );
            }
            k += 1;
        }
    }
    // `Result<_, String>`.
    for r in 0..sig.len() {
        if !sig[r].is_ident("Result") || !sig.get(r + 1).is_some_and(|t| t.is_punct('<')) {
            continue;
        }
        let mut depth = 1i32;
        let mut parens = 0i32;
        let mut k = r + 2;
        let mut arg_start = k;
        let mut args: Vec<(usize, usize)> = Vec::new();
        while k < sig.len() && depth > 0 {
            let t = &sig[k];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                // A `>` directly after `-` is the `->` arrow, not a closer.
                if !(k > 0 && sig[k - 1].is_punct('-')) {
                    depth -= 1;
                    if depth == 0 {
                        args.push((arg_start, k));
                    }
                }
            } else if t.is_punct('(') {
                parens += 1;
            } else if t.is_punct(')') {
                parens -= 1;
            } else if t.is_punct(',') && depth == 1 && parens == 0 {
                // Commas inside tuples (`Result<(u16, String), E>`) do not
                // separate the Ok and Err arguments.
                args.push((arg_start, k));
                arg_start = k + 1;
            }
            k += 1;
        }
        if args.len() < 2 {
            continue;
        }
        let (es, ee) = args[1];
        let ids: Vec<&str> = sig[es..ee]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        let is_string = ids.contains(&"String")
            && ids
                .iter()
                .all(|s| matches!(*s, "String" | "std" | "string"));
        if is_string {
            return Some(
                "public API returns Result<_, String>; use ProxError (typed-error contract)"
                    .to_string(),
            );
        }
    }
    None
}

// ---------------------------------------------------------------------------
// L5 — fault-site registry
// ---------------------------------------------------------------------------

/// One string literal that parses as a `PROX_FAULT` spec (shape
/// `site[@param]:seed[,site[@param]:seed...]`).
pub struct SpecUse {
    pub file: String,
    pub line: u32,
    pub line_text: String,
    pub raw: String,
    pub sites: Vec<String>,
    pub has_at: bool,
    pub has_comma: bool,
}

/// Cross-file state for L5: the grammar (match arms in the fault parser)
/// on one side, every spec-shaped string in sources and CI workflows on
/// the other. [`FaultRegistry::finish`] reconciles the two.
#[derive(Default)]
pub struct FaultRegistry {
    grammar: Vec<(String, u32, String)>,
    candidates: Vec<SpecUse>,
}

/// Validate one comma-separated clause; returns `(site, has_param)`.
fn parse_clause(clause: &str) -> Option<(String, bool)> {
    let (head, seed) = clause.rsplit_once(':')?;
    if seed.is_empty() || !seed.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let (site, has_at) = match head.split_once('@') {
        Some((s, param)) => {
            param.parse::<f64>().ok()?;
            (s, true)
        }
        None => (head, false),
    };
    let mut bytes = site.bytes();
    let first_ok = bytes
        .next()
        .is_some_and(|b| b.is_ascii_lowercase() || b == b'_');
    if !first_ok
        || !site
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
    {
        return None;
    }
    Some((site.to_string(), has_at))
}

/// Parse a whole candidate string into clauses; `None` if any clause is
/// not spec-shaped.
fn parse_spec(s: &str) -> Option<(Vec<String>, bool)> {
    let mut sites = Vec::new();
    let mut has_at = false;
    for clause in s.split(',') {
        let (site, at) = parse_clause(clause.trim())?;
        has_at = has_at || at;
        sites.push(site);
    }
    if sites.is_empty() {
        None
    } else {
        Some((sites, has_at))
    }
}

impl FaultRegistry {
    /// Extract grammar sites from the fault parser: a string literal
    /// immediately followed by `=>` in non-test code is a match arm of
    /// `FaultSite::parse`.
    pub fn collect_grammar(&mut self, src: &str, toks: &[Tok], exempt: &[bool]) {
        for (i, t) in toks.iter().enumerate() {
            if exempt[i] || t.kind != TokKind::Str {
                continue;
            }
            let arm = toks.get(i + 1).is_some_and(|a| a.is_punct('='))
                && toks.get(i + 2).is_some_and(|b| b.is_punct('>'));
            if !arm {
                continue;
            }
            let ident_shaped = !t.text.is_empty()
                && t.text
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_');
            if ident_shaped && !self.grammar.iter().any(|(s, _, _)| *s == t.text) {
                self.grammar
                    .push((t.text.clone(), t.line, line_text(src, t.line)));
            }
        }
    }

    /// Record spec-shaped string literals from a Rust source file
    /// (including tests: a spec in a test must still name a real site).
    pub fn collect_strings(&mut self, file: &str, src: &str, toks: &[Tok]) {
        for t in toks {
            if t.kind != TokKind::Str {
                continue;
            }
            if let Some((sites, has_at)) = parse_spec(&t.text) {
                self.candidates.push(SpecUse {
                    file: file.to_string(),
                    line: t.line,
                    line_text: line_text(src, t.line),
                    raw: t.text.clone(),
                    sites,
                    has_at,
                    has_comma: t.text.contains(','),
                });
            }
        }
    }

    /// Record spec-shaped words from a CI workflow file (the fault
    /// injection matrix lives there).
    pub fn collect_yaml(&mut self, file: &str, text: &str) {
        for (n, line) in text.lines().enumerate() {
            for word in line.split_whitespace() {
                let word = word.trim_matches(|c| c == '"' || c == '\'' || c == ',');
                if word.is_empty() {
                    continue;
                }
                if let Some((sites, has_at)) = parse_spec(word) {
                    self.candidates.push(SpecUse {
                        file: file.to_string(),
                        line: (n + 1) as u32,
                        line_text: line.trim().to_string(),
                        raw: word.to_string(),
                        sites,
                        has_at,
                        has_comma: word.contains(','),
                    });
                }
            }
        }
    }

    /// Reconcile: every used site must be in the grammar; every grammar
    /// site must be exercised somewhere.
    pub fn finish(self, grammar_file: &str) -> Vec<Diagnostic> {
        let known: Vec<&str> = self.grammar.iter().map(|(s, _, _)| s.as_str()).collect();
        let mut out = Vec::new();
        let mut exercised: Vec<&str> = Vec::new();
        for c in &self.candidates {
            // A candidate counts as a fault spec when it is unambiguous: a
            // parameter or a multi-clause list, or it names a known site.
            let spec_like =
                c.has_at || c.has_comma || c.sites.iter().any(|s| known.contains(&s.as_str()));
            if !spec_like {
                continue;
            }
            for site in &c.sites {
                if known.contains(&site.as_str()) {
                    if !exercised.contains(&site.as_str()) {
                        exercised.push(site.as_str());
                    }
                } else {
                    out.push(Diagnostic {
                        rule: "L5",
                        file: c.file.clone(),
                        line: c.line,
                        line_text: c.line_text.clone(),
                        message: format!(
                            "fault spec \"{}\" names unknown site '{}'; documented \
                             sites: {}",
                            c.raw,
                            site,
                            known.join(", ")
                        ),
                        trace: Vec::new(),
                    });
                }
            }
        }
        for (site, line, line_text) in &self.grammar {
            if !exercised.contains(&site.as_str()) {
                out.push(Diagnostic {
                    rule: "L5",
                    file: grammar_file.to_string(),
                    line: *line,
                    line_text: line_text.clone(),
                    message: format!(
                        "fault site '{site}' is documented in the grammar but never \
                         exercised by any PROX_FAULT spec in code or CI"
                    ),
                    trace: Vec::new(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::test_exempt;

    fn run(rule: fn(&str, &str, &[Tok], &[bool]) -> Vec<Diagnostic>, src: &str) -> Vec<Diagnostic> {
        let toks = lex(src);
        let exempt = test_exempt(&toks);
        rule("fixture.rs", src, &toks, &exempt)
    }

    #[test]
    fn l1_flags_unwrap_expect_and_macros() {
        let src = r#"
            pub fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("present");
                if a > b { panic!("nope"); }
                unreachable!()
            }
        "#;
        let d = run(l1_no_panic, src);
        assert_eq!(d.len(), 4, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "L1"));
        assert_eq!(d[0].line, 3);
        assert!(d[0].line_text.contains("x.unwrap()"));
    }

    #[test]
    fn l1_skips_test_code_and_lookalikes() {
        let src = r#"
            pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }
            #[cfg(test)]
            mod tests {
                fn g(x: Option<u32>) -> u32 { x.unwrap() }
            }
        "#;
        assert!(run(l1_no_panic, src).is_empty());
    }

    #[test]
    fn l2_flags_ambient_time_and_randomness() {
        let src = r#"
            fn stamp() -> u64 { SystemTime::now().elapsed() }
            fn roll() -> u64 { let mut r = thread_rng(); rand::random() }
            fn fine() { let t = Instant::now(); }
        "#;
        let d = run(l2_ambient, src);
        assert_eq!(d.len(), 3, "{d:?}");
    }

    #[test]
    fn l3_flags_unpolled_while_and_loop() {
        let src = r#"
            fn run(session: &mut BudgetSession) {
                while work_left() { step(); }
                loop { if done() { break; } }
            }
        "#;
        let d = run(l3_budget, src);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn l3_accepts_polled_loops_and_covered_nesting() {
        let src = r#"
            fn run(session: &mut BudgetSession) {
                while session.note_step() { step(); }
                'outer: for a in xs {
                    if session.check().is_err() { break 'outer; }
                    for b in ys {
                        for c in zs { combine(a, b, c); }
                    }
                }
                for simple in xs { push(simple); }
            }
        "#;
        let d = run(l3_budget, src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l3_flags_uncovered_nested_for() {
        let src = r#"
            fn run() {
                for a in xs {
                    for b in ys { combine(a, b); }
                }
            }
        "#;
        let d = run(l3_budget, src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn l3_ignores_impl_for_and_hrtb() {
        let src = r#"
            impl Display for Foo { }
            impl<T> Trait<T> for Bar<T> { }
            fn takes(f: impl for<'a> Fn(&'a str)) { }
        "#;
        assert!(run(l3_budget, src).is_empty());
    }

    #[test]
    fn l4_flags_stringly_and_erased_errors() {
        let src = r#"
            pub fn parse(s: &str) -> Result<Json, String> { body() }
            pub fn load(p: &Path) -> Result<Data, Box<dyn std::error::Error>> { body() }
        "#;
        let d = run(l4_typed_errors, src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("Result<_, String>"));
        assert!(d[1].message.contains("dyn Error"));
    }

    #[test]
    fn l4_accepts_typed_and_private_errors() {
        let src = r#"
            pub fn good(s: &str) -> Result<Json, ProxError> { body() }
            pub fn ok_payload(s: &str) -> Result<String, ProxError> { body() }
            pub(crate) fn internal(s: &str) -> Result<(), String> { body() }
            fn private(s: &str) -> Result<(), String> { body() }
            pub fn generic<E: Error>(s: &str) -> Result<(), E> { body() }
            pub fn tuple_ok(s: &str) -> Result<(u16, String), ProxError> { body() }
        "#;
        let d = run(l4_typed_errors, src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l5_reconciles_specs_against_grammar() {
        let grammar_src = r#"
            fn parse(s: &str) -> Option<Self> {
                match s {
                    "corrupt" => Some(Self::Corrupt),
                    "budget" => Some(Self::Budget),
                    _ => None,
                }
            }
        "#;
        let use_src = r#"
            fn wire() {
                install("corrupt@0.5:1");
                install("explode@0.5:3");
            }
        "#;
        let mut reg = FaultRegistry::default();
        let gtoks = lex(grammar_src);
        let gex = test_exempt(&gtoks);
        reg.collect_grammar(grammar_src, &gtoks, &gex);
        reg.collect_strings("use.rs", use_src, &lex(use_src));
        let d = reg.finish("fault.rs");
        // One unknown site, plus 'budget' documented-but-unused.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("unknown site 'explode'"));
        assert!(d[1].message.contains("'budget'"));
    }

    #[test]
    fn l5_skips_non_spec_strings() {
        let use_src = r#"
            fn other() {
                let a = "corrupt@x:1";   // bad param: not spec-shaped
                let b = "explode:3";     // no @/comma, unknown site: ambiguous
                let c = "label:1";       // plain key:value string
                let d = "12:30";         // clock time, site not ident-shaped
            }
        "#;
        let mut reg = FaultRegistry::default();
        let gtoks = lex("fn g() { match s { \"corrupt\" => 1, _ => 0 } }");
        let gex = test_exempt(&gtoks);
        reg.collect_grammar("", &gtoks, &gex);
        reg.collect_strings("use.rs", use_src, &lex(use_src));
        // Also exercise the one known site so the reverse check passes.
        let yaml = "env:\n  PROX_FAULT: \"corrupt@0.5:1\"\n";
        reg.collect_yaml("ci.yml", yaml);
        let d = reg.finish("fault.rs");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l5_yaml_matrix_entries_count_as_uses() {
        let mut reg = FaultRegistry::default();
        let gtoks = lex("fn g() { match s { \"corrupt\" => 1, \"budget\" => 2, _ => 0 } }");
        let gex = test_exempt(&gtoks);
        reg.collect_grammar("", &gtoks, &gex);
        let yaml =
            "matrix:\n  fault:\n    - \"corrupt@0.05:11\"\n    - \"budget@40:9,corrupt@0.01:7\"\n";
        reg.collect_yaml("ci.yml", yaml);
        let d = reg.finish("fault.rs");
        assert!(d.is_empty(), "{d:?}");
    }
}
