//! File classification and `#[cfg(test)]` region detection.
//!
//! Rules L1–L4 apply to *library* code only: integration tests, benches,
//! examples, and `#[cfg(test)]` modules are exempt (the no-panic and
//! determinism contracts are about what ships, not about assertions).
//! Rule L5 scans everything — a fault spec in a test must still name a
//! real site.

use crate::lexer::{Tok, TokKind};

/// What kind of compilation target a file belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Library source (`crates/*/src`, `src/`).
    Lib,
    /// Binary source (`src/bin`, `src/main.rs`).
    Bin,
    /// Test, bench, or example source.
    Test,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> Scope {
    let p = rel_path;
    if p.starts_with("tests/")
        || p.contains("/tests/")
        || p.contains("/benches/")
        || p.starts_with("examples/")
        || p.contains("/examples/")
    {
        Scope::Test
    } else if p.contains("/bin/") || p.ends_with("/main.rs") || p == "src/main.rs" {
        Scope::Bin
    } else {
        Scope::Lib
    }
}

/// For each token, whether it sits inside a `#[cfg(test)]`- or
/// `#[test]`-gated item (attribute plus the braced or `;`-terminated item
/// that follows). `#[cfg(not(test))]` and `#[cfg_attr(...)]` do not gate.
pub fn test_exempt(toks: &[Tok]) -> Vec<bool> {
    let mut exempt = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        // Inner attribute `#![...]`: applies to the enclosing scope, never
        // gates the next item; skip it.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            i = skip_bracket_group(toks, i + 2);
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_start = i + 2;
        let attr_end = skip_bracket_group(toks, i + 1); // index after `]`
        let mut gated = attr_gates_test(&toks[attr_start..attr_end.saturating_sub(1)]);
        // Skip any further attributes stacked on the same item; any one of
        // them gating on test exempts the whole item.
        let mut j = attr_end;
        while toks.get(j).is_some_and(|t| t.is_punct('#'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            let inner_start = j + 2;
            let inner_end = skip_bracket_group(toks, j + 1);
            gated = gated || attr_gates_test(&toks[inner_start..inner_end.saturating_sub(1)]);
            j = inner_end;
        }
        if !gated {
            i = attr_end;
            continue;
        }
        // Find the gated item's extent: the first `{ ... }` block or `;` at
        // zero bracket/paren depth.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut k = j;
        let mut end = toks.len();
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_bytes().first() {
                    Some(b'(') => paren += 1,
                    Some(b')') => paren -= 1,
                    Some(b'[') => bracket += 1,
                    Some(b']') => bracket -= 1,
                    Some(b';') if paren == 0 && bracket == 0 => {
                        end = k + 1;
                        break;
                    }
                    Some(b'{') if paren == 0 && bracket == 0 => {
                        end = skip_brace_group(toks, k);
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        for slot in exempt.iter_mut().take(end.min(toks.len())).skip(i) {
            *slot = true;
        }
        i = end.max(attr_end);
    }
    exempt
}

/// Does an attribute body (tokens between `[` and `]`) gate on `test`?
fn attr_gates_test(body: &[Tok]) -> bool {
    let Some(first) = body.first() else {
        return false;
    };
    if first.is_ident("test") {
        return true; // #[test]
    }
    if !first.is_ident("cfg") {
        return false; // #[cfg_attr(...)], #[allow(...)], ...
    }
    // Inside cfg(...): `test` counts only outside any not(...) group.
    let mut not_depth = 0i32;
    let mut pending_not = false;
    let mut k = 0usize;
    while k < body.len() {
        let t = &body[k];
        if t.is_ident("not") {
            pending_not = true;
        } else if t.is_punct('(') {
            // Opening a not(...) group, or any paren nested inside one,
            // deepens the negated region.
            if pending_not || not_depth > 0 {
                not_depth += 1;
            }
            pending_not = false;
        } else if t.is_punct(')') {
            if not_depth > 0 {
                not_depth -= 1;
            }
        } else {
            pending_not = false;
            if t.is_ident("test") && not_depth == 0 {
                return true;
            }
        }
        k += 1;
    }
    false
}

/// Index just past the `]` matching the `[` at `open` (or `toks.len()`).
fn skip_bracket_group(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct('[') {
            depth += 1;
        } else if toks[k].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    toks.len()
}

/// Index just past the `}` matching the `{` at `open` (or `toks.len()`).
pub fn skip_brace_group(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct('{') {
            depth += 1;
        } else if toks[k].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn exempt_idents(src: &str) -> Vec<(String, bool)> {
        let toks = lex(src);
        let ex = test_exempt(&toks);
        toks.iter()
            .zip(&ex)
            .filter(|(t, _)| t.kind == TokKind::Ident)
            .map(|(t, &e)| (t.text.clone(), e))
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "fn live() {} #[cfg(test)] mod tests { fn dead() {} } fn live2() {}";
        let ids = exempt_idents(src);
        let get = |name: &str| ids.iter().find(|(n, _)| n == name).map(|&(_, e)| e);
        assert_eq!(get("live"), Some(false));
        assert_eq!(get("dead"), Some(true));
        assert_eq!(get("live2"), Some(false));
    }

    #[test]
    fn test_attr_fn_is_exempt() {
        let src = "#[test] fn check_it() { x.unwrap(); } fn real() {}";
        let ids = exempt_idents(src);
        assert!(ids.iter().any(|(n, e)| n == "unwrap" && *e));
        assert!(ids.iter().any(|(n, e)| n == "real" && !*e));
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))] fn shipped() {}";
        let ids = exempt_idents(src);
        assert!(ids.iter().any(|(n, e)| n == "shipped" && !*e));
    }

    #[test]
    fn cfg_any_with_test_is_exempt() {
        let src = "#[cfg(any(test, feature = \"x\"))] fn gated() {}";
        let ids = exempt_idents(src);
        assert!(ids.iter().any(|(n, e)| n == "gated" && *e));
    }

    #[test]
    fn cfg_attr_does_not_gate() {
        let src = "#![cfg_attr(not(test), warn(clippy::unwrap_used))] fn live() {}";
        let ids = exempt_idents(src);
        assert!(ids.iter().any(|(n, e)| n == "live" && !*e));
    }

    #[test]
    fn stacked_attributes_still_gate() {
        let src = "#[cfg(test)] #[allow(dead_code)] mod tests { fn inner() {} }";
        let ids = exempt_idents(src);
        assert!(ids.iter().any(|(n, e)| n == "inner" && *e));
    }

    #[test]
    fn semicolon_items_end_the_gate() {
        let src = "#[cfg(test)] use helpers::x; fn live() {}";
        let ids = exempt_idents(src);
        assert!(ids.iter().any(|(n, e)| n == "live" && !*e));
    }

    #[test]
    fn paths_classify_by_target() {
        assert_eq!(classify("crates/core/src/summarize.rs"), Scope::Lib);
        assert_eq!(classify("crates/system/src/bin/prox.rs"), Scope::Bin);
        assert_eq!(classify("crates/core/tests/properties.rs"), Scope::Test);
        assert_eq!(classify("tests/end_to_end.rs"), Scope::Test);
        assert_eq!(classify("examples/quickstart.rs"), Scope::Test);
        assert_eq!(classify("crates/bench/benches/distance.rs"), Scope::Test);
        assert_eq!(classify("src/lib.rs"), Scope::Lib);
    }
}
