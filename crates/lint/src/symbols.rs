//! A lightweight workspace symbol table built on the token stream.
//!
//! The cross-file rules (L6–L8) need to know three things about the
//! workspace that the per-file rules never did: where functions are
//! defined (and on what `impl` type), where `Mutex`/`RwLock` state lives,
//! and where atomics live. This module extracts all three from the lexed
//! token streams — no type checking, no name resolution beyond paths and
//! `impl` headers. The approximations are deliberate and documented in
//! DESIGN.md §13: the table is used to *scope* rules and build an
//! over-approximate call graph, not to prove program properties.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::scope::skip_brace_group;

/// One `fn` definition (free function, inherent method, or trait method).
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Workspace-relative file (forward slashes).
    pub file: String,
    /// Crate directory name (`serve`, `obs`, …; `root` for `src/`).
    pub crate_name: String,
    /// File stem (`render`, `queue`, …) — the module a path call names.
    pub module: String,
    /// The function name.
    pub name: String,
    /// Enclosing `impl` target type, when defined inside an impl block.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body `{ … }` (`[open, past_close)`); `None` for
    /// bodyless trait declarations.
    pub body: Option<(usize, usize)>,
}

/// What kind of blocking synchronisation primitive a declaration is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncKind {
    Mutex,
    RwLock,
}

/// One `Mutex`/`RwLock` declaration site: a struct field, a `static`, or
/// a typed binding/parameter (`m: &Mutex<T>`).
#[derive(Clone, Debug)]
pub struct SyncDecl {
    pub file: String,
    pub crate_name: String,
    /// Field/static/binding name; tuple-struct fields use the type name.
    pub name: String,
    pub kind: SyncKind,
    pub line: u32,
}

/// One atomic declaration site (`AtomicBool`, `AtomicU64`, …).
#[derive(Clone, Debug)]
pub struct AtomicDecl {
    pub file: String,
    pub crate_name: String,
    /// Field/static name; tuple-struct fields use the type name.
    pub name: String,
    /// The atomic type name (`AtomicBool`, …).
    pub ty: String,
    pub line: u32,
}

/// The workspace symbol table over all non-test sources.
#[derive(Default)]
pub struct SymbolTable {
    pub fns: Vec<FnDef>,
    pub locks: Vec<SyncDecl>,
    pub atomics: Vec<AtomicDecl>,
    /// fn name → indices into `fns`, for call resolution.
    pub fns_by_name: BTreeMap<String, Vec<usize>>,
}

/// Crate directory name for a workspace-relative path.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(c)) => c.to_string(),
        _ => "root".to_string(),
    }
}

/// File stem (`crates/obs/src/json.rs` → `json`).
pub fn module_of(rel: &str) -> String {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs")
        .to_string()
}

const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
];

impl SymbolTable {
    /// Add one file's definitions to the table. Call with non-test files
    /// only (tests are outside every shipping contract); `exempt` marks
    /// `#[cfg(test)]` regions, whose definitions are also skipped so test
    /// helpers never absorb name resolution.
    pub fn add_file(&mut self, rel: &str, toks: &[Tok], exempt: &[bool]) {
        let crate_name = crate_of(rel);
        let module = module_of(rel);
        self.collect_fns(rel, &crate_name, &module, toks, exempt);
        self.collect_sync_decls(rel, &crate_name, toks, exempt);
    }

    /// Finish construction: build the name index.
    pub fn index(&mut self) {
        self.fns_by_name.clear();
        for (ix, f) in self.fns.iter().enumerate() {
            self.fns_by_name.entry(f.name.clone()).or_default().push(ix);
        }
    }

    /// The innermost function whose body contains token `ix` of `file`.
    pub fn enclosing_fn(&self, file: &str, ix: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (f_ix, f) in self.fns.iter().enumerate() {
            if f.file != file {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            if open <= ix && ix < close {
                let tighter = match best {
                    None => true,
                    Some(b) => {
                        let (bo, bc) = self.fns[b].body.unwrap_or((0, usize::MAX));
                        open >= bo && close <= bc
                    }
                };
                if tighter {
                    best = Some(f_ix);
                }
            }
        }
        best
    }

    fn collect_fns(
        &mut self,
        rel: &str,
        crate_name: &str,
        module: &str,
        toks: &[Tok],
        exempt: &[bool],
    ) {
        // Track enclosing `impl` blocks with an explicit stack of
        // (owner, past_close_idx).
        let mut impl_stack: Vec<(String, usize)> = Vec::new();
        let mut i = 0usize;
        while i < toks.len() {
            while let Some(&(_, close)) = impl_stack.last() {
                if i >= close {
                    impl_stack.pop();
                } else {
                    break;
                }
            }
            let t = &toks[i];
            if t.is_ident("impl") {
                if let Some((owner, open)) = parse_impl_header(toks, i) {
                    let close = skip_brace_group(toks, open);
                    impl_stack.push((owner, close));
                    i = open + 1;
                    continue;
                }
            }
            if t.is_ident("fn") && !exempt.get(i).copied().unwrap_or(false) {
                let name_ok = toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident)
                    // `fn` pointers (`fn(T) -> U`) have no name.
                    && !i.checked_sub(1)
                        .and_then(|p| toks.get(p))
                        .is_some_and(|p| p.is_punct('.'));
                if name_ok {
                    let name = toks[i + 1].text.clone();
                    let (body, next) = fn_body(toks, i + 2);
                    self.fns.push(FnDef {
                        file: rel.to_string(),
                        crate_name: crate_name.to_string(),
                        module: module.to_string(),
                        name,
                        owner: impl_stack.last().map(|(o, _)| o.clone()),
                        line: t.line,
                        body,
                    });
                    // Descend into the body: nested fns get their own defs.
                    i = match body {
                        Some((open, _)) => open + 1,
                        None => next,
                    };
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Collect `Mutex`/`RwLock`/atomic declarations: any `name :
    /// [path::]Kind<…>` (or `Arc<Kind<…>>`) shape, plus tuple-struct
    /// positions which borrow the struct's own name.
    fn collect_sync_decls(&mut self, rel: &str, crate_name: &str, toks: &[Tok], exempt: &[bool]) {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || exempt.get(i).copied().unwrap_or(false) {
                continue;
            }
            let sync_kind = match t.text.as_str() {
                "Mutex" if toks.get(i + 1).is_some_and(|n| n.is_punct('<')) => {
                    Some(SyncKind::Mutex)
                }
                "RwLock" if toks.get(i + 1).is_some_and(|n| n.is_punct('<')) => {
                    Some(SyncKind::RwLock)
                }
                _ => None,
            };
            let is_atomic = ATOMIC_TYPES.contains(&t.text.as_str())
                // `AtomicU64::new(0)` is a constructor use, not a decl.
                && !(toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(':')));
            if sync_kind.is_none() && !is_atomic {
                continue;
            }
            let Some(name) = declared_name(toks, i) else {
                continue;
            };
            if let Some(kind) = sync_kind {
                self.locks.push(SyncDecl {
                    file: rel.to_string(),
                    crate_name: crate_name.to_string(),
                    name,
                    kind,
                    line: t.line,
                });
            } else {
                self.atomics.push(AtomicDecl {
                    file: rel.to_string(),
                    crate_name: crate_name.to_string(),
                    name,
                    ty: t.text.clone(),
                    line: t.line,
                });
            }
        }
    }
}

/// Parse an `impl` header starting at `impl_ix`; returns the target type
/// name and the index of the body `{`.
fn parse_impl_header(toks: &[Tok], impl_ix: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut in_where = false;
    let mut last_ident: Option<String> = None;
    let mut k = impl_ix + 1;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            TokKind::Punct => match t.text.as_bytes().first() {
                Some(b'<') => angle += 1,
                Some(b'>') if !toks[k - 1].is_punct('-') => angle -= 1,
                Some(b'(') => paren += 1,
                Some(b')') => paren -= 1,
                Some(b'{') if angle <= 0 && paren == 0 => {
                    return last_ident.map(|o| (o, k));
                }
                Some(b';') => return None, // malformed header, bail
                _ => {}
            },
            TokKind::Ident if angle <= 0 && paren == 0 && !in_where => {
                // Track the last path segment at depth 0; `for` resets so
                // `impl Trait for Type` settles on the `Type` side, and
                // `where` freezes the result before any bound idents.
                if t.text == "for" {
                    last_ident = None;
                } else if t.text == "where" {
                    in_where = true;
                } else {
                    last_ident = Some(t.text.clone());
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Find a fn body starting the scan at the token after the name: the
/// first `{` at zero paren/bracket depth opens the body; a `;` ends a
/// bodyless declaration. Returns (body range, index after the construct).
fn fn_body(toks: &[Tok], from: usize) -> (Option<(usize, usize)>, usize) {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut k = from;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'(') => paren += 1,
                Some(b')') => paren -= 1,
                Some(b'[') => bracket += 1,
                Some(b']') => bracket -= 1,
                Some(b'{') if paren == 0 && bracket == 0 => {
                    let close = skip_brace_group(toks, k);
                    return (Some((k, close)), close);
                }
                Some(b';') if paren == 0 && bracket == 0 => return (None, k + 1),
                _ => {}
            }
        }
        k += 1;
    }
    (None, toks.len())
}

/// Walk left from a type token (`Mutex`, `AtomicBool`, …) to the declared
/// name: skips `path::` qualifiers and one `Arc<`/`Option<`-style wrapper
/// layer, then expects `name :`. A `(` instead means a tuple-struct
/// position — the struct's own name is used.
fn declared_name(toks: &[Tok], ty_ix: usize) -> Option<String> {
    let mut j = ty_ix;
    loop {
        let prev = j.checked_sub(1)?;
        let t = &toks[prev];
        if t.is_punct(':') && prev >= 1 && toks[prev - 1].is_punct(':') {
            // `path::Kind` — skip the `::` and its leading segment.
            j = prev - 1;
            if j >= 1 && toks[j - 1].kind == TokKind::Ident {
                j -= 1;
            }
            continue;
        }
        if t.is_punct('<') && prev >= 1 && toks[prev - 1].kind == TokKind::Ident {
            // Wrapper layer: `Arc<Kind<..>>`, `Option<Kind<..>>`.
            j = prev - 1;
            continue;
        }
        if t.is_punct(':') {
            // `name : Kind` — the declaration we are after.
            let name_tok = toks.get(prev.checked_sub(1)?)?;
            if name_tok.kind == TokKind::Ident {
                return Some(name_tok.text.clone());
            }
            return None;
        }
        if t.is_punct('(') {
            // Tuple struct `Name(Arc<AtomicBool>)`: borrow the type name.
            let name_tok = toks.get(prev.checked_sub(1)?)?;
            if name_tok.kind == TokKind::Ident {
                return Some(name_tok.text.clone());
            }
            return None;
        }
        return None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn table(src: &str) -> SymbolTable {
        let mut t = SymbolTable::default();
        let toks = lex(src);
        let exempt = crate::scope::test_exempt(&toks);
        t.add_file("crates/x/src/m.rs", &toks, &exempt);
        t.index();
        t
    }

    #[test]
    fn free_fns_and_methods_with_owners() {
        let t = table(
            "fn free() {}\n\
             impl Widget { fn method(&self) { helper(); } }\n\
             impl fmt::Display for Widget { fn fmt(&self) {} }\n\
             impl<T> Holder<T> { fn get_t(&self) {} }",
        );
        let names: Vec<(&str, Option<&str>)> = t
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("method", Some("Widget")),
                ("fmt", Some("Widget")),
                ("get_t", Some("Holder")),
            ]
        );
    }

    #[test]
    fn nested_fns_get_their_own_defs() {
        let t = table("fn outer() { fn inner() {} inner(); }");
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[1].name, "inner");
    }

    #[test]
    fn lock_and_atomic_decls_found() {
        let t = table(
            "static PLAN: Mutex<Option<Plan>> = Mutex::new(None);\n\
             struct S { state: Mutex<Inner>, flags: std::sync::RwLock<u8>, seq: AtomicU64 }\n\
             pub struct CancelFlag(Arc<AtomicBool>);\n\
             fn init() { let x = AtomicU64::new(0); }",
        );
        let locks: Vec<(&str, SyncKind)> =
            t.locks.iter().map(|l| (l.name.as_str(), l.kind)).collect();
        assert_eq!(
            locks,
            vec![
                ("PLAN", SyncKind::Mutex),
                ("state", SyncKind::Mutex),
                ("flags", SyncKind::RwLock),
            ]
        );
        let atomics: Vec<(&str, &str)> = t
            .atomics
            .iter()
            .map(|a| (a.name.as_str(), a.ty.as_str()))
            .collect();
        // `AtomicU64::new` in `init` is a constructor, not a declaration.
        assert_eq!(
            atomics,
            vec![("seq", "AtomicU64"), ("CancelFlag", "AtomicBool")]
        );
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn outer() { fn inner() { mark(); } }";
        let t = table(src);
        let toks = lex(src);
        let mark_ix = toks.iter().position(|t| t.is_ident("mark")).unwrap();
        let f = t.enclosing_fn("crates/x/src/m.rs", mark_ix).unwrap();
        assert_eq!(t.fns[f].name, "inner");
    }

    #[test]
    fn crate_and_module_derivation() {
        assert_eq!(crate_of("crates/serve/src/queue.rs"), "serve");
        assert_eq!(crate_of("src/bin/prox.rs"), "root");
        assert_eq!(module_of("crates/obs/src/json.rs"), "json");
    }
}
