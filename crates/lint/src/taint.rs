//! L8 — determinism taint over the call graph.
//!
//! The old L2 hash-order rule was scoped by a hand-maintained file list
//! that every PR had to remember to extend. This pass replaces that list
//! with a transitive computation: a function is **sink-reaching** (SR)
//! when it emits output directly (configured sink fns, or `fs::write` /
//! `File::create` in its body) or calls an SR function; a file is
//! **determinism-relevant** when it contains an SR function or a function
//! directly called by one (the values it returns flow into output).
//! Hash-order iteration and ambient hashers/thread ids in that region
//! taint the bytes written, so they are flagged — each diagnostic carries
//! the call-graph path to the sink (`prox-lint --explain`).
//!
//! Barrier files stop propagation: calling into instrumentation
//! (span/timer/counter/… and the budget clock) does not make the caller
//! sink-reaching, because those calls carry metadata about the run, never
//! result bytes. The barrier list is part of [`crate::LintConfig`] and
//! audited in DESIGN.md §13.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::callgraph::CallGraph;
use crate::lexer::TokKind;
use crate::rules::line_text;
use crate::symbols::SymbolTable;
use crate::{AnalyzedFile, Diagnostic};

/// Why a file is determinism-relevant, for trace rendering.
enum DetReason {
    /// The file contains this SR fn.
    Contains(usize),
    /// `caller` (SR) calls `callee`, which lives in this file.
    CalledBy {
        caller: usize,
        callee: usize,
        line: u32,
    },
}

/// Outcome of the taint pass.
pub struct TaintResult {
    pub diags: Vec<Diagnostic>,
    /// Sorted list of determinism-relevant files (the computed
    /// replacement for the old `det_files` config).
    pub det_files: Vec<String>,
}

/// Sources of per-process variation that poison any output they reach.
const AMBIENT_HASHERS: &[&str] = &["RandomState", "DefaultHasher", "ThreadId"];

pub fn check(
    table: &SymbolTable,
    graph: &CallGraph,
    files: &BTreeMap<String, AnalyzedFile>,
    sink_fns: &[(String, String)],
    barrier_files: &[String],
) -> TaintResult {
    let n = table.fns.len();
    let mut sr = vec![false; n];
    // For SR fn f: the next call hop toward a sink, or None when f is
    // itself a direct sink (then `sink_desc` has the details).
    let mut next_hop: Vec<Option<(usize, u32)>> = vec![None; n];
    let mut sink_desc: BTreeMap<usize, (u32, String)> = BTreeMap::new();

    // Seed: configured sink fns and direct write patterns.
    for (ix, f) in table.fns.iter().enumerate() {
        let configured = sink_fns
            .iter()
            .any(|(file, name)| *file == f.file && (name == "*" || *name == f.name));
        if configured {
            sr[ix] = true;
            sink_desc.insert(ix, (f.line, "configured output sink".to_string()));
            continue;
        }
        if let Some((line, what)) = direct_write(table, files, ix) {
            sr[ix] = true;
            sink_desc.insert(ix, (line, what));
        }
    }

    // Reverse BFS: SR propagates from callee to caller, except out of
    // barrier files.
    let mut queue: VecDeque<usize> = (0..n).filter(|&ix| sr[ix]).collect();
    while let Some(f) = queue.pop_front() {
        if barrier_files.iter().any(|b| *b == table.fns[f].file) {
            continue;
        }
        let Some(edge_ixs) = graph.callers_of.get(&f) else {
            continue;
        };
        for &e_ix in edge_ixs {
            let e = &graph.edges[e_ix];
            if !sr[e.caller] {
                sr[e.caller] = true;
                next_hop[e.caller] = Some((f, e.line));
                queue.push_back(e.caller);
            }
        }
    }

    // Determinism-relevant files, with the reason that makes them so.
    let mut det: BTreeMap<String, DetReason> = BTreeMap::new();
    for (ix, f) in table.fns.iter().enumerate() {
        if sr[ix] && !det.contains_key(&f.file) {
            det.insert(f.file.clone(), DetReason::Contains(ix));
        }
    }
    for e in &graph.edges {
        if !sr[e.caller] {
            continue;
        }
        let callee_file = &table.fns[e.callee].file;
        if barrier_files.iter().any(|b| b == callee_file) {
            continue;
        }
        if !det.contains_key(callee_file) {
            det.insert(
                callee_file.clone(),
                DetReason::CalledBy {
                    caller: e.caller,
                    callee: e.callee,
                    line: e.line,
                },
            );
        }
    }

    let mut diags = Vec::new();
    // (a) Hash-order collections anywhere in a determinism-relevant file.
    for (rel, reason) in &det {
        let Some(af) = files.get(rel) else { continue };
        let mut last_line = 0u32;
        for (i, t) in af.toks.iter().enumerate() {
            if af.exempt[i] || t.kind != TokKind::Ident {
                continue;
            }
            if (t.text == "HashMap" || t.text == "HashSet") && t.line != last_line {
                last_line = t.line;
                diags.push(Diagnostic {
                    rule: "L8",
                    file: rel.clone(),
                    line: t.line,
                    line_text: line_text(&af.src, t.line),
                    message: format!(
                        "{} in a sink-reaching file: iteration order leaks into \
                         output bytes; use BTreeMap/BTreeSet or sort explicitly",
                        t.text
                    ),
                    trace: reason_trace(table, &next_hop, &sink_desc, reason),
                });
            }
        }
    }
    // (b) Ambient hashers / thread ids inside SR fn bodies.
    for (ix, f) in table.fns.iter().enumerate() {
        if !sr[ix] {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        let Some(af) = files.get(&f.file) else {
            continue;
        };
        for i in open..close.min(af.toks.len()) {
            let t = &af.toks[i];
            if af.exempt[i] || t.kind != TokKind::Ident {
                continue;
            }
            let thread_id = t.text == "current"
                && af.toks.get(i + 1).is_some_and(|a| a.is_punct('('))
                && af.toks.get(i + 2).is_some_and(|a| a.is_punct(')'))
                && af.toks.get(i + 3).is_some_and(|a| a.is_punct('.'))
                && af.toks.get(i + 4).is_some_and(|a| a.is_ident("id"));
            if AMBIENT_HASHERS.contains(&t.text.as_str()) || thread_id {
                diags.push(Diagnostic {
                    rule: "L8",
                    file: f.file.clone(),
                    line: t.line,
                    line_text: line_text(&af.src, t.line),
                    message: format!(
                        "{} in sink-reaching fn `{}`: per-process variation \
                         flows into output bytes",
                        if thread_id {
                            "thread id".to_string()
                        } else {
                            t.text.clone()
                        },
                        f.name
                    ),
                    trace: fn_trace(table, &next_hop, &sink_desc, ix),
                });
            }
        }
    }

    TaintResult {
        diags,
        det_files: det.keys().cloned().collect(),
    }
}

/// A direct write in fn `ix`'s body: `fs::write*` or `File::create`.
fn direct_write(
    table: &SymbolTable,
    files: &BTreeMap<String, AnalyzedFile>,
    ix: usize,
) -> Option<(u32, String)> {
    let f = &table.fns[ix];
    let (open, close) = f.body?;
    let af = files.get(&f.file)?;
    for i in open..close.min(af.toks.len()) {
        if af.exempt[i] {
            continue;
        }
        let t = &af.toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let path_to = |name_pred: &dyn Fn(&str) -> bool| {
            af.toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && af.toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && af
                    .toks
                    .get(i + 3)
                    .is_some_and(|a| a.kind == TokKind::Ident && name_pred(&a.text))
        };
        if t.text == "fs" && path_to(&|n| n.starts_with("write")) {
            return Some((t.line, "fs::write".to_string()));
        }
        if t.text == "File" && path_to(&|n| n == "create") {
            return Some((t.line, "File::create".to_string()));
        }
    }
    None
}

/// Render the source→sink hops for SR fn `ix`.
fn fn_trace(
    table: &SymbolTable,
    next_hop: &[Option<(usize, u32)>],
    sink_desc: &BTreeMap<usize, (u32, String)>,
    ix: usize,
) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = ix;
    // The graph is acyclic along next_hop by construction (BFS tree), but
    // cap the walk defensively.
    for _ in 0..table.fns.len() + 1 {
        let f = &table.fns[cur];
        match next_hop[cur] {
            Some((callee, line)) => {
                out.push(format!(
                    "{}:{} {}() calls {}()",
                    f.file, line, f.name, table.fns[callee].name
                ));
                cur = callee;
            }
            None => {
                let (line, what) = sink_desc
                    .get(&cur)
                    .cloned()
                    .unwrap_or((f.line, "output sink".to_string()));
                out.push(format!(
                    "{}:{} {}() emits output ({what})",
                    f.file, line, f.name
                ));
                break;
            }
        }
    }
    out
}

/// Render why a whole file is determinism-relevant.
fn reason_trace(
    table: &SymbolTable,
    next_hop: &[Option<(usize, u32)>],
    sink_desc: &BTreeMap<usize, (u32, String)>,
    reason: &DetReason,
) -> Vec<String> {
    match reason {
        DetReason::Contains(ix) => fn_trace(table, next_hop, sink_desc, *ix),
        DetReason::CalledBy {
            caller,
            callee,
            line,
        } => {
            let c = &table.fns[*caller];
            let mut out = vec![format!(
                "{}:{} sink-reaching {}() consumes {}() from this file",
                c.file, line, c.name, table.fns[*callee].name
            )];
            out.extend(fn_trace(table, next_hop, sink_desc, *caller));
            out
        }
    }
}
