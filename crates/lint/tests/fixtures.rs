//! Golden-fixture corpus for the cross-file rules (L6–L8).
//!
//! Each fixture under `tests/fixtures/` is a small source file with a
//! known violation — or its clean counterpart — fed to the [`Linter`]
//! under library paths (`crates/fx/src/…`) so the cross-file passes treat
//! them as shipping code. The real workspace walk classifies the fixture
//! directory as test scope, so the violations planted here never count
//! against the tree itself.
//!
//! The final test is the det-coverage parity gate: the taint pass
//! replaced the hand-maintained `det_files` list, and every file on the
//! old list that has hash-order sites must still be covered by the
//! computed set.

use prox_lint::{Diagnostic, LintConfig, Linter};

/// Lint a set of fixtures as one mini-workspace and return the
/// diagnostics plus the computed determinism-relevant file set.
fn lint(files: &[(&str, &str)]) -> (Vec<Diagnostic>, Vec<String>) {
    let mut linter = Linter::new(fixture_cfg());
    for (rel, src) in files {
        linter.check_source(rel, src);
    }
    let (diags, _, det) = linter.finish();
    (diags, det)
}

fn fixture_cfg() -> LintConfig {
    LintConfig {
        budget_files: Vec::new(),
        fault_grammar_file: "crates/fx/src/fault.rs".to_string(),
        sink_fns: vec![("crates/fx/src/l8_sink.rs".to_string(), "*".to_string())],
        barrier_files: vec!["crates/fx/src/l8_barrier.rs".to_string()],
    }
}

/// Only the cross-file diagnostics — fixtures may carry incidental L1
/// findings (they are synthetic snippets, not production code).
fn cross_file(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    diags
        .iter()
        .filter(|d| matches!(d.rule, "L6" | "L7" | "L8"))
        .collect()
}

macro_rules! fixture {
    ($name:literal) => {
        (
            concat!("crates/fx/src/", $name),
            include_str!(concat!("fixtures/", $name)),
        )
    };
}

// --- L6: lock discipline ---------------------------------------------------

#[test]
fn l6_opposite_acquisition_orders_close_a_cycle() {
    let (diags, _) = lint(&[fixture!("l6_order_cycle.rs")]);
    let l6 = cross_file(&diags);
    assert_eq!(l6.len(), 1, "one cycle, reported once: {diags:?}");
    assert_eq!(l6[0].rule, "L6");
    assert!(
        l6[0].message.contains("lock order cycle"),
        "{}",
        l6[0].message
    );
    assert!(
        l6[0].message.contains("ALPHA") && l6[0].message.contains("BETA"),
        "{}",
        l6[0].message
    );
}

#[test]
fn l6_consistent_order_is_clean() {
    let (diags, _) = lint(&[fixture!("l6_order_clean.rs")]);
    assert!(cross_file(&diags).is_empty(), "{diags:?}");
}

#[test]
fn l6_guard_held_across_recv_is_flagged() {
    let (diags, _) = lint(&[fixture!("l6_blocking_hold.rs")]);
    let l6 = cross_file(&diags);
    assert_eq!(l6.len(), 1, "{diags:?}");
    assert!(
        l6[0].message.contains("held across") && l6[0].message.contains("recv"),
        "{}",
        l6[0].message
    );
    assert!(l6[0].message.contains("PENDING"), "{}", l6[0].message);
}

#[test]
fn l6_guard_confined_to_inner_block_is_clean() {
    let (diags, _) = lint(&[fixture!("l6_blocking_clean.rs")]);
    assert!(cross_file(&diags).is_empty(), "{diags:?}");
}

// --- L7: atomic ordering ---------------------------------------------------

#[test]
fn l7_undocumented_relaxed_handoff_flag_is_flagged() {
    let (diags, _) = lint(&[fixture!("l7_relaxed_flag.rs")]);
    let l7 = cross_file(&diags);
    assert_eq!(l7.len(), 1, "{diags:?}");
    assert_eq!(l7[0].rule, "L7");
    assert!(l7[0].message.contains("READY"), "{}", l7[0].message);
    assert!(
        l7[0].message.contains("document the Relaxed contract"),
        "{}",
        l7[0].message
    );
}

#[test]
fn l7_documented_relaxed_contract_is_clean() {
    let (diags, _) = lint(&[fixture!("l7_relaxed_documented.rs")]);
    assert!(cross_file(&diags).is_empty(), "{diags:?}");
}

#[test]
fn l7_mixed_orderings_flagged_at_declaration() {
    let (diags, _) = lint(&[fixture!("l7_mixed_ordering.rs")]);
    let l7 = cross_file(&diags);
    assert_eq!(l7.len(), 1, "{diags:?}");
    assert!(
        l7[0].message.contains("TICKS") && l7[0].message.contains("mixes"),
        "{}",
        l7[0].message
    );
    // Anchored at the declaration line, not a call site.
    assert!(
        l7[0].line_text.contains("static TICKS"),
        "{}",
        l7[0].line_text
    );
}

#[test]
fn l7_release_acquire_discipline_is_clean() {
    let (diags, _) = lint(&[fixture!("l7_consistent.rs")]);
    assert!(cross_file(&diags).is_empty(), "{diags:?}");
}

// --- L8: determinism taint -------------------------------------------------

/// The diamond: `publish_report` reaches the sink through both
/// `fold_left` and `fold_right`. Taint must reach the apex, carry a full
/// source→sink trace, and flag each hash-order line exactly once even
/// though two paths exist.
#[test]
fn l8_diamond_taints_apex_once_per_line_with_trace() {
    let (diags, det) = lint(&[
        fixture!("l8_sink.rs"),
        fixture!("l8_left.rs"),
        fixture!("l8_right.rs"),
        fixture!("l8_top.rs"),
    ]);
    let l8: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "L8").collect();
    assert!(!l8.is_empty(), "apex HashMap must be flagged: {diags:?}");
    assert!(
        l8.iter().all(|d| d.file == "crates/fx/src/l8_top.rs"),
        "{l8:?}"
    );
    // One diagnostic per distinct source line, despite the two paths.
    let mut lines: Vec<u32> = l8.iter().map(|d| d.line).collect();
    lines.sort_unstable();
    let before = lines.len();
    lines.dedup();
    assert_eq!(before, lines.len(), "duplicate per-path findings: {l8:?}");
    // Every finding carries the call-graph justification, ending at the
    // configured sink.
    for d in &l8 {
        assert!(!d.trace.is_empty(), "{d:?}");
        let rendered = d.trace.join("\n");
        assert!(
            rendered.contains("emits output"),
            "trace must end at the sink:\n{rendered}"
        );
        assert!(
            rendered.contains("fold_left") || rendered.contains("fold_right"),
            "trace must pass through an arm of the diamond:\n{rendered}"
        );
    }
    // All four files are determinism-relevant: the sink itself, both
    // arms, and the apex.
    for f in [
        "crates/fx/src/l8_sink.rs",
        "crates/fx/src/l8_left.rs",
        "crates/fx/src/l8_right.rs",
        "crates/fx/src/l8_top.rs",
    ] {
        assert!(det.contains(&f.to_string()), "{f} missing from {det:?}");
    }
}

#[test]
fn l8_hashmap_away_from_sinks_is_clean() {
    let (diags, det) = lint(&[fixture!("l8_sink.rs"), fixture!("l8_clean.rs")]);
    let l8: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "L8").collect();
    assert!(l8.is_empty(), "{l8:?}");
    assert!(
        !det.contains(&"crates/fx/src/l8_clean.rs".to_string()),
        "{det:?}"
    );
}

#[test]
fn l8_barrier_stops_taint_propagation() {
    let (diags, det) = lint(&[
        fixture!("l8_sink.rs"),
        fixture!("l8_barrier.rs"),
        fixture!("l8_behind_barrier.rs"),
    ]);
    let l8: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "L8").collect();
    assert!(
        l8.is_empty(),
        "calling instrumentation must not taint the caller: {l8:?}"
    );
    assert!(
        !det.contains(&"crates/fx/src/l8_behind_barrier.rs".to_string()),
        "{det:?}"
    );
}

// --- det-coverage parity with the retired hand-maintained list -------------

/// The 23 files the deleted `det_files` config enumerated by hand. The
/// computed set must still cover every one of them that has hash-order
/// sites to flag — proof the taint pass lost no coverage.
const OLD_DET_FILES: &[&str] = &[
    "crates/bench/src/report.rs",
    "crates/bench/src/manifest.rs",
    "crates/bench/src/series.rs",
    "crates/bench/src/experiments.rs",
    "crates/bench/src/runner.rs",
    "crates/bench/src/serve_load.rs",
    "crates/bench/src/chaos.rs",
    "crates/bench/src/workload.rs",
    "crates/bench/src/bin/experiments.rs",
    "crates/obs/src/json.rs",
    "crates/obs/src/registry.rs",
    "crates/obs/src/sink.rs",
    "crates/obs/src/prom.rs",
    "crates/obs/src/trace.rs",
    "crates/obs/src/window.rs",
    "crates/obs/src/alloc.rs",
    "crates/obs/src/prof.rs",
    "crates/serve/src/breaker.rs",
    "crates/serve/src/health.rs",
    "crates/serve/src/ratelimit.rs",
    "crates/bench/src/diff.rs",
    "crates/system/src/render.rs",
    "crates/system/src/insights.rs",
];

#[test]
fn computed_det_set_covers_the_old_hand_maintained_list() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = prox_lint::run_workspace(&root, None).expect("linter runs on the workspace");
    let mut uncovered = Vec::new();
    for old in OLD_DET_FILES {
        if report.det_files.iter().any(|f| f == old) {
            continue;
        }
        // Not in the computed set: acceptable only when the file has
        // nothing the old per-file rule would have flagged.
        let src = std::fs::read_to_string(root.join(old)).expect(old);
        let has_sites = ["HashMap", "HashSet", "RandomState", "DefaultHasher"]
            .iter()
            .any(|needle| src.contains(needle));
        if has_sites {
            uncovered.push(*old);
        }
    }
    assert!(
        uncovered.is_empty(),
        "old det files with hash-order sites no longer covered: {uncovered:?}"
    );
}
