//! Fixture: the guard is confined to an inner block that closes before
//! the blocking receive — no guard is live across `recv` (no L6 finding).

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub static PENDING: Mutex<Vec<u32>> = Mutex::new(Vec::new());

pub fn drain(rx: &Receiver<u32>) {
    loop {
        let item = match rx.recv() {
            Ok(item) => item,
            Err(_) => return,
        };
        {
            let mut queue = crate::lock(&PENDING);
            queue.push(item);
        }
    }
}
