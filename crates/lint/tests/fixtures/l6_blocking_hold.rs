//! Fixture: a channel receive is awaited while the `PENDING` guard is
//! live, stalling every thread contending for the lock (L6 violation).

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub static PENDING: Mutex<Vec<u32>> = Mutex::new(Vec::new());

pub fn drain(rx: &Receiver<u32>) {
    let mut queue = crate::lock(&PENDING);
    while let Ok(item) = rx.recv() {
        queue.push(item);
    }
}
