//! Fixture: both functions acquire the pair in the same order — the
//! acquisition-order graph is acyclic (no L6 finding).

use std::sync::Mutex;

pub static ALPHA: Mutex<u32> = Mutex::new(0);
pub static BETA: Mutex<u32> = Mutex::new(0);

pub fn sum() -> u32 {
    let a = crate::lock(&ALPHA);
    let b = crate::lock(&BETA);
    *a + *b
}

pub fn product() -> u32 {
    let a = crate::lock(&ALPHA);
    let b = crate::lock(&BETA);
    *a * *b
}
