//! Fixture: the two functions acquire the same pair of locks in opposite
//! orders, closing a cycle in the acquisition-order graph (L6 violation).

use std::sync::Mutex;

pub static ALPHA: Mutex<u32> = Mutex::new(0);
pub static BETA: Mutex<u32> = Mutex::new(0);

pub fn forward() -> u32 {
    let a = crate::lock(&ALPHA);
    let b = crate::lock(&BETA);
    *a + *b
}

pub fn backward() -> u32 {
    let b = crate::lock(&BETA);
    let a = crate::lock(&ALPHA);
    *a + *b
}
