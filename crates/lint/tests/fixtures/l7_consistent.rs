//! Fixture: a Release store paired with Acquire loads — one consistent
//! publication discipline (no L7 finding).

use std::sync::atomic::{AtomicBool, Ordering};

pub static GATE: AtomicBool = AtomicBool::new(false);

pub fn open_gate() {
    GATE.store(true, Ordering::Release);
}

pub fn gate_open() -> bool {
    GATE.load(Ordering::Acquire)
}
