//! Fixture: one call site uses the weakest ordering while another uses
//! SeqCst on the same atomic — inconsistent discipline (L7 violation,
//! anchored at the declaration).

use std::sync::atomic::{AtomicU64, Ordering};

pub static TICKS: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    TICKS.fetch_add(1, Ordering::SeqCst);
}

pub fn snapshot() -> u64 {
    TICKS.load(Ordering::Relaxed)
}
