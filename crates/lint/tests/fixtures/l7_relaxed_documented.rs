//! Fixture: the same handoff flag as `l7_relaxed_flag.rs`, but the
//! declaring file documents the contract, which satisfies L7.

use std::sync::atomic::{AtomicBool, Ordering};

// Relaxed suffices: the flag is advisory and monotonic — a stale read
// delays the observer by one poll and synchronizes no other data.
pub static READY: AtomicBool = AtomicBool::new(false);

pub fn publish() {
    READY.store(true, Ordering::Relaxed);
}

pub fn is_ready() -> bool {
    READY.load(Ordering::Relaxed)
}
