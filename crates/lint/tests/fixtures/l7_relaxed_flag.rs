//! Fixture: an AtomicBool used as a cross-thread handoff flag with
//! store and load both at the weakest ordering, and no written contract
//! anywhere in this file (L7 violation).

use std::sync::atomic::{AtomicBool, Ordering};

pub static READY: AtomicBool = AtomicBool::new(false);

pub fn publish() {
    READY.store(true, Ordering::Relaxed);
}

pub fn is_ready() -> bool {
    READY.load(Ordering::Relaxed)
}
