//! Fixture: a barrier file — it forwards to the sink, but callers hand
//! it metadata about the run, not result bytes, so sink-reachability
//! stops here.

pub fn note_event(name: &str) {
    emit_payload(name);
}
