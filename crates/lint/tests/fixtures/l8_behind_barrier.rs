//! Fixture: calls only into the barrier file — the barrier stops taint,
//! so this file's HashMap is not determinism-relevant (no L8 finding).

use std::collections::HashMap;

pub fn observe_batch(names: &[&str]) -> usize {
    let mut seen: HashMap<&str, u32> = HashMap::new();
    for n in names {
        *seen.entry(n).or_insert(0) += 1;
        note_event(n);
    }
    seen.len()
}
