//! Fixture: hash-order iteration in a file that never reaches a sink —
//! internal bookkeeping is allowed to use HashMap (no L8 finding).

use std::collections::HashMap;

pub fn tally_internal(rows: &[u32]) -> usize {
    let mut seen: HashMap<u32, u32> = HashMap::new();
    for &r in rows {
        *seen.entry(r).or_insert(0) += 1;
    }
    seen.len()
}
