//! Fixture: left arm of the L8 diamond — calls the sink directly.

pub fn fold_left(rows: &[u32]) {
    let mut out = String::new();
    for r in rows {
        out.push_str(&r.to_string());
    }
    emit_payload(&out);
}
