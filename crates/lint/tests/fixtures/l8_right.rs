//! Fixture: right arm of the L8 diamond — also calls the sink directly.

pub fn fold_right(rows: &[u32]) {
    let mut out = String::new();
    for r in rows.iter().rev() {
        out.push_str(&r.to_string());
    }
    emit_payload(&out);
}
