//! Fixture: the configured output sink of the L8 diamond — everything
//! that reaches `emit_payload` is sink-reaching.

pub fn emit_payload(line: &str) {
    println!("{line}");
}
