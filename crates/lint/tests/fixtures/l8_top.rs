//! Fixture: apex of the L8 diamond — reaches the sink through *both*
//! arms. Its hash-order iteration must be flagged exactly once per line,
//! not once per path.

use std::collections::HashMap;

pub fn publish_report(rows: &[u32]) {
    let mut index: HashMap<u32, u32> = HashMap::new();
    for &r in rows {
        *index.entry(r).or_insert(0) += 1;
    }
    fold_left(rows);
    fold_right(rows);
}
