//! Tier-1 gate: the workspace must carry zero non-allowlisted violations
//! of the PROX invariants. This is the same check CI runs via
//! `cargo run -p prox-lint`; keeping it as a test means `cargo test`
//! alone catches regressions.

use std::path::Path;

#[test]
fn workspace_has_no_invariant_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = prox_lint::run_workspace(&root, None).expect("linter runs on the workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.violations.iter().map(|d| d.to_string()).collect();
    assert!(
        report.violations.is_empty(),
        "{} invariant violation(s):\n{}",
        report.violations.len(),
        rendered.join("\n")
    );
}
