//! Allocation accounting: a counting `#[global_allocator]` wrapper.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and counts every heap
//! event into process-global relaxed atomics: bytes currently live, the
//! peak of that value, and cumulative allocated bytes / allocation count.
//! The counters are plain statics — no locks, no registration, no
//! allocation — because this code runs *inside* the allocator, where
//! taking any lock that an allocating caller might hold would deadlock.
//!
//! Binaries opt in at their root:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: prox_obs::CountingAlloc = prox_obs::CountingAlloc::system();
//! ```
//!
//! The `prox` CLI and the bench `experiments` binary install it; test
//! binaries that assert on memory numbers install their own. Everything
//! else reads zeros and [`installed`] stays `false`, so downstream
//! consumers (manifests, `/metrics`, `prox stats`) can label the numbers
//! honestly instead of reporting a misleading 0.
//!
//! ## Epochs
//!
//! Bench runs one experiment per observability window ([`crate::reset`]),
//! so cumulative counters are exposed *relative to the last epoch*:
//! [`epoch_reset`] (called by `prox_obs::reset`) snapshots the cumulative
//! totals and re-bases the peak to the currently-live bytes. `live_bytes`
//! is always absolute — heap occupancy has no epoch.
//!
//! ## Determinism
//!
//! Heap numbers are *measurements*, not schedule-determined quantities:
//! allocator behavior varies with thread interleaving and with what ran
//! earlier in the process. Deterministic-mode consumers treat them
//! exactly like wall-clock durations — the manifest `memory` section
//! keeps only the `allocator` tag and the Prometheus exposition drops
//! the memory families (rule L2).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::json::Json;

/// `true` once any allocation has been routed through a [`CountingAlloc`]
/// — i.e. the running binary actually installed it.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Bytes currently live (allocated minus freed). Absolute.
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE_BYTES`] since the last [`epoch_reset`].
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
/// Cumulative bytes ever allocated (process lifetime).
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
/// Cumulative allocation events (process lifetime).
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Cumulative totals at the last [`epoch_reset`]; subtracted in [`stats`].
static EPOCH_BYTES: AtomicU64 = AtomicU64::new(0);
static EPOCH_ALLOCS: AtomicU64 = AtomicU64::new(0);

#[inline]
fn record_alloc(size: usize) {
    INSTALLED.store(true, Ordering::Relaxed);
    let size = size as u64;
    TOTAL_BYTES.fetch_add(size, Ordering::Relaxed);
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn record_dealloc(size: usize) {
    // Saturating: a dealloc racing an epoch-less start (or a foreign
    // pointer freed here) must never wrap the gauge.
    let size = size as u64;
    let mut live = LIVE_BYTES.load(Ordering::Relaxed);
    loop {
        let next = live.saturating_sub(size);
        match LIVE_BYTES.compare_exchange_weak(live, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(actual) => live = actual,
        }
    }
}

/// A counting wrapper around the system allocator. Install as the
/// `#[global_allocator]` of a binary to light up [`stats`].
pub struct CountingAlloc;

impl CountingAlloc {
    /// The wrapper over [`std::alloc::System`] (`const`, so it can be the
    /// `#[global_allocator]` static).
    pub const fn system() -> CountingAlloc {
        CountingAlloc
    }
}

// SAFETY: defers entirely to `System` for memory management; the wrapper
// only adds relaxed atomic bookkeeping, which allocates nothing and takes
// no locks (reentrancy- and deadlock-free by construction).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        record_dealloc(layout.size());
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // One event: the old block is gone, the new size is live.
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

/// A point-in-time reading of the allocation counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemStats {
    /// Whether a [`CountingAlloc`] is routing this binary's allocations.
    /// When `false` every other field is 0 and means "not measured".
    pub installed: bool,
    /// Bytes currently live (absolute heap occupancy).
    pub live_bytes: u64,
    /// Peak live bytes since the last [`epoch_reset`].
    pub peak_bytes: u64,
    /// Bytes allocated since the last [`epoch_reset`].
    pub total_bytes: u64,
    /// Allocation events since the last [`epoch_reset`].
    pub allocs: u64,
}

/// Current allocation statistics (epoch-relative; see module docs).
pub fn stats() -> MemStats {
    MemStats {
        installed: installed(),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        total_bytes: TOTAL_BYTES
            .load(Ordering::Relaxed)
            .saturating_sub(EPOCH_BYTES.load(Ordering::Relaxed)),
        allocs: TOTAL_ALLOCS
            .load(Ordering::Relaxed)
            .saturating_sub(EPOCH_ALLOCS.load(Ordering::Relaxed)),
    }
}

/// Is a [`CountingAlloc`] actually installed in this binary?
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Raw cumulative `(bytes, allocs)` over the process lifetime — the
/// monotone pair span guards snapshot to compute per-phase deltas
/// (epoch resets must not make a span's delta go negative).
pub fn totals() -> (u64, u64) {
    (
        TOTAL_BYTES.load(Ordering::Relaxed),
        TOTAL_ALLOCS.load(Ordering::Relaxed),
    )
}

/// Start a new accounting epoch: re-base the cumulative counters and set
/// the peak to the currently-live bytes. Called by [`crate::reset`] so
/// each bench experiment's manifest covers exactly that experiment.
pub fn epoch_reset() {
    EPOCH_BYTES.store(TOTAL_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
    EPOCH_ALLOCS.store(TOTAL_ALLOCS.load(Ordering::Relaxed), Ordering::Relaxed);
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// The memory stats as JSON. Always carries the `allocator` tag
/// (`"counting"` / `"system"`); the measured numbers are included only
/// when the counting allocator is installed *and* `deterministic` is
/// off — heap measurements are environment-dependent, so deterministic
/// outputs treat them like wall-clock data (rule L2).
pub fn memory_json(deterministic: bool) -> Json {
    let m = stats();
    let mut out = Json::obj().with("allocator", if m.installed { "counting" } else { "system" });
    if m.installed && !deterministic {
        out.set("live_bytes", m.live_bytes);
        out.set("peak_bytes", m.peak_bytes);
        out.set("total_bytes", m.total_bytes);
        out.set("allocs", m.allocs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Unit tests run in prox-obs's own test binary, which installs the
    // counting allocator here so the counters observe real traffic.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc::system();

    #[test]
    fn counters_observe_allocations_and_peak_dominates_live() {
        let before = stats();
        assert!(before.installed, "global allocator must be routing");
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let after = stats();
        assert!(
            after.total_bytes >= before.total_bytes + (1 << 16),
            "total must grow by at least the allocation: {before:?} -> {after:?}"
        );
        assert!(after.allocs > before.allocs);
        assert!(after.peak_bytes >= after.live_bytes.min(after.peak_bytes));
        drop(v);
        let freed = stats();
        assert!(
            freed.live_bytes <= after.live_bytes,
            "dropping must not raise live bytes"
        );
        // Peak is a high-water mark: dropping never lowers it.
        assert!(freed.peak_bytes >= after.peak_bytes.min(freed.peak_bytes));
    }

    #[test]
    fn epoch_reset_rebases_cumulative_and_peak() {
        let _keep: Vec<u8> = Vec::with_capacity(4096);
        epoch_reset();
        let s = stats();
        // Fresh epoch: cumulative counters restart near zero (other test
        // threads may allocate concurrently, so allow slack, not exact 0).
        assert!(s.peak_bytes >= s.live_bytes || s.peak_bytes > 0);
        let grow: Vec<u8> = Vec::with_capacity(1 << 20);
        let s2 = stats();
        assert!(s2.total_bytes >= 1 << 20);
        assert!(s2.peak_bytes >= s.peak_bytes);
        drop(grow);
    }

    #[test]
    fn memory_json_gates_measurements_on_deterministic() {
        let full = memory_json(false);
        assert_eq!(
            full.get("allocator").and_then(Json::as_str),
            Some("counting")
        );
        assert!(full.get("peak_bytes").and_then(Json::as_u64).is_some());
        let det = memory_json(true);
        assert_eq!(
            det.get("allocator").and_then(Json::as_str),
            Some("counting")
        );
        assert!(det.get("peak_bytes").is_none(), "{det:?}");
        assert!(det.get("live_bytes").is_none());
    }
}
