//! Process-wide monotonic counters.
//!
//! A [`Counter`] is declared as a `static` at its point of use:
//!
//! ```
//! use prox_obs::Counter;
//! static DISTANCE_EVALUATIONS: Counter = Counter::new("distance/evaluations");
//!
//! prox_obs::set_enabled(true);
//! DISTANCE_EVALUATIONS.add(3);
//! ```
//!
//! Counters self-register with the global registry the first time they are
//! incremented, so instrumented crates never have to coordinate a
//! registration pass. When the registry is disabled (the default), `add`
//! is a single relaxed atomic load and an early return.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::registry;

/// A named monotonic counter backed by a relaxed `AtomicU64`.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Create a counter. `const`, so counters can be plain statics.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's hierarchical name, e.g. `"distance/memo_hits"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n`. A no-op (one relaxed load) while observability is disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !registry::enabled() {
            return;
        }
        self.register();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry::register_counter(self);
        }
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static CONCURRENT: Counter = Counter::new("test/concurrent");
    static DISABLED: Counter = Counter::new("test/disabled");

    #[test]
    fn concurrent_increments_sum_correctly() {
        crate::set_enabled(true);
        let before = CONCURRENT.get();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..10_000 {
                        CONCURRENT.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("thread");
        }
        assert_eq!(CONCURRENT.get() - before, 80_000);
    }

    #[test]
    fn disabled_counter_stays_zero() {
        // Use a dedicated counter: other tests in this binary may enable
        // the registry concurrently, but nothing else touches this one
        // while observability is off at the call site below.
        if !crate::enabled() {
            DISABLED.add(5);
            // Either it stayed 0 (registry still disabled at add time) or
            // a parallel test enabled it in between; both keep it <= 5.
            assert!(DISABLED.get() <= 5);
        }
    }
}
