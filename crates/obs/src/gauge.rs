//! Process-wide gauges: point-in-time values that go up *and* down.
//!
//! A [`Gauge`] is declared as a `static` at its point of use, exactly like
//! a [`crate::Counter`]:
//!
//! ```
//! use prox_obs::Gauge;
//! static QUEUE_DEPTH: Gauge = Gauge::new("serve/queue_depth");
//!
//! prox_obs::set_enabled(true);
//! QUEUE_DEPTH.set(3);
//! QUEUE_DEPTH.add(-1);
//! assert_eq!(QUEUE_DEPTH.get(), 2);
//! ```
//!
//! Gauges self-register with the global registry the first time they are
//! written while observability is enabled. When the registry is disabled
//! (the default), every write is a single relaxed atomic load and an
//! early return — the same cost model as counters.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

use crate::registry;

/// A named gauge backed by a relaxed `AtomicI64`. Unlike a
/// [`crate::Counter`], a gauge may decrease (queue depth, in-flight
/// requests, utilization).
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
    registered: AtomicBool,
}

impl Gauge {
    /// Create a gauge. `const`, so gauges can be plain statics.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicI64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The gauge's hierarchical name, e.g. `"serve/queue_depth"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Set the gauge to `v`. A no-op (one relaxed load) while
    /// observability is disabled.
    #[inline]
    pub fn set(&'static self, v: i64) {
        if !registry::enabled() {
            return;
        }
        self.register();
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `d` (which may be negative) and return the new value. A no-op
    /// returning the current value while observability is disabled.
    #[inline]
    pub fn add(&'static self, d: i64) -> i64 {
        if !registry::enabled() {
            return self.get();
        }
        self.register();
        self.value.fetch_add(d, Ordering::Relaxed) + d
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry::register_gauge(self);
        }
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static DEPTH: Gauge = Gauge::new("test/gauge_depth");

    #[test]
    fn set_add_and_snapshot() {
        crate::set_enabled(true);
        DEPTH.set(5);
        assert_eq!(DEPTH.add(-2), 3);
        assert_eq!(DEPTH.get(), 3);
        let snap = crate::snapshot();
        let gauges = snap.get("gauges").expect("gauges section");
        assert!(gauges.get("test/gauge_depth").is_some());
    }
}
