//! Fixed-bucket, log-spaced duration histograms.
//!
//! Durations are recorded in nanoseconds into power-of-two buckets:
//! bucket `i` holds values whose bit length is `i` (i.e. `ns` in
//! `[2^(i-1), 2^i)`; bucket 0 holds exactly 0). With [`NBUCKETS`] = 40
//! the top bucket starts at `2^38` ns ≈ 4.6 minutes and absorbs
//! everything longer. All state is atomic; recording never allocates
//! or locks, so histograms are safe to update from hot loops.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets. Covers 1 ns .. ~4.6 min at power-of-two resolution.
pub const NBUCKETS: usize = 40;

/// An atomic log-spaced histogram of durations (in nanoseconds).
pub struct Histogram {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; NBUCKETS],
}

impl Histogram {
    /// Create an empty histogram. `const`, so histograms can live in statics.
    pub const fn new() -> Histogram {
        // A const item is the only way to array-initialize atomics.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: [ZERO; NBUCKETS],
        }
    }

    /// Record one duration, given in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// The bucket a value falls into: its bit length, clamped to the top.
    #[inline]
    pub fn bucket_index(ns: u64) -> usize {
        ((u64::BITS - ns.leading_zeros()) as usize).min(NBUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `ix`, in nanoseconds.
    /// The top bucket is unbounded and reports `u64::MAX`.
    pub fn bucket_upper_bound(ix: usize) -> u64 {
        if ix >= NBUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << ix) - 1
        }
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded durations in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Smallest recorded duration, or `None` when empty.
    pub fn min_ns(&self) -> Option<u64> {
        let v = self.min_ns.load(Ordering::Relaxed);
        (v != u64::MAX).then_some(v)
    }

    /// Largest recorded duration, or `None` when empty.
    pub fn max_ns(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max_ns.load(Ordering::Relaxed))
    }

    /// Mean duration in nanoseconds, or `None` when empty.
    pub fn mean_ns(&self) -> Option<u64> {
        let n = self.count();
        (n > 0).then(|| self.total_ns() / n)
    }

    /// Occupied buckets as `(upper_bound_ns, count)` pairs, low to high.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(ix, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (Self::bucket_upper_bound(ix), n))
            })
            .collect()
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_strictly_monotone() {
        for ix in 1..NBUCKETS {
            assert!(
                Histogram::bucket_upper_bound(ix) > Histogram::bucket_upper_bound(ix - 1),
                "bucket {ix} bound not increasing"
            );
        }
    }

    #[test]
    fn values_land_in_the_bucket_that_bounds_them() {
        for ns in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 20, u64::MAX] {
            let ix = Histogram::bucket_index(ns);
            assert!(ns <= Histogram::bucket_upper_bound(ix), "ns={ns} ix={ix}");
            if ix > 0 && ix < NBUCKETS - 1 {
                assert!(
                    ns > Histogram::bucket_upper_bound(ix - 1),
                    "ns={ns} fits a lower bucket"
                );
            }
        }
    }

    #[test]
    fn captures_min_max_mean_and_count() {
        let h = Histogram::new();
        assert_eq!(h.min_ns(), None);
        assert_eq!(h.max_ns(), None);
        assert_eq!(h.mean_ns(), None);
        for ns in [5u64, 1000, 125, 3] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min_ns(), Some(3));
        assert_eq!(h.max_ns(), Some(1000));
        assert_eq!(h.total_ns(), 1133);
        assert_eq!(h.mean_ns(), Some(283));
        let occupied: u64 = h.nonzero_buckets().iter().map(|&(_, n)| n).sum();
        assert_eq!(occupied, 4);
    }

    #[test]
    fn reset_empties_everything() {
        let h = Histogram::new();
        h.record_ns(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_ns(), None);
        assert!(h.nonzero_buckets().is_empty());
    }
}
