//! A minimal JSON value: build, render (compact or pretty), and parse.
//!
//! `prox-obs` is dependency-free by design, so registry snapshots, trace
//! events, and run manifests are represented with this small value type
//! instead of `serde_json::Value`. Objects preserve insertion order, which
//! keeps snapshots and manifests deterministic and diffable. The parser
//! exists so tests (and tools reading manifests back) can validate output
//! without external crates.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, nanoseconds, sizes).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or overwrite) a key in an object. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        let Json::Obj(entries) = self else {
            panic!("Json::set on non-object");
        };
        if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value.into();
        } else {
            entries.push((key.to_owned(), value.into()));
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            Json::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object entries, when the value is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Render compactly (single line — the JSONL form).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation (the manifest form).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{}` on a finite f64 always yields a valid JSON
                    // number (plain decimal, never exponent form). Whole
                    // values get a `.0` so they parse back as floats.
                    let s = f.to_string();
                    let whole = !s.contains(['.', 'e', 'E']);
                    out.push_str(&s);
                    if whole {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (ix, item) in items.iter().enumerate() {
                    if ix > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (ix, (k, v)) in entries.iter().enumerate() {
                    if ix > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !entries.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// A copy with all object keys sorted recursively. Rendering a sorted
    /// value is byte-stable regardless of how the object was assembled —
    /// the manifest determinism guarantee (rule L2).
    pub fn sorted(&self) -> Json {
        match self {
            Json::Arr(items) => Json::Arr(items.iter().map(Json::sorted).collect()),
            Json::Obj(entries) => {
                let mut entries: Vec<(String, Json)> = entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.sorted()))
                    .collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Obj(entries)
            }
            other => other.clone(),
        }
    }

    /// Parse a JSON document (strict: the whole input must be one value).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos).map_err(JsonError)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError(format!("trailing characters at byte {pos}")));
        }
        Ok(value)
    }
}

/// A [`Json::parse`] failure: what was expected and at which byte.
/// (Typed-error contract, rule L4 — `prox-obs` sits below `prox-robust`
/// in the dependency order, so it carries its own error type rather than
/// `ProxError`; callers convert via the `Display` form.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError(String);

impl JsonError {
    /// Human-readable description (also the `Display` form).
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    // The matched bytes are all ASCII, so this cannot fail; an empty
    // fallback falls through to the "invalid number" error below.
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap_or("");
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {:?}", other as char)),
                }
            }
            _ => {
                // Collect the full UTF-8 sequence starting at b.
                let width = utf8_width(b);
                let end = *pos - 1 + width;
                let chunk = bytes.get(*pos - 1..end).ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos = end;
            }
        }
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_preserve_insertion_order() {
        let j = Json::obj().with("z", 1u64).with("a", 2u64);
        assert_eq!(j.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn set_overwrites_existing_keys() {
        let mut j = Json::obj().with("k", 1u64);
        j.set("k", 2u64);
        assert_eq!(j.render(), r#"{"k":2}"#);
        assert_eq!(j.get("k").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    #[test]
    fn roundtrip_through_parser() {
        let j = Json::obj()
            .with("name", "summarize/step")
            .with("count", 42u64)
            .with("ratio", 0.5)
            .with("flag", true)
            .with("none", Json::Null)
            .with("arr", vec![1u64, 2, 3])
            .with("nested", Json::obj().with("k", "v\n\"w\""));
        for text in [j.render(), j.pretty()] {
            assert_eq!(Json::parse(&text).expect("parses"), j, "{text}");
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn numbers_parse_by_kind() {
        assert_eq!(Json::parse("7").unwrap(), Json::UInt(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn whole_floats_keep_their_type_through_a_round_trip() {
        assert_eq!(Json::Float(0.0).render(), "0.0");
        assert_eq!(Json::Float(-3.0).render(), "-3.0");
        for f in [Json::Float(0.0), Json::Float(42.0), Json::Float(1e300)] {
            assert_eq!(Json::parse(&f.render()).unwrap(), f);
        }
    }

    #[test]
    fn pretty_is_indented_and_valid() {
        let j = Json::obj().with("a", vec![1u64]).with("b", Json::obj());
        let p = j.pretty();
        assert!(p.contains("\n  \"a\""), "{p}");
        assert_eq!(Json::parse(&p).unwrap(), j);
    }

    #[test]
    fn unicode_roundtrips() {
        let j = Json::Str("héllo ☃ 中".into());
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    #[test]
    fn sorted_orders_keys_recursively() {
        let j = Json::obj()
            .with("z", Json::obj().with("b", 1u64).with("a", 2u64))
            .with("a", vec![Json::obj().with("y", 1u64).with("x", 2u64)]);
        assert_eq!(
            j.sorted().render(),
            r#"{"a":[{"x":2,"y":1}],"z":{"a":2,"b":1}}"#
        );
        // Already-sorted input is a fixpoint.
        assert_eq!(j.sorted(), j.sorted().sorted());
    }

    #[test]
    fn parse_errors_are_typed_and_descriptive() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("invalid JSON"), "{err}");
        assert!(!err.message().is_empty());
    }
}
