//! # prox-obs — workspace-wide instrumentation
//!
//! Dependency-free (std only) observability for the PROX workspace:
//!
//! * [`Span`]/[`SpanTimer`] — RAII timers with hierarchical names
//!   (`"summarize/step/enumerate"`, `"hac/linkage"`, `"eval/phi"`) feeding
//!   fixed-bucket log-spaced duration [`Histogram`]s;
//! * [`Counter`] — atomic counters for hot quantities (candidates
//!   enumerated, distance evaluations, memo hits/misses, ...);
//! * a process-global registry with [`snapshot`]/[`reset`] and an optional
//!   JSONL event sink enabled via `PROX_TRACE=<path>` (see
//!   [`init_from_env`]);
//! * [`StepTimer`] — the shared per-step `candidate_time`/`step_time`
//!   bookkeeping used by all three summarization loops;
//! * [`Json`] — a tiny ordered JSON value used for snapshots, trace
//!   events, and bench run manifests;
//! * [`CountingAlloc`] (module [`alloc`]) — an opt-in
//!   `#[global_allocator]` wrapper counting live/peak/total heap bytes,
//!   with per-span deltas on [`SpanTimer`]s and trace spans;
//! * module [`prof`] — a sampling self-profiler folding the per-thread
//!   span stacks into flamegraph-compatible output (`PROX_PROFILE`).
//!
//! ## Cost model
//!
//! Everything except [`StepTimer`] is gated on one process-global relaxed
//! `AtomicBool` (see [`enabled`]). While it is off — the default — every
//! counter add and span start is a single relaxed load plus an early
//! return: no clock reads, no locks, no allocation. Instrumentation can
//! therefore live permanently in hot loops.
//!
//! ## Usage
//!
//! ```
//! use prox_obs::{Counter, SpanTimer};
//!
//! static EVALS: Counter = Counter::new("demo/evals");
//! static PHASE: SpanTimer = SpanTimer::new("demo/phase");
//!
//! prox_obs::set_enabled(true);
//! {
//!     let _span = PHASE.start(); // records on drop
//!     EVALS.incr();
//! }
//! let snap = prox_obs::snapshot();
//! assert_eq!(snap.get("counters").unwrap().get("demo/evals").unwrap().as_u64(), Some(1));
//! ```

pub mod alloc;
mod counter;
mod gauge;
mod histogram;
mod json;
pub mod prof;
mod prom;
mod registry;
mod sink;
mod span;
mod timer;
mod trace;
pub mod window;

pub use alloc::{CountingAlloc, MemStats};
pub use counter::Counter;
pub use gauge::Gauge;
pub use histogram::{Histogram, NBUCKETS};
pub use json::{Json, JsonError};
pub use prom::{render_prometheus, PROMETHEUS_CONTENT_TYPE};
pub use registry::{
    counter_value, counters_sorted, enabled, gauge_value, gauges_sorted, init_from_env,
    render_snapshot, reset, set_enabled, snapshot, spans_sorted,
};
pub use span::{SpanGuard, SpanTimer};
pub use timer::StepTimer;
pub use trace::{
    keep_sampled, trace_id_from, RetainReason, RetainedTrace, TraceContext, TraceRing, TraceSpan,
    MAX_TRACE_SPANS,
};

/// Counters for the out-of-core segment store (`crates/store`). Declared
/// here — not in the store crate — so the names are part of the shared
/// observability vocabulary: every binary that links the store surfaces
/// them in `/metrics`, `metrics.json`, and bench run manifests through
/// the process-global registry, exactly like the `serve/*` and
/// `budget/*` families.
pub mod store_metrics {
    use crate::Counter;

    /// Page request served from the bounded page cache.
    pub static PAGE_HIT: Counter = Counter::new("store/page_hit");
    /// Page request that faulted a page in from a segment file.
    pub static PAGE_MISS: Counter = Counter::new("store/page_miss");
    /// Appended expression already present under its fingerprint
    /// (content-address dedup of shared subexpressions).
    pub static DEDUP_HIT: Counter = Counter::new("store/dedup_hit");
    /// Bytes read from segment, log, and annotation files.
    pub static BYTES_READ: Counter = Counter::new("store/bytes_read");
}

/// Is `PROX_DETERMINISTIC` set (non-empty, not `"0"`)? Deterministic mode
/// makes snapshots, window aggregation, and the Prometheus exposition
/// byte-identical across same-seed runs by omitting wall-clock data.
pub fn deterministic_mode() -> bool {
    std::env::var("PROX_DETERMINISTIC").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Lock a mutex, recovering the data if a panicking holder poisoned it.
/// Observability state is monotonic (append-only registration, buffered
/// trace lines), so a poisoned lock cannot be logically inconsistent —
/// and instrumentation must never take the process down (no-panic
/// contract, rule L1).
pub(crate) fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Install a JSONL trace sink at `path` (also enables collection).
pub fn install_sink(path: &str) -> std::io::Result<()> {
    sink::install(path)
}

/// Is a trace sink currently installed?
pub fn sink_active() -> bool {
    sink::active()
}

/// Emit a custom event to the trace sink (no-op when none is installed).
/// A `"type"` field is conventional; a `t_us` timestamp is added.
pub fn emit_event(event: Json) {
    sink::emit(event)
}

/// Flush the trace sink's buffer to disk.
pub fn flush_sink() {
    sink::flush()
}

/// Flush and close the trace sink (collection stays enabled).
pub fn close_sink() {
    sink::close()
}
