//! Sampling self-profiler producing folded-stack (flamegraph) output.
//!
//! Every open [`crate::SpanTimer`] guard and [`crate::TraceContext`] span
//! pushes its name onto a per-thread stack while profiling is enabled.
//! Samples of those stacks are folded into `name1;name2;name3 count`
//! lines — the input format of `flamegraph.pl` / `inferno` — in one of
//! two modes:
//!
//! * **interval** ([`enable_interval`]): a background thread walks every
//!   live thread's stack at a fixed period and folds whatever is open.
//!   This is a classic wall-clock sampling profiler: counts approximate
//!   time spent, at ~zero cost to the instrumented threads beyond a
//!   short mutex hold per span boundary.
//! * **boundary** ([`enable_boundary`]): each span close contributes
//!   exactly one sample of the stack as it was at close (the closing
//!   span as leaf). Counts approximate *span counts*, not time — but the
//!   output is a pure function of the span sequence, so under
//!   `PROX_DETERMINISTIC` two same-seed runs produce byte-identical
//!   folded output (rule L2: no clock in the data path).
//!
//! [`init_from_env`] reads `PROX_PROFILE=<path>` and picks the mode from
//! [`crate::deterministic_mode`]; `prox serve --profile <path>` and the
//! bench `experiments` binary call it. The caller writes the folded text
//! out at exit via [`write_folded`].
//!
//! Lock order (deadlock freedom): `THREADS` → a thread's `frames` →
//! `SAMPLES`. Every path acquires in that order and never holds two of
//! them while taking an earlier one.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

const OFF: u8 = 0;
const INTERVAL: u8 = 1;
const BOUNDARY: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(OFF);
/// Folded stack -> sample count. BTreeMap keeps [`folded`] sorted.
static SAMPLES: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
/// Weak handles to every thread's stack; dead threads prune on upgrade.
static THREADS: Mutex<Vec<Weak<ThreadStack>>> = Mutex::new(Vec::new());
/// Tells the interval sampler thread to exit. Relaxed suffices (L7): the
/// flag carries no data — the sampler only ever observes it monotonically
/// flipping to true and exits; [`disable`] then joins the thread, which
/// is the real synchronization point.
static SAMPLER_STOP: AtomicBool = AtomicBool::new(false);
static SAMPLER: Mutex<Option<std::thread::JoinHandle<()>>> = Mutex::new(None);

/// One thread's stack of open span names, shared with the sampler.
struct ThreadStack {
    frames: Mutex<Vec<&'static str>>,
}

thread_local! {
    static LOCAL: Arc<ThreadStack> = {
        let stack = Arc::new(ThreadStack { frames: Mutex::new(Vec::new()) });
        crate::lock(&THREADS).push(Arc::downgrade(&stack));
        stack
    };
}

/// Is any profiling mode active?
#[inline]
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != OFF
}

/// Push `name` onto this thread's span stack. Returns whether a frame was
/// actually pushed — the caller must call [`pop`] on drop iff it was, so
/// enabling/disabling mid-span never underflows the stack.
#[inline]
pub(crate) fn push(name: &'static str) -> bool {
    if !enabled() {
        return false;
    }
    LOCAL.with(|s| crate::lock(&s.frames).push(name));
    true
}

/// Pop this thread's innermost frame. In boundary mode the stack is
/// folded (closing span as leaf) before popping, so every span close is
/// one deterministic sample.
pub(crate) fn pop() {
    let mode = MODE.load(Ordering::Relaxed);
    LOCAL.with(|s| {
        let mut frames = crate::lock(&s.frames);
        if mode == BOUNDARY && !frames.is_empty() {
            let folded = frames.join(";");
            drop(frames);
            *crate::lock(&SAMPLES).entry(folded).or_insert(0) += 1;
            frames = crate::lock(&s.frames);
        }
        frames.pop();
    });
}

/// Boundary-mode sample for an *externally measured* span (recorded via
/// `SpanTimer::record` with no guard on the stack, e.g. `summarize/step`
/// whose duration comes from a `StepTimer`): folds the current stack with
/// `name` as leaf, exactly as if a guard for it had just closed. No-op in
/// interval mode — a wall-clock sampler only sees open spans.
pub(crate) fn sample_leaf(name: &'static str) {
    if MODE.load(Ordering::Relaxed) != BOUNDARY {
        return;
    }
    let folded = LOCAL.with(|s| {
        let frames = crate::lock(&s.frames);
        if frames.is_empty() {
            name.to_owned()
        } else {
            format!("{};{name}", frames.join(";"))
        }
    });
    *crate::lock(&SAMPLES).entry(folded).or_insert(0) += 1;
}

fn sample_all_threads() {
    let mut threads = crate::lock(&THREADS);
    threads.retain(|weak| {
        let Some(stack) = weak.upgrade() else {
            return false; // thread exited; drop its handle
        };
        let folded = {
            let frames = crate::lock(&stack.frames);
            if frames.is_empty() {
                return true;
            }
            frames.join(";")
        };
        *crate::lock(&SAMPLES).entry(folded).or_insert(0) += 1;
        true
    });
}

/// Enable interval sampling at `period` (clamped to ≥ 100µs): spawns the
/// sampler thread and clears previously collected samples.
pub fn enable_interval(period: Duration) {
    disable();
    crate::lock(&SAMPLES).clear();
    SAMPLER_STOP.store(false, Ordering::Relaxed);
    MODE.store(INTERVAL, Ordering::Relaxed);
    let period = period.max(Duration::from_micros(100));
    let handle = std::thread::Builder::new()
        .name("prox-prof".into())
        .spawn(move || {
            while !SAMPLER_STOP.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                if MODE.load(Ordering::Relaxed) == INTERVAL {
                    sample_all_threads();
                }
            }
        });
    match handle {
        Ok(h) => *crate::lock(&SAMPLER) = Some(h),
        Err(e) => {
            // Could not spawn (resource exhaustion): profiling degrades
            // to a no-op rather than failing the workload.
            MODE.store(OFF, Ordering::Relaxed);
            eprintln!("prox-obs: cannot start profiler thread: {e}");
        }
    }
}

/// Enable deterministic boundary sampling (one sample per span close) and
/// clear previously collected samples.
pub fn enable_boundary() {
    disable();
    crate::lock(&SAMPLES).clear();
    MODE.store(BOUNDARY, Ordering::Relaxed);
}

/// Stop profiling. Collected samples are kept for [`folded`] /
/// [`write_folded`]; joins the interval sampler thread if one is running.
pub fn disable() {
    MODE.store(OFF, Ordering::Relaxed);
    SAMPLER_STOP.store(true, Ordering::Relaxed);
    let handle = crate::lock(&SAMPLER).take();
    if let Some(h) = handle {
        let _ = h.join();
    }
}

/// Drop all collected samples (mode is unchanged).
pub fn reset() {
    crate::lock(&SAMPLES).clear();
}

/// The collected samples in folded-stack format: one
/// `root;child;leaf count` line per distinct stack, sorted by stack name
/// (BTreeMap order), trailing newline. Empty string when nothing was
/// sampled.
pub fn folded() -> String {
    let samples = crate::lock(&SAMPLES);
    let mut out = String::new();
    for (stack, count) in samples.iter() {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

/// Write [`folded`] to `path` (single write, truncating).
pub fn write_folded(path: &str) -> std::io::Result<()> {
    std::fs::write(path, folded())
}

/// Enable profiling from `PROX_PROFILE=<path>`: boundary mode under
/// `PROX_DETERMINISTIC`, else interval sampling at 1ms. Returns the path
/// the caller should [`write_folded`] to at exit, if profiling was
/// requested.
pub fn init_from_env() -> Option<String> {
    let path = std::env::var("PROX_PROFILE").ok()?;
    if path.is_empty() || path == "0" {
        return None;
    }
    if crate::deterministic_mode() {
        enable_boundary();
    } else {
        enable_interval(Duration::from_millis(1));
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanTimer;

    static OUTER: SpanTimer = SpanTimer::new("prof_test/outer");
    static INNER: SpanTimer = SpanTimer::new("prof_test/inner");

    // MODE is process-global; serialize the tests that flip it so they
    // don't clobber each other's sampling windows.
    static TEST_GATE: Mutex<()> = Mutex::new(());

    fn run_spans() {
        let _o = OUTER.start();
        for _ in 0..3 {
            let _i = INNER.start();
        }
    }

    /// Only this module's lines — other tests in the binary may open
    /// spans concurrently, and those must not affect our assertions.
    fn ours(folded: &str) -> String {
        folded
            .lines()
            .filter(|l| l.starts_with("prof_test/"))
            .map(|l| format!("{l}\n"))
            .collect()
    }

    #[test]
    fn boundary_mode_is_deterministic_and_nested() {
        let _gate = crate::lock(&TEST_GATE);
        crate::set_enabled(true);
        enable_boundary();
        run_spans();
        let first = ours(&folded());
        enable_boundary(); // clears samples
        run_spans();
        let second = ours(&folded());
        disable();
        assert_eq!(first, second, "boundary sampling must be reproducible");
        assert!(
            first.contains("prof_test/outer;prof_test/inner 3"),
            "nested stack with counts, got:\n{first}"
        );
        assert!(
            first.contains("prof_test/outer 1"),
            "outer close sampled as its own line, got:\n{first}"
        );
    }

    #[test]
    fn disabled_push_is_inert_and_pop_safe() {
        let _gate = crate::lock(&TEST_GATE);
        disable();
        assert!(!push("prof_test/never"));
        // A guard that never pushed must not call pop(); but even a stray
        // pop on an empty stack must not panic or underflow.
        pop();
        assert!(!enabled());
    }

    #[test]
    fn interval_mode_samples_open_spans() {
        let _gate = crate::lock(&TEST_GATE);
        crate::set_enabled(true);
        enable_interval(Duration::from_micros(200));
        {
            let _o = OUTER.start();
            std::thread::sleep(Duration::from_millis(20));
        }
        disable();
        let out = folded();
        assert!(
            out.contains("prof_test/outer"),
            "sampler should observe the open span, got:\n{out}"
        );
    }
}
