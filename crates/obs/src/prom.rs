//! Prometheus text exposition (version 0.0.4) for `GET /metrics`.
//!
//! Every family is label-based — `prox_counter_total{name="..."}` rather
//! than one family per counter — so arbitrary hierarchical counter names
//! never need mangling and each `# HELP`/`# TYPE` pair appears exactly
//! once. Series within a family are sorted by label value, so output
//! order is deterministic (rule L2).
//!
//! Deterministic mode (`PROX_DETERMINISTIC`) drops every wall-clock
//! derived series — span durations, window latency quantiles, summary
//! sums — leaving only schedule-determined counts, so same-seed runs
//! scrape byte-identically.

use crate::alloc;
use crate::registry;
use crate::window;

/// The HTTP `Content-Type` for the rendered exposition.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline must be escaped.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn series(out: &mut String, name: &str, labels: &[(&str, &str)], value: impl std::fmt::Display) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Render the full registry + request window as Prometheus text. With
/// `deterministic` set, wall-clock derived series are omitted (see module
/// docs).
pub fn render_prometheus(deterministic: bool) -> String {
    let mut out = String::new();

    family(
        &mut out,
        "prox_counter_total",
        "Workspace counters, by hierarchical name.",
        "counter",
    );
    for (name, value) in registry::counters_sorted() {
        series(&mut out, "prox_counter_total", &[("name", &name)], value);
    }

    family(
        &mut out,
        "prox_gauge",
        "Workspace gauges (queue depth, in-flight requests, busy workers).",
        "gauge",
    );
    for (name, value) in registry::gauges_sorted() {
        series(&mut out, "prox_gauge", &[("name", &name)], value);
    }

    family(
        &mut out,
        "prox_span_count_total",
        "Completed span-timer observations, by span name.",
        "counter",
    );
    let spans = registry::spans_sorted();
    for (name, count, _) in &spans {
        series(&mut out, "prox_span_count_total", &[("name", name)], count);
    }
    if !deterministic {
        family(
            &mut out,
            "prox_span_duration_ns_total",
            "Total time spent inside each span timer, in nanoseconds.",
            "counter",
        );
        for (name, _, total_ns) in &spans {
            series(
                &mut out,
                "prox_span_duration_ns_total",
                &[("name", name)],
                total_ns,
            );
        }
    }

    // Allocator gauges: only meaningful when a CountingAlloc is routing
    // this binary's heap, and — like all measurements — omitted from the
    // deterministic exposition (heap state is not schedule-determined).
    if !deterministic && alloc::installed() {
        let mem = alloc::stats();
        family(
            &mut out,
            "prox_memory_bytes",
            "Heap bytes from the counting allocator (live/peak/total since epoch).",
            "gauge",
        );
        series(
            &mut out,
            "prox_memory_bytes",
            &[("kind", "live")],
            mem.live_bytes,
        );
        series(
            &mut out,
            "prox_memory_bytes",
            &[("kind", "peak")],
            mem.peak_bytes,
        );
        series(
            &mut out,
            "prox_memory_bytes",
            &[("kind", "total")],
            mem.total_bytes,
        );
        family(
            &mut out,
            "prox_memory_allocations_total",
            "Allocation events since the last epoch reset.",
            "counter",
        );
        series(&mut out, "prox_memory_allocations_total", &[], mem.allocs);
    }

    let stats = window::stats(deterministic);
    family(
        &mut out,
        "prox_http_requests_total",
        "HTTP requests served, by endpoint.",
        "counter",
    );
    for e in &stats.endpoints {
        series(
            &mut out,
            "prox_http_requests_total",
            &[("endpoint", &e.endpoint)],
            e.requests,
        );
    }
    family(
        &mut out,
        "prox_http_errors_total",
        "HTTP responses with status >= 400, by endpoint.",
        "counter",
    );
    for e in &stats.endpoints {
        series(
            &mut out,
            "prox_http_errors_total",
            &[("endpoint", &e.endpoint)],
            e.errors,
        );
    }
    family(
        &mut out,
        "prox_http_degraded_total",
        "Requests that degraded to their anytime best-so-far answer.",
        "counter",
    );
    for e in &stats.endpoints {
        series(
            &mut out,
            "prox_http_degraded_total",
            &[("endpoint", &e.endpoint)],
            e.degraded,
        );
    }
    family(
        &mut out,
        "prox_http_shed_total",
        "Connections shed by admission control (503 before routing).",
        "counter",
    );
    series(&mut out, "prox_http_shed_total", &[], stats.shed);

    family(
        &mut out,
        "prox_cache_requests_total",
        "Summary-cache lookups, by endpoint and outcome.",
        "counter",
    );
    for e in &stats.endpoints {
        if e.cache_hits + e.cache_misses == 0 {
            continue;
        }
        series(
            &mut out,
            "prox_cache_requests_total",
            &[("endpoint", &e.endpoint), ("outcome", "hit")],
            e.cache_hits,
        );
        series(
            &mut out,
            "prox_cache_requests_total",
            &[("endpoint", &e.endpoint), ("outcome", "miss")],
            e.cache_misses,
        );
    }

    if !deterministic {
        family(
            &mut out,
            "prox_http_request_duration_us",
            "Request latency over the sliding window, in microseconds.",
            "summary",
        );
        for e in &stats.endpoints {
            let (Some(p50), Some(p95), Some(p99)) = (e.p50_us, e.p95_us, e.p99_us) else {
                continue;
            };
            series(
                &mut out,
                "prox_http_request_duration_us",
                &[("endpoint", &e.endpoint), ("quantile", "0.5")],
                p50,
            );
            series(
                &mut out,
                "prox_http_request_duration_us",
                &[("endpoint", &e.endpoint), ("quantile", "0.95")],
                p95,
            );
            series(
                &mut out,
                "prox_http_request_duration_us",
                &[("endpoint", &e.endpoint), ("quantile", "0.99")],
                p99,
            );
            series(
                &mut out,
                "prox_http_request_duration_us_sum",
                &[("endpoint", &e.endpoint)],
                e.lat_sum_us.unwrap_or(0),
            );
            series(
                &mut out,
                "prox_http_request_duration_us_count",
                &[("endpoint", &e.endpoint)],
                e.window_requests.unwrap_or(0),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn label_escaping_covers_specials() {
        assert_eq!(escape_label(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label("x\ny"), "x\\ny");
    }

    /// Structural validity: every non-comment line is `name{labels} value`,
    /// every series name is introduced by HELP+TYPE, no duplicate series.
    #[test]
    fn exposition_is_well_formed_with_no_duplicates() {
        crate::set_enabled(true);
        window::record_request(&window::RequestObservation {
            endpoint: "/summarize",
            status: 200,
            dur_us: 100,
            degraded: false,
            cache: Some(true),
        });
        let text = render_prometheus(false);
        let mut helped = BTreeSet::new();
        let mut typed = BTreeSet::new();
        let mut seen = BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let fam = rest.split(' ').next().unwrap().to_owned();
                assert!(helped.insert(fam.clone()), "duplicate HELP for {fam}");
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let fam = rest.split(' ').next().unwrap().to_owned();
                assert!(typed.insert(fam.clone()), "duplicate TYPE for {fam}");
                continue;
            }
            let (series_id, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
            assert!(
                seen.insert(series_id.to_owned()),
                "duplicate series {series_id}"
            );
            let base = series_id.split('{').next().unwrap();
            let base = base
                .strip_suffix("_sum")
                .or_else(|| base.strip_suffix("_count"))
                .filter(|b| helped.contains(*b))
                .unwrap_or(base);
            assert!(helped.contains(base), "series {base} missing HELP");
            assert!(typed.contains(base), "series {base} missing TYPE");
        }
        assert!(text.contains("prox_http_requests_total{endpoint=\"/summarize\"}"));
        assert!(text.contains("quantile=\"0.99\""));
    }

    #[test]
    fn deterministic_exposition_has_no_wall_clock_series() {
        crate::set_enabled(true);
        let text = render_prometheus(true);
        assert!(!text.contains("prox_span_duration_ns_total"), "{text}");
        assert!(!text.contains("quantile="), "{text}");
    }
}
