//! The process-global observability registry.
//!
//! Holds every [`Counter`] and [`SpanTimer`] that has self-registered
//! (i.e. has been touched at least once while enabled) and turns them
//! into deterministic JSON snapshots. The enabled flag is a single
//! relaxed `AtomicBool`: while it is off, every instrumentation call in
//! the workspace reduces to one load and an early return, so shipping
//! instrumented binaries costs ~nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::counter::Counter;
use crate::gauge::Gauge;
use crate::json::Json;
use crate::sink;
use crate::span::SpanTimer;
use crate::window;

static ENABLED: AtomicBool = AtomicBool::new(false);
static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
static GAUGES: Mutex<Vec<&'static Gauge>> = Mutex::new(Vec::new());
static SPANS: Mutex<Vec<&'static SpanTimer>> = Mutex::new(Vec::new());

/// Is observability collection on? Inlined into every hot-path gate.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off. Already-collected values are kept.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enable collection — and install a JSONL trace sink — from the
/// environment: `PROX_TRACE=<path>` enables tracing to `<path>`,
/// `PROX_TRACE=1` (or empty) enables collection without a sink.
/// Returns whether collection ended up enabled.
pub fn init_from_env() -> bool {
    match std::env::var("PROX_TRACE") {
        Err(_) => enabled(),
        Ok(v) if v.is_empty() || v == "1" || v == "true" => {
            set_enabled(true);
            true
        }
        Ok(path) => {
            set_enabled(true);
            if let Err(e) = sink::install(&path) {
                eprintln!("prox-obs: cannot open PROX_TRACE={path}: {e}");
            }
            true
        }
    }
}

pub(crate) fn register_counter(c: &'static Counter) {
    crate::lock(&COUNTERS).push(c);
}

pub(crate) fn register_gauge(g: &'static Gauge) {
    crate::lock(&GAUGES).push(g);
}

pub(crate) fn register_span(s: &'static SpanTimer) {
    crate::lock(&SPANS).push(s);
}

/// Zero every registered counter, gauge, and histogram — and the request
/// window — keeping registrations, so the next snapshot still lists them.
/// Used between bench experiments.
pub fn reset() {
    for c in crate::lock(&COUNTERS).iter() {
        c.reset();
    }
    for g in crate::lock(&GAUGES).iter() {
        g.reset();
    }
    for s in crate::lock(&SPANS).iter() {
        s.reset();
    }
    window::reset();
    // Re-base the allocation counters so per-experiment manifests report
    // peak/total for their own window. Profiler samples are deliberately
    // NOT cleared: a folded profile covers the whole process run.
    crate::alloc::epoch_reset();
}

/// Current value of a registered counter, by name.
pub fn counter_value(name: &str) -> Option<u64> {
    crate::lock(&COUNTERS)
        .iter()
        .find(|c| c.name() == name)
        .map(|c| c.get())
}

/// Current value of a registered gauge, by name.
pub fn gauge_value(name: &str) -> Option<i64> {
    crate::lock(&GAUGES)
        .iter()
        .find(|g| g.name() == name)
        .map(|g| g.get())
}

/// Name/value pairs of every registered counter, in registration order.
/// Used by trace contexts to compute per-span counter deltas.
pub(crate) fn counter_values() -> Vec<(&'static str, u64)> {
    crate::lock(&COUNTERS)
        .iter()
        .map(|c| (c.name(), c.get()))
        .collect()
}

/// Sorted `(name, value)` pairs of every registered counter.
pub fn counters_sorted() -> Vec<(String, u64)> {
    let mut counters: Vec<(String, u64)> = crate::lock(&COUNTERS)
        .iter()
        .map(|c| (c.name().to_owned(), c.get()))
        .collect();
    counters.sort();
    counters
}

/// Sorted `(name, value)` pairs of every registered gauge.
pub fn gauges_sorted() -> Vec<(String, i64)> {
    let mut gauges: Vec<(String, i64)> = crate::lock(&GAUGES)
        .iter()
        .map(|g| (g.name().to_owned(), g.get()))
        .collect();
    gauges.sort();
    gauges
}

/// Sorted `(name, count, total_ns)` triples of every registered span
/// timer. Used by the Prometheus renderer.
pub fn spans_sorted() -> Vec<(String, u64, u64)> {
    let mut spans: Vec<(String, u64, u64)> = crate::lock(&SPANS)
        .iter()
        .map(|s| {
            let h = s.histogram();
            (s.name().to_owned(), h.count(), h.total_ns())
        })
        .collect();
    spans.sort();
    spans
}

/// A deterministic JSON snapshot of everything registered:
///
/// ```json
/// {"counters": {"distance/evaluations": 123, ...},
///  "spans": {"summarize/step": {"count":..,"total_ns":..,"min_ns":..,
///            "max_ns":..,"mean_ns":..,"buckets":[[ub_ns,count],..]}, ...}}
/// ```
///
/// Counter and span names are sorted, bucket lists omit empty buckets.
pub fn snapshot() -> Json {
    let mut counters: Vec<(String, u64)> = crate::lock(&COUNTERS)
        .iter()
        .map(|c| (c.name().to_owned(), c.get()))
        .collect();
    counters.sort();
    let mut counters_json = Json::obj();
    for (name, value) in counters {
        counters_json.set(&name, value);
    }

    let mut gauges_json = Json::obj();
    for (name, value) in gauges_sorted() {
        gauges_json.set(&name, Json::Int(value));
    }

    let mut spans: Vec<(String, Json)> = crate::lock(&SPANS)
        .iter()
        .map(|s| {
            let h = s.histogram();
            let buckets: Vec<Json> = h
                .nonzero_buckets()
                .into_iter()
                .map(|(ub, n)| Json::Arr(vec![Json::UInt(ub), Json::UInt(n)]))
                .collect();
            let entry = Json::obj()
                .with("count", h.count())
                .with("total_ns", h.total_ns())
                .with("min_ns", h.min_ns().map_or(Json::Null, Json::UInt))
                .with("max_ns", h.max_ns().map_or(Json::Null, Json::UInt))
                .with("mean_ns", h.mean_ns().map_or(Json::Null, Json::UInt))
                .with("alloc_bytes", s.alloc_bytes())
                .with("allocs", s.alloc_count())
                .with("buckets", Json::Arr(buckets));
            (s.name().to_owned(), entry)
        })
        .collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    let mut spans_json = Json::obj();
    for (name, entry) in spans {
        spans_json.set(&name, entry);
    }

    Json::obj()
        .with("counters", counters_json)
        .with("gauges", gauges_json)
        .with("spans", spans_json)
}

/// Render [`snapshot`] for humans: counters first, then span timings with
/// totals in milliseconds.
pub fn render_snapshot() -> String {
    let snap = snapshot();
    let mut out = String::new();
    out.push_str("counters:\n");
    let counters = snap.get("counters").and_then(Json::entries).unwrap_or(&[]);
    if counters.is_empty() {
        out.push_str("  (none recorded)\n");
    }
    for (name, value) in counters {
        let v = value.as_u64().unwrap_or(0);
        out.push_str(&format!("  {name:<40} {v}\n"));
    }
    let gauges = snap.get("gauges").and_then(Json::entries).unwrap_or(&[]);
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in gauges {
            out.push_str(&format!("  {name:<40} {}\n", value.render()));
        }
    }
    out.push_str("spans:\n");
    let spans = snap.get("spans").and_then(Json::entries).unwrap_or(&[]);
    if spans.is_empty() {
        out.push_str("  (none recorded)\n");
    }
    for (name, entry) in spans {
        let count = entry.get("count").and_then(Json::as_u64).unwrap_or(0);
        let total = entry.get("total_ns").and_then(Json::as_u64).unwrap_or(0);
        let mean = entry.get("mean_ns").and_then(Json::as_u64).unwrap_or(0);
        let alloc_bytes = entry.get("alloc_bytes").and_then(Json::as_u64).unwrap_or(0);
        if alloc_bytes > 0 {
            out.push_str(&format!(
                "  {name:<40} n={count:<8} total={:.3}ms mean={:.3}ms alloc={:.1}KiB\n",
                total as f64 / 1e6,
                mean as f64 / 1e6,
                alloc_bytes as f64 / 1024.0,
            ));
        } else {
            out.push_str(&format!(
                "  {name:<40} n={count:<8} total={:.3}ms mean={:.3}ms\n",
                total as f64 / 1e6,
                mean as f64 / 1e6,
            ));
        }
    }
    out.push_str("memory:\n");
    let mem = crate::alloc::stats();
    if mem.installed {
        out.push_str(&format!("  {:<40} {}\n", "live_bytes", mem.live_bytes));
        out.push_str(&format!("  {:<40} {}\n", "peak_bytes", mem.peak_bytes));
        out.push_str(&format!("  {:<40} {}\n", "total_bytes", mem.total_bytes));
        out.push_str(&format!("  {:<40} {}\n", "allocations", mem.allocs));
    } else {
        out.push_str("  (counting allocator not installed in this binary)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static SNAP_COUNTER: Counter = Counter::new("test/snapshot_counter");
    static SNAP_SPAN: SpanTimer = SpanTimer::new("test/snapshot_span");

    #[test]
    fn snapshot_contains_registered_entries() {
        set_enabled(true);
        SNAP_COUNTER.add(7);
        SNAP_SPAN.record(std::time::Duration::from_micros(10));
        let snap = snapshot();
        let counters = snap.get("counters").expect("counters");
        assert!(counters.get("test/snapshot_counter").is_some());
        assert!(counter_value("test/snapshot_counter").expect("registered") >= 7);
        let span = snap
            .get("spans")
            .and_then(|s| s.get("test/snapshot_span"))
            .expect("span entry");
        assert!(span.get("count").and_then(Json::as_u64).unwrap() >= 1);
        // Snapshot renders to valid JSON.
        Json::parse(&snap.pretty()).expect("valid snapshot JSON");
        // Human rendering mentions both.
        let text = render_snapshot();
        assert!(text.contains("test/snapshot_counter"));
        assert!(text.contains("test/snapshot_span"));
    }
}
