//! Optional JSONL trace sink.
//!
//! When installed (via `PROX_TRACE=<path>` or [`install`]), every span
//! completion — and any custom [`event`] — is appended as one JSON object
//! per line. The active check is a relaxed atomic load, so an absent sink
//! costs nothing; writes go through a mutex-guarded `BufWriter`.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

struct SinkInner {
    writer: BufWriter<File>,
    t0: Instant,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<SinkInner>> = Mutex::new(None);

/// Is a sink installed?
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Open (truncating) `path` and route trace events to it. Also enables
/// observability collection — a sink without collection records nothing.
pub fn install(path: &str) -> io::Result<()> {
    let file = File::create(path)?;
    let mut guard = crate::lock(&SINK);
    *guard = Some(SinkInner {
        writer: BufWriter::new(file),
        t0: Instant::now(),
    });
    ACTIVE.store(true, Ordering::Relaxed);
    crate::registry::set_enabled(true);
    Ok(())
}

/// Emit one event. Each event gains a `t_us` field: microseconds since the
/// sink was installed. A no-op when no sink is installed.
pub fn emit(event: Json) {
    if !active() {
        return;
    }
    let mut guard = crate::lock(&SINK);
    if let Some(inner) = guard.as_mut() {
        let t_us = u64::try_from(inner.t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        // Render the whole line (newline included) up front and hand it to
        // the writer as a single `write_all`, so one event is one atomic
        // append and concurrent serve workers can never interleave partial
        // lines in the JSONL output.
        let mut line = event.with("t_us", t_us).render();
        line.push('\n');
        // Ignore I/O errors: tracing must never take the process down.
        let _ = inner.writer.write_all(line.as_bytes());
    }
}

/// Flush buffered events to disk.
pub fn flush() {
    if let Some(inner) = crate::lock(&SINK).as_mut() {
        let _ = inner.writer.flush();
    }
}

/// Flush and close the sink. Collection stays enabled.
pub fn close() {
    let mut guard = crate::lock(&SINK);
    if let Some(mut inner) = guard.take() {
        let _ = inner.writer.flush();
    }
    ACTIVE.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_writes_one_valid_json_object_per_line() {
        let path = std::env::temp_dir().join(format!("prox-obs-sink-{}.jsonl", std::process::id()));
        let path_str = path.to_str().expect("utf8 temp path");
        install(path_str).expect("install sink");
        emit(Json::obj().with("type", "event").with("name", "alpha"));
        emit(
            Json::obj()
                .with("type", "span")
                .with("name", "beta/gamma")
                .with("dur_ns", 1234u64),
        );
        close();
        assert!(!active());

        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let obj = Json::parse(line).expect("valid JSON line");
            assert!(obj.get("type").is_some(), "{line}");
            assert!(obj.get("t_us").and_then(Json::as_u64).is_some(), "{line}");
        }
        assert_eq!(
            Json::parse(lines[1])
                .unwrap()
                .get("dur_ns")
                .and_then(Json::as_u64),
            Some(1234)
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Many concurrent writers, every line must still parse as one JSON
    /// object (no interleaving, no torn lines).
    #[test]
    fn concurrent_emitters_never_interleave_lines() {
        const THREADS: usize = 8;
        const EVENTS: usize = 200;
        let path =
            std::env::temp_dir().join(format!("prox-obs-sink-stress-{}.jsonl", std::process::id()));
        let path_str = path.to_str().expect("utf8 temp path");
        install(path_str).expect("install sink");
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..EVENTS {
                        emit(
                            Json::obj()
                                .with("type", "stress")
                                .with("thread", t as u64)
                                .with("i", i as u64)
                                // Long padding makes a torn write visible.
                                .with("pad", "x".repeat(64).as_str()),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }
        close();

        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), THREADS * EVENTS);
        for line in &lines {
            let obj = Json::parse(line).expect("valid JSON line");
            assert_eq!(obj.get("type").and_then(Json::as_str), Some("stress"));
            assert!(obj.get("t_us").and_then(Json::as_u64).is_some());
        }
        let _ = std::fs::remove_file(&path);
    }
}
