//! RAII span timers with hierarchical names.
//!
//! A [`SpanTimer`] is a `static` naming one phase of the system
//! (`"summarize/step/score"`, `"hac/linkage"`, ...). Calling
//! [`SpanTimer::start`] returns a [`SpanGuard`]; when the guard drops, the
//! elapsed time is recorded into the timer's log-spaced [`Histogram`] and,
//! if a trace sink is installed, emitted as one JSONL event. While
//! observability is disabled, `start` does one relaxed atomic load and
//! returns an inert guard.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::histogram::Histogram;
use crate::json::Json;
use crate::{registry, sink};

/// A named span timer feeding a duration histogram.
pub struct SpanTimer {
    name: &'static str,
    hist: Histogram,
    registered: AtomicBool,
}

impl SpanTimer {
    /// Create a span timer. `const`, so timers can be plain statics.
    pub const fn new(name: &'static str) -> SpanTimer {
        SpanTimer {
            name,
            hist: Histogram::new(),
            registered: AtomicBool::new(false),
        }
    }

    /// The span's hierarchical name, e.g. `"summarize/step/enumerate"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Start timing. The returned guard records on drop. Near-free (one
    /// relaxed load, no clock read) while observability is disabled.
    #[inline]
    pub fn start(&'static self) -> SpanGuard {
        if !registry::enabled() {
            return SpanGuard { inner: None };
        }
        SpanGuard {
            inner: Some((self, Instant::now())),
        }
    }

    /// Record an externally measured duration into this span.
    pub fn record(&'static self, d: Duration) {
        if !registry::enabled() {
            return;
        }
        self.register();
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.hist.record_ns(ns);
        if sink::active() {
            sink::emit(
                Json::obj()
                    .with("type", "span")
                    .with("name", self.name)
                    .with("dur_ns", ns),
            );
        }
    }

    /// The underlying histogram (for snapshots and tests).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry::register_span(self);
        }
    }

    pub(crate) fn reset(&self) {
        self.hist.reset();
    }
}

/// RAII guard returned by [`SpanTimer::start`]; records elapsed time on drop.
pub struct SpanGuard {
    inner: Option<(&'static SpanTimer, Instant)>,
}

impl SpanGuard {
    /// Record now instead of at end of scope.
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((timer, start)) = self.inner.take() {
            timer.record(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static SPAN: SpanTimer = SpanTimer::new("test/span");

    #[test]
    fn guard_records_on_drop() {
        crate::set_enabled(true);
        let before = SPAN.histogram().count();
        {
            let _g = SPAN.start();
            std::thread::sleep(Duration::from_millis(1));
        }
        SPAN.start().finish();
        assert_eq!(SPAN.histogram().count(), before + 2);
        assert!(SPAN.histogram().max_ns().expect("recorded") >= 1_000_000);
    }
}
