//! RAII span timers with hierarchical names.
//!
//! A [`SpanTimer`] is a `static` naming one phase of the system
//! (`"summarize/step/score"`, `"hac/linkage"`, ...). Calling
//! [`SpanTimer::start`] returns a [`SpanGuard`]; when the guard drops, the
//! elapsed time is recorded into the timer's log-spaced [`Histogram`] and,
//! if a trace sink is installed, emitted as one JSONL event. While
//! observability is disabled, `start` does one relaxed atomic load and
//! returns an inert guard.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::histogram::Histogram;
use crate::json::Json;
use crate::{alloc, prof, registry, sink};

/// A named span timer feeding a duration histogram.
pub struct SpanTimer {
    name: &'static str,
    hist: Histogram,
    registered: AtomicBool,
    /// Heap bytes / allocation events attributed to closed instances of
    /// this span (process-global deltas, so concurrent threads' traffic
    /// is included — see `obs/src/alloc.rs` docs).
    alloc_bytes: AtomicU64,
    allocs: AtomicU64,
}

impl SpanTimer {
    /// Create a span timer. `const`, so timers can be plain statics.
    pub const fn new(name: &'static str) -> SpanTimer {
        SpanTimer {
            name,
            hist: Histogram::new(),
            registered: AtomicBool::new(false),
            alloc_bytes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
        }
    }

    /// The span's hierarchical name, e.g. `"summarize/step/enumerate"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Start timing. The returned guard records on drop. Near-free (one
    /// relaxed load, no clock read) while observability is disabled.
    #[inline]
    pub fn start(&'static self) -> SpanGuard {
        if !registry::enabled() {
            return SpanGuard {
                inner: None,
                pushed: false,
            };
        }
        let pushed = prof::push(self.name);
        let (bytes0, allocs0) = alloc::totals();
        SpanGuard {
            inner: Some((self, Instant::now(), bytes0, allocs0)),
            pushed,
        }
    }

    /// Record an externally measured duration into this span. In
    /// boundary-mode profiling this also contributes one folded-stack
    /// sample (the span as leaf of the current stack), since no guard
    /// ever opened a frame for it.
    pub fn record(&'static self, d: Duration) {
        if !registry::enabled() {
            return;
        }
        prof::sample_leaf(self.name);
        self.record_raw(d);
    }

    fn record_raw(&'static self, d: Duration) {
        if !registry::enabled() {
            return;
        }
        self.register();
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.hist.record_ns(ns);
        if sink::active() {
            sink::emit(
                Json::obj()
                    .with("type", "span")
                    .with("name", self.name)
                    .with("dur_ns", ns),
            );
        }
    }

    /// The underlying histogram (for snapshots and tests).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Heap bytes attributed to closed instances of this span since the
    /// last reset (0 when no counting allocator is installed).
    pub fn alloc_bytes(&self) -> u64 {
        self.alloc_bytes.load(Ordering::Relaxed)
    }

    /// Allocation events attributed to closed instances of this span.
    pub fn alloc_count(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    fn add_alloc_delta(&'static self, bytes: u64, allocs: u64) {
        if bytes > 0 || allocs > 0 {
            self.alloc_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.allocs.fetch_add(allocs, Ordering::Relaxed);
        }
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry::register_span(self);
        }
    }

    pub(crate) fn reset(&self) {
        self.hist.reset();
        self.alloc_bytes.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
    }
}

/// RAII guard returned by [`SpanTimer::start`]; records elapsed time (and
/// the allocation delta over its lifetime) on drop.
pub struct SpanGuard {
    inner: Option<(&'static SpanTimer, Instant, u64, u64)>,
    /// Whether this guard pushed a profiler frame (and so must pop one).
    pushed: bool,
}

impl SpanGuard {
    /// Record now instead of at end of scope.
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.pushed {
            prof::pop();
        }
        if let Some((timer, start, bytes0, allocs0)) = self.inner.take() {
            let (bytes1, allocs1) = alloc::totals();
            timer.add_alloc_delta(
                bytes1.saturating_sub(bytes0),
                allocs1.saturating_sub(allocs0),
            );
            // record_raw, not record: the guard's pop() above already
            // produced this close's boundary-mode profiler sample.
            timer.record_raw(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static SPAN: SpanTimer = SpanTimer::new("test/span");

    #[test]
    fn guard_records_on_drop() {
        crate::set_enabled(true);
        let before = SPAN.histogram().count();
        {
            let _g = SPAN.start();
            std::thread::sleep(Duration::from_millis(1));
        }
        SPAN.start().finish();
        assert_eq!(SPAN.histogram().count(), before + 2);
        assert!(SPAN.histogram().max_ns().expect("recorded") >= 1_000_000);
    }
}
