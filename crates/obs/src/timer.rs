//! Shared per-step timing for the three summarization loops.
//!
//! Prov-Approx, clustering replay, and the random baseline all fill the
//! same two `StepRecord` fields: `candidate_time` (time spent producing
//! and measuring candidates within the step) and `step_time` (the whole
//! step). [`StepTimer`] centralizes that bookkeeping. It is always on —
//! it feeds algorithm output (`History`), not the observability registry —
//! and its semantics match the hand-rolled `Instant` pairs it replaced:
//! `step_time` is the elapsed time since construction, `candidate_time`
//! the accumulated time inside [`StepTimer::candidates`] closures.

use std::time::{Duration, Instant};

/// Times one step of a summarization loop.
pub struct StepTimer {
    step_start: Instant,
    candidate_time: Duration,
}

impl StepTimer {
    /// Start timing a step.
    pub fn start() -> StepTimer {
        StepTimer {
            step_start: Instant::now(),
            candidate_time: Duration::ZERO,
        }
    }

    /// Run `f`, adding its elapsed time to the step's candidate time.
    /// May be called multiple times per step; times accumulate.
    pub fn candidates<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let result = f();
        self.candidate_time += t.elapsed();
        result
    }

    /// Accumulated candidate-phase time so far.
    pub fn candidate_time(&self) -> Duration {
        self.candidate_time
    }

    /// Elapsed time since the step started.
    pub fn step_time(&self) -> Duration {
        self.step_start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_time_accumulates_and_bounds_step_time() {
        let mut t = StepTimer::start();
        let x = t.candidates(|| {
            std::thread::sleep(Duration::from_millis(2));
            21
        });
        assert_eq!(x, 21);
        let first = t.candidate_time();
        assert!(first >= Duration::from_millis(2));
        t.candidates(|| std::thread::sleep(Duration::from_millis(1)));
        assert!(t.candidate_time() > first, "second closure accumulates");
        assert!(
            t.step_time() >= t.candidate_time(),
            "candidate time is part of step time"
        );
    }

    #[test]
    fn fresh_timer_has_zero_candidate_time() {
        let t = StepTimer::start();
        assert_eq!(t.candidate_time(), Duration::ZERO);
    }
}
