//! Request-scoped trace contexts and the retained-trace ring buffer.
//!
//! A [`TraceContext`] records one request's span tree: each span carries a
//! name, its parent, a start offset, a duration, the per-span deltas of
//! every registered counter, and arbitrary attributes (`stop_reason`,
//! candidate counts, HTTP status). The context is a cheap-to-clone `Arc`
//! designed to piggyback on the `ExecutionBudget` plumbing, so the serve
//! request path carries it into the summarizer, HAC, and candidate
//! enumeration without new parameter threading.
//!
//! Completed traces land in a fixed-capacity [`TraceRing`] under a
//! tail-sampling policy: errored/degraded/slow requests are always
//! retained, the rest are sampled at a seeded, deterministic rate
//! ([`keep_sampled`]). When the ring is full the oldest *sampled* trace is
//! evicted first, so the interesting tail survives bursts of healthy
//! traffic.
//!
//! Determinism: trace ids come from [`trace_id_from`] — an FNV-1a hash of
//! a configured seed and a process-local sequence number — never from the
//! wall clock or the PID (rule L2).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;
use crate::{alloc, prof, registry};

/// Spans retained per trace; further spans are counted as dropped.
pub const MAX_TRACE_SPANS: usize = 256;

/// FNV-1a over a byte slice (the workspace's standard cheap hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic trace id for the `seq`-th request of a server seeded
/// with `seed`. Never zero.
pub fn trace_id_from(seed: u64, seq: u64) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&seed.to_le_bytes());
    bytes[8..].copy_from_slice(&seq.to_le_bytes());
    fnv1a(&bytes).max(1)
}

/// Deterministic tail-sampling decision: should a *healthy* request with
/// this trace id be retained at `rate` (in `[0,1]`)? Same seed, id, and
/// rate always agree, across processes.
pub fn keep_sampled(seed: u64, trace_id: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    let h = fnv1a(&(seed ^ trace_id.rotate_left(17)).to_le_bytes());
    ((h % 1_000_000) as f64) < rate * 1_000_000.0
}

#[derive(Debug)]
struct SpanNode {
    name: &'static str,
    parent: Option<usize>,
    start_us: u64,
    dur_us: Option<u64>,
    /// Registered counter values at span start; drained into
    /// `counter_deltas` when the span closes.
    counters_at_start: Vec<(&'static str, u64)>,
    counter_deltas: Vec<(&'static str, u64)>,
    /// Cumulative `(bytes, allocs)` from the counting allocator at span
    /// start; turned into `alloc_bytes`/`allocs` deltas at close.
    alloc_at_start: (u64, u64),
    alloc_bytes: u64,
    allocs: u64,
    attrs: Vec<(String, Json)>,
}

#[derive(Debug, Default)]
struct TraceState {
    spans: Vec<SpanNode>,
    /// Indices of currently-open spans, innermost last.
    stack: Vec<usize>,
    /// Trace-level attributes (no span open when noted).
    attrs: Vec<(String, Json)>,
    dropped: u64,
}

#[derive(Debug)]
struct TraceInner {
    trace_id: u64,
    t0: Instant,
    state: Mutex<TraceState>,
}

/// A request-scoped trace: an id plus a span tree, shared via `Arc` so it
/// can ride inside a cloned `ExecutionBudget`.
#[derive(Clone, Debug)]
pub struct TraceContext {
    inner: Arc<TraceInner>,
}

impl TraceContext {
    /// Start a trace with the given id (see [`trace_id_from`]).
    pub fn new(trace_id: u64) -> TraceContext {
        TraceContext {
            inner: Arc::new(TraceInner {
                trace_id,
                t0: Instant::now(),
                state: Mutex::new(TraceState::default()),
            }),
        }
    }

    /// The numeric trace id.
    pub fn trace_id(&self) -> u64 {
        self.inner.trace_id
    }

    /// The trace id as the canonical 16-hex-digit string carried in
    /// `X-Prox-Trace-Id`.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.inner.trace_id)
    }

    /// Open a span named `name` under the innermost open span. The span
    /// closes (recording its duration and counter deltas) when the
    /// returned guard drops. Beyond [`MAX_TRACE_SPANS`] the guard is inert
    /// and the trace's `dropped_spans` count grows instead.
    pub fn span(&self, name: &'static str) -> TraceSpan {
        let start_us = u64::try_from(self.inner.t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        let counters_at_start = registry::counter_values();
        let alloc_at_start = alloc::totals();
        let mut state = crate::lock(&self.inner.state);
        if state.spans.len() >= MAX_TRACE_SPANS {
            state.dropped += 1;
            return TraceSpan {
                open: None,
                pushed: false,
            };
        }
        let parent = state.stack.last().copied();
        let ix = state.spans.len();
        state.spans.push(SpanNode {
            name,
            parent,
            start_us,
            dur_us: None,
            counters_at_start,
            counter_deltas: Vec::new(),
            alloc_at_start,
            alloc_bytes: 0,
            allocs: 0,
            attrs: Vec::new(),
        });
        state.stack.push(ix);
        drop(state);
        let pushed = prof::push(name);
        TraceSpan {
            open: Some((self.clone(), ix, Instant::now())),
            pushed,
        }
    }

    /// Attach an attribute to the innermost open span (or to the trace
    /// itself when no span is open). Later notes with the same key win.
    pub fn note(&self, key: &str, value: impl Into<Json>) {
        let value = value.into();
        let mut state = crate::lock(&self.inner.state);
        let slot = match state.stack.last().copied() {
            Some(ix) => &mut state.spans[ix].attrs,
            None => &mut state.attrs,
        };
        if let Some(entry) = slot.iter_mut().find(|(k, _)| k == key) {
            entry.1 = value;
        } else {
            slot.push((key.to_owned(), value));
        }
    }

    /// Find an attribute by key, searching trace-level attributes first
    /// and then spans newest-first. Used by the serve layer to classify a
    /// finished request (e.g. `stop_reason`) for tail-sampling.
    pub fn find_attr(&self, key: &str) -> Option<Json> {
        let state = crate::lock(&self.inner.state);
        if let Some((_, v)) = state.attrs.iter().find(|(k, _)| k == key) {
            return Some(v.clone());
        }
        state.spans.iter().rev().find_map(|s| {
            s.attrs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
        })
    }

    fn close(&self, ix: usize, started: Instant) {
        let dur_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let now = registry::counter_values();
        let (bytes_now, allocs_now) = alloc::totals();
        let mut state = crate::lock(&self.inner.state);
        let node = &mut state.spans[ix];
        node.dur_us = Some(dur_us);
        node.alloc_bytes = bytes_now.saturating_sub(node.alloc_at_start.0);
        node.allocs = allocs_now.saturating_sub(node.alloc_at_start.1);
        let at_start = std::mem::take(&mut node.counters_at_start);
        for (name, value) in now {
            let before = at_start
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, v)| *v);
            let delta = value.saturating_sub(before);
            if delta > 0 {
                node.counter_deltas.push((name, delta));
            }
        }
        state.stack.retain(|&open| open != ix);
    }

    /// Render the full span tree:
    ///
    /// ```json
    /// {"trace_id": "00ab..", "attrs": {..}, "dropped_spans": 0,
    ///  "spans": [{"name": "request", "start_us": 0, "dur_us": 1234,
    ///             "attrs": {"status": 200}, "counters": {"serve/requests": 1},
    ///             "children": [..]}]}
    /// ```
    ///
    /// Open (unclosed) spans render with `dur_us: null`.
    pub fn to_json(&self) -> Json {
        let state = crate::lock(&self.inner.state);
        let n = state.spans.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots: Vec<usize> = Vec::new();
        for (ix, node) in state.spans.iter().enumerate() {
            match node.parent {
                Some(p) if p < n => children[p].push(ix),
                _ => roots.push(ix),
            }
        }
        fn render(ix: usize, spans: &[SpanNode], children: &[Vec<usize>]) -> Json {
            let node = &spans[ix];
            let mut out = Json::obj()
                .with("name", node.name)
                .with("start_us", node.start_us)
                .with("dur_us", node.dur_us.map_or(Json::Null, Json::UInt));
            if node.allocs > 0 {
                out.set("alloc_bytes", node.alloc_bytes);
                out.set("allocs", node.allocs);
            }
            if !node.attrs.is_empty() {
                let mut attrs = Json::obj();
                for (k, v) in &node.attrs {
                    attrs.set(k, v.clone());
                }
                out.set("attrs", attrs);
            }
            if !node.counter_deltas.is_empty() {
                let mut deltas = Json::obj();
                for (name, delta) in &node.counter_deltas {
                    deltas.set(name, *delta);
                }
                out.set("counters", deltas);
            }
            let kids: Vec<Json> = children[ix]
                .iter()
                .map(|&c| render(c, spans, children))
                .collect();
            if !kids.is_empty() {
                out.set("children", Json::Arr(kids));
            }
            out
        }
        let mut attrs = Json::obj();
        for (k, v) in &state.attrs {
            attrs.set(k, v.clone());
        }
        Json::obj()
            .with("trace_id", self.id_hex())
            .with("attrs", attrs)
            .with("dropped_spans", state.dropped)
            .with(
                "spans",
                Json::Arr(
                    roots
                        .iter()
                        .map(|&r| render(r, &state.spans, &children))
                        .collect(),
                ),
            )
    }
}

/// RAII guard for one open span; records duration and counter deltas on
/// drop. Inert when the owning trace hit its span cap.
#[derive(Debug)]
pub struct TraceSpan {
    open: Option<(TraceContext, usize, Instant)>,
    /// Whether this guard pushed a profiler frame (and so must pop one).
    pushed: bool,
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if self.pushed {
            prof::pop();
        }
        if let Some((ctx, ix, started)) = self.open.take() {
            ctx.close(ix, started);
        }
    }
}

/// Why a trace was retained in the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetainReason {
    /// The response status was an error (>= 400).
    Error,
    /// The run degraded to its anytime best-so-far answer
    /// (budget/deadline/cancel stop reasons).
    Degraded,
    /// The request exceeded the slow threshold (`PROX_SLOW_MS`).
    Slow,
    /// A healthy request kept by the deterministic sampler.
    Sampled,
}

impl RetainReason {
    /// Stable lowercase name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            RetainReason::Error => "error",
            RetainReason::Degraded => "degraded",
            RetainReason::Slow => "slow",
            RetainReason::Sampled => "sampled",
        }
    }
}

/// One finished, retained trace.
#[derive(Clone, Debug)]
pub struct RetainedTrace {
    /// Canonical 16-hex trace id.
    pub trace_id: String,
    /// Request endpoint (path with any query string stripped).
    pub endpoint: String,
    /// HTTP status of the response.
    pub status: u16,
    /// End-to-end request duration in microseconds.
    pub dur_us: u64,
    /// Why the trace survived tail-sampling.
    pub reason: RetainReason,
    /// The span tree, as produced by [`TraceContext::to_json`].
    pub tree: Json,
}

/// Fixed-capacity ring of retained traces. Push is O(capacity) worst case
/// (one linear scan to find the oldest sampled victim) under a single
/// short-held mutex; readers take the same lock only for `/debug/traces`.
#[derive(Debug)]
pub struct TraceRing {
    items: Mutex<VecDeque<RetainedTrace>>,
    capacity: usize,
}

impl TraceRing {
    /// Create a ring holding at most `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            items: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Retain a trace, evicting the oldest *sampled* trace first when
    /// full — errored/degraded/slow traces are only displaced once no
    /// sampled victim remains.
    pub fn push(&self, trace: RetainedTrace) {
        let mut items = crate::lock(&self.items);
        if items.len() >= self.capacity {
            let victim = items
                .iter()
                .position(|t| t.reason == RetainReason::Sampled)
                .unwrap_or(0);
            items.remove(victim);
        }
        items.push_back(trace);
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        crate::lock(&self.items).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summaries of every retained trace, oldest first:
    /// `{"count": n, "capacity": c, "traces": [{trace_id, endpoint,
    /// status, dur_us, retained}, ..]}`.
    pub fn list_json(&self) -> Json {
        let items = crate::lock(&self.items);
        let traces: Vec<Json> = items
            .iter()
            .map(|t| {
                Json::obj()
                    .with("trace_id", t.trace_id.as_str())
                    .with("endpoint", t.endpoint.as_str())
                    .with("status", u64::from(t.status))
                    .with("dur_us", t.dur_us)
                    .with("retained", t.reason.name())
            })
            .collect();
        Json::obj()
            .with("count", items.len())
            .with("capacity", self.capacity)
            .with("traces", Json::Arr(traces))
    }

    /// The full span tree of the trace with this hex id, wrapped with its
    /// retention metadata; `None` when the id is unknown (evicted or
    /// never retained).
    pub fn get_json(&self, trace_id_hex: &str) -> Option<Json> {
        let items = crate::lock(&self.items);
        items.iter().find(|t| t.trace_id == trace_id_hex).map(|t| {
            t.tree
                .clone()
                .with("endpoint", t.endpoint.as_str())
                .with("status", u64::from(t.status))
                .with("dur_us", t.dur_us)
                .with("retained", t.reason.name())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retained(id: u64, reason: RetainReason) -> RetainedTrace {
        RetainedTrace {
            trace_id: format!("{id:016x}"),
            endpoint: "/summarize".to_owned(),
            status: if reason == RetainReason::Error {
                400
            } else {
                200
            },
            dur_us: 10,
            reason,
            tree: Json::obj().with("trace_id", format!("{id:016x}")),
        }
    }

    #[test]
    fn trace_ids_are_deterministic_and_nonzero() {
        assert_eq!(trace_id_from(7, 0), trace_id_from(7, 0));
        assert_ne!(trace_id_from(7, 0), trace_id_from(7, 1));
        assert_ne!(trace_id_from(7, 0), trace_id_from(8, 0));
        assert_ne!(trace_id_from(0, 0), 0);
    }

    #[test]
    fn sampling_is_deterministic_and_respects_bounds() {
        for seq in 0..64 {
            let id = trace_id_from(42, seq);
            assert!(keep_sampled(42, id, 1.0));
            assert!(!keep_sampled(42, id, 0.0));
            assert_eq!(keep_sampled(42, id, 0.3), keep_sampled(42, id, 0.3));
        }
        let kept = (0..1000)
            .filter(|&seq| keep_sampled(1, trace_id_from(1, seq), 0.5))
            .count();
        assert!((300..700).contains(&kept), "rate 0.5 kept {kept}/1000");
    }

    #[test]
    fn span_tree_nests_and_records_attrs() {
        let ctx = TraceContext::new(trace_id_from(3, 0));
        {
            let _root = ctx.span("request");
            {
                let _child = ctx.span("enumerate");
                ctx.note("candidates", 12u64);
            }
            ctx.note("status", 200u64);
        }
        let tree = ctx.to_json();
        assert_eq!(
            tree.get("trace_id").and_then(Json::as_str),
            Some(ctx.id_hex()).as_deref()
        );
        let spans = match tree.get("spans") {
            Some(Json::Arr(s)) => s,
            other => panic!("spans not an array: {other:?}"),
        };
        assert_eq!(spans.len(), 1);
        let root = &spans[0];
        assert_eq!(root.get("name").and_then(Json::as_str), Some("request"));
        assert_eq!(
            root.get("attrs")
                .and_then(|a| a.get("status"))
                .and_then(Json::as_u64),
            Some(200)
        );
        let children = match root.get("children") {
            Some(Json::Arr(c)) => c,
            other => panic!("children missing: {other:?}"),
        };
        assert_eq!(
            children[0].get("name").and_then(Json::as_str),
            Some("enumerate")
        );
        assert_eq!(
            children[0]
                .get("attrs")
                .and_then(|a| a.get("candidates"))
                .and_then(Json::as_u64),
            Some(12)
        );
        assert!(children[0].get("dur_us").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn span_cap_counts_drops_instead_of_growing() {
        let ctx = TraceContext::new(1);
        for _ in 0..(MAX_TRACE_SPANS + 5) {
            let _s = ctx.span("tick");
        }
        let tree = ctx.to_json();
        assert_eq!(
            tree.get("dropped_spans").and_then(Json::as_u64),
            Some(5),
            "{tree:?}"
        );
    }

    #[test]
    fn find_attr_sees_span_and_trace_attrs() {
        let ctx = TraceContext::new(2);
        {
            let _s = ctx.span("summarize");
            ctx.note("stop_reason", "budget_exhausted");
        }
        ctx.note("endpoint", "/summarize");
        assert_eq!(
            ctx.find_attr("stop_reason").and_then(|j| match j {
                Json::Str(s) => Some(s),
                _ => None,
            }),
            Some("budget_exhausted".to_owned())
        );
        assert!(ctx.find_attr("endpoint").is_some());
        assert!(ctx.find_attr("absent").is_none());
    }

    #[test]
    fn ring_evicts_oldest_sampled_first() {
        let ring = TraceRing::new(2);
        ring.push(retained(1, RetainReason::Sampled));
        ring.push(retained(2, RetainReason::Error));
        // Full. A new trace must displace #1 (oldest sampled), not #2.
        ring.push(retained(3, RetainReason::Sampled));
        assert!(ring.get_json(&format!("{:016x}", 1u64)).is_none());
        assert!(ring.get_json(&format!("{:016x}", 2u64)).is_some());
        assert!(ring.get_json(&format!("{:016x}", 3u64)).is_some());
        // Now [error#2, sampled#3]: the sampled one goes even though it
        // is newer than the error.
        ring.push(retained(4, RetainReason::Degraded));
        assert!(ring.get_json(&format!("{:016x}", 3u64)).is_none());
        assert!(ring.get_json(&format!("{:016x}", 2u64)).is_some());
        // No sampled victim left: fall back to the oldest overall.
        ring.push(retained(5, RetainReason::Error));
        assert!(ring.get_json(&format!("{:016x}", 2u64)).is_none());
        assert_eq!(ring.len(), 2);
        let list = ring.list_json();
        assert_eq!(list.get("count").and_then(Json::as_u64), Some(2));
    }
}
