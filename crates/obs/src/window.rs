//! Process-global sliding-window request aggregation.
//!
//! The serve layer reports every finished request here ([`record_request`])
//! and every shed admission ([`record_shed`]). The window keeps, per
//! endpoint:
//!
//! * cumulative totals since start/reset (requests, errors, degraded runs,
//!   cache hits/misses) — monotone, wall-clock-free, and therefore safe to
//!   expose under `PROX_DETERMINISTIC`;
//! * per-second latency buckets over the last [`WINDOW_SECS`] seconds,
//!   from which `GET /metrics` and `prox stats` derive p50/p95/p99/mean.
//!
//! Recording is gated on the registry's enabled flag, so the disabled cost
//! is one relaxed atomic load (the workspace cost model). Enabled cost is
//! one short-held mutex; latency samples are capped per bucket so memory
//! is fixed.
//!
//! Determinism (rule L2): output is sorted by endpoint name, and
//! [`stats`]`(true)` omits everything derived from the wall clock —
//! window counts, percentiles, means — leaving only the cumulative
//! totals, which depend solely on the request schedule.

use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;
use crate::registry;

/// Length of the sliding window, in seconds.
pub const WINDOW_SECS: u64 = 60;

/// Per-second ring slots; a little larger than the window so a slot is
/// never read and rewritten in the same second.
const NBUCKETS: usize = 64;

/// Latency samples kept per endpoint per second; beyond this the bucket
/// keeps counts but drops samples (fixed memory under load).
const MAX_SAMPLES: usize = 512;

/// One finished request, as reported by the serve layer.
#[derive(Debug)]
pub struct RequestObservation<'a> {
    /// Endpoint path with any query string stripped, e.g. `"/summarize"`.
    pub endpoint: &'a str,
    /// HTTP status of the response.
    pub status: u16,
    /// End-to-end duration in microseconds.
    pub dur_us: u64,
    /// Did the run degrade to its anytime best-so-far answer?
    pub degraded: bool,
    /// `Some(true)` = summary-cache hit, `Some(false)` = miss,
    /// `None` = not a cacheable route.
    pub cache: Option<bool>,
}

#[derive(Debug, Default, Clone)]
struct Tally {
    requests: u64,
    errors: u64,
    degraded: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl Tally {
    fn absorb(&mut self, obs: &RequestObservation<'_>) {
        self.requests += 1;
        if obs.status >= 400 {
            self.errors += 1;
        }
        if obs.degraded {
            self.degraded += 1;
        }
        match obs.cache {
            Some(true) => self.cache_hits += 1,
            Some(false) => self.cache_misses += 1,
            None => {}
        }
    }
}

#[derive(Debug)]
struct BucketEndpoint {
    endpoint: String,
    tally: Tally,
    lat_us: Vec<u64>,
    lat_sum_us: u64,
    lat_count: u64,
}

#[derive(Debug)]
struct Bucket {
    /// Seconds since `t0` when this slot was last written; slots whose
    /// epoch has fallen out of the window are ignored (and rewritten).
    epoch: u64,
    endpoints: Vec<BucketEndpoint>,
    shed: u64,
}

#[derive(Debug)]
struct WindowState {
    t0: Instant,
    buckets: Vec<Bucket>,
    totals: Vec<(String, Tally)>,
    shed_total: u64,
}

impl WindowState {
    fn new() -> WindowState {
        WindowState {
            t0: Instant::now(),
            buckets: (0..NBUCKETS)
                .map(|_| Bucket {
                    epoch: u64::MAX,
                    endpoints: Vec::new(),
                    shed: 0,
                })
                .collect(),
            totals: Vec::new(),
            shed_total: 0,
        }
    }

    fn bucket_now(&mut self) -> &mut Bucket {
        let epoch = self.t0.elapsed().as_secs();
        let slot = &mut self.buckets[(epoch % NBUCKETS as u64) as usize];
        if slot.epoch != epoch {
            slot.epoch = epoch;
            slot.endpoints.clear();
            slot.shed = 0;
        }
        slot
    }
}

static WINDOW: Mutex<Option<WindowState>> = Mutex::new(None);

fn with_state<R>(f: impl FnOnce(&mut WindowState) -> R) -> R {
    let mut guard = crate::lock(&WINDOW);
    f(guard.get_or_insert_with(WindowState::new))
}

/// Report one finished request. A no-op (one relaxed load) while
/// observability is disabled.
pub fn record_request(obs: &RequestObservation<'_>) {
    if !registry::enabled() {
        return;
    }
    with_state(|state| {
        match state.totals.iter_mut().find(|(ep, _)| ep == obs.endpoint) {
            Some((_, tally)) => tally.absorb(obs),
            None => {
                let mut tally = Tally::default();
                tally.absorb(obs);
                state.totals.push((obs.endpoint.to_owned(), tally));
            }
        }
        let bucket = state.bucket_now();
        if !bucket.endpoints.iter().any(|e| e.endpoint == obs.endpoint) {
            bucket.endpoints.push(BucketEndpoint {
                endpoint: obs.endpoint.to_owned(),
                tally: Tally::default(),
                lat_us: Vec::new(),
                lat_sum_us: 0,
                lat_count: 0,
            });
        }
        let Some(slot) = bucket
            .endpoints
            .iter_mut()
            .find(|e| e.endpoint == obs.endpoint)
        else {
            return;
        };
        slot.tally.absorb(obs);
        slot.lat_sum_us += obs.dur_us;
        slot.lat_count += 1;
        if slot.lat_us.len() < MAX_SAMPLES {
            slot.lat_us.push(obs.dur_us);
        }
    });
}

/// Report one shed admission (503 before routing). A no-op while
/// observability is disabled.
pub fn record_shed() {
    if !registry::enabled() {
        return;
    }
    with_state(|state| {
        state.shed_total += 1;
        state.bucket_now().shed += 1;
    });
}

/// Zero the window (totals, buckets, shed counts). The clock restarts.
pub(crate) fn reset() {
    *crate::lock(&WINDOW) = None;
}

/// Aggregated view of one endpoint, cumulative totals plus (outside
/// deterministic mode) sliding-window latency statistics.
#[derive(Debug, Clone)]
pub struct EndpointStats {
    /// Endpoint path, e.g. `"/summarize"`.
    pub endpoint: String,
    /// Cumulative request count since start/reset.
    pub requests: u64,
    /// Cumulative responses with status >= 400.
    pub errors: u64,
    /// Cumulative degraded (anytime best-so-far) runs.
    pub degraded: u64,
    /// Cumulative summary-cache hits.
    pub cache_hits: u64,
    /// Cumulative summary-cache misses.
    pub cache_misses: u64,
    /// Requests inside the sliding window (`None` in deterministic mode).
    pub window_requests: Option<u64>,
    /// Sum of window latencies in microseconds.
    pub lat_sum_us: Option<u64>,
    /// Window latency percentiles/mean in microseconds (nearest-rank;
    /// `None` in deterministic mode or with no window samples).
    pub p50_us: Option<u64>,
    /// 95th percentile, see [`EndpointStats::p50_us`].
    pub p95_us: Option<u64>,
    /// 99th percentile, see [`EndpointStats::p50_us`].
    pub p99_us: Option<u64>,
    /// Window mean, see [`EndpointStats::p50_us`].
    pub mean_us: Option<u64>,
}

/// Aggregated view over all endpoints, sorted by endpoint name.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// The window length used for latency statistics.
    pub window_secs: u64,
    /// Cumulative shed admissions since start/reset.
    pub shed: u64,
    /// Per-endpoint statistics, sorted by endpoint.
    pub endpoints: Vec<EndpointStats>,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Snapshot the window. With `deterministic` set, everything derived from
/// the wall clock (window counts, percentiles, means) is omitted and only
/// the cumulative, schedule-determined totals remain.
pub fn stats(deterministic: bool) -> WindowStats {
    with_state(|state| {
        let mut endpoints: Vec<EndpointStats> = state
            .totals
            .iter()
            .map(|(ep, t)| EndpointStats {
                endpoint: ep.clone(),
                requests: t.requests,
                errors: t.errors,
                degraded: t.degraded,
                cache_hits: t.cache_hits,
                cache_misses: t.cache_misses,
                window_requests: None,
                lat_sum_us: None,
                p50_us: None,
                p95_us: None,
                p99_us: None,
                mean_us: None,
            })
            .collect();
        endpoints.sort_by(|a, b| a.endpoint.cmp(&b.endpoint));

        if !deterministic {
            let now_epoch = state.t0.elapsed().as_secs();
            for stat in &mut endpoints {
                let mut samples: Vec<u64> = Vec::new();
                let mut in_window = 0u64;
                let mut sum = 0u64;
                for bucket in &state.buckets {
                    let live = bucket.epoch <= now_epoch && now_epoch - bucket.epoch < WINDOW_SECS;
                    if !live {
                        continue;
                    }
                    if let Some(slot) = bucket
                        .endpoints
                        .iter()
                        .find(|e| e.endpoint == stat.endpoint)
                    {
                        in_window += slot.lat_count;
                        sum += slot.lat_sum_us;
                        samples.extend_from_slice(&slot.lat_us);
                    }
                }
                stat.window_requests = Some(in_window);
                stat.lat_sum_us = Some(sum);
                samples.sort_unstable();
                stat.p50_us = percentile(&samples, 0.50);
                stat.p95_us = percentile(&samples, 0.95);
                stat.p99_us = percentile(&samples, 0.99);
                stat.mean_us = if samples.is_empty() {
                    None
                } else {
                    Some(sum / in_window.max(1))
                };
            }
        }

        WindowStats {
            window_secs: WINDOW_SECS,
            shed: state.shed_total,
            endpoints,
        }
    })
}

/// Render [`stats`] as JSON for `/metrics.json` and `prox stats`:
///
/// ```json
/// {"window_secs": 60, "shed": 0,
///  "endpoints": {"/summarize": {"requests": 4, "errors": 0, "degraded": 1,
///                "cache_hits": 2, "cache_misses": 2,
///                "window_requests": 4, "p50_us": 812, ...}}}
/// ```
///
/// Deterministic mode drops the wall-clock fields (`window_requests` and
/// the latency statistics) so same-seed runs render byte-identically.
pub fn window_json(deterministic: bool) -> Json {
    let stats = stats(deterministic);
    let mut endpoints = Json::obj();
    for e in &stats.endpoints {
        let mut entry = Json::obj()
            .with("requests", e.requests)
            .with("errors", e.errors)
            .with("degraded", e.degraded)
            .with("cache_hits", e.cache_hits)
            .with("cache_misses", e.cache_misses);
        if let Some(n) = e.window_requests {
            entry.set("window_requests", n);
            entry.set("p50_us", e.p50_us.map_or(Json::Null, Json::UInt));
            entry.set("p95_us", e.p95_us.map_or(Json::Null, Json::UInt));
            entry.set("p99_us", e.p99_us.map_or(Json::Null, Json::UInt));
            entry.set("mean_us", e.mean_us.map_or(Json::Null, Json::UInt));
        }
        endpoints.set(&e.endpoint, entry);
    }
    Json::obj()
        .with("window_secs", stats.window_secs)
        .with("shed", stats.shed)
        .with("endpoints", endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(endpoint: &str, status: u16, dur_us: u64) -> RequestObservation<'_> {
        RequestObservation {
            endpoint,
            status,
            dur_us,
            degraded: false,
            cache: None,
        }
    }

    #[test]
    fn records_totals_and_percentiles() {
        crate::set_enabled(true);
        reset();
        for i in 1..=100u64 {
            record_request(&obs("/w", 200, i * 10));
        }
        record_request(&RequestObservation {
            endpoint: "/w",
            status: 408,
            dur_us: 5,
            degraded: true,
            cache: Some(false),
        });
        record_shed();

        let s = stats(false);
        assert_eq!(s.shed, 1);
        let e = s.endpoints.iter().find(|e| e.endpoint == "/w").expect("/w");
        assert_eq!(e.requests, 101);
        assert_eq!(e.errors, 1);
        assert_eq!(e.degraded, 1);
        assert_eq!(e.cache_misses, 1);
        assert_eq!(e.window_requests, Some(101));
        let p50 = e.p50_us.expect("p50");
        let p99 = e.p99_us.expect("p99");
        assert!(p50 <= p99, "p50={p50} p99={p99}");
        assert!((400..=600).contains(&p50), "p50={p50}");
        reset();
    }

    #[test]
    fn deterministic_stats_omit_wall_clock_fields() {
        crate::set_enabled(true);
        reset();
        record_request(&obs("/d", 200, 123));
        let s = stats(true);
        let e = s.endpoints.iter().find(|e| e.endpoint == "/d").expect("/d");
        assert_eq!(e.requests, 1);
        assert_eq!(e.window_requests, None);
        assert_eq!(e.p50_us, None);
        let rendered = window_json(true).render();
        assert!(!rendered.contains("p50_us"), "{rendered}");
        assert!(!rendered.contains("window_requests"), "{rendered}");
        reset();
    }

    #[test]
    fn endpoints_render_sorted() {
        crate::set_enabled(true);
        reset();
        record_request(&obs("/z", 200, 1));
        record_request(&obs("/a", 200, 1));
        let s = stats(true);
        let names: Vec<&str> = s.endpoints.iter().map(|e| e.endpoint.as_str()).collect();
        assert_eq!(names, vec!["/a", "/z"]);
        reset();
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7], 0.5), Some(7));
        assert_eq!(percentile(&[1, 2, 3, 4], 0.5), Some(2));
        assert_eq!(percentile(&[1, 2, 3, 4], 0.99), Some(4));
    }
}
