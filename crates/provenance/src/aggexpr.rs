//! Aggregated provenance expressions: formal sums `⊕ᵢ tᵢ ⊗ vᵢ` (§2.2)
//! together with the congruence simplification that powers summarization
//! (§3.1): after a mapping identifies annotations, tensors whose provenance
//! coincides merge, combining their values under the aggregation monoid —
//! `Female ⊗ (3,1) ⊕ Female ⊗ (5,1) ≡ Female ⊗ (5,2)` under MAX.

use std::collections::HashMap;

use crate::annot::AnnId;
use crate::mapping::Mapping;
use crate::monoid::{AggKind, AggValue};
use crate::polynomial::Polynomial;
use crate::tensor::Tensor;
use crate::valuation::Valuation;

/// An aggregated value: a formal sum of tensors plus the aggregation used
/// to interpret it.
#[derive(Clone, Debug, PartialEq)]
pub struct AggExpr {
    pub(crate) tensors: Vec<Tensor>,
    pub(crate) kind: AggKind,
}

impl AggExpr {
    /// Empty aggregation.
    pub fn new(kind: AggKind) -> Self {
        AggExpr {
            tensors: Vec::new(),
            kind,
        }
    }

    /// Build from tensors, simplifying immediately.
    pub fn from_tensors(tensors: Vec<Tensor>, kind: AggKind) -> Self {
        let mut e = AggExpr { tensors, kind };
        e.simplify();
        e
    }

    /// Append one tensor (no simplification; call [`AggExpr::simplify`]).
    pub fn push(&mut self, t: Tensor) {
        self.tensors.push(t);
    }

    /// The aggregation kind.
    pub fn kind(&self) -> AggKind {
        self.kind
    }

    /// The tensors of the formal sum.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Provenance size: annotation occurrences across all tensors, with
    /// repetitions (the measure minimized by summarization).
    pub fn size(&self) -> usize {
        self.tensors.iter().map(Tensor::size).sum()
    }

    /// Distinct annotations mentioned.
    pub fn annotations(&self) -> Vec<AnnId> {
        let mut out: Vec<AnnId> = self.tensors.iter().flat_map(|t| t.annotations()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Apply congruences: merge tensors with identical provenance & guards,
    /// combining values under the aggregation monoid. Tensors with zero
    /// provenance are dropped (`0 ⊗ m ≡ 0`).
    pub fn simplify(&mut self) {
        if self.tensors.len() <= 1 {
            self.tensors.retain(|t| !t.prov.is_zero());
            return;
        }
        // Group by structural key while preserving first-seen order for
        // deterministic output.
        let mut index: HashMap<(Polynomial, Vec<crate::guard::Guard>), usize> = HashMap::new();
        let mut merged: Vec<Tensor> = Vec::with_capacity(self.tensors.len());
        for t in self.tensors.drain(..) {
            if t.prov.is_zero() {
                continue;
            }
            let key = (t.prov.clone(), t.guards.clone());
            match index.get(&key) {
                Some(&ix) => {
                    let slot = &mut merged[ix];
                    slot.value = slot.value.combine(t.value, self.kind);
                }
                None => {
                    index.insert(key, merged.len());
                    merged.push(t);
                }
            }
        }
        self.tensors = merged;
    }

    /// Apply an annotation mapping and re-simplify.
    pub fn map(&self, h: &Mapping) -> AggExpr {
        AggExpr::from_tensors(self.tensors.iter().map(|t| t.map(h)).collect(), self.kind)
    }

    /// Evaluate under a valuation: fold the values of live tensors; an empty
    /// fold yields the neutral [`AggValue::empty`] (result 0).
    pub fn eval(&self, v: &Valuation) -> AggValue {
        let mut acc = AggValue::empty();
        for t in &self.tensors {
            if t.live(v) {
                acc = acc.combine(t.value, self.kind);
            }
        }
        acc
    }

    /// Number of tensors in the formal sum.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when the formal sum is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    fn rating(user: usize, score: f64) -> Tensor {
        Tensor::new(Polynomial::var(a(user)), AggValue::single(score))
    }

    /// Example 3.1.1: Pₛ = U₁⊗(3,1) ⊕ U₂⊗(5,1) ⊕ U₃⊗(3,1).
    fn p_s() -> AggExpr {
        AggExpr::from_tensors(
            vec![rating(1, 3.0), rating(2, 5.0), rating(3, 3.0)],
            AggKind::Max,
        )
    }

    #[test]
    fn example_3_1_1_female_summary() {
        // Map U1,U2 -> Female (a9): P'ₛ = Female⊗(5,2) ⊕ U₃⊗(3,1).
        let h = Mapping::group(&[a(1), a(2)], a(9));
        let p = p_s().map(&h);
        assert_eq!(p.len(), 2);
        assert_eq!(p.tensors()[0].value, AggValue::new(5.0, 2));
        assert_eq!(p.tensors()[1].value, AggValue::new(3.0, 1));
        assert_eq!(p.size(), 2);
    }

    #[test]
    fn example_3_1_1_audience_summary() {
        // Map U1,U3 -> Audience (a8): P''ₛ = Audience⊗(3,2) ⊕ U₂⊗(5,1).
        let h = Mapping::group(&[a(1), a(3)], a(8));
        let p = p_s().map(&h);
        assert_eq!(p.len(), 2);
        let audience = p
            .tensors()
            .iter()
            .find(|t| t.annotations() == vec![a(8)])
            .unwrap();
        assert_eq!(audience.value, AggValue::new(3.0, 2));
    }

    #[test]
    fn eval_max_with_cancellation() {
        let p = p_s();
        assert_eq!(p.eval(&Valuation::all_true()).result(), 5.0);
        let v = Valuation::cancel(&[a(2)]);
        assert_eq!(p.eval(&v).result(), 3.0);
        let v_all = Valuation::cancel(&[a(1), a(2), a(3)]);
        assert_eq!(p.eval(&v_all).result(), 0.0);
        assert!(p.eval(&v_all).is_empty());
    }

    #[test]
    fn size_decreases_under_merging() {
        let orig = p_s();
        assert_eq!(orig.size(), 3);
        let h = Mapping::group(&[a(1), a(2), a(3)], a(9));
        let merged = orig.map(&h);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.size(), 1);
        assert_eq!(merged.tensors()[0].value, AggValue::new(5.0, 3));
    }

    #[test]
    fn zero_provenance_tensors_are_dropped() {
        let mut e = AggExpr::new(AggKind::Sum);
        e.push(Tensor::new(Polynomial::zero(), AggValue::single(9.0)));
        e.push(rating(1, 2.0));
        e.simplify();
        assert_eq!(e.len(), 1);
        assert_eq!(e.eval(&Valuation::all_true()).result(), 2.0);
    }

    #[test]
    fn sum_aggregation_adds_values_on_merge() {
        let e = AggExpr::from_tensors(vec![rating(1, 2.0), rating(2, 4.0)], AggKind::Sum);
        let h = Mapping::group(&[a(1), a(2)], a(9));
        let merged = e.map(&h);
        assert_eq!(merged.tensors()[0].value, AggValue::new(6.0, 2));
    }
}
