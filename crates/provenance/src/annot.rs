//! Provenance annotations: the basic units of data manipulated by an
//! application (users, tuples, movies, Wikipedia pages, DDP variables, ...).
//!
//! Annotations are interned: the cheap, `Copy` handle [`AnnId`] indexes into
//! an [`crate::store::AnnStore`], which owns names, domains, and the
//! attribute values that drive semantic mapping constraints.

use std::fmt;

/// Handle to an interned annotation inside an [`crate::store::AnnStore`].
///
/// Ordering follows creation order, which the algorithms rely on only for
/// determinism (stable candidate enumeration), never for semantics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AnnId(pub(crate) u32);

impl AnnId {
    /// Raw index of this annotation in its store.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct an id from a raw index. The caller must ensure the index
    /// came from the same store; out-of-range ids panic on first use.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        assert!(ix <= u32::MAX as usize, "annotation index exceeds u32");
        AnnId(ix as u32)
    }
}

impl fmt::Debug for AnnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Handle to an interned annotation domain ("users", "movies", "db_vars", ...).
///
/// Two annotations may only be merged by a summarization mapping when they
/// share a domain — the simplest semantic constraint of §3.2.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub(crate) u16);

impl DomainId {
    /// Raw index of this domain in its store.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Handle to an interned attribute name ("gender", "age_range", ...).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub(crate) u16);

impl AttrId {
    /// Raw index of this attribute in its store.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr{}", self.0)
    }
}

/// Handle to an interned attribute value ("Female", "25-34", ...).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrValueId(pub(crate) u32);

impl AttrValueId {
    /// Raw index of this value in its store.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AttrValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "val{}", self.0)
    }
}

/// How an annotation came to exist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnnKind {
    /// A base annotation from the original provenance (`Ann`).
    Base,
    /// A summary annotation (`Ann'`) created by mapping the listed members
    /// (base annotations, transitively flattened) to a single new name.
    Summary {
        /// Base annotations summarized by this one, in creation order.
        members: Vec<AnnId>,
    },
}

impl AnnKind {
    /// True for summary annotations created during summarization.
    pub fn is_summary(&self) -> bool {
        matches!(self, AnnKind::Summary { .. })
    }
}

/// Full record for one annotation.
#[derive(Clone, Debug)]
pub struct Annotation {
    /// Human-readable name ("UID245", "Female", "wordnet_singer").
    pub name: String,
    /// Domain used for the same-table mapping constraint.
    pub domain: DomainId,
    /// Attribute values of the underlying tuple, sorted by attribute id.
    /// For a summary annotation these are the attributes *shared* by all
    /// members (the values justifying the group's name).
    pub attrs: Vec<(AttrId, AttrValueId)>,
    /// Base vs summary.
    pub kind: AnnKind,
    /// Optional taxonomy concept this annotation is attached to (an index
    /// into an external taxonomy, opaque to this crate).
    pub concept: Option<u32>,
}

impl Annotation {
    /// Value of attribute `attr`, if present.
    pub fn attr(&self, attr: AttrId) -> Option<AttrValueId> {
        self.attrs
            .binary_search_by_key(&attr, |&(a, _)| a)
            .ok()
            .map(|ix| self.attrs[ix].1)
    }

    /// Iterate over the base annotations this annotation stands for: itself
    /// when base, its members when a summary.
    pub fn base_members(&self) -> &[AnnId] {
        match &self.kind {
            AnnKind::Base => &[],
            AnnKind::Summary { members } => members,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ann_id_roundtrip() {
        let id = AnnId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id:?}"), "a42");
    }

    #[test]
    fn attr_lookup_uses_sorted_order() {
        let ann = Annotation {
            name: "u".into(),
            domain: DomainId(0),
            attrs: vec![(AttrId(1), AttrValueId(10)), (AttrId(3), AttrValueId(30))],
            kind: AnnKind::Base,
            concept: None,
        };
        assert_eq!(ann.attr(AttrId(1)), Some(AttrValueId(10)));
        assert_eq!(ann.attr(AttrId(3)), Some(AttrValueId(30)));
        assert_eq!(ann.attr(AttrId(2)), None);
    }

    #[test]
    fn summary_members_are_exposed() {
        let ann = Annotation {
            name: "Female".into(),
            domain: DomainId(0),
            attrs: vec![],
            kind: AnnKind::Summary {
                members: vec![AnnId(0), AnnId(1)],
            },
            concept: None,
        };
        assert!(ann.kind.is_summary());
        assert_eq!(ann.base_members(), &[AnnId(0), AnnId(1)]);
    }
}
