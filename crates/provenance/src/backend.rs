//! Storage backends for provenance expressions.
//!
//! The summarizer consumes a [`ProvExpr`]; where that expression comes
//! from is a backend concern. [`MemoryBackend`] wraps an expression
//! already in memory (the historical behavior, unchanged). The
//! out-of-core segment store in `prox-store` implements the same trait
//! over paged lazy loads, so callers summarize a ten-million-expression
//! store and an in-memory demo workload through one interface.
//!
//! Every traversal takes a [`BudgetSession`]: deadlines, step budgets,
//! and cancel flags propagate into the backend's read loops, and a
//! budget trip surfaces as `Ok(Some(stop))` with whatever was delivered
//! so far — the anytime contract, not an error.

use prox_robust::{BudgetSession, BudgetStop, ProxError};

use crate::annot::AnnId;
use crate::monoid::AggKind;
use crate::provexpr::ProvExpr;
use crate::tensor::Tensor;

/// A source of provenance entries `(object, tensor, multiplicity)`.
pub trait StoreBackend {
    /// Aggregation kind of every expression in the store.
    fn agg_kind(&self) -> AggKind;

    /// Total logical entries (multiplicities included).
    fn logical_len(&self) -> u64;

    /// Stream every logical entry group through `f`. Implementations
    /// poll `session` at least once per delivered entry; on a budget
    /// trip they stop and return `Ok(Some(stop))`.
    fn for_each_entry(
        &mut self,
        session: &mut BudgetSession,
        f: &mut dyn FnMut(AnnId, Tensor, u64) -> Result<(), ProxError>,
    ) -> Result<Option<BudgetStop>, ProxError>;

    /// Materialize the store as one expression, folding multiplicities
    /// into aggregation values via [`crate::AggValue::scaled`]. A budget
    /// trip returns the partial expression (best-so-far).
    fn collect(
        &mut self,
        session: &mut BudgetSession,
    ) -> Result<(ProvExpr, Option<BudgetStop>), ProxError> {
        let kind = self.agg_kind();
        let mut expr = ProvExpr::new(kind);
        let stopped = self.for_each_entry(session, &mut |object, mut tensor, n| {
            tensor.value = tensor.value.scaled(n, kind);
            expr.push(object, tensor);
            Ok(())
        })?;
        Ok((expr, stopped))
    }
}

/// The in-memory backend: a [`ProvExpr`] that already resides in RAM.
pub struct MemoryBackend {
    expr: ProvExpr,
}

impl MemoryBackend {
    /// Wrap an expression already in memory.
    pub fn new(expr: ProvExpr) -> MemoryBackend {
        MemoryBackend { expr }
    }

    /// The wrapped expression.
    pub fn expr(&self) -> &ProvExpr {
        &self.expr
    }

    /// Unwrap the expression.
    pub fn into_expr(self) -> ProvExpr {
        self.expr
    }
}

impl StoreBackend for MemoryBackend {
    fn agg_kind(&self) -> AggKind {
        self.expr.kind()
    }

    fn logical_len(&self) -> u64 {
        self.expr.size() as u64
    }

    fn for_each_entry(
        &mut self,
        session: &mut BudgetSession,
        f: &mut dyn FnMut(AnnId, Tensor, u64) -> Result<(), ProxError>,
    ) -> Result<Option<BudgetStop>, ProxError> {
        for (object, tensor) in self.expr.tensors() {
            if let Err(stop) = session.check() {
                return Ok(Some(stop));
            }
            f(object, tensor.clone(), 1)?;
        }
        Ok(None)
    }

    /// Already in memory: a clone, no streaming fold needed.
    fn collect(
        &mut self,
        _session: &mut BudgetSession,
    ) -> Result<(ProvExpr, Option<BudgetStop>), ProxError> {
        Ok((self.expr.clone(), None))
    }
}
