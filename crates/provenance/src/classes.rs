//! Valuation classes (§5.1, Table 5.1).
//!
//! The distance of Definition 3.2.2 averages over a *set* of valuations
//! `V_Ann` that reflects the intended provenance use. The paper evaluates
//! two classes, both generated here:
//!
//! * **Cancel Single Annotation** — one valuation per annotation, assigning
//!   it `false` and everything else `true` (a single suspected spammer).
//! * **Cancel Single Attribute** — one valuation per attribute value,
//!   cancelling every annotation sharing it (e.g. all Male users).
//!
//! Taxonomy-consistent filtering of these classes lives in `prox-taxonomy`.

use crate::annot::{AnnId, DomainId};
use crate::store::AnnStore;
use crate::valuation::Valuation;

/// Which valuation class to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValuationClass {
    /// Cancel one annotation per valuation.
    CancelSingleAnnotation,
    /// Cancel all annotations sharing one attribute value per valuation.
    CancelSingleAttribute,
}

impl ValuationClass {
    /// Human-readable name matching the paper's UI.
    pub fn name(self) -> &'static str {
        match self {
            ValuationClass::CancelSingleAnnotation => "Cancel Single Annotation",
            ValuationClass::CancelSingleAttribute => "Cancel Single Attribute",
        }
    }

    /// Generate the class over the given base annotations.
    ///
    /// `domains`, when non-empty, restricts which annotations may be
    /// cancelled (e.g. only user annotations for the MovieLens use case).
    pub fn generate(
        self,
        store: &AnnStore,
        anns: &[AnnId],
        domains: &[DomainId],
    ) -> Vec<Valuation> {
        let eligible: Vec<AnnId> = anns
            .iter()
            .copied()
            .filter(|&a| domains.is_empty() || domains.contains(&store.get(a).domain))
            .collect();
        match self {
            ValuationClass::CancelSingleAnnotation => eligible
                .iter()
                .map(|&a| Valuation::cancel(&[a]).labeled(format!("cancel {}", store.name(a))))
                .collect(),
            ValuationClass::CancelSingleAttribute => {
                // Collect distinct (attr, value) pairs in first-seen order
                // for determinism.
                let mut pairs: Vec<(crate::annot::AttrId, crate::annot::AttrValueId)> = Vec::new();
                for &a in &eligible {
                    for &(attr, val) in &store.get(a).attrs {
                        if !pairs.contains(&(attr, val)) {
                            pairs.push((attr, val));
                        }
                    }
                }
                pairs
                    .into_iter()
                    .map(|(attr, val)| {
                        let cancelled: Vec<AnnId> = eligible
                            .iter()
                            .copied()
                            .filter(|&a| store.get(a).attr(attr) == Some(val))
                            .collect();
                        Valuation::cancel(&cancelled).labeled(format!(
                            "cancel {}={}",
                            store.attr_name(attr),
                            store.value_name(val)
                        ))
                    })
                    .collect()
            }
        }
    }
}

/// Check that no valuation in the set is "contradictory" in the sense of
/// Prop 4.2.1's precondition: here, that every valuation assigns each
/// annotation exactly one value (guaranteed by construction) and that the
/// set is non-empty for equivalence grouping to be meaningful.
pub fn validate_class(valuations: &[Valuation]) -> Result<(), prox_robust::ProxError> {
    if valuations.is_empty() {
        return Err(prox_robust::ProxError::config("empty valuation class"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_users() -> (AnnStore, Vec<AnnId>) {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F"), ("age", "18-24")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "F"), ("age", "25-34")]);
        let u3 = s.add_base_with("U3", "users", &[("gender", "M"), ("age", "25-34")]);
        (s, vec![u1, u2, u3])
    }

    #[test]
    fn cancel_single_annotation_one_per_ann() {
        let (s, anns) = store_with_users();
        let vs = ValuationClass::CancelSingleAnnotation.generate(&s, &anns, &[]);
        assert_eq!(vs.len(), 3);
        for (ix, v) in vs.iter().enumerate() {
            for (jx, &a) in anns.iter().enumerate() {
                assert_eq!(v.truth(a), ix != jx);
            }
        }
    }

    #[test]
    fn cancel_single_attribute_groups_by_value() {
        let (s, anns) = store_with_users();
        let vs = ValuationClass::CancelSingleAttribute.generate(&s, &anns, &[]);
        // Distinct pairs: gender=F, age=18-24, age=25-34, gender=M  → 4
        assert_eq!(vs.len(), 4);
        let cancel_f = vs
            .iter()
            .find(|v| v.label.as_deref() == Some("cancel gender=F"))
            .unwrap();
        assert!(!cancel_f.truth(anns[0]));
        assert!(!cancel_f.truth(anns[1]));
        assert!(cancel_f.truth(anns[2]));
    }

    #[test]
    fn domain_filter_restricts_eligibility() {
        let (mut s, mut anns) = store_with_users();
        let m = s.add_base_with("M1", "movies", &[("year", "1995")]);
        anns.push(m);
        let users = s.domain("users");
        let vs = ValuationClass::CancelSingleAnnotation.generate(&s, &anns, &[users]);
        assert_eq!(vs.len(), 3, "movie annotation not eligible");
    }

    #[test]
    fn validate_rejects_empty() {
        assert!(validate_class(&[]).is_err());
        assert!(validate_class(&[Valuation::all_true()]).is_ok());
    }
}
