//! Data-Dependent Process (DDP) provenance (Example 5.2.2, \[17\]).
//!
//! A DDP models an application driven by a finite state machine *and* the
//! state of an underlying database. Its provenance is a sum over executions,
//! each a product of transitions:
//!
//! * user-dependent transitions `⟨c_k, 1⟩` carrying a cost (the user's
//!   effort), and
//! * database-dependent transitions `⟨0, [dᵢ·dⱼ] ≠ 0⟩` / `⟨0, [dᵢ·dⱼ] = 0⟩`
//!   conditioning on DB tuples being present/absent.
//!
//! Evaluation combines the tropical semiring `(ℕ^∞, min, +, ∞, 0)` over
//! costs with boolean satisfaction of the DB conditions: the outcome is
//! `⟨min feasible cost, true⟩`, or `⟨·, false⟩` when no execution is
//! feasible.

use std::collections::BTreeMap;

use crate::annot::AnnId;
use crate::eval::EvalOutcome;
use crate::mapping::Mapping;
use crate::semiring::{Semiring, Tropical};
use crate::valuation::Valuation;

/// Polarity of a database condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DbCondOp {
    /// `[dᵢ·dⱼ] ≠ 0` — all referenced tuples must be present.
    NonZero,
    /// `[dᵢ·dⱼ] = 0` — at least one referenced tuple must be absent.
    Zero,
}

impl DbCondOp {
    /// Symbol for rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            DbCondOp::NonZero => "≠ 0",
            DbCondOp::Zero => "= 0",
        }
    }
}

/// One transition of an execution.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum DdpTransition {
    /// `⟨c_k, 1⟩`: a user choice with an associated cost variable.
    User {
        /// The cost variable annotation.
        cost_var: AnnId,
    },
    /// `⟨0, [∏ d] op 0⟩`: a database-dependent transition.
    Db {
        /// DB variable annotations whose product is conditioned on
        /// (kept sorted for structural comparison).
        vars: Vec<AnnId>,
        /// The condition polarity.
        op: DbCondOp,
    },
}

impl DdpTransition {
    /// Build a DB transition, sorting variables.
    pub fn db(mut vars: Vec<AnnId>, op: DbCondOp) -> Self {
        vars.sort_unstable();
        DdpTransition::Db { vars, op }
    }

    /// Build a user transition.
    pub fn user(cost_var: AnnId) -> Self {
        DdpTransition::User { cost_var }
    }

    /// Number of variable occurrences (contribution to provenance size).
    pub fn size(&self) -> usize {
        match self {
            DdpTransition::User { .. } => 1,
            DdpTransition::Db { vars, .. } => vars.len(),
        }
    }

    fn map(&self, h: &Mapping) -> DdpTransition {
        match self {
            DdpTransition::User { cost_var } => DdpTransition::user(h.image(*cost_var)),
            DdpTransition::Db { vars, op } => {
                let mut mapped: Vec<AnnId> = vars.iter().map(|&d| h.image(d)).collect();
                mapped.sort_unstable();
                // Within a boolean condition, a squared variable is the
                // variable itself: D·D ≡ D.
                mapped.dedup();
                DdpTransition::Db {
                    vars: mapped,
                    op: *op,
                }
            }
        }
    }
}

/// A single execution: a product of transitions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DdpExecution {
    /// The transitions, in FSM order.
    pub transitions: Vec<DdpTransition>,
}

impl DdpExecution {
    /// Build from transitions.
    pub fn new(transitions: Vec<DdpTransition>) -> Self {
        DdpExecution { transitions }
    }

    /// Variable occurrences.
    pub fn size(&self) -> usize {
        self.transitions.iter().map(DdpTransition::size).sum()
    }

    /// Structural key for execution deduplication: transitions compared as
    /// a multiset (the `·` product is commutative).
    fn dedup_key(&self) -> Vec<DdpTransition> {
        let mut key = self.transitions.clone();
        key.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        key
    }
}

/// A DDP provenance expression: a sum over executions, with a cost table
/// for cost variables.
#[derive(Clone, Debug, PartialEq)]
pub struct DdpExpr {
    pub(crate) executions: Vec<DdpExecution>,
    /// Cost value carried by each cost variable.
    pub(crate) costs: BTreeMap<AnnId, f64>,
    /// Maximum cost of a single transition (paper: 10) — used by the
    /// mismatch penalty of the DDP VAL-FUNC.
    pub max_cost_per_transition: f64,
    /// Maximum number of transitions per execution (paper: 5).
    pub max_transitions_per_execution: usize,
}

impl DdpExpr {
    /// Empty DDP expression with the paper's error-bound constants.
    pub fn new() -> Self {
        DdpExpr {
            executions: Vec::new(),
            costs: BTreeMap::new(),
            max_cost_per_transition: 10.0,
            max_transitions_per_execution: 5,
        }
    }

    /// Register a cost variable's cost.
    pub fn set_cost(&mut self, var: AnnId, cost: f64) {
        self.costs.insert(var, cost);
    }

    /// Cost of a cost variable (0 when unregistered).
    pub fn cost_of(&self, var: AnnId) -> f64 {
        self.costs.get(&var).copied().unwrap_or(0.0)
    }

    /// Add an execution.
    pub fn push(&mut self, execution: DdpExecution) {
        self.executions.push(execution);
    }

    /// The executions of the sum.
    pub fn executions(&self) -> &[DdpExecution] {
        &self.executions
    }

    /// Variable occurrences across all executions.
    pub fn size(&self) -> usize {
        self.executions.iter().map(DdpExecution::size).sum()
    }

    /// Distinct variables mentioned.
    pub fn annotations(&self) -> Vec<AnnId> {
        let mut out = Vec::new();
        for e in &self.executions {
            for t in &e.transitions {
                match t {
                    DdpTransition::User { cost_var } => out.push(*cost_var),
                    DdpTransition::Db { vars, .. } => out.extend_from_slice(vars),
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The maximum possible VAL-FUNC error for this structure: the paper's
    /// "maximum cost per single transition multiplied by the number of
    /// transitions per execution".
    pub fn max_error(&self) -> f64 {
        self.max_cost_per_transition * self.max_transitions_per_execution as f64
    }

    /// Apply a mapping. Merged cost variables take the MAX of their
    /// members' costs (transitions "have more or less the same cost");
    /// identical executions after mapping are deduplicated, which is how
    /// summaries shrink (Example 5.2.2).
    pub fn map(&self, h: &Mapping) -> DdpExpr {
        let mut out = DdpExpr {
            executions: Vec::with_capacity(self.executions.len()),
            costs: BTreeMap::new(),
            max_cost_per_transition: self.max_cost_per_transition,
            max_transitions_per_execution: self.max_transitions_per_execution,
        };
        for (&var, &cost) in &self.costs {
            let target = h.image(var);
            let slot = out.costs.entry(target).or_insert(cost);
            *slot = slot.max(cost);
        }
        let mut seen: Vec<Vec<DdpTransition>> = Vec::new();
        for e in &self.executions {
            let mapped = DdpExecution::new(e.transitions.iter().map(|t| t.map(h)).collect());
            let key = mapped.dedup_key();
            if !seen.contains(&key) {
                seen.push(key);
                out.executions.push(mapped);
            }
        }
        out
    }

    /// Evaluate under a valuation: DB variables read their truth value; a
    /// cost variable assigned `false` contributes 0 (its transition is
    /// "free"), assigned `true` contributes its registered cost. The result
    /// is the tropical sum over feasible executions.
    pub fn eval(&self, v: &Valuation) -> EvalOutcome {
        let mut best = Tropical::Infinity;
        for e in &self.executions {
            let mut feasible = true;
            let mut cost = 0.0f64;
            for t in &e.transitions {
                match t {
                    DdpTransition::User { cost_var } => {
                        if v.truth(*cost_var) {
                            cost += self.cost_of(*cost_var);
                        }
                    }
                    DdpTransition::Db { vars, op } => {
                        let all_present = vars.iter().all(|&d| v.truth(d));
                        let holds = match op {
                            DbCondOp::NonZero => all_present,
                            DbCondOp::Zero => !all_present,
                        };
                        if !holds {
                            feasible = false;
                            break;
                        }
                    }
                }
            }
            if feasible {
                best = best.add(&Tropical::Cost(cost));
            }
        }
        EvalOutcome::Ddp { cost: best.cost() }
    }
}

impl Default for DdpExpr {
    fn default() -> Self {
        DdpExpr::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    /// Example 5.2.2's expression:
    /// `⟨c₁,1⟩·⟨0,[d₁·d₂]≠0⟩ + ⟨0,[d₂·d₃]=0⟩·⟨c₂,1⟩`
    /// with c1=a0, c2=a1, d1=a2, d2=a3, d3=a4.
    fn example() -> DdpExpr {
        let mut p = DdpExpr::new();
        p.set_cost(a(0), 3.0);
        p.set_cost(a(1), 3.0);
        p.push(DdpExecution::new(vec![
            DdpTransition::user(a(0)),
            DdpTransition::db(vec![a(2), a(3)], DbCondOp::NonZero),
        ]));
        p.push(DdpExecution::new(vec![
            DdpTransition::db(vec![a(3), a(4)], DbCondOp::Zero),
            DdpTransition::user(a(1)),
        ]));
        p
    }

    #[test]
    fn example_5_2_2_valuation() {
        // Cancel both cost variables, all DB vars true:
        // exec 1 feasible with cost 0; exec 2 infeasible ([d2·d3]=0 fails).
        let p = example();
        let v = Valuation::cancel(&[a(0), a(1)]);
        assert_eq!(p.eval(&v), EvalOutcome::Ddp { cost: Some(0.0) });
    }

    #[test]
    fn infeasible_when_no_execution_satisfiable() {
        let p = example();
        // d1 false kills exec 1 ([d1·d2]≠0 fails); d2,d3 both true kill
        // exec 2 ([d2·d3]=0 fails) — no feasible execution remains.
        let v = Valuation::cancel(&[a(2)]);
        assert_eq!(p.eval(&v), EvalOutcome::Ddp { cost: None });
        // Cancelling d3 as well revives exec 2 (its product is now 0),
        // which costs c2 = 3.
        let v2 = Valuation::cancel(&[a(2), a(4)]);
        assert_eq!(p.eval(&v2), EvalOutcome::Ddp { cost: Some(3.0) });
    }

    #[test]
    fn tropical_min_over_feasible_executions() {
        let mut p = DdpExpr::new();
        p.set_cost(a(0), 7.0);
        p.set_cost(a(1), 2.0);
        p.push(DdpExecution::new(vec![DdpTransition::user(a(0))]));
        p.push(DdpExecution::new(vec![DdpTransition::user(a(1))]));
        assert_eq!(
            p.eval(&Valuation::all_true()),
            EvalOutcome::Ddp { cost: Some(2.0) }
        );
    }

    #[test]
    fn example_5_2_2_summary_dedups_executions() {
        // Map d1,d3 → D1 (a10) and c1,c2 → C1 (a11). With both conditions
        // NonZero the two executions become identical and deduplicate.
        let mut p = DdpExpr::new();
        p.set_cost(a(0), 3.0);
        p.set_cost(a(1), 4.0);
        p.push(DdpExecution::new(vec![
            DdpTransition::user(a(0)),
            DdpTransition::db(vec![a(2), a(3)], DbCondOp::NonZero),
        ]));
        p.push(DdpExecution::new(vec![
            DdpTransition::db(vec![a(3), a(4)], DbCondOp::NonZero),
            DdpTransition::user(a(1)),
        ]));
        let mut h = Mapping::identity();
        h.set(a(2), a(10));
        h.set(a(4), a(10));
        h.set(a(0), a(11));
        h.set(a(1), a(11));
        let summary = p.map(&h);
        assert_eq!(summary.executions().len(), 1);
        assert_eq!(summary.size(), 3); // C1 + D1·d2
        assert_eq!(summary.cost_of(a(11)), 4.0, "merged cost takes MAX");
    }

    #[test]
    fn squared_db_var_collapses() {
        let mut p = DdpExpr::new();
        p.push(DdpExecution::new(vec![DdpTransition::db(
            vec![a(2), a(4)],
            DbCondOp::NonZero,
        )]));
        let mut h = Mapping::identity();
        h.set(a(2), a(10));
        h.set(a(4), a(10));
        let m = p.map(&h);
        assert_eq!(m.size(), 1, "D·D ≡ D inside a boolean condition");
    }

    #[test]
    fn size_and_annotations() {
        let p = example();
        assert_eq!(p.size(), 6);
        assert_eq!(p.annotations(), vec![a(0), a(1), a(2), a(3), a(4)]);
        assert_eq!(p.max_error(), 50.0);
    }
}
