//! Paper-style rendering of provenance expressions.
//!
//! Expressions print with real annotation names resolved through an
//! [`AnnStore`], in the thesis's notation:
//! `(UID245·Friday·1995) ⊗ (5, 1) ⊕ …` and
//! `⟨c1,1⟩·⟨0,[d1·d2] ≠ 0⟩ + …`.

use crate::aggexpr::AggExpr;
use crate::ddp::{DdpExpr, DdpTransition};
use crate::guard::Guard;
use crate::provexpr::ProvExpr;
use crate::store::AnnStore;
use crate::tensor::Tensor;

/// Render a tensor: `prov · [guards] ⊗ (value, count)`.
pub fn render_tensor(t: &Tensor, store: &AnnStore) -> String {
    let name = |a: crate::annot::AnnId| store.name(a).to_owned();
    let mut prov = t.prov.render(&name);
    let needs_parens =
        t.prov.terms().len() > 1 || t.prov.terms().first().is_some_and(|(m, _)| m.degree() > 1);
    if needs_parens {
        prov = format!("({prov})");
    }
    let guards: String = t
        .guards
        .iter()
        .map(|g| format!(" · {}", render_guard(g, store)))
        .collect();
    format!("{prov}{guards} ⊗ {}", t.value)
}

/// Render a guard: `[prov ⊗ w  op  rhs]`.
pub fn render_guard(g: &Guard, store: &AnnStore) -> String {
    let name = |a: crate::annot::AnnId| store.name(a).to_owned();
    let lhs = g
        .lhs
        .iter()
        .map(|(p, w)| format!("{} ⊗ {}", p.render(&name), w))
        .collect::<Vec<_>>()
        .join(" ⊕ ");
    format!("[{lhs} {} {}]", g.op, g.rhs)
}

/// Render an aggregated expression: tensors joined by `⊕`.
pub fn render_aggexpr(e: &AggExpr, store: &AnnStore) -> String {
    if e.is_empty() {
        return "0".to_owned();
    }
    e.tensors()
        .iter()
        .map(|t| render_tensor(t, store))
        .collect::<Vec<_>>()
        .join(" ⊕ ")
}

/// Render a full object-keyed expression, coordinates joined by `⊕_M`.
pub fn render_provexpr(p: &ProvExpr, store: &AnnStore) -> String {
    if p.entries().is_empty() {
        return "0".to_owned();
    }
    p.entries()
        .iter()
        .map(|(_, e)| render_aggexpr(e, store))
        .collect::<Vec<_>>()
        .join(" ⊕M ")
}

/// Render a DDP expression: executions joined by `+`.
pub fn render_ddp(p: &DdpExpr, store: &AnnStore) -> String {
    if p.executions().is_empty() {
        return "0".to_owned();
    }
    p.executions()
        .iter()
        .map(|e| {
            e.transitions
                .iter()
                .map(|t| match t {
                    DdpTransition::User { cost_var } => {
                        format!("⟨{},1⟩", store.name(*cost_var))
                    }
                    DdpTransition::Db { vars, op } => {
                        let prod = vars
                            .iter()
                            .map(|&d| store.name(d).to_owned())
                            .collect::<Vec<_>>()
                            .join("·");
                        format!("⟨0,[{prod}] {}⟩", op.symbol())
                    }
                })
                .collect::<Vec<_>>()
                .join("·")
        })
        .collect::<Vec<_>>()
        .join(" + ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddp::{DbCondOp, DdpExecution};
    use crate::monoid::{AggKind, AggValue};
    use crate::polynomial::Polynomial;

    #[test]
    fn renders_movie_tensor_in_paper_notation() {
        let mut s = AnnStore::new();
        let u = s.add_base_with("UID245", "users", &[]);
        let m = s.add_base_with("Friday", "movies", &[]);
        let y = s.add_base_with("Y1995", "years", &[]);
        let prov = Polynomial::var(u)
            .mul(&Polynomial::var(m))
            .mul(&Polynomial::var(y));
        let t = Tensor::new(prov, AggValue::single(5.0));
        // Factors sort by annotation id (creation order here).
        assert_eq!(render_tensor(&t, &s), "(UID245·Friday·Y1995) ⊗ (5, 1)");
    }

    #[test]
    fn renders_aggexpr_with_oplus() {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[]);
        let u2 = s.add_base_with("U2", "users", &[]);
        let e = AggExpr::from_tensors(
            vec![
                Tensor::new(Polynomial::var(u1), AggValue::single(3.0)),
                Tensor::new(Polynomial::var(u2), AggValue::single(5.0)),
            ],
            AggKind::Max,
        );
        assert_eq!(render_aggexpr(&e, &s), "U1 ⊗ (3, 1) ⊕ U2 ⊗ (5, 1)");
    }

    #[test]
    fn renders_ddp_in_angle_notation() {
        let mut s = AnnStore::new();
        let c1 = s.add_base_with("c1", "cost_vars", &[]);
        let d1 = s.add_base_with("d1", "db_vars", &[]);
        let d2 = s.add_base_with("d2", "db_vars", &[]);
        let mut p = DdpExpr::new();
        p.set_cost(c1, 3.0);
        p.push(DdpExecution::new(vec![
            DdpTransition::user(c1),
            DdpTransition::db(vec![d1, d2], DbCondOp::NonZero),
        ]));
        assert_eq!(render_ddp(&p, &s), "⟨c1,1⟩·⟨0,[d1·d2] ≠ 0⟩");
    }

    #[test]
    fn empty_expressions_render_zero() {
        let s = AnnStore::new();
        assert_eq!(render_aggexpr(&AggExpr::new(AggKind::Max), &s), "0");
        assert_eq!(render_provexpr(&ProvExpr::new(AggKind::Max), &s), "0");
        assert_eq!(render_ddp(&DdpExpr::new(), &s), "0");
    }
}
