//! Evaluation outcomes and the key projection used to compare vectors of
//! different dimensionality (Example 5.2.1).
//!
//! Evaluating an original provenance and its summary may produce vectors
//! over different object keys (pages vs WordNet concepts). Before a
//! euclidean comparison the original vector is *projected* into the summary
//! key space: coordinates whose object maps to the same summary key combine
//! under the aggregation function.

use std::collections::HashMap;

use crate::annot::AnnId;
use crate::mapping::Mapping;
use crate::monoid::{AggKind, AggValue};

/// A coordinate vector resulting from evaluating a [`crate::ProvExpr`].
#[derive(Clone, Debug, PartialEq)]
pub struct EvalVector {
    coords: Vec<(AnnId, AggValue)>,
    kind: AggKind,
}

impl EvalVector {
    /// Build from raw coordinates.
    pub fn new(coords: Vec<(AnnId, AggValue)>, kind: AggKind) -> Self {
        EvalVector { coords, kind }
    }

    /// The coordinates in expression order.
    pub fn coords(&self) -> &[(AnnId, AggValue)] {
        &self.coords
    }

    /// The scalar value at an object key, if present.
    pub fn scalar_for(&self, object: AnnId) -> Option<f64> {
        self.coords
            .iter()
            .find(|(o, _)| *o == object)
            .map(|(_, v)| v.result())
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Project into a summary key space: each coordinate's key is mapped
    /// through `h` and colliding coordinates combine under the aggregation
    /// function, mirroring how the summary itself was formed.
    pub fn project(&self, h: &Mapping) -> EvalVector {
        let mut index: HashMap<AnnId, usize> = HashMap::new();
        let mut coords: Vec<(AnnId, AggValue)> = Vec::with_capacity(self.coords.len());
        for &(o, v) in &self.coords {
            let key = h.image(o);
            match index.get(&key) {
                Some(&ix) => {
                    coords[ix].1 = coords[ix].1.combine(v, self.kind);
                }
                None => {
                    index.insert(key, coords.len());
                    coords.push((key, v));
                }
            }
        }
        EvalVector {
            coords,
            kind: self.kind,
        }
    }

    /// Euclidean distance to another vector, aligning coordinates by key.
    /// Keys present on one side only contribute their full magnitude (the
    /// other side reads as 0).
    pub fn euclidean(&self, other: &EvalVector) -> f64 {
        let mut acc = 0.0f64;
        let theirs: HashMap<AnnId, f64> =
            other.coords.iter().map(|&(o, v)| (o, v.result())).collect();
        let mut seen: Vec<AnnId> = Vec::with_capacity(self.coords.len());
        for &(o, v) in &self.coords {
            let d = v.result() - theirs.get(&o).copied().unwrap_or(0.0);
            acc += d * d;
            seen.push(o);
        }
        for &(o, v) in &other.coords {
            if !seen.contains(&o) {
                acc += v.result() * v.result();
            }
        }
        acc.sqrt()
    }

    /// Sum of absolute per-coordinate values — used to bound the maximum
    /// possible error when normalizing distances.
    pub fn magnitude(&self) -> f64 {
        self.coords.iter().map(|(_, v)| v.result().abs()).sum()
    }
}

/// The outcome of evaluating any summarizable expression under a valuation.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalOutcome {
    /// A single aggregated value.
    Scalar(f64),
    /// One aggregated value per object.
    Vector(EvalVector),
    /// A DDP outcome: best execution cost if any execution is feasible.
    Ddp {
        /// Minimum cost over feasible executions.
        cost: Option<f64>,
    },
}

impl EvalOutcome {
    /// Collapse to a scalar where that makes sense (absolute-difference
    /// VAL-FUNCs). Vectors collapse to their first coordinate only when
    /// one-dimensional; DDP outcomes report their cost or 0.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            EvalOutcome::Scalar(x) => Some(*x),
            EvalOutcome::Vector(v) if v.dim() == 1 => Some(v.coords()[0].1.result()),
            EvalOutcome::Vector(_) => None,
            EvalOutcome::Ddp { cost } => Some(cost.unwrap_or(0.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    fn vec_of(kind: AggKind, items: &[(usize, f64, u64)]) -> EvalVector {
        EvalVector::new(
            items
                .iter()
                .map(|&(o, v, c)| (a(o), AggValue::new(v, c)))
                .collect(),
            kind,
        )
    }

    #[test]
    fn example_5_2_1_projection() {
        // Original per-page vector (Adele:0, CelineDion:0, LoriBlack:1,
        // AlecBaillie:1) with pages {1,2}→singer(10), {3,4}→guitarist(11),
        // SUM aggregation ⇒ (guitarist:2, singer:0).
        let orig = vec_of(
            AggKind::Sum,
            &[(1, 0.0, 0), (2, 0.0, 0), (3, 1.0, 1), (4, 1.0, 1)],
        );
        let mut h = Mapping::identity();
        for p in [1, 2] {
            h.set(a(p), a(10));
        }
        for p in [3, 4] {
            h.set(a(p), a(11));
        }
        let projected = orig.project(&h);
        assert_eq!(projected.dim(), 2);
        assert_eq!(projected.scalar_for(a(10)), Some(0.0));
        assert_eq!(projected.scalar_for(a(11)), Some(2.0));
    }

    #[test]
    fn euclidean_aligns_by_key() {
        let x = vec_of(AggKind::Max, &[(1, 3.0, 1), (2, 4.0, 1)]);
        let y = vec_of(AggKind::Max, &[(2, 4.0, 1), (1, 0.0, 0)]);
        assert!((x.euclidean(&y) - 3.0).abs() < 1e-12);
        assert_eq!(x.euclidean(&x), 0.0);
    }

    #[test]
    fn euclidean_counts_one_sided_keys() {
        let x = vec_of(AggKind::Max, &[(1, 3.0, 1)]);
        let y = vec_of(AggKind::Max, &[(2, 4.0, 1)]);
        assert!((x.euclidean(&y) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_collapse() {
        assert_eq!(EvalOutcome::Scalar(2.5).as_scalar(), Some(2.5));
        let v1 = vec_of(AggKind::Max, &[(1, 3.0, 1)]);
        assert_eq!(EvalOutcome::Vector(v1).as_scalar(), Some(3.0));
        let v2 = vec_of(AggKind::Max, &[(1, 3.0, 1), (2, 1.0, 1)]);
        assert_eq!(EvalOutcome::Vector(v2).as_scalar(), None);
        assert_eq!(EvalOutcome::Ddp { cost: Some(4.0) }.as_scalar(), Some(4.0));
        assert_eq!(EvalOutcome::Ddp { cost: None }.as_scalar(), Some(0.0));
    }

    #[test]
    fn magnitude_sums_absolute_coordinates() {
        let x = vec_of(AggKind::Sum, &[(1, 3.0, 1), (2, 4.0, 2)]);
        assert_eq!(x.magnitude(), 7.0);
    }
}
