//! The [`Summarizable`] abstraction: everything the summarization algorithm
//! needs from a provenance expression, implemented by both the aggregated
//! vector provenance ([`ProvExpr`]) and DDP provenance ([`DdpExpr`]).

use crate::annot::AnnId;
use crate::ddp::DdpExpr;
use crate::eval::EvalOutcome;
use crate::mapping::Mapping;
use crate::provexpr::ProvExpr;
use crate::valuation::Valuation;

/// A provenance expression that can be summarized by annotation mappings.
pub trait Summarizable: Clone {
    /// Provenance size: annotation occurrences, with repetitions
    /// (the quantity minimized by summarization).
    fn size(&self) -> usize;

    /// Distinct annotations mentioned.
    fn annotations(&self) -> Vec<AnnId>;

    /// Apply a mapping homomorphically and simplify.
    fn apply_mapping(&self, h: &Mapping) -> Self;

    /// Evaluate under a valuation.
    fn evaluate(&self, v: &Valuation) -> EvalOutcome;

    /// The largest value the chosen VAL-FUNC can take on this expression,
    /// used to normalize distances into `[0,1]` (§6.3). Implementations
    /// return a structural upper bound (e.g. magnitude of the all-true
    /// evaluation for aggregates, the cost-mismatch constant for DDPs).
    fn max_error(&self) -> f64;
}

impl Summarizable for ProvExpr {
    fn size(&self) -> usize {
        ProvExpr::size(self)
    }

    fn annotations(&self) -> Vec<AnnId> {
        ProvExpr::annotations(self)
    }

    fn apply_mapping(&self, h: &Mapping) -> Self {
        self.map(h)
    }

    fn evaluate(&self, v: &Valuation) -> EvalOutcome {
        EvalOutcome::Vector(self.eval(v))
    }

    fn max_error(&self) -> f64 {
        // Aggregate values are non-negative and, under φ = ∨ with MAX/SUM,
        // each coordinate's error is bounded by its full (all-true) value —
        // so the L2 norm of the all-true evaluation bounds the euclidean
        // VAL-FUNC and is the natural normalizer (§6.3).
        let full = self.eval(&Valuation::all_true());
        let l2 = full
            .coords()
            .iter()
            .map(|(_, v)| v.result() * v.result())
            .sum::<f64>()
            .sqrt();
        if l2 > 0.0 {
            l2
        } else {
            1.0
        }
    }
}

impl Summarizable for DdpExpr {
    fn size(&self) -> usize {
        DdpExpr::size(self)
    }

    fn annotations(&self) -> Vec<AnnId> {
        DdpExpr::annotations(self)
    }

    fn apply_mapping(&self, h: &Mapping) -> Self {
        self.map(h)
    }

    fn evaluate(&self, v: &Valuation) -> EvalOutcome {
        self.eval(v)
    }

    fn max_error(&self) -> f64 {
        DdpExpr::max_error(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::{AggKind, AggValue};
    use crate::polynomial::Polynomial;
    use crate::tensor::Tensor;

    #[test]
    fn provexpr_summarizable_roundtrip() {
        let a0 = AnnId::from_index(0);
        let a1 = AnnId::from_index(1);
        let obj = AnnId::from_index(10);
        let mut p = ProvExpr::new(AggKind::Max);
        p.push(obj, Tensor::new(Polynomial::var(a0), AggValue::single(3.0)));
        p.push(obj, Tensor::new(Polynomial::var(a1), AggValue::single(5.0)));

        assert_eq!(Summarizable::size(&p), 2);
        assert!(Summarizable::annotations(&p).contains(&obj));
        let g = AnnId::from_index(20);
        let mapped = p.apply_mapping(&Mapping::group(&[a0, a1], g));
        assert_eq!(Summarizable::size(&mapped), 1);
        match mapped.evaluate(&Valuation::all_true()) {
            EvalOutcome::Vector(v) => assert_eq!(v.scalar_for(obj), Some(5.0)),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(Summarizable::max_error(&p), 5.0);
    }

    #[test]
    fn max_error_floor_is_one() {
        let p = ProvExpr::new(AggKind::Max);
        assert_eq!(Summarizable::max_error(&p), 1.0);
    }
}
