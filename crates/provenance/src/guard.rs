//! Comparison guards: equation/inequality elements of [7, 17] (§2.2).
//!
//! An expression such as `[S₁·U₁ ⊗ 5 > 2]` is kept as an abstract token and
//! multiplied into tensor provenance as a conditional. Under a concrete
//! valuation, the tensor sum on the left-hand side collapses to a number
//! (`0⊗m ≡ 0`, `1⊗m ≡ m` — more generally a counting evaluation of the
//! provenance times the value), the comparison is tested, and the guard
//! becomes 1 (satisfied) or 0 (not).

use std::fmt;

use crate::mapping::Mapping;
use crate::polynomial::Polynomial;
use crate::valuation::Valuation;

/// Comparison operators allowed in guards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `>`
    Gt,
    /// `≥`
    Ge,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≠`
    Ne,
}

impl CmpOp {
    /// Test the comparison on concrete numbers.
    #[inline]
    pub fn test(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Eq => (lhs - rhs).abs() < f64::EPSILON,
            CmpOp::Ne => (lhs - rhs).abs() >= f64::EPSILON,
        }
    }

    /// Symbol for rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A guard `[ Σᵢ pᵢ ⊗ wᵢ  cmp  threshold ]`.
///
/// The left-hand side is a formal sum of provenance-weighted tensors; each
/// `pᵢ` evaluates to a count under the valuation and contributes
/// `count · wᵢ` to the compared value.
#[derive(Clone, Debug, PartialEq)]
pub struct Guard {
    /// `(provenance, weight)` tensors on the left-hand side.
    pub lhs: Vec<(Polynomial, f64)>,
    /// The comparison operator.
    pub op: CmpOp,
    /// The right-hand constant.
    pub rhs: f64,
}

impl Guard {
    /// Guard over a single tensor, e.g. `[p ⊗ w > t]`.
    pub fn single(p: Polynomial, w: f64, op: CmpOp, rhs: f64) -> Self {
        Guard {
            lhs: vec![(p, w)],
            op,
            rhs,
        }
    }

    /// Evaluate the guard under a valuation.
    pub fn eval(&self, v: &Valuation) -> bool {
        let lhs: f64 = self
            .lhs
            .iter()
            .map(|(p, w)| p.eval_count(v) as f64 * w)
            .sum();
        self.op.test(lhs, self.rhs)
    }

    /// Apply an annotation mapping to the embedded provenance.
    pub fn map(&self, h: &Mapping) -> Guard {
        Guard {
            lhs: self.lhs.iter().map(|(p, w)| (p.map(h), *w)).collect(),
            op: self.op,
            rhs: self.rhs,
        }
    }

    /// Annotation occurrences inside the guard (counts toward provenance
    /// size).
    pub fn size(&self) -> usize {
        self.lhs.iter().map(|(p, _)| p.size()).sum()
    }

    /// Distinct annotations mentioned by the guard.
    pub fn annotations(&self) -> Vec<crate::annot::AnnId> {
        let mut out: Vec<_> = self.lhs.iter().flat_map(|(p, _)| p.annotations()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

// Guards participate in HashMap keys during congruence simplification.
// They contain f64 weights, so we hash/compare their bit patterns: guards
// are only compared for *structural identity* (same bits in = same guard),
// never for numeric equivalence, and no constructor admits NaN-producing
// arithmetic, so reflexivity holds in practice.
impl Eq for Guard {}

impl std::hash::Hash for Guard {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for (p, w) in &self.lhs {
            p.terms().len().hash(state);
            for (m, c) in p.terms() {
                m.factors().hash(state);
                c.hash(state);
            }
            w.to_bits().hash(state);
        }
        self.op.hash(state);
        self.rhs.to_bits().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annot::AnnId;

    fn a(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    #[test]
    fn cmp_ops_test_correctly() {
        assert!(CmpOp::Gt.test(5.0, 2.0));
        assert!(!CmpOp::Gt.test(2.0, 2.0));
        assert!(CmpOp::Ge.test(2.0, 2.0));
        assert!(CmpOp::Lt.test(1.0, 2.0));
        assert!(CmpOp::Le.test(2.0, 2.0));
        assert!(CmpOp::Eq.test(2.0, 2.0));
        assert!(CmpOp::Ne.test(2.0, 3.0));
    }

    #[test]
    fn paper_example_2_3_1() {
        // [S1·U1 ⊗ 5 > 2]: with S1↦0, U1↦1 the tensor evaluates to 0 and
        // the inequality fails; with S1↦1 it evaluates to 5 and holds.
        let s1 = a(0);
        let u1 = a(1);
        let prov = Polynomial::var(s1).mul(&Polynomial::var(u1));
        let g = Guard::single(prov, 5.0, CmpOp::Gt, 2.0);

        let mut v = Valuation::all_true();
        v.set(s1, false);
        assert!(!g.eval(&v));

        v.set(s1, true);
        assert!(g.eval(&v));
    }

    #[test]
    fn guard_maps_provenance() {
        let g = Guard::single(Polynomial::var(a(0)), 1.0, CmpOp::Ne, 0.0);
        let h = Mapping::group(&[a(0)], a(5));
        let mapped = g.map(&h);
        assert_eq!(mapped.annotations(), vec![a(5)]);
        assert_eq!(mapped.size(), 1);
    }

    #[test]
    fn multi_tensor_lhs_sums_contributions() {
        // [x⊗2 ⊕ y⊗3 ≥ 5]
        let g = Guard {
            lhs: vec![(Polynomial::var(a(0)), 2.0), (Polynomial::var(a(1)), 3.0)],
            op: CmpOp::Ge,
            rhs: 5.0,
        };
        assert!(g.eval(&Valuation::all_true()));
        let mut v = Valuation::all_true();
        v.set(a(1), false);
        assert!(!g.eval(&v)); // 2 < 5
    }
}
