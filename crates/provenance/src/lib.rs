//! # prox-provenance
//!
//! The semiring provenance substrate underlying PROX (*Approximated
//! Summarization of Data Provenance*, EDBT 2016).
//!
//! This crate implements the provenance model of Chapter 2 of the paper:
//!
//! * the provenance semiring `N[Ann]` of polynomials over annotations
//!   ([`Polynomial`], [`Monomial`]), capturing positive relational queries;
//! * its extension to aggregate queries via tensors `t ⊗ v` pairing
//!   provenance with aggregation-monoid values ([`Tensor`], [`AggExpr`]),
//!   including comparison guards ([`Guard`]) for nested aggregates and
//!   negation;
//! * object-keyed vector provenance ([`ProvExpr`]) whose evaluation yields
//!   one aggregate per movie/page;
//! * Data-Dependent Process provenance ([`DdpExpr`]) over the tropical
//!   semiring;
//! * truth valuations and provisioning ([`Valuation`], [`ValuationClass`]),
//!   with lifting to summary annotations via combiner functions
//!   ([`Phi`], [`PhiMap`]);
//! * summarization mappings `h : Ann → Ann'` ([`Mapping`]) applied
//!   homomorphically, with the congruence simplifications that make
//!   summaries shrink.
//!
//! Quick taste (Example 3.1.1 of the paper):
//!
//! ```
//! use prox_provenance::{
//!     AggExpr, AggKind, AggValue, AnnStore, Mapping, Polynomial, Tensor, Valuation,
//! };
//!
//! let mut store = AnnStore::new();
//! let u1 = store.add_base_with("U1", "users", &[("gender", "F")]);
//! let u2 = store.add_base_with("U2", "users", &[("gender", "F")]);
//! let u3 = store.add_base_with("U3", "users", &[("gender", "M")]);
//!
//! // Pₛ = U₁⊗(3,1) ⊕ U₂⊗(5,1) ⊕ U₃⊗(3,1)
//! let p = AggExpr::from_tensors(
//!     vec![
//!         Tensor::new(Polynomial::var(u1), AggValue::single(3.0)),
//!         Tensor::new(Polynomial::var(u2), AggValue::single(5.0)),
//!         Tensor::new(Polynomial::var(u3), AggValue::single(3.0)),
//!     ],
//!     AggKind::Max,
//! );
//!
//! // Map U₁,U₂ ↦ Female:  P′ₛ = Female⊗(5,2) ⊕ U₃⊗(3,1)
//! let users = store.domain("users");
//! let female = store.add_summary("Female", users, &[u1, u2]);
//! let summary = p.map(&Mapping::group(&[u1, u2], female));
//! assert_eq!(summary.len(), 2);
//! assert_eq!(summary.eval(&Valuation::all_true()).result(), 5.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Library code must surface failures as typed errors, not panics: corrupt
// or truncated provenance files are expected inputs, not bugs. The
// clippy::unwrap_used/expect_used warnings come from [workspace.lints];
// tests are exempt via clippy.toml.

pub mod aggexpr;
pub mod annot;
pub mod backend;
pub mod classes;
pub mod ddp;
pub mod display;
pub mod eval;
pub mod expr;
pub mod guard;
pub mod mapping;
pub mod monoid;
pub mod monomial;
pub mod parse;
pub mod persist;
pub mod phi;
pub mod polynomial;
pub mod provexpr;
pub mod semiring;
pub mod stats;
pub mod store;
pub mod tensor;
pub mod valuation;

pub use aggexpr::AggExpr;
pub use annot::{AnnId, AnnKind, Annotation, AttrId, AttrValueId, DomainId};
pub use backend::{MemoryBackend, StoreBackend};
pub use classes::ValuationClass;
pub use ddp::{DbCondOp, DdpExecution, DdpExpr, DdpTransition};
pub use eval::{EvalOutcome, EvalVector};
pub use expr::Summarizable;
pub use guard::{CmpOp, Guard};
pub use mapping::Mapping;
pub use monoid::{AggKind, AggValue};
pub use monomial::Monomial;
pub use parse::{parse_aggexpr, parse_provexpr, ParseError};
pub use persist::{from_json, load_workload, save_workload, to_json, SavedWorkload};
pub use phi::{Phi, PhiMap};
pub use polynomial::Polynomial;
pub use provexpr::ProvExpr;
pub use semiring::{Bool, Count, Semiring, Tropical};
pub use stats::ExprStats;
pub use store::AnnStore;
pub use tensor::Tensor;
pub use valuation::Valuation;
