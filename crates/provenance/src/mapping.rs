//! Summarization mappings `h : Ann → Ann'` (§3.1).
//!
//! A [`Mapping`] sends each annotation to its image, defaulting to identity.
//! Mappings extend to homomorphisms on `N[Ann]` (see
//! [`crate::polynomial::Polynomial::map`]) and further to tensor expressions
//! by `h(k ⊗ m) = h(k) ⊗ m`.
//!
//! The summarization algorithm builds its final mapping *gradually*: each
//! step contributes a small single-step mapping (two annotations to one new
//! summary) and the cumulative mapping is their composition.

use std::collections::HashMap;

use crate::annot::AnnId;

/// A (partial) annotation mapping; unmapped annotations map to themselves.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Mapping {
    image: HashMap<AnnId, AnnId>,
}

impl Mapping {
    /// The identity mapping.
    pub fn identity() -> Self {
        Mapping::default()
    }

    /// Single-step mapping sending every annotation in `from` to `to`.
    pub fn group(from: &[AnnId], to: AnnId) -> Self {
        let mut m = Mapping::identity();
        for &a in from {
            m.set(a, to);
        }
        m
    }

    /// Explicitly map `from ↦ to`. Mapping an annotation to itself erases
    /// the entry (keeps the map minimal).
    pub fn set(&mut self, from: AnnId, to: AnnId) {
        if from == to {
            self.image.remove(&from);
        } else {
            self.image.insert(from, to);
        }
    }

    /// Image of `a` under the mapping (identity when unmapped).
    #[inline]
    pub fn image(&self, a: AnnId) -> AnnId {
        // Follow chains so that composed mappings built with `compose_with`
        // stay correct even if a later step remaps an earlier target.
        let mut cur = a;
        let mut hops = 0usize;
        while let Some(&next) = self.image.get(&cur) {
            cur = next;
            hops += 1;
            debug_assert!(hops <= self.image.len(), "cycle in mapping");
        }
        cur
    }

    /// True when the mapping is the identity.
    pub fn is_identity(&self) -> bool {
        self.image.is_empty()
    }

    /// Number of explicitly mapped annotations.
    pub fn len(&self) -> usize {
        self.image.len()
    }

    /// True when no annotation is explicitly mapped.
    pub fn is_empty(&self) -> bool {
        self.image.is_empty()
    }

    /// Compose in application order: `self` then `later`
    /// (`result.image(a) = later.image(self.image(a))`).
    pub fn compose_with(&mut self, later: &Mapping) {
        for target in self.image.values_mut() {
            *target = later.image(*target);
        }
        for (&from, &to) in &later.image {
            self.image.entry(from).or_insert(to);
        }
        // Normalize: drop entries that became identity.
        self.image.retain(|&from, to| from != *to);
    }

    /// The set of annotations whose image is `target`, among `universe`.
    pub fn preimage_of<'a>(
        &'a self,
        target: AnnId,
        universe: impl IntoIterator<Item = AnnId> + 'a,
    ) -> impl Iterator<Item = AnnId> + 'a {
        universe
            .into_iter()
            .filter(move |&a| self.image(a) == target)
    }

    /// Iterate explicit `(from, to)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (AnnId, AnnId)> + '_ {
        self.image.iter().map(|(&f, &t)| (f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    #[test]
    fn identity_maps_everything_to_itself() {
        let m = Mapping::identity();
        assert!(m.is_identity());
        assert_eq!(m.image(a(7)), a(7));
    }

    #[test]
    fn group_maps_members() {
        let m = Mapping::group(&[a(0), a(1)], a(9));
        assert_eq!(m.image(a(0)), a(9));
        assert_eq!(m.image(a(1)), a(9));
        assert_eq!(m.image(a(2)), a(2));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn self_mapping_is_erased() {
        let mut m = Mapping::identity();
        m.set(a(3), a(3));
        assert!(m.is_identity());
    }

    #[test]
    fn composition_applies_left_then_right() {
        // step1: {0,1} -> 9 ; step2: {9,2} -> 10
        let mut cum = Mapping::group(&[a(0), a(1)], a(9));
        let step2 = Mapping::group(&[a(9), a(2)], a(10));
        cum.compose_with(&step2);
        assert_eq!(cum.image(a(0)), a(10));
        assert_eq!(cum.image(a(1)), a(10));
        assert_eq!(cum.image(a(2)), a(10));
        assert_eq!(cum.image(a(9)), a(10));
        assert_eq!(cum.image(a(4)), a(4));
    }

    #[test]
    fn chained_lookup_follows_links() {
        let mut m = Mapping::identity();
        m.set(a(0), a(1));
        m.set(a(1), a(2));
        assert_eq!(m.image(a(0)), a(2));
    }

    #[test]
    fn preimage_filters_universe() {
        let m = Mapping::group(&[a(0), a(1)], a(9));
        let pre: Vec<_> = m.preimage_of(a(9), (0..4).map(a)).collect();
        assert_eq!(pre, vec![a(0), a(1)]);
    }
}
