//! Aggregation monoids for provenance-aware values (§2.2, \[7\]).
//!
//! Aggregated values are formal sums `⊕ᵢ tᵢ ⊗ vᵢ` pairing tuple provenance
//! `tᵢ` with a monoid value `vᵢ`. Following Example 2.2.1 we use a monoid of
//! pairs `(value, contributor count)`: MAX/MIN/SUM combine the value part
//! while counts always add, so a summary like `Female ⊗ (5, 2)` records both
//! the aggregate and how many users contributed to it.

use std::fmt;

/// The aggregation function used to combine tensor values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Maximum rating/value.
    Max,
    /// Minimum rating/value.
    Min,
    /// Sum of values (used for Wikipedia edit counts).
    Sum,
    /// Pure contributor count (value part mirrors the count).
    Count,
}

impl AggKind {
    /// Combine two value parts under this aggregation.
    #[inline]
    pub fn combine_value(self, a: f64, b: f64) -> f64 {
        match self {
            AggKind::Max => a.max(b),
            AggKind::Min => a.min(b),
            AggKind::Sum => a + b,
            AggKind::Count => a + b,
        }
    }

    /// Human-readable name matching the paper's UI ("MAX", "SUM", ...).
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Max => "MAX",
            AggKind::Min => "MIN",
            AggKind::Sum => "SUM",
            AggKind::Count => "COUNT",
        }
    }
}

impl fmt::Display for AggKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A `(value, contributor count)` monoid element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggValue {
    /// The aggregated numeric value (a rating, an edit-type weight, ...).
    pub value: f64,
    /// How many base contributions were folded into `value`.
    pub count: u64,
}

impl AggValue {
    /// A single contribution `(v, 1)`.
    pub fn single(value: f64) -> Self {
        AggValue { value, count: 1 }
    }

    /// Arbitrary pair constructor.
    pub fn new(value: f64, count: u64) -> Self {
        AggValue { value, count }
    }

    /// The neutral "no contributions" element: evaluating an aggregation
    /// with no live tensors yields 0 (cf. the UI's `Sleepover: 0` after a
    /// cancellation in Fig 7.9).
    pub fn empty() -> Self {
        AggValue {
            value: 0.0,
            count: 0,
        }
    }

    /// True when no contribution was folded in.
    pub fn is_empty(self) -> bool {
        self.count == 0
    }

    /// Combine with another element under `kind`. Counts always add; the
    /// neutral element is absorbed regardless of `kind` (so MIN over an
    /// empty aggregation still reports 0 rather than +∞).
    pub fn combine(self, other: AggValue, kind: AggKind) -> AggValue {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        AggValue {
            value: kind.combine_value(self.value, other.value),
            count: self.count + other.count,
        }
    }

    /// Fold `n` identical copies of this element under `kind` — the
    /// closed form of `combine`ing it with itself `n - 1` times. Used by
    /// store backends to expand run-length multiplicities without
    /// materializing `n` tensors: MAX/MIN of `n` equal values is the
    /// value, SUM/COUNT scale linearly; counts always scale.
    pub fn scaled(self, n: u64, kind: AggKind) -> AggValue {
        if n <= 1 || self.is_empty() {
            return self;
        }
        let value = match kind {
            AggKind::Max | AggKind::Min => self.value,
            AggKind::Sum | AggKind::Count => self.value * n as f64,
        };
        AggValue {
            value,
            count: self.count * n,
        }
    }

    /// The scalar the application reports for this aggregate.
    pub fn result(self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.value
        }
    }
}

impl fmt::Display for AggValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render integral values without a trailing ".0" to match the
        // paper's `(5, 2)` notation.
        if self.value.fract() == 0.0 {
            write!(f, "({}, {})", self.value as i64, self.count)
        } else {
            write!(f, "({}, {})", self.value, self.count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_combines_values_and_adds_counts() {
        let a = AggValue::single(3.0);
        let b = AggValue::single(5.0);
        let c = a.combine(b, AggKind::Max);
        assert_eq!(c, AggValue::new(5.0, 2));
    }

    #[test]
    fn sum_adds_both_parts() {
        let a = AggValue::new(2.0, 3);
        let b = AggValue::new(4.0, 1);
        assert_eq!(a.combine(b, AggKind::Sum), AggValue::new(6.0, 4));
    }

    #[test]
    fn min_respects_empty_identity() {
        let a = AggValue::empty();
        let b = AggValue::single(4.0);
        assert_eq!(a.combine(b, AggKind::Min), b);
        assert_eq!(b.combine(a, AggKind::Min), b);
        assert_eq!(AggValue::empty().result(), 0.0);
    }

    #[test]
    fn combine_is_associative_for_each_kind() {
        let xs = [
            AggValue::single(3.0),
            AggValue::single(5.0),
            AggValue::single(1.0),
        ];
        for kind in [AggKind::Max, AggKind::Min, AggKind::Sum, AggKind::Count] {
            let left = xs[0].combine(xs[1], kind).combine(xs[2], kind);
            let right = xs[0].combine(xs[1].combine(xs[2], kind), kind);
            assert_eq!(left, right, "{kind}");
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(AggValue::new(5.0, 2).to_string(), "(5, 2)");
        assert_eq!(AggValue::new(2.5, 1).to_string(), "(2.5, 1)");
    }
}
