//! Monomials over annotations: finite multisets of `AnnId` factors.
//!
//! A monomial is the `·` (joint use) part of an `N[Ann]` polynomial, e.g.
//! `UserID · MovieTitle · MovieYear`. Factors are kept sorted so structural
//! equality coincides with semiring equality under commutativity.

use std::fmt;

use crate::annot::AnnId;
use crate::mapping::Mapping;
use crate::valuation::Valuation;

/// A product of annotations (with multiplicity), `1` when empty.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    factors: Vec<AnnId>, // sorted
}

impl Monomial {
    /// The multiplicative unit `1` (empty product).
    pub fn one() -> Self {
        Monomial::default()
    }

    /// Monomial with a single factor.
    pub fn var(a: AnnId) -> Self {
        Monomial { factors: vec![a] }
    }

    /// Build from arbitrary factors (sorted internally).
    pub fn from_factors(mut factors: Vec<AnnId>) -> Self {
        factors.sort_unstable();
        Monomial { factors }
    }

    /// Sorted factors, with multiplicity.
    pub fn factors(&self) -> &[AnnId] {
        &self.factors
    }

    /// Total number of annotation occurrences (the monomial's contribution
    /// to provenance size).
    pub fn degree(&self) -> usize {
        self.factors.len()
    }

    /// True for the unit monomial.
    pub fn is_one(&self) -> bool {
        self.factors.is_empty()
    }

    /// Multiply two monomials (merge sorted factor lists).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out = Vec::with_capacity(self.factors.len() + other.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            if self.factors[i] <= other.factors[j] {
                out.push(self.factors[i]);
                i += 1;
            } else {
                out.push(other.factors[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&self.factors[i..]);
        out.extend_from_slice(&other.factors[j..]);
        Monomial { factors: out }
    }

    /// Apply a homomorphic annotation mapping, re-sorting (and deduplicating
    /// under the boolean interpretation is NOT done here: `N[Ann]` keeps
    /// multiplicities — `h(a)·h(b)` stays a square when `h(a)=h(b)`).
    pub fn map(&self, h: &Mapping) -> Monomial {
        Monomial::from_factors(self.factors.iter().map(|&a| h.image(a)).collect())
    }

    /// Boolean evaluation: true iff every factor is assigned true.
    pub fn eval_bool(&self, v: &Valuation) -> bool {
        self.factors.iter().all(|&a| v.truth(a))
    }

    /// Does this monomial mention annotation `a`?
    pub fn contains(&self, a: AnnId) -> bool {
        self.factors.binary_search(&a).is_ok()
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return write!(f, "1");
        }
        for (ix, a) in self.factors.iter().enumerate() {
            if ix > 0 {
                write!(f, "·")?;
            }
            write!(f, "{a:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annot::AnnId;

    fn a(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    #[test]
    fn one_is_unit() {
        let m = Monomial::var(a(3));
        assert_eq!(Monomial::one().mul(&m), m);
        assert_eq!(m.mul(&Monomial::one()), m);
        assert!(Monomial::one().is_one());
        assert_eq!(Monomial::one().degree(), 0);
    }

    #[test]
    fn multiplication_is_commutative_and_keeps_multiplicity() {
        let x = Monomial::var(a(1));
        let y = Monomial::var(a(2));
        assert_eq!(x.mul(&y), y.mul(&x));
        let sq = x.mul(&x);
        assert_eq!(sq.degree(), 2);
        assert_eq!(sq.factors(), &[a(1), a(1)]);
    }

    #[test]
    fn from_factors_sorts() {
        let m = Monomial::from_factors(vec![a(5), a(1), a(3)]);
        assert_eq!(m.factors(), &[a(1), a(3), a(5)]);
        assert!(m.contains(a(3)));
        assert!(!m.contains(a(2)));
    }

    #[test]
    fn eval_bool_is_conjunction() {
        let m = Monomial::from_factors(vec![a(0), a(1)]);
        let mut v = Valuation::all_true();
        assert!(m.eval_bool(&v));
        v.set(a(1), false);
        assert!(!m.eval_bool(&v));
        assert!(Monomial::one().eval_bool(&v));
    }
}
