//! A text parser for aggregated provenance expressions, accepting the
//! paper's notation as rendered by [`crate::display`]:
//!
//! ```text
//! (U1·MatchPoint) ⊗ (3, 1) ⊕ U2 ⊗ (5, 1) ⊕M U2 ⊗ (4, 1)
//! ```
//!
//! ASCII fallbacks are accepted too (`*` for `·`, `(+)` for `⊕`,
//! `(+)M` for `⊕M`, `(x)` for `⊗`). Annotation names are interned into the
//! supplied store on first sight (domain `"parsed"` unless they already
//! exist). The object key of each `⊕M` coordinate is its first-listed
//! annotation unless the coordinate mentions an existing annotation of a
//! `"movies"`/`"pages"` domain.
//!
//! The parser covers the tensor fragment (no guards) — enough for tests,
//! examples, and interactive use.

use crate::aggexpr::AggExpr;
use crate::annot::AnnId;
use crate::monoid::{AggKind, AggValue};
use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use crate::provexpr::ProvExpr;
use crate::store::AnnStore;
use crate::tensor::Tensor;

/// Parse error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for prox_robust::ProxError {
    fn from(e: ParseError) -> Self {
        prox_robust::ProxError::Parse {
            message: e.message,
            offset: e.at,
        }
    }
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            at: self.pos,
        }
    }

    fn parse_name(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|&(_, c)| !(c.is_alphanumeric() || c == '_' || c == '-' || c == '#' || c == '+'))
            .map(|(ix, _)| ix)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected an annotation name"));
        }
        let name = &rest[..end];
        self.pos += end;
        Ok(name)
    }

    fn parse_number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|&(_, c)| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .map(|(ix, _)| ix)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected a number"));
        }
        let n: f64 = rest[..end]
            .parse()
            .map_err(|e| self.err(format!("bad number: {e}")))?;
        self.pos += end;
        Ok(n)
    }

    /// `name (· name)*`, optionally parenthesized.
    fn parse_monomial(&mut self, store: &mut AnnStore) -> Result<Vec<AnnId>, ParseError> {
        let parened = self.eat("(");
        let mut factors = Vec::new();
        loop {
            let name = self.parse_name()?;
            let id = store
                .by_name(name)
                .unwrap_or_else(|| store.add_base_with(name, "parsed", &[]));
            factors.push(id);
            if !(self.eat("·") || self.eat("*")) {
                break;
            }
        }
        if parened && !self.eat(")") {
            return Err(self.err("expected ')'"));
        }
        Ok(factors)
    }

    /// `monomial ⊗ (value, count)` or `monomial ⊗ value`.
    fn parse_tensor(&mut self, store: &mut AnnStore) -> Result<Tensor, ParseError> {
        let factors = self.parse_monomial(store)?;
        if !(self.eat("⊗") || self.eat("(x)")) {
            return Err(self.err("expected '⊗'"));
        }
        let (value, count) = if self.eat("(") {
            let v = self.parse_number()?;
            if !self.eat(",") {
                return Err(self.err("expected ',' in (value, count)"));
            }
            let c = self.parse_number()?;
            if !self.eat(")") {
                return Err(self.err("expected ')' after count"));
            }
            (v, c as u64)
        } else {
            (self.parse_number()?, 1)
        };
        Ok(Tensor::new(
            Polynomial::from_monomial(Monomial::from_factors(factors)),
            AggValue::new(value, count),
        ))
    }
}

/// Parse one aggregated expression (no `⊕M`).
pub fn parse_aggexpr(
    src: &str,
    kind: AggKind,
    store: &mut AnnStore,
) -> Result<AggExpr, ParseError> {
    let mut p = Parser::new(src);
    let mut tensors = vec![p.parse_tensor(store)?];
    loop {
        // Ensure we do not consume ⊕M as ⊕ + stray name.
        let save = p.pos;
        if p.eat("⊕M") || p.eat("(+)M") {
            p.pos = save;
            break;
        }
        if p.eat("⊕") || p.eat("(+)") {
            tensors.push(p.parse_tensor(store)?);
        } else {
            break;
        }
    }
    p.skip_ws();
    if !p.rest().is_empty() {
        return Err(p.err("trailing input"));
    }
    Ok(AggExpr::from_tensors(tensors, kind))
}

/// Parse a full object-keyed expression (`⊕M`-separated coordinates).
/// Coordinates are keyed by the first annotation of their first tensor
/// whose store domain is `"movies"` or `"pages"`, falling back to the very
/// first annotation.
pub fn parse_provexpr(
    src: &str,
    kind: AggKind,
    store: &mut AnnStore,
) -> Result<ProvExpr, ParseError> {
    let mut expr = ProvExpr::new(kind);
    for (offset, chunk) in split_coordinates(src) {
        let agg = parse_aggexpr(chunk, kind, store).map_err(|mut e| {
            e.at += offset;
            e
        })?;
        let key = coordinate_key(&agg, store).ok_or_else(|| ParseError {
            message: "empty coordinate".into(),
            at: offset,
        })?;
        expr.insert(key, agg);
    }
    Ok(expr)
}

fn split_coordinates(src: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut search = 0;
    loop {
        let rest = &src[search..];
        let hit = rest.find("⊕M").map(|ix| (ix, "⊕M".len()));
        let hit = match (hit, rest.find("(+)M")) {
            (Some((a, _)), Some(b)) if b < a => Some((b, "(+)M".len())),
            (None, Some(b)) => Some((b, "(+)M".len())),
            (h, _) => h,
        };
        match hit {
            Some((ix, len)) => {
                out.push((start, &src[start..search + ix]));
                start = search + ix + len;
                search = start;
            }
            None => {
                out.push((start, &src[start..]));
                break;
            }
        }
    }
    out
}

fn coordinate_key(agg: &AggExpr, store: &AnnStore) -> Option<AnnId> {
    let anns = agg.annotations();
    anns.iter()
        .copied()
        .find(|&a| {
            let d = store.domain_name(store.get(a).domain);
            d == "movies" || d == "pages"
        })
        .or_else(|| anns.first().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display;
    use crate::valuation::Valuation;

    #[test]
    fn parses_simple_tensor_sum() {
        let mut s = AnnStore::new();
        let e = parse_aggexpr("U1 ⊗ (3, 1) ⊕ U2 ⊗ (5, 1)", AggKind::Max, &mut s).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.eval(&Valuation::all_true()).result(), 5.0);
    }

    #[test]
    fn parses_ascii_fallbacks() {
        let mut s = AnnStore::new();
        let e = parse_aggexpr("U1 (x) (3, 1) (+) U2 (x) 5", AggKind::Max, &mut s).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.eval(&Valuation::all_true()).result(), 5.0);
    }

    #[test]
    fn parses_monomials_with_parens() {
        let mut s = AnnStore::new();
        let e = parse_aggexpr("(U1·MatchPoint·Y1995) ⊗ (4, 1)", AggKind::Max, &mut s).unwrap();
        assert_eq!(e.tensors()[0].prov.annotations().len(), 3);
    }

    #[test]
    fn roundtrips_through_display() {
        let mut s = AnnStore::new();
        let src = "U1 ⊗ (3, 1) ⊕ U2 ⊗ (5, 2)";
        let e = parse_aggexpr(src, AggKind::Max, &mut s).unwrap();
        assert_eq!(display::render_aggexpr(&e, &s), src);
    }

    #[test]
    fn parses_object_keyed_expression() {
        let mut s = AnnStore::new();
        // Pre-intern movies so coordinates key correctly.
        s.add_base_with("MatchPoint", "movies", &[]);
        s.add_base_with("BlueJasmine", "movies", &[]);
        let e = parse_provexpr(
            "(U1·MatchPoint) ⊗ (3, 1) ⊕ (U2·MatchPoint) ⊗ (5, 1) ⊕M (U2·BlueJasmine) ⊗ (4, 1)",
            AggKind::Max,
            &mut s,
        )
        .unwrap();
        assert_eq!(e.num_objects(), 2);
        let v = e.eval(&Valuation::all_true());
        assert_eq!(v.scalar_for(s.by_name("MatchPoint").unwrap()), Some(5.0));
        assert_eq!(v.scalar_for(s.by_name("BlueJasmine").unwrap()), Some(4.0));
    }

    #[test]
    fn reuses_existing_annotations() {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F")]);
        let e = parse_aggexpr("U1 ⊗ (3, 1)", AggKind::Max, &mut s).unwrap();
        assert_eq!(e.annotations(), vec![u1]);
    }

    #[test]
    fn errors_carry_positions() {
        let mut s = AnnStore::new();
        let err = parse_aggexpr("U1 ⊗", AggKind::Max, &mut s).unwrap_err();
        assert!(err.message.contains("number"));
        assert!(err.to_string().contains("parse error"));
        let err2 = parse_aggexpr("U1 ⊗ (3, 1) garbage!!", AggKind::Max, &mut s).unwrap_err();
        assert!(err2.message.contains("trailing"));
    }

    #[test]
    fn rejects_empty_input() {
        let mut s = AnnStore::new();
        assert!(parse_aggexpr("", AggKind::Max, &mut s).is_err());
    }
}
