//! JSON persistence for stores and provenance expressions.
//!
//! Experiment workloads and summarization results can be saved and
//! reloaded — useful for sharing reproducible inputs, archiving experiment
//! runs, and feeding the CLI from files. All expression types and the
//! annotation store serialize with `serde`; this module provides typed
//! JSON entry points and the serde adapter for `AnnId`-keyed maps (JSON
//! objects require string keys).

use std::path::Path;

use serde::de::DeserializeOwned;
use serde::Serialize;

use prox_robust::{fault, ProxError};

use crate::ddp::DdpExpr;
use crate::provexpr::ProvExpr;
use crate::store::AnnStore;

/// Serialize any persistable value to pretty JSON.
pub fn to_json<T: Serialize>(value: &T) -> Result<String, ProxError> {
    serde_json::to_string_pretty(value)
        .map_err(|e| ProxError::internal(format!("serializing provenance: {e}")))
}

/// Deserialize a persistable value from JSON.
pub fn from_json<T: DeserializeOwned>(json: &str) -> Result<T, ProxError> {
    serde_json::from_str(json).map_err(|e| ProxError::corrupt("provenance json", e.to_string()))
}

/// Save a workload to a file as pretty JSON.
pub fn save_workload(path: &Path, workload: &SavedWorkload) -> Result<(), ProxError> {
    let json = to_json(workload)?;
    std::fs::write(path, json).map_err(|e| ProxError::io(path.display().to_string(), &e))
}

/// Load a workload from a file, validating structural invariants.
///
/// The raw bytes pass through the fault-injection `corrupt` hook, so a
/// `PROX_FAULT=corrupt@p:seed` run exercises exactly this path: corruption
/// must surface as a typed [`ProxError`], never a panic.
pub fn load_workload(path: &Path) -> Result<SavedWorkload, ProxError> {
    let mut bytes =
        std::fs::read(path).map_err(|e| ProxError::io(path.display().to_string(), &e))?;
    fault::corrupt_bytes(&mut bytes);
    let json = String::from_utf8(bytes)
        .map_err(|e| ProxError::corrupt(path.display().to_string(), e.to_string()))?;
    let workload: SavedWorkload = from_json(&json)?;
    workload.validate()?;
    Ok(workload)
}

/// A saved workload: store + expression together, so annotation ids stay
/// consistent across the round trip.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SavedWorkload {
    /// The annotation store.
    pub store: AnnStore,
    /// The aggregated provenance, when the workload is MovieLens/Wikipedia
    /// shaped.
    pub provenance: Option<ProvExpr>,
    /// The DDP provenance, when DDP shaped.
    pub ddp: Option<DdpExpr>,
}

impl SavedWorkload {
    /// Bundle an aggregated-provenance workload.
    pub fn aggregated(store: AnnStore, provenance: ProvExpr) -> Self {
        SavedWorkload {
            store,
            provenance: Some(provenance),
            ddp: None,
        }
    }

    /// Bundle a DDP workload.
    pub fn ddp(store: AnnStore, ddp: DdpExpr) -> Self {
        SavedWorkload {
            store,
            provenance: None,
            ddp: Some(ddp),
        }
    }

    /// Check structural invariants a freshly-deserialized workload must
    /// satisfy before any algorithm touches it: an expression is present,
    /// and every annotation id it references resolves in the store.
    /// Violations are [`ProxError::Corrupt`] — corrupt or truncated files
    /// fail here instead of panicking deep inside evaluation.
    pub fn validate(&self) -> Result<(), ProxError> {
        let referenced = match (&self.provenance, &self.ddp) {
            (Some(p), _) => p.annotations(),
            (None, Some(d)) => d.annotations(),
            (None, None) => {
                return Err(ProxError::corrupt(
                    "saved workload",
                    "neither aggregated nor ddp provenance present",
                ))
            }
        };
        let n = self.store.len();
        for ann in referenced {
            if ann.index() >= n {
                return Err(ProxError::corrupt(
                    "saved workload",
                    format!(
                        "expression references annotation {ann:?} but the store holds only {n}"
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Serde adapter serializing `HashMap<AnnId, V>` as a vector of pairs
/// (JSON object keys must be strings; annotation ids are integers).
pub mod ann_keyed_map {
    use std::collections::HashMap;

    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    use crate::annot::AnnId;

    /// Serialize as `[(ann, value), …]`, sorted for determinism.
    pub fn serialize<V, S>(map: &HashMap<AnnId, V>, ser: S) -> Result<S::Ok, S::Error>
    where
        V: Serialize + Clone,
        S: Serializer,
    {
        let mut pairs: Vec<(AnnId, V)> = map.iter().map(|(k, v)| (*k, v.clone())).collect();
        pairs.sort_by_key(|&(k, _)| k);
        pairs.serialize(ser)
    }

    /// Deserialize from `[(ann, value), …]`.
    pub fn deserialize<'de, V, D>(de: D) -> Result<HashMap<AnnId, V>, D::Error>
    where
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let pairs: Vec<(AnnId, V)> = Vec::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddp::{DbCondOp, DdpExecution, DdpTransition};
    use crate::guard::{CmpOp, Guard};
    use crate::monoid::{AggKind, AggValue};
    use crate::polynomial::Polynomial;
    use crate::tensor::Tensor;
    use crate::valuation::Valuation;

    fn workload() -> (AnnStore, ProvExpr) {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "M")]);
        let st = s.add_base_with("S_U1", "stats", &[]);
        let m = s.add_base_with("MatchPoint", "movies", &[]);
        let dom = s.domain("users");
        let g = s.add_summary("All", dom, &[u1, u2]);
        let _ = g;
        let mut p = ProvExpr::new(AggKind::Max);
        p.push(
            m,
            Tensor::guarded(
                Polynomial::var(u1),
                vec![Guard::single(Polynomial::var(st), 3.0, CmpOp::Gt, 2.0)],
                AggValue::single(4.0),
            ),
        );
        p.push(m, Tensor::new(Polynomial::var(u2), AggValue::single(2.0)));
        (s, p)
    }

    #[test]
    fn provexpr_roundtrips_with_store() {
        let (s, p) = workload();
        let saved = SavedWorkload::aggregated(s, p.clone());
        let json = to_json(&saved).expect("serializes");
        let loaded: SavedWorkload = from_json(&json).expect("valid json");
        let lp = loaded.provenance.expect("aggregated workload");
        assert_eq!(lp, p);
        // Semantics preserved: same evaluation results.
        let u1 = loaded.store.by_name("U1").expect("interned");
        let v = Valuation::cancel(&[u1]);
        assert_eq!(
            lp.eval(&v).coords()[0].1.result(),
            p.eval(&v).coords()[0].1.result()
        );
        // Summary metadata survives.
        let g = loaded.store.by_name("All").expect("summary");
        assert_eq!(loaded.store.base_of(g).len(), 2);
    }

    #[test]
    fn ddp_roundtrips_including_costs() {
        let mut s = AnnStore::new();
        let c1 = s.add_base_with("c1", "cost_vars", &[]);
        let d1 = s.add_base_with("d1", "db_vars", &[]);
        let mut p = DdpExpr::new();
        p.set_cost(c1, 7.0);
        p.push(DdpExecution::new(vec![
            DdpTransition::user(c1),
            DdpTransition::db(vec![d1], DbCondOp::NonZero),
        ]));
        let saved = SavedWorkload::ddp(s, p.clone());
        let json = to_json(&saved).expect("serializes");
        let loaded: SavedWorkload = from_json(&json).expect("valid json");
        let lp = loaded.ddp.expect("ddp workload");
        assert_eq!(lp, p);
        assert_eq!(lp.cost_of(c1), 7.0);
    }

    #[test]
    fn json_is_human_readable() {
        let (s, p) = workload();
        let json = to_json(&SavedWorkload::aggregated(s, p)).expect("serializes");
        assert!(json.contains("\"MatchPoint\""));
        assert!(json.contains("\"Gt\""));
    }

    #[test]
    fn validate_rejects_dangling_annotation_ids() {
        let (s, p) = workload();
        let mut saved = SavedWorkload::aggregated(s, p);
        // Drop the store out from under the expression, as a truncated or
        // hand-edited file would.
        saved.store = AnnStore::new();
        assert!(matches!(saved.validate(), Err(ProxError::Corrupt { .. })));
    }

    #[test]
    fn validate_rejects_expressionless_workloads() {
        let empty = SavedWorkload {
            store: AnnStore::new(),
            provenance: None,
            ddp: None,
        };
        assert!(matches!(empty.validate(), Err(ProxError::Corrupt { .. })));
    }

    #[test]
    fn workload_roundtrips_through_a_file() {
        let (s, p) = workload();
        let saved = SavedWorkload::aggregated(s, p);
        let path = std::env::temp_dir().join(format!(
            "prox_persist_roundtrip_{}.json",
            std::process::id()
        ));
        save_workload(&path, &saved).expect("writable temp dir");
        let loaded = load_workload(&path).expect("roundtrip");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.provenance, saved.provenance);
        // Missing files are io errors, not panics.
        let missing = std::env::temp_dir().join("prox_persist_does_not_exist.json");
        assert!(matches!(load_workload(&missing), Err(ProxError::Io { .. })));
    }

    #[test]
    fn malformed_json_errors() {
        let res: Result<SavedWorkload, _> = from_json("{\"nope\": 1}");
        assert!(res.is_err());
    }
}
