//! JSON persistence for stores and provenance expressions.
//!
//! Experiment workloads and summarization results can be saved and
//! reloaded — useful for sharing reproducible inputs, archiving experiment
//! runs, and feeding the CLI from files. Serialization is hand-rolled on
//! top of the in-tree [`prox_obs::Json`] writer/parser (no external JSON
//! dependency): every expression type converts to and from a `Json` value,
//! and every structural defect in a loaded file surfaces as a typed
//! [`ProxError::Corrupt`], never a panic.

use std::path::Path;

use prox_obs::Json;
use prox_robust::{fault, ProxError};

use crate::aggexpr::AggExpr;
use crate::annot::{AnnId, AnnKind, Annotation, AttrId, AttrValueId, DomainId};
use crate::ddp::{DbCondOp, DdpExecution, DdpExpr, DdpTransition};
use crate::guard::{CmpOp, Guard};
use crate::monoid::{AggKind, AggValue};
use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use crate::provexpr::ProvExpr;
use crate::store::AnnStore;
use crate::tensor::Tensor;

/// Serialize a workload to pretty JSON.
pub fn to_json(workload: &SavedWorkload) -> Result<String, ProxError> {
    Ok(workload.to_json_value().pretty())
}

/// Deserialize a workload from JSON.
pub fn from_json(json: &str) -> Result<SavedWorkload, ProxError> {
    let value =
        Json::parse(json).map_err(|e| ProxError::corrupt("provenance json", e.to_string()))?;
    SavedWorkload::from_json_value(&value)
}

/// Save a workload to a file as compact JSON, streaming through a
/// `BufWriter`. The workload is written piecewise — the store section,
/// then every provenance entry one at a time — so peak memory is one
/// entry's rendering, not the whole file. (The parser is
/// whitespace-agnostic, so compact output round-trips through
/// [`load_workload`] exactly like the old pretty form.)
pub fn save_workload(path: &Path, workload: &SavedWorkload) -> Result<(), ProxError> {
    use std::io::Write;
    let io = |e: &std::io::Error| ProxError::io(path.display().to_string(), e);
    let file = std::fs::File::create(path).map_err(|e| io(&e))?;
    let mut out = std::io::BufWriter::new(file);
    out.write_all(b"{\"store\": ").map_err(|e| io(&e))?;
    out.write_all(store_to_json(&workload.store).render().as_bytes())
        .map_err(|e| io(&e))?;
    out.write_all(b", \"provenance\": ").map_err(|e| io(&e))?;
    match &workload.provenance {
        Some(p) => {
            write!(
                out,
                "{{\"agg\": {}, \"entries\": [",
                Json::from(p.kind().name()).render()
            )
            .map_err(|e| io(&e))?;
            for (i, (object, expr)) in p.entries().iter().enumerate() {
                if i > 0 {
                    out.write_all(b", ").map_err(|e| io(&e))?;
                }
                let entry = Json::Arr(vec![
                    Json::UInt(u64::from(object.0)),
                    Json::Arr(expr.tensors().iter().map(tensor_to_json).collect()),
                ]);
                out.write_all(entry.render().as_bytes())
                    .map_err(|e| io(&e))?;
            }
            out.write_all(b"]}").map_err(|e| io(&e))?;
        }
        None => out.write_all(b"null").map_err(|e| io(&e))?,
    }
    out.write_all(b", \"ddp\": ").map_err(|e| io(&e))?;
    let ddp = match &workload.ddp {
        Some(d) => ddp_to_json(d),
        None => Json::Null,
    };
    out.write_all(ddp.render().as_bytes()).map_err(|e| io(&e))?;
    out.write_all(b"}").map_err(|e| io(&e))?;
    out.flush().map_err(|e| io(&e))
}

/// Load a workload from a file, validating structural invariants.
///
/// The raw bytes pass through the fault-injection `corrupt` hook, so a
/// `PROX_FAULT=corrupt@p:seed` run exercises exactly this path: corruption
/// must surface as a typed [`ProxError`], never a panic.
pub fn load_workload(path: &Path) -> Result<SavedWorkload, ProxError> {
    let mut bytes =
        std::fs::read(path).map_err(|e| ProxError::io(path.display().to_string(), &e))?;
    fault::corrupt_bytes(&mut bytes);
    let json = String::from_utf8(bytes)
        .map_err(|e| ProxError::corrupt(path.display().to_string(), e.to_string()))?;
    let workload: SavedWorkload = from_json(&json)?;
    workload.validate()?;
    Ok(workload)
}

/// A saved workload: store + expression together, so annotation ids stay
/// consistent across the round trip.
#[derive(Clone, Debug)]
pub struct SavedWorkload {
    /// The annotation store.
    pub store: AnnStore,
    /// The aggregated provenance, when the workload is MovieLens/Wikipedia
    /// shaped.
    pub provenance: Option<ProvExpr>,
    /// The DDP provenance, when DDP shaped.
    pub ddp: Option<DdpExpr>,
}

impl SavedWorkload {
    /// Bundle an aggregated-provenance workload.
    pub fn aggregated(store: AnnStore, provenance: ProvExpr) -> Self {
        SavedWorkload {
            store,
            provenance: Some(provenance),
            ddp: None,
        }
    }

    /// Bundle a DDP workload.
    pub fn ddp(store: AnnStore, ddp: DdpExpr) -> Self {
        SavedWorkload {
            store,
            provenance: None,
            ddp: Some(ddp),
        }
    }

    /// Check structural invariants a freshly-deserialized workload must
    /// satisfy before any algorithm touches it: an expression is present,
    /// and every annotation id it references resolves in the store.
    /// Violations are [`ProxError::Corrupt`] — corrupt or truncated files
    /// fail here instead of panicking deep inside evaluation.
    pub fn validate(&self) -> Result<(), ProxError> {
        let referenced = match (&self.provenance, &self.ddp) {
            (Some(p), _) => p.annotations(),
            (None, Some(d)) => d.annotations(),
            (None, None) => {
                return Err(ProxError::corrupt(
                    "saved workload",
                    "neither aggregated nor ddp provenance present",
                ))
            }
        };
        let n = self.store.len();
        for ann in referenced {
            if ann.index() >= n {
                return Err(ProxError::corrupt(
                    "saved workload",
                    format!(
                        "expression references annotation {ann:?} but the store holds only {n}"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Convert to a [`Json`] value.
    pub fn to_json_value(&self) -> Json {
        Json::obj()
            .with("store", store_to_json(&self.store))
            .with(
                "provenance",
                match &self.provenance {
                    Some(p) => provexpr_to_json(p),
                    None => Json::Null,
                },
            )
            .with(
                "ddp",
                match &self.ddp {
                    Some(d) => ddp_to_json(d),
                    None => Json::Null,
                },
            )
    }

    /// Convert from a [`Json`] value, checking structure.
    pub fn from_json_value(value: &Json) -> Result<Self, ProxError> {
        let store = store_from_json(field(value, "store")?)?;
        let provenance = match field(value, "provenance")? {
            Json::Null => None,
            p => Some(provexpr_from_json(p)?),
        };
        let ddp = match field(value, "ddp")? {
            Json::Null => None,
            d => Some(ddp_from_json(d)?),
        };
        Ok(SavedWorkload {
            store,
            provenance,
            ddp,
        })
    }
}

// ---- helpers ---------------------------------------------------------------

fn corrupt(detail: impl Into<String>) -> ProxError {
    ProxError::corrupt("provenance json", detail.into())
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, ProxError> {
    obj.get(key)
        .ok_or_else(|| corrupt(format!("missing key {key:?}")))
}

fn items<'a>(value: &'a Json, what: &str) -> Result<&'a [Json], ProxError> {
    match value {
        Json::Arr(items) => Ok(items),
        _ => Err(corrupt(format!("{what} is not an array"))),
    }
}

fn str_of<'a>(value: &'a Json, what: &str) -> Result<&'a str, ProxError> {
    value
        .as_str()
        .ok_or_else(|| corrupt(format!("{what} is not a string")))
}

fn u64_of(value: &Json, what: &str) -> Result<u64, ProxError> {
    value
        .as_u64()
        .ok_or_else(|| corrupt(format!("{what} is not a non-negative integer")))
}

fn f64_of(value: &Json, what: &str) -> Result<f64, ProxError> {
    match *value {
        Json::Float(f) => Ok(f),
        Json::UInt(n) => Ok(n as f64),
        Json::Int(n) => Ok(n as f64),
        _ => Err(corrupt(format!("{what} is not a number"))),
    }
}

fn ann_of(value: &Json, what: &str) -> Result<AnnId, ProxError> {
    let raw = u64_of(value, what)?;
    if raw > u64::from(u32::MAX) {
        return Err(corrupt(format!("{what}: annotation id {raw} exceeds u32")));
    }
    Ok(AnnId(raw as u32))
}

fn pair<'a>(value: &'a Json, what: &str) -> Result<(&'a Json, &'a Json), ProxError> {
    let items = items(value, what)?;
    match items {
        [a, b] => Ok((a, b)),
        _ => Err(corrupt(format!("{what} is not a 2-element array"))),
    }
}

// ---- annotation store ------------------------------------------------------

fn store_to_json(store: &AnnStore) -> Json {
    let anns: Vec<Json> = store
        .anns
        .iter()
        .map(|a| {
            let mut j = Json::obj()
                .with("name", a.name.as_str())
                .with("domain", u64::from(a.domain.0))
                .with(
                    "attrs",
                    Json::Arr(
                        a.attrs
                            .iter()
                            .map(|&(attr, val)| {
                                Json::Arr(vec![
                                    Json::UInt(u64::from(attr.0)),
                                    Json::UInt(u64::from(val.0)),
                                ])
                            })
                            .collect(),
                    ),
                );
            match &a.kind {
                AnnKind::Base => {
                    j.set("kind", "base");
                }
                AnnKind::Summary { members } => {
                    j.set("kind", "summary");
                    j.set(
                        "members",
                        Json::Arr(members.iter().map(|m| Json::UInt(u64::from(m.0))).collect()),
                    );
                }
            }
            match a.concept {
                Some(c) => j.set("concept", u64::from(c)),
                None => j.set("concept", Json::Null),
            };
            j
        })
        .collect();
    Json::obj()
        .with("domains", store.domains.clone())
        .with("attrs", store.attrs.clone())
        .with("values", store.values.clone())
        .with("anns", Json::Arr(anns))
}

fn string_vec(value: &Json, what: &str) -> Result<Vec<String>, ProxError> {
    items(value, what)?
        .iter()
        .map(|s| str_of(s, what).map(str::to_owned))
        .collect()
}

fn store_from_json(value: &Json) -> Result<AnnStore, ProxError> {
    let domains = string_vec(field(value, "domains")?, "store.domains")?;
    let attrs = string_vec(field(value, "attrs")?, "store.attrs")?;
    let values = string_vec(field(value, "values")?, "store.values")?;
    let raw_anns = items(field(value, "anns")?, "store.anns")?;

    let mut anns: Vec<Annotation> = Vec::with_capacity(raw_anns.len());
    for (ix, a) in raw_anns.iter().enumerate() {
        let what = format!("store.anns[{ix}]");
        let name = str_of(field(a, "name")?, &what)?.to_owned();
        let domain = u64_of(field(a, "domain")?, &what)?;
        if domain as usize >= domains.len() {
            return Err(corrupt(format!("{what}: domain {domain} out of range")));
        }
        let mut attr_pairs = Vec::new();
        for p in items(field(a, "attrs")?, &what)? {
            let (attr, val) = pair(p, &what)?;
            let attr = u64_of(attr, &what)?;
            let val = u64_of(val, &what)?;
            if attr as usize >= attrs.len() || val as usize >= values.len() {
                return Err(corrupt(format!("{what}: attribute pair out of range")));
            }
            attr_pairs.push((AttrId(attr as u16), AttrValueId(val as u32)));
        }
        let kind = match str_of(field(a, "kind")?, &what)? {
            "base" => AnnKind::Base,
            "summary" => {
                let members = items(field(a, "members")?, &what)?
                    .iter()
                    .map(|m| ann_of(m, &what))
                    .collect::<Result<Vec<_>, _>>()?;
                if members.iter().any(|m| m.index() >= raw_anns.len()) {
                    return Err(corrupt(format!("{what}: summary member out of range")));
                }
                AnnKind::Summary { members }
            }
            other => return Err(corrupt(format!("{what}: unknown kind {other:?}"))),
        };
        let concept = match field(a, "concept")? {
            Json::Null => None,
            c => {
                let raw = u64_of(c, &what)?;
                if raw > u64::from(u32::MAX) {
                    return Err(corrupt(format!("{what}: concept {raw} exceeds u32")));
                }
                Some(raw as u32)
            }
        };
        anns.push(Annotation {
            name,
            domain: DomainId(domain as u16),
            attrs: attr_pairs,
            kind,
            concept,
        });
    }

    let ann_by_name = anns
        .iter()
        .enumerate()
        .map(|(ix, a)| (a.name.clone(), AnnId::from_index(ix)))
        .collect();
    let domain_by_name = domains
        .iter()
        .enumerate()
        .map(|(ix, d)| (d.clone(), DomainId(ix as u16)))
        .collect();
    let attr_by_name = attrs
        .iter()
        .enumerate()
        .map(|(ix, a)| (a.clone(), AttrId(ix as u16)))
        .collect();
    let value_by_name = values
        .iter()
        .enumerate()
        .map(|(ix, v)| (v.clone(), AttrValueId(ix as u32)))
        .collect();
    Ok(AnnStore {
        anns,
        ann_by_name,
        domains,
        domain_by_name,
        attrs,
        attr_by_name,
        values,
        value_by_name,
    })
}

// ---- polynomials and tensors -----------------------------------------------

fn polynomial_to_json(p: &Polynomial) -> Json {
    Json::Arr(
        p.terms()
            .iter()
            .map(|(m, c)| {
                Json::Arr(vec![
                    Json::Arr(
                        m.factors()
                            .iter()
                            .map(|a| Json::UInt(u64::from(a.0)))
                            .collect(),
                    ),
                    Json::UInt(*c),
                ])
            })
            .collect(),
    )
}

fn polynomial_from_json(value: &Json) -> Result<Polynomial, ProxError> {
    let mut terms = Vec::new();
    for t in items(value, "polynomial")? {
        let (factors, coeff) = pair(t, "polynomial term")?;
        let factors = items(factors, "monomial factors")?
            .iter()
            .map(|a| ann_of(a, "monomial factor"))
            .collect::<Result<Vec<_>, _>>()?;
        terms.push((
            Monomial::from_factors(factors),
            u64_of(coeff, "coefficient")?,
        ));
    }
    Ok(Polynomial::from_terms(terms))
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Gt => "Gt",
        CmpOp::Ge => "Ge",
        CmpOp::Lt => "Lt",
        CmpOp::Le => "Le",
        CmpOp::Eq => "Eq",
        CmpOp::Ne => "Ne",
    }
}

fn cmp_from_name(name: &str) -> Result<CmpOp, ProxError> {
    match name {
        "Gt" => Ok(CmpOp::Gt),
        "Ge" => Ok(CmpOp::Ge),
        "Lt" => Ok(CmpOp::Lt),
        "Le" => Ok(CmpOp::Le),
        "Eq" => Ok(CmpOp::Eq),
        "Ne" => Ok(CmpOp::Ne),
        other => Err(corrupt(format!("unknown comparison operator {other:?}"))),
    }
}

fn guard_to_json(g: &Guard) -> Json {
    Json::obj()
        .with(
            "lhs",
            Json::Arr(
                g.lhs
                    .iter()
                    .map(|(p, w)| Json::Arr(vec![polynomial_to_json(p), Json::Float(*w)]))
                    .collect(),
            ),
        )
        .with("op", cmp_name(g.op))
        .with("rhs", Json::Float(g.rhs))
}

fn guard_from_json(value: &Json) -> Result<Guard, ProxError> {
    let mut lhs = Vec::new();
    for t in items(field(value, "lhs")?, "guard.lhs")? {
        let (p, w) = pair(t, "guard.lhs term")?;
        lhs.push((polynomial_from_json(p)?, f64_of(w, "guard weight")?));
    }
    Ok(Guard {
        lhs,
        op: cmp_from_name(str_of(field(value, "op")?, "guard.op")?)?,
        rhs: f64_of(field(value, "rhs")?, "guard.rhs")?,
    })
}

fn tensor_to_json(t: &Tensor) -> Json {
    Json::obj()
        .with("prov", polynomial_to_json(&t.prov))
        .with(
            "guards",
            Json::Arr(t.guards.iter().map(guard_to_json).collect()),
        )
        .with(
            "value",
            Json::Arr(vec![Json::Float(t.value.value), Json::UInt(t.value.count)]),
        )
}

fn tensor_from_json(value: &Json) -> Result<Tensor, ProxError> {
    let prov = polynomial_from_json(field(value, "prov")?)?;
    let guards = items(field(value, "guards")?, "tensor.guards")?
        .iter()
        .map(guard_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let (v, c) = pair(field(value, "value")?, "tensor.value")?;
    Ok(Tensor::guarded(
        prov,
        guards,
        AggValue::new(f64_of(v, "tensor value")?, u64_of(c, "tensor count")?),
    ))
}

fn agg_from_name(name: &str) -> Result<AggKind, ProxError> {
    match name {
        "MAX" => Ok(AggKind::Max),
        "MIN" => Ok(AggKind::Min),
        "SUM" => Ok(AggKind::Sum),
        "COUNT" => Ok(AggKind::Count),
        other => Err(corrupt(format!("unknown aggregation {other:?}"))),
    }
}

fn provexpr_to_json(p: &ProvExpr) -> Json {
    Json::obj().with("agg", p.kind().name()).with(
        "entries",
        Json::Arr(
            p.entries()
                .iter()
                .map(|(object, expr)| {
                    Json::Arr(vec![
                        Json::UInt(u64::from(object.0)),
                        Json::Arr(expr.tensors().iter().map(tensor_to_json).collect()),
                    ])
                })
                .collect(),
        ),
    )
}

fn provexpr_from_json(value: &Json) -> Result<ProvExpr, ProxError> {
    let kind = agg_from_name(str_of(field(value, "agg")?, "provenance.agg")?)?;
    let mut entries = Vec::new();
    for e in items(field(value, "entries")?, "provenance.entries")? {
        let (object, tensors) = pair(e, "provenance entry")?;
        let object = ann_of(object, "provenance object")?;
        let tensors = items(tensors, "provenance tensors")?
            .iter()
            .map(tensor_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        entries.push((object, AggExpr { tensors, kind }));
    }
    Ok(ProvExpr { entries, kind })
}

// ---- DDP expressions -------------------------------------------------------

fn transition_to_json(t: &DdpTransition) -> Json {
    match t {
        DdpTransition::User { cost_var } => Json::obj().with("user", u64::from(cost_var.0)),
        DdpTransition::Db { vars, op } => Json::obj()
            .with(
                "db",
                Json::Arr(vars.iter().map(|v| Json::UInt(u64::from(v.0))).collect()),
            )
            .with(
                "op",
                match op {
                    DbCondOp::NonZero => "NonZero",
                    DbCondOp::Zero => "Zero",
                },
            ),
    }
}

fn transition_from_json(value: &Json) -> Result<DdpTransition, ProxError> {
    if let Some(cost_var) = value.get("user") {
        return Ok(DdpTransition::User {
            cost_var: ann_of(cost_var, "ddp user transition")?,
        });
    }
    let vars = items(field(value, "db")?, "ddp db transition")?
        .iter()
        .map(|v| ann_of(v, "ddp db variable"))
        .collect::<Result<Vec<_>, _>>()?;
    let op = match str_of(field(value, "op")?, "ddp op")? {
        "NonZero" => DbCondOp::NonZero,
        "Zero" => DbCondOp::Zero,
        other => return Err(corrupt(format!("unknown db condition op {other:?}"))),
    };
    Ok(DdpTransition::Db { vars, op })
}

fn ddp_to_json(d: &DdpExpr) -> Json {
    let mut costs: Vec<(AnnId, f64)> = d.costs.iter().map(|(&k, &v)| (k, v)).collect();
    costs.sort_by_key(|&(k, _)| k);
    Json::obj()
        .with(
            "costs",
            Json::Arr(
                costs
                    .iter()
                    .map(|&(k, v)| Json::Arr(vec![Json::UInt(u64::from(k.0)), Json::Float(v)]))
                    .collect(),
            ),
        )
        .with(
            "max_cost_per_transition",
            Json::Float(d.max_cost_per_transition),
        )
        .with(
            "max_transitions_per_execution",
            d.max_transitions_per_execution,
        )
        .with(
            "executions",
            Json::Arr(
                d.executions
                    .iter()
                    .map(|e| Json::Arr(e.transitions.iter().map(transition_to_json).collect()))
                    .collect(),
            ),
        )
}

fn ddp_from_json(value: &Json) -> Result<DdpExpr, ProxError> {
    let mut costs = std::collections::BTreeMap::new();
    for c in items(field(value, "costs")?, "ddp.costs")? {
        let (k, v) = pair(c, "ddp cost")?;
        costs.insert(ann_of(k, "ddp cost variable")?, f64_of(v, "ddp cost")?);
    }
    let max_cost_per_transition = f64_of(
        field(value, "max_cost_per_transition")?,
        "ddp.max_cost_per_transition",
    )?;
    let max_transitions_per_execution = u64_of(
        field(value, "max_transitions_per_execution")?,
        "ddp.max_transitions_per_execution",
    )? as usize;
    let mut executions = Vec::new();
    for e in items(field(value, "executions")?, "ddp.executions")? {
        let transitions = items(e, "ddp execution")?
            .iter()
            .map(transition_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        executions.push(DdpExecution { transitions });
    }
    Ok(DdpExpr {
        executions,
        costs,
        max_cost_per_transition,
        max_transitions_per_execution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddp::{DbCondOp, DdpExecution, DdpTransition};
    use crate::guard::{CmpOp, Guard};
    use crate::monoid::{AggKind, AggValue};
    use crate::polynomial::Polynomial;
    use crate::tensor::Tensor;
    use crate::valuation::Valuation;

    fn workload() -> (AnnStore, ProvExpr) {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "M")]);
        let st = s.add_base_with("S_U1", "stats", &[]);
        let m = s.add_base_with("MatchPoint", "movies", &[]);
        let dom = s.domain("users");
        let g = s.add_summary("All", dom, &[u1, u2]);
        let _ = g;
        let mut p = ProvExpr::new(AggKind::Max);
        p.push(
            m,
            Tensor::guarded(
                Polynomial::var(u1),
                vec![Guard::single(Polynomial::var(st), 3.0, CmpOp::Gt, 2.0)],
                AggValue::single(4.0),
            ),
        );
        p.push(m, Tensor::new(Polynomial::var(u2), AggValue::single(2.0)));
        (s, p)
    }

    #[test]
    fn provexpr_roundtrips_with_store() {
        let (s, p) = workload();
        let saved = SavedWorkload::aggregated(s, p.clone());
        let json = to_json(&saved).expect("serializes");
        let loaded: SavedWorkload = from_json(&json).expect("valid json");
        let lp = loaded.provenance.expect("aggregated workload");
        assert_eq!(lp, p);
        // Semantics preserved: same evaluation results.
        let u1 = loaded.store.by_name("U1").expect("interned");
        let v = Valuation::cancel(&[u1]);
        assert_eq!(
            lp.eval(&v).coords()[0].1.result(),
            p.eval(&v).coords()[0].1.result()
        );
        // Summary metadata survives.
        let g = loaded.store.by_name("All").expect("summary");
        assert_eq!(loaded.store.base_of(g).len(), 2);
    }

    #[test]
    fn ddp_roundtrips_including_costs() {
        let mut s = AnnStore::new();
        let c1 = s.add_base_with("c1", "cost_vars", &[]);
        let d1 = s.add_base_with("d1", "db_vars", &[]);
        let mut p = DdpExpr::new();
        p.set_cost(c1, 7.0);
        p.push(DdpExecution::new(vec![
            DdpTransition::user(c1),
            DdpTransition::db(vec![d1], DbCondOp::NonZero),
        ]));
        let saved = SavedWorkload::ddp(s, p.clone());
        let json = to_json(&saved).expect("serializes");
        let loaded: SavedWorkload = from_json(&json).expect("valid json");
        let lp = loaded.ddp.expect("ddp workload");
        assert_eq!(lp, p);
        assert_eq!(lp.cost_of(c1), 7.0);
    }

    #[test]
    fn json_is_human_readable() {
        let (s, p) = workload();
        let json = to_json(&SavedWorkload::aggregated(s, p)).expect("serializes");
        assert!(json.contains("\"MatchPoint\""));
        assert!(json.contains("\"Gt\""));
    }

    #[test]
    fn validate_rejects_dangling_annotation_ids() {
        let (s, p) = workload();
        let mut saved = SavedWorkload::aggregated(s, p);
        // Drop the store out from under the expression, as a truncated or
        // hand-edited file would.
        saved.store = AnnStore::new();
        assert!(matches!(saved.validate(), Err(ProxError::Corrupt { .. })));
    }

    #[test]
    fn validate_rejects_expressionless_workloads() {
        let empty = SavedWorkload {
            store: AnnStore::new(),
            provenance: None,
            ddp: None,
        };
        assert!(matches!(empty.validate(), Err(ProxError::Corrupt { .. })));
    }

    #[test]
    fn workload_roundtrips_through_a_file() {
        let (s, p) = workload();
        let saved = SavedWorkload::aggregated(s, p);
        let path = std::env::temp_dir().join(format!(
            "prox_persist_roundtrip_{}.json",
            std::process::id()
        ));
        save_workload(&path, &saved).expect("writable temp dir");
        let loaded = load_workload(&path).expect("roundtrip");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.provenance, saved.provenance);
        // Missing files are io errors, not panics.
        let missing = std::env::temp_dir().join("prox_persist_does_not_exist.json");
        assert!(matches!(load_workload(&missing), Err(ProxError::Io { .. })));
    }

    #[test]
    fn malformed_json_errors() {
        let res = from_json("{\"nope\": 1}");
        assert!(res.is_err());
    }

    #[test]
    fn reconstructed_store_lookups_match_original_ids() {
        let (s, p) = workload();
        let json = to_json(&SavedWorkload::aggregated(s.clone(), p)).expect("serializes");
        let loaded = from_json(&json).expect("valid json");
        for (id, ann) in s.iter() {
            assert_eq!(loaded.store.by_name(&ann.name), Some(id));
            assert_eq!(loaded.store.name(id), s.name(id));
            assert_eq!(
                loaded.store.domain_name(ann.domain),
                s.domain_name(ann.domain)
            );
        }
    }

    #[test]
    fn out_of_range_references_are_corrupt_not_panics() {
        // An annotation pointing at a non-existent domain.
        let bad = r#"{
            "store": {"domains": [], "attrs": [], "values": [],
                      "anns": [{"name": "X", "domain": 3, "attrs": [],
                                "kind": "base", "concept": null}]},
            "provenance": null,
            "ddp": null
        }"#;
        assert!(matches!(from_json(bad), Err(ProxError::Corrupt { .. })));
    }
}
