//! Combiner functions `φ` (§3.2).
//!
//! `φ` complements a mapping `h`: it specifies how the truth values of the
//! annotations mapped to a summary annotation `a'` combine into the truth
//! value of `a'`. With `φ = ∨` a summary is cancelled only when *all* its
//! members are cancelled; with `φ = ∧` cancelling any member cancels the
//! group. DDP cost variables use MAX over their 0/1 assignments, which for
//! booleans coincides with ∨ (exposed separately for clarity and for the
//! numeric lift used by the DDP evaluator).

use std::fmt;

/// The combiner function applied to member truth values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phi {
    /// Disjunction: the summary is live while any member is live.
    Or,
    /// Conjunction: the summary is live only when every member is live.
    And,
    /// Maximum over 0/1 values — boolean-equivalent to [`Phi::Or`]; used for
    /// DDP cost variables where assignments are numeric multipliers.
    Max,
}

impl Phi {
    /// Combine an iterator of member truth values. Empty input yields the
    /// operator's identity (`false` for ∨/MAX, `true` for ∧).
    pub fn combine_bool(self, values: impl IntoIterator<Item = bool>) -> bool {
        match self {
            Phi::Or | Phi::Max => values.into_iter().any(|b| b),
            Phi::And => values.into_iter().all(|b| b),
        }
    }

    /// Combine numeric 0/1 assignments (DDP cost variables).
    pub fn combine_num(self, values: impl IntoIterator<Item = f64>) -> f64 {
        match self {
            Phi::Or | Phi::Max => values.into_iter().fold(0.0, f64::max),
            Phi::And => values
                .into_iter()
                .fold(f64::INFINITY, f64::min)
                .clamp(0.0, 1.0),
        }
    }
}

/// Per-domain combiner assignment (Table 5.1's DDP row uses logical OR for
/// DB variables and MAX for cost variables). On booleans OR and MAX agree,
/// but keeping the assignment explicit preserves the paper's semantics and
/// lets the numeric lift differ where it matters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhiMap {
    /// Combiner used when no per-domain override matches.
    pub default: Phi,
    /// `(domain, φ)` overrides.
    pub per_domain: Vec<(crate::annot::DomainId, Phi)>,
}

impl PhiMap {
    /// Uniform assignment.
    pub fn uniform(phi: Phi) -> Self {
        PhiMap {
            default: phi,
            per_domain: Vec::new(),
        }
    }

    /// Add a per-domain override (builder style).
    pub fn with(mut self, domain: crate::annot::DomainId, phi: Phi) -> Self {
        self.per_domain.push((domain, phi));
        self
    }

    /// The combiner for a given domain.
    pub fn for_domain(&self, domain: crate::annot::DomainId) -> Phi {
        self.per_domain
            .iter()
            .find(|&&(d, _)| d == domain)
            .map(|&(_, p)| p)
            .unwrap_or(self.default)
    }
}

impl fmt::Display for Phi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phi::Or => write!(f, "OR"),
            Phi::And => write!(f, "AND"),
            Phi::Max => write!(f, "MAX"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_is_any() {
        assert!(Phi::Or.combine_bool([false, true]));
        assert!(!Phi::Or.combine_bool([false, false]));
        assert!(!Phi::Or.combine_bool(std::iter::empty()));
    }

    #[test]
    fn and_is_all() {
        assert!(Phi::And.combine_bool([true, true]));
        assert!(!Phi::And.combine_bool([true, false]));
        assert!(Phi::And.combine_bool(std::iter::empty()));
    }

    #[test]
    fn max_matches_or_on_booleans() {
        for pattern in [[false, false], [false, true], [true, true]] {
            assert_eq!(
                Phi::Max.combine_bool(pattern),
                Phi::Or.combine_bool(pattern)
            );
        }
    }

    #[test]
    fn numeric_max_combines_multipliers() {
        assert_eq!(Phi::Max.combine_num([0.0, 1.0]), 1.0);
        assert_eq!(Phi::Max.combine_num([0.0, 0.0]), 0.0);
        assert_eq!(Phi::Max.combine_num(std::iter::empty()), 0.0);
    }

    #[test]
    fn numeric_and_is_min_clamped() {
        assert_eq!(Phi::And.combine_num([1.0, 0.0]), 0.0);
        assert_eq!(Phi::And.combine_num([1.0, 1.0]), 1.0);
    }

    #[test]
    fn phi_map_resolves_per_domain() {
        use crate::annot::DomainId;
        let dbs = DomainId(0);
        let costs = DomainId(1);
        let other = DomainId(2);
        let map = PhiMap::uniform(Phi::Or).with(costs, Phi::Max);
        assert_eq!(map.for_domain(dbs), Phi::Or);
        assert_eq!(map.for_domain(costs), Phi::Max);
        assert_eq!(map.for_domain(other), Phi::Or);
    }
}
