//! Polynomials with natural coefficients over annotations: the provenance
//! semiring `N[Ann]` of [Green, Karvounarakis, Tannen 2007] (§2.2).
//!
//! `+` records alternative use of data (union/projection), `·` joint use
//! (join). Terms are kept sorted by monomial so structural equality equals
//! semiring equality modulo the commutative-semiring axioms.

use std::fmt;

use crate::annot::AnnId;
use crate::mapping::Mapping;
use crate::monomial::Monomial;
use crate::semiring::{Bool, Count, Semiring};
use crate::valuation::Valuation;

/// An `N[Ann]` polynomial: a formal sum of monomials with coefficients in ℕ.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Polynomial {
    /// Sorted by monomial, coefficients strictly positive.
    terms: Vec<(Monomial, u64)>,
}

impl Polynomial {
    /// The zero polynomial (absent data).
    pub fn zero() -> Self {
        Polynomial::default()
    }

    /// The unit polynomial (present data).
    pub fn one() -> Self {
        Polynomial {
            terms: vec![(Monomial::one(), 1)],
        }
    }

    /// A single annotation variable.
    pub fn var(a: AnnId) -> Self {
        Polynomial {
            terms: vec![(Monomial::var(a), 1)],
        }
    }

    /// A single monomial with coefficient 1.
    pub fn from_monomial(m: Monomial) -> Self {
        Polynomial {
            terms: vec![(m, 1)],
        }
    }

    /// Build from arbitrary `(monomial, coeff)` pairs, normalizing.
    pub fn from_terms(terms: impl IntoIterator<Item = (Monomial, u64)>) -> Self {
        let mut v: Vec<(Monomial, u64)> = terms.into_iter().filter(|&(_, c)| c > 0).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out: Vec<(Monomial, u64)> = Vec::with_capacity(v.len());
        for (m, c) in v {
            match out.last_mut() {
                Some((last, lc)) if *last == m => *lc += c,
                _ => out.push((m, c)),
            }
        }
        Polynomial { terms: out }
    }

    /// Normalized terms: sorted monomials with positive coefficients.
    pub fn terms(&self) -> &[(Monomial, u64)] {
        &self.terms
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// True for the unit polynomial.
    pub fn is_one(&self) -> bool {
        self.terms.len() == 1 && self.terms[0].0.is_one() && self.terms[0].1 == 1
    }

    /// Add two polynomials.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        Polynomial::from_terms(
            self.terms
                .iter()
                .chain(other.terms.iter())
                .map(|(m, c)| (m.clone(), *c)),
        )
    }

    /// Multiply two polynomials (full convolution).
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut out = Vec::with_capacity(self.terms.len() * other.terms.len());
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                out.push((m1.mul(m2), c1 * c2));
            }
        }
        Polynomial::from_terms(out)
    }

    /// Apply an annotation mapping homomorphically:
    /// `h(a+b)=h(a)+h(b)`, `h(a·b)=h(a)·h(b)`.
    pub fn map(&self, h: &Mapping) -> Polynomial {
        Polynomial::from_terms(self.terms.iter().map(|(m, c)| (m.map(h), *c)))
    }

    /// All distinct annotations mentioned.
    pub fn annotations(&self) -> Vec<AnnId> {
        let mut out: Vec<AnnId> = self
            .terms
            .iter()
            .flat_map(|(m, _)| m.factors().iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of annotation occurrences, with repetitions (the polynomial's
    /// contribution to provenance size).
    pub fn size(&self) -> usize {
        self.terms.iter().map(|(m, _)| m.degree()).sum()
    }

    /// Boolean evaluation under a valuation: `+`↦∨, `·`↦∧.
    pub fn eval_bool(&self, v: &Valuation) -> bool {
        self.terms.iter().any(|(m, _)| m.eval_bool(v))
    }

    /// Counting evaluation: annotations map to 0/1, coefficients and
    /// multiplicities count derivations.
    pub fn eval_count(&self, v: &Valuation) -> u64 {
        self.terms
            .iter()
            .map(|(m, c)| if m.eval_bool(v) { *c } else { 0 })
            .sum()
    }

    /// Generic evaluation into any semiring through a variable assignment.
    pub fn eval_in<K: Semiring>(&self, assign: impl Fn(AnnId) -> K) -> K {
        let mut acc = K::zero();
        for (m, c) in &self.terms {
            let mut term = K::one();
            for &a in m.factors() {
                term = term.mul(&assign(a));
            }
            // coefficient c acts as c-fold addition
            for _ in 0..*c {
                acc = acc.add(&term);
            }
        }
        acc
    }

    /// Render with a name resolver (used by the display module).
    pub fn render(&self, name: &dyn Fn(AnnId) -> String) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut parts = Vec::with_capacity(self.terms.len());
        for (m, c) in &self.terms {
            let mono = if m.is_one() {
                "1".to_owned()
            } else {
                m.factors()
                    .iter()
                    .map(|&a| name(a))
                    .collect::<Vec<_>>()
                    .join("·")
            };
            if *c == 1 {
                parts.push(mono);
            } else {
                parts.push(format!("{c}{mono}"));
            }
        }
        parts.join(" + ")
    }
}

impl fmt::Debug for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(&|a| format!("{a:?}")))
    }
}

impl From<AnnId> for Polynomial {
    fn from(a: AnnId) -> Self {
        Polynomial::var(a)
    }
}

/// Evaluate a polynomial into the boolean semiring via a valuation, exposed
/// as a free function for symmetry with [`eval_count`].
pub fn eval_bool(p: &Polynomial, v: &Valuation) -> Bool {
    Bool(p.eval_bool(v))
}

/// Evaluate a polynomial into the counting semiring via a valuation.
pub fn eval_count(p: &Polynomial, v: &Valuation) -> Count {
    Count(p.eval_count(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    fn x() -> Polynomial {
        Polynomial::var(a(0))
    }
    fn y() -> Polynomial {
        Polynomial::var(a(1))
    }
    fn z() -> Polynomial {
        Polynomial::var(a(2))
    }

    #[test]
    fn zero_and_one_identities() {
        let p = x().add(&y());
        assert_eq!(p.add(&Polynomial::zero()), p);
        assert_eq!(p.mul(&Polynomial::one()), p);
        assert_eq!(p.mul(&Polynomial::zero()), Polynomial::zero());
        assert!(Polynomial::zero().is_zero());
        assert!(Polynomial::one().is_one());
    }

    #[test]
    fn addition_collects_like_terms() {
        let p = x().add(&x());
        assert_eq!(p.terms().len(), 1);
        assert_eq!(p.terms()[0].1, 2);
        assert_eq!(p.size(), 1);
    }

    #[test]
    fn multiplication_distributes() {
        let lhs = x().mul(&y().add(&z()));
        let rhs = x().mul(&y()).add(&x().mul(&z()));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn mapping_is_homomorphic() {
        // (x+y)·z mapped with {x,y}->g equals (g+g)·z = 2g·z
        let g = a(9);
        let h = Mapping::group(&[a(0), a(1)], g);
        let p = x().add(&y()).mul(&z());
        let mapped = p.map(&h);
        assert_eq!(
            mapped,
            Polynomial::from_terms([(Monomial::from_factors(vec![g, a(2)]), 2)])
        );
    }

    #[test]
    fn eval_bool_and_count_agree_on_positivity() {
        let p = x().mul(&y()).add(&z());
        let mut v = Valuation::all_true();
        v.set(a(2), false);
        assert!(p.eval_bool(&v));
        assert_eq!(p.eval_count(&v), 1);
        v.set(a(0), false);
        assert!(!p.eval_bool(&v));
        assert_eq!(p.eval_count(&v), 0);
    }

    #[test]
    fn eval_in_generic_matches_specialized() {
        let p = x().mul(&y()).add(&z().mul(&z()));
        let mut v = Valuation::all_true();
        v.set(a(1), false);
        let b = p.eval_in(|ann| Bool(v.truth(ann)));
        assert_eq!(b.0, p.eval_bool(&v));
        let c = p.eval_in(|ann| Count(u64::from(v.truth(ann))));
        assert_eq!(c.0, p.eval_count(&v));
    }

    #[test]
    fn size_counts_occurrences_with_repetition() {
        // x·y + z has 3 occurrences; x^2 has 2.
        assert_eq!(x().mul(&y()).add(&z()).size(), 3);
        assert_eq!(x().mul(&x()).size(), 2);
    }

    #[test]
    fn annotations_are_deduped_and_sorted() {
        let p = z().mul(&x()).add(&x());
        assert_eq!(p.annotations(), vec![a(0), a(2)]);
    }

    #[test]
    fn render_pretty_prints() {
        let p = x().mul(&y()).add(&x()).add(&x());
        let s = p.render(&|ann| format!("A{}", ann.index()));
        assert_eq!(s, "2A0 + A0·A1");
    }
}
