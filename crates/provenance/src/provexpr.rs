//! Object-keyed vector provenance: `P = P_movie1 ⊕_M P_movie2 ⊕_M …`
//! (Example 4.2.3).
//!
//! Evaluating such a provenance under a valuation yields a *vector* of
//! aggregated values, one coordinate per object (movie, Wikipedia page, …).
//! Objects are themselves annotations, so a mapping may merge object keys
//! too (Wikipedia pages mapped to a WordNet concept) — entries then re-key
//! and combine, exactly the "vectors of different size" transformation of
//! Example 5.2.1.

use std::collections::BTreeMap;

use crate::aggexpr::AggExpr;
use crate::annot::AnnId;
use crate::eval::EvalVector;
use crate::mapping::Mapping;
use crate::monoid::{AggKind, AggValue};
use crate::tensor::Tensor;
use crate::valuation::Valuation;

/// A provenance expression over multiple objects.
#[derive(Clone, Debug, PartialEq)]
pub struct ProvExpr {
    /// `(object annotation, aggregated expression)`, in insertion order.
    pub(crate) entries: Vec<(AnnId, AggExpr)>,
    pub(crate) kind: AggKind,
}

impl ProvExpr {
    /// Empty expression with the given aggregation.
    pub fn new(kind: AggKind) -> Self {
        ProvExpr {
            entries: Vec::new(),
            kind,
        }
    }

    /// The aggregation kind shared by all coordinates.
    pub fn kind(&self) -> AggKind {
        self.kind
    }

    /// Add a tensor to the given object's aggregation (creating the entry
    /// when absent). Call [`ProvExpr::simplify`] after bulk insertion.
    pub fn push(&mut self, object: AnnId, t: Tensor) {
        match self.entries.iter_mut().find(|(o, _)| *o == object) {
            Some((_, e)) => e.push(t),
            None => {
                let mut e = AggExpr::new(self.kind);
                e.push(t);
                self.entries.push((object, e));
            }
        }
    }

    /// Insert a complete aggregated expression for an object.
    pub fn insert(&mut self, object: AnnId, expr: AggExpr) {
        debug_assert_eq!(expr.kind(), self.kind);
        match self.entries.iter_mut().find(|(o, _)| *o == object) {
            Some((_, existing)) => {
                let mut tensors: Vec<Tensor> = existing.tensors().to_vec();
                tensors.extend(expr.tensors().iter().cloned());
                *existing = AggExpr::from_tensors(tensors, self.kind);
            }
            None => self.entries.push((object, expr)),
        }
    }

    /// `(object, expression)` coordinates.
    pub fn entries(&self) -> &[(AnnId, AggExpr)] {
        &self.entries
    }

    /// Number of object coordinates.
    pub fn num_objects(&self) -> usize {
        self.entries.len()
    }

    /// Provenance size: total annotation occurrences, with repetitions.
    pub fn size(&self) -> usize {
        self.entries.iter().map(|(_, e)| e.size()).sum()
    }

    /// Distinct annotations mentioned anywhere (objects included, since
    /// object keys also appear inside tensor monomials in our datasets).
    pub fn annotations(&self) -> Vec<AnnId> {
        let mut out: Vec<AnnId> = self
            .entries
            .iter()
            .flat_map(|(o, e)| {
                let mut v = e.annotations();
                v.push(*o);
                v
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Simplify every coordinate.
    pub fn simplify(&mut self) {
        for (_, e) in &mut self.entries {
            e.simplify();
        }
    }

    /// Apply a mapping: map every aggregation, re-key objects through `h`,
    /// and merge coordinates that collide (the object-merging congruence).
    pub fn map(&self, h: &Mapping) -> ProvExpr {
        let mut out = ProvExpr::new(self.kind);
        let mut index: BTreeMap<AnnId, usize> = BTreeMap::new();
        for (object, expr) in &self.entries {
            let new_object = h.image(*object);
            let mapped = expr.map(h);
            match index.get(&new_object) {
                Some(&ix) => {
                    let mut tensors: Vec<Tensor> = out.entries[ix].1.tensors().to_vec();
                    tensors.extend(mapped.tensors().iter().cloned());
                    out.entries[ix].1 = AggExpr::from_tensors(tensors, self.kind);
                }
                None => {
                    index.insert(new_object, out.entries.len());
                    out.entries.push((new_object, mapped));
                }
            }
        }
        out
    }

    /// Evaluate under a valuation into a coordinate vector. A cancelled
    /// object annotation zeroes its coordinate implicitly (its tensors all
    /// mention the object, so they die with it) — but we also respect a
    /// direct cancellation of the key itself for datasets whose tensors do
    /// not embed the object.
    pub fn eval(&self, v: &Valuation) -> EvalVector {
        let coords = self
            .entries
            .iter()
            .map(|(o, e)| {
                let agg = if v.truth(*o) {
                    e.eval(v)
                } else {
                    AggValue::empty()
                };
                (*o, agg)
            })
            .collect();
        EvalVector::new(coords, self.kind)
    }

    /// Iterate all tensors with their object key.
    pub fn tensors(&self) -> impl Iterator<Item = (AnnId, &Tensor)> {
        self.entries
            .iter()
            .flat_map(|(o, e)| e.tensors().iter().map(move |t| (*o, t)))
    }

    /// Discharge all guards under the given partial valuation: guards that
    /// hold are removed, tensors whose guards fail are dropped. This is
    /// Example 3.1.1's simplification ("map all Sᵢ annotations to 1 so we
    /// can discard the inequality terms") generalized to any assumption.
    pub fn discharge_guards(&self, assumption: &Valuation) -> ProvExpr {
        let mut out = ProvExpr::new(self.kind);
        for (object, expr) in &self.entries {
            let tensors: Vec<Tensor> = expr
                .tensors()
                .iter()
                .filter(|t| t.guards.iter().all(|g| g.eval(assumption)))
                .map(|t| Tensor::new(t.prov.clone(), t.value))
                .collect();
            if !tensors.is_empty() {
                out.entries
                    .push((*object, AggExpr::from_tensors(tensors, self.kind)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polynomial::Polynomial;

    fn a(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    /// Example 4.2.3: P₀ = P_MP ⊕_M P_BJ with
    /// P_MP = U₁⊗(3,1) ⊕ U₂⊗(5,1) ⊕ U₃⊗(3,1), P_BJ = U₂⊗(4,1).
    /// Users are a1..a3; movies are a10 (MatchPoint), a11 (BlueJasmine).
    fn p0() -> ProvExpr {
        let mut p = ProvExpr::new(AggKind::Max);
        for (user, score) in [(1, 3.0), (2, 5.0), (3, 3.0)] {
            p.push(
                a(10),
                Tensor::new(Polynomial::var(a(user)), AggValue::single(score)),
            );
        }
        p.push(
            a(11),
            Tensor::new(Polynomial::var(a(2)), AggValue::single(4.0)),
        );
        p.simplify();
        p
    }

    #[test]
    fn eval_yields_one_coordinate_per_object() {
        let p = p0();
        let v = p.eval(&Valuation::all_true());
        assert_eq!(v.scalar_for(a(10)), Some(5.0));
        assert_eq!(v.scalar_for(a(11)), Some(4.0));
    }

    #[test]
    fn cancelling_u2_zeroes_blue_jasmine() {
        let p = p0();
        let v = p.eval(&Valuation::cancel(&[a(2)]));
        assert_eq!(v.scalar_for(a(10)), Some(3.0));
        assert_eq!(v.scalar_for(a(11)), Some(0.0));
    }

    #[test]
    fn mapping_users_keeps_object_keys() {
        // Example 4.2.3's P₀′: Female = {U1,U2} → a20.
        let p = p0().map(&Mapping::group(&[a(1), a(2)], a(20)));
        assert_eq!(p.num_objects(), 2);
        // MatchPoint: Female⊗(5,2) ⊕ U3⊗(3,1); BlueJasmine: Female⊗(4,1)
        assert_eq!(p.entries()[0].1.len(), 2);
        assert_eq!(p.entries()[1].1.len(), 1);
        assert_eq!(p.size(), 3, "merging U1,U2 removed one occurrence");
    }

    #[test]
    fn mapping_objects_merges_coordinates() {
        // Merge the two movies into one "WoodyAllen" object (a30): the two
        // aggregations concatenate and simplify.
        let p = p0().map(&Mapping::group(&[a(10), a(11)], a(30)));
        assert_eq!(p.num_objects(), 1);
        let v = p.eval(&Valuation::all_true());
        assert_eq!(v.scalar_for(a(30)), Some(5.0)); // MAX over all ratings
    }

    #[test]
    fn cancelling_object_key_zeroes_coordinate() {
        let p = p0();
        let v = p.eval(&Valuation::cancel(&[a(11)]));
        assert_eq!(v.scalar_for(a(11)), Some(0.0));
        assert_eq!(v.scalar_for(a(10)), Some(5.0));
    }

    #[test]
    fn size_counts_all_occurrences() {
        assert_eq!(p0().size(), 4);
    }

    #[test]
    fn discharge_guards_removes_satisfied_and_drops_failed() {
        use crate::guard::{CmpOp, Guard};
        let mut p = ProvExpr::new(AggKind::Max);
        // Tensor guarded on a2 being live with weight 5 > 2 (holds when a2
        // is assumed true) and one guarded on weight 1 > 2 (never holds).
        p.push(
            a(10),
            Tensor::guarded(
                Polynomial::var(a(0)),
                vec![Guard::single(Polynomial::var(a(2)), 5.0, CmpOp::Gt, 2.0)],
                AggValue::single(3.0),
            ),
        );
        p.push(
            a(10),
            Tensor::guarded(
                Polynomial::var(a(1)),
                vec![Guard::single(Polynomial::var(a(2)), 1.0, CmpOp::Gt, 2.0)],
                AggValue::single(5.0),
            ),
        );
        let simplified = p.discharge_guards(&Valuation::all_true());
        assert_eq!(simplified.size(), 1, "one tensor kept, guard removed");
        assert!(simplified.tensors().all(|(_, t)| t.guards.is_empty()));
        assert_eq!(
            simplified.eval(&Valuation::all_true()).scalar_for(a(10)),
            Some(3.0)
        );
    }
}
