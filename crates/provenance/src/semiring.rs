//! Commutative semirings (§2.2).
//!
//! A commutative semiring `(K, +, ·, 0, 1)` has two commutative monoids with
//! `·` distributing over `+` and `0` annihilating. The provenance semiring
//! `N[Ann]` captures positive relational queries; specializations
//! (boolean, counting, tropical) arise as homomorphic images and drive
//! evaluation under valuations.

/// A commutative semiring.
pub trait Semiring: Clone + PartialEq {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Addition (alternative use of data).
    fn add(&self, other: &Self) -> Self;
    /// Multiplication (joint use of data).
    fn mul(&self, other: &Self) -> Self;

    /// True when equal to [`Semiring::zero`].
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
    /// True when equal to [`Semiring::one`].
    fn is_one(&self) -> bool {
        *self == Self::one()
    }
}

/// The boolean semiring `({false,true}, ∨, ∧, false, true)` — the image of
/// `N[Ann]` under a truth valuation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bool(pub bool);

impl Semiring for Bool {
    fn zero() -> Self {
        Bool(false)
    }
    fn one() -> Self {
        Bool(true)
    }
    fn add(&self, other: &Self) -> Self {
        Bool(self.0 || other.0)
    }
    fn mul(&self, other: &Self) -> Self {
        Bool(self.0 && other.0)
    }
}

/// The counting semiring `(ℕ, +, ×, 0, 1)` — evaluates `N[Ann]` polynomials
/// numerically when annotations are mapped to multiplicities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Count(pub u64);

impl Semiring for Count {
    fn zero() -> Self {
        Count(0)
    }
    fn one() -> Self {
        Count(1)
    }
    fn add(&self, other: &Self) -> Self {
        Count(self.0.saturating_add(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        Count(self.0.saturating_mul(other.0))
    }
}

/// The tropical semiring `(ℕ^∞, min, +, ∞, 0)` used for DDP cost aggregation
/// (Example 5.2.2): addition is minimum (best execution), multiplication is
/// cost accumulation along an execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Tropical {
    /// A finite cost.
    Cost(f64),
    /// The additive identity `∞` (no feasible execution).
    Infinity,
}

impl Tropical {
    /// Finite cost accessor.
    pub fn cost(&self) -> Option<f64> {
        match self {
            Tropical::Cost(c) => Some(*c),
            Tropical::Infinity => None,
        }
    }
}

impl Semiring for Tropical {
    fn zero() -> Self {
        Tropical::Infinity
    }
    fn one() -> Self {
        Tropical::Cost(0.0)
    }
    fn add(&self, other: &Self) -> Self {
        match (self, other) {
            (Tropical::Infinity, x) | (x, Tropical::Infinity) => *x,
            (Tropical::Cost(a), Tropical::Cost(b)) => Tropical::Cost(a.min(*b)),
        }
    }
    fn mul(&self, other: &Self) -> Self {
        match (self, other) {
            (Tropical::Infinity, _) | (_, Tropical::Infinity) => Tropical::Infinity,
            (Tropical::Cost(a), Tropical::Cost(b)) => Tropical::Cost(a + b),
        }
    }
}

/// Fold a sequence with the semiring's addition, starting from `0`.
pub fn sum<K: Semiring>(items: impl IntoIterator<Item = K>) -> K {
    items.into_iter().fold(K::zero(), |acc, x| acc.add(&x))
}

/// Fold a sequence with the semiring's multiplication, starting from `1`.
pub fn product<K: Semiring>(items: impl IntoIterator<Item = K>) -> K {
    items.into_iter().fold(K::one(), |acc, x| acc.mul(&x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_semiring_axioms<K: Semiring + std::fmt::Debug>(a: K, b: K, c: K) {
        // Commutativity
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.mul(&b), b.mul(&a));
        // Associativity
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        // Identities
        assert_eq!(a.add(&K::zero()), a);
        assert_eq!(a.mul(&K::one()), a);
        // Annihilation
        assert_eq!(a.mul(&K::zero()), K::zero());
        // Distributivity
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn bool_semiring_axioms() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    check_semiring_axioms(Bool(a), Bool(b), Bool(c));
                }
            }
        }
    }

    #[test]
    fn count_semiring_axioms() {
        check_semiring_axioms(Count(2), Count(3), Count(5));
        check_semiring_axioms(Count(0), Count(7), Count(1));
    }

    #[test]
    fn tropical_semiring_axioms() {
        check_semiring_axioms(
            Tropical::Cost(2.0),
            Tropical::Cost(3.0),
            Tropical::Cost(5.0),
        );
        check_semiring_axioms(Tropical::Infinity, Tropical::Cost(7.0), Tropical::Cost(1.0));
        // min/plus specifics
        assert_eq!(
            Tropical::Cost(2.0).add(&Tropical::Cost(3.0)),
            Tropical::Cost(2.0)
        );
        assert_eq!(
            Tropical::Cost(2.0).mul(&Tropical::Cost(3.0)),
            Tropical::Cost(5.0)
        );
    }

    #[test]
    fn sum_product_helpers() {
        assert_eq!(sum([Count(1), Count(2), Count(3)]), Count(6));
        assert_eq!(product([Count(2), Count(3)]), Count(6));
        assert_eq!(sum(Vec::<Count>::new()), Count(0));
        assert_eq!(product(Vec::<Count>::new()), Count(1));
    }
}
