//! Descriptive statistics over provenance expressions — the numbers the
//! PROX UI surfaces next to an expression (size, tensors, annotation
//! breakdown) and the experiment reports aggregate.

use std::collections::HashMap;

use crate::annot::DomainId;
use crate::provexpr::ProvExpr;
use crate::store::AnnStore;

/// Summary statistics of a provenance expression.
#[derive(Clone, Debug, PartialEq)]
pub struct ExprStats {
    /// Provenance size (annotation occurrences, with repetitions).
    pub size: usize,
    /// Number of object coordinates.
    pub objects: usize,
    /// Number of tensors across all coordinates.
    pub tensors: usize,
    /// Number of guarded tensors.
    pub guarded_tensors: usize,
    /// Distinct annotations mentioned.
    pub distinct_annotations: usize,
    /// Distinct summary annotations mentioned.
    pub summary_annotations: usize,
    /// Distinct annotations per domain.
    pub per_domain: Vec<(DomainId, usize)>,
    /// Largest tensor degree (annotation occurrences in one tensor).
    pub max_tensor_size: usize,
    /// Total contributor count folded into the expression's values.
    pub total_contributions: u64,
}

impl ExprStats {
    /// Compute statistics for an expression.
    pub fn of(expr: &ProvExpr, store: &AnnStore) -> Self {
        let mut tensors = 0usize;
        let mut guarded_tensors = 0usize;
        let mut max_tensor_size = 0usize;
        let mut total_contributions = 0u64;
        for (_, t) in expr.tensors() {
            tensors += 1;
            if !t.guards.is_empty() {
                guarded_tensors += 1;
            }
            max_tensor_size = max_tensor_size.max(t.size());
            total_contributions += t.value.count;
        }
        let anns = expr.annotations();
        let mut per_domain: HashMap<DomainId, usize> = HashMap::new();
        let mut summary_annotations = 0usize;
        for &a in &anns {
            let ann = store.get(a);
            *per_domain.entry(ann.domain).or_default() += 1;
            if ann.kind.is_summary() {
                summary_annotations += 1;
            }
        }
        let mut per_domain: Vec<(DomainId, usize)> = per_domain.into_iter().collect();
        per_domain.sort_by_key(|&(d, _)| d);
        ExprStats {
            size: expr.size(),
            objects: expr.num_objects(),
            tensors,
            guarded_tensors,
            distinct_annotations: anns.len(),
            summary_annotations,
            per_domain,
            max_tensor_size,
            total_contributions,
        }
    }

    /// Compression ratio relative to an original size (1.0 = unchanged).
    pub fn compression_vs(&self, original_size: usize) -> f64 {
        if original_size == 0 {
            1.0
        } else {
            self.size as f64 / original_size as f64
        }
    }

    /// Render as a short text block.
    pub fn render(&self, store: &AnnStore) -> String {
        let domains = self
            .per_domain
            .iter()
            .map(|&(d, n)| format!("{}: {n}", store.domain_name(d)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "size {} | {} objects | {} tensors ({} guarded) | {} annotations \
             ({} summaries) | domains: {domains} | contributions: {}",
            self.size,
            self.objects,
            self.tensors,
            self.guarded_tensors,
            self.distinct_annotations,
            self.summary_annotations,
            self.total_contributions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{CmpOp, Guard};
    use crate::monoid::{AggKind, AggValue};
    use crate::polynomial::Polynomial;
    use crate::tensor::Tensor;

    fn setup() -> (AnnStore, ProvExpr) {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[]);
        let u2 = s.add_base_with("U2", "users", &[]);
        let m = s.add_base_with("M", "movies", &[]);
        let dom = s.domain("users");
        let g = s.add_summary("G", dom, &[u1, u2]);
        let mut p = ProvExpr::new(AggKind::Max);
        p.push(m, Tensor::new(Polynomial::var(g), AggValue::new(5.0, 2)));
        p.push(
            m,
            Tensor::guarded(
                Polynomial::var(u1),
                vec![Guard::single(Polynomial::var(u2), 3.0, CmpOp::Gt, 2.0)],
                AggValue::single(3.0),
            ),
        );
        (s, p)
    }

    #[test]
    fn counts_are_correct() {
        let (s, p) = setup();
        let st = ExprStats::of(&p, &s);
        assert_eq!(st.objects, 1);
        assert_eq!(st.tensors, 2);
        assert_eq!(st.guarded_tensors, 1);
        assert_eq!(st.size, 3); // g + u1 + u2(in guard)
        assert_eq!(st.summary_annotations, 1);
        assert_eq!(st.total_contributions, 3);
        assert_eq!(st.max_tensor_size, 2);
    }

    #[test]
    fn per_domain_breakdown() {
        let (mut s, p) = setup();
        let st = ExprStats::of(&p, &s);
        // users domain: u1, u2, g; movies: m (object key counts as mention)
        let users = s.domain("users");
        let found = st
            .per_domain
            .iter()
            .find(|&&(d, _)| d == users)
            .map(|&(_, n)| n);
        assert_eq!(found, Some(3));
    }

    #[test]
    fn compression_ratio() {
        let (s, p) = setup();
        let st = ExprStats::of(&p, &s);
        assert!((st.compression_vs(6) - 0.5).abs() < 1e-12);
        assert_eq!(st.compression_vs(0), 1.0);
    }

    #[test]
    fn render_mentions_key_numbers() {
        let (s, p) = setup();
        let txt = ExprStats::of(&p, &s).render(&s);
        assert!(txt.contains("size 3"));
        assert!(txt.contains("1 guarded"));
    }
}
