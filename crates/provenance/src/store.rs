//! The annotation store: interner for annotations, domains, attribute names
//! and attribute values.
//!
//! A store is created once per provenance workload and grows monotonically:
//! summarization adds summary annotations but never removes or mutates base
//! ones, so `AnnId`s handed out earlier stay valid for the lifetime of the
//! store.

use std::collections::HashMap;

use prox_obs::Counter;

use crate::annot::{AnnId, AnnKind, Annotation, AttrId, AttrValueId, DomainId};

/// Base annotations interned across all stores.
static BASE_CREATED: Counter = Counter::new("store/annotations_created");
/// Summary annotations interned across all stores.
static SUMMARIES_CREATED: Counter = Counter::new("store/summaries_created");

/// Interner and registry for everything annotation-related.
#[derive(Clone, Debug, Default)]
pub struct AnnStore {
    pub(crate) anns: Vec<Annotation>,
    pub(crate) ann_by_name: HashMap<String, AnnId>,
    pub(crate) domains: Vec<String>,
    pub(crate) domain_by_name: HashMap<String, DomainId>,
    pub(crate) attrs: Vec<String>,
    pub(crate) attr_by_name: HashMap<String, AttrId>,
    pub(crate) values: Vec<String>,
    pub(crate) value_by_name: HashMap<String, AttrValueId>,
}

impl AnnStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of annotations (base + summary).
    pub fn len(&self) -> usize {
        self.anns.len()
    }

    /// True when no annotation has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.anns.is_empty()
    }

    /// Intern a domain name, returning its id (idempotent).
    pub fn domain(&mut self, name: &str) -> DomainId {
        if let Some(&id) = self.domain_by_name.get(name) {
            return id;
        }
        assert!(self.domains.len() <= u16::MAX as usize, "too many domains");
        let id = DomainId(self.domains.len() as u16);
        self.domains.push(name.to_owned());
        self.domain_by_name.insert(name.to_owned(), id);
        id
    }

    /// Intern an attribute name, returning its id (idempotent).
    pub fn attr(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.attr_by_name.get(name) {
            return id;
        }
        assert!(self.attrs.len() <= u16::MAX as usize, "too many attributes");
        let id = AttrId(self.attrs.len() as u16);
        self.attrs.push(name.to_owned());
        self.attr_by_name.insert(name.to_owned(), id);
        id
    }

    /// Intern an attribute value, returning its id (idempotent).
    pub fn value(&mut self, name: &str) -> AttrValueId {
        if let Some(&id) = self.value_by_name.get(name) {
            return id;
        }
        assert!(self.values.len() <= u32::MAX as usize, "too many values");
        let id = AttrValueId(self.values.len() as u32);
        self.values.push(name.to_owned());
        self.value_by_name.insert(name.to_owned(), id);
        id
    }

    /// Add a base annotation. Names must be unique within the store;
    /// re-adding an existing name returns the existing id only when domain
    /// matches, and panics otherwise (a name collision across domains is a
    /// dataset construction bug worth failing loudly on).
    pub fn add_base(
        &mut self,
        name: &str,
        domain: DomainId,
        mut attrs: Vec<(AttrId, AttrValueId)>,
    ) -> AnnId {
        if let Some(&id) = self.ann_by_name.get(name) {
            assert_eq!(
                self.anns[id.index()].domain,
                domain,
                "annotation {name:?} re-added with a different domain"
            );
            return id;
        }
        attrs.sort_unstable_by_key(|&(a, _)| a);
        attrs.dedup_by_key(|&mut (a, _)| a);
        BASE_CREATED.incr();
        let id = AnnId::from_index(self.anns.len());
        self.anns.push(Annotation {
            name: name.to_owned(),
            domain,
            attrs,
            kind: AnnKind::Base,
            concept: None,
        });
        self.ann_by_name.insert(name.to_owned(), id);
        id
    }

    /// Add a summary annotation over `members` (which may themselves be
    /// summaries; they are flattened to base annotations here). The summary
    /// keeps exactly the attribute values shared by all base members.
    pub fn add_summary(&mut self, name: &str, domain: DomainId, members: &[AnnId]) -> AnnId {
        assert!(!members.is_empty(), "summary annotation needs members");
        let mut base = Vec::new();
        for &m in members {
            match &self.anns[m.index()].kind {
                AnnKind::Base => base.push(m),
                AnnKind::Summary { members } => base.extend_from_slice(members),
            }
        }
        base.sort_unstable();
        base.dedup();
        for &b in &base {
            assert_eq!(
                self.anns[b.index()].domain,
                domain,
                "summary {name:?} mixes annotation domains"
            );
        }
        let shared = self.shared_attrs(&base);
        // Summary names need not be globally unique (two different selections
        // may both produce "Female"); disambiguate on collision.
        let unique_name = if self.ann_by_name.contains_key(name) {
            let mut n = 2usize;
            loop {
                let cand = format!("{name}#{n}");
                if !self.ann_by_name.contains_key(&cand) {
                    break cand;
                }
                n += 1;
            }
        } else {
            name.to_owned()
        };
        let concept = self.shared_concept(&base);
        SUMMARIES_CREATED.incr();
        let id = AnnId::from_index(self.anns.len());
        self.anns.push(Annotation {
            name: unique_name.clone(),
            domain,
            attrs: shared,
            kind: AnnKind::Summary { members: base },
            concept,
        });
        self.ann_by_name.insert(unique_name, id);
        id
    }

    /// Attribute values common to every annotation in `ids`.
    pub fn shared_attrs(&self, ids: &[AnnId]) -> Vec<(AttrId, AttrValueId)> {
        let Some((&first, rest)) = ids.split_first() else {
            return Vec::new();
        };
        let mut shared = self.anns[first.index()].attrs.clone();
        for &id in rest {
            let ann = &self.anns[id.index()];
            shared.retain(|&(a, v)| ann.attr(a) == Some(v));
            if shared.is_empty() {
                break;
            }
        }
        shared
    }

    fn shared_concept(&self, ids: &[AnnId]) -> Option<u32> {
        let first = self.anns[ids.first()?.index()].concept?;
        ids.iter()
            .all(|&id| self.anns[id.index()].concept == Some(first))
            .then_some(first)
    }

    /// Attach a taxonomy concept to an annotation.
    pub fn set_concept(&mut self, id: AnnId, concept: u32) {
        self.anns[id.index()].concept = Some(concept);
    }

    /// Look up an annotation record.
    #[inline]
    pub fn get(&self, id: AnnId) -> &Annotation {
        &self.anns[id.index()]
    }

    /// Look up an annotation by name.
    pub fn by_name(&self, name: &str) -> Option<AnnId> {
        self.ann_by_name.get(name).copied()
    }

    /// Name of an annotation.
    pub fn name(&self, id: AnnId) -> &str {
        &self.anns[id.index()].name
    }

    /// Name of a domain.
    pub fn domain_name(&self, id: DomainId) -> &str {
        &self.domains[id.index()]
    }

    /// Name of an attribute.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id.0 as usize]
    }

    /// Name of an attribute value.
    pub fn value_name(&self, id: AttrValueId) -> &str {
        &self.values[id.0 as usize]
    }

    /// Iterate over all annotation ids currently interned.
    pub fn ids(&self) -> impl Iterator<Item = AnnId> + '_ {
        (0..self.anns.len()).map(AnnId::from_index)
    }

    /// Iterate over all `(id, annotation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AnnId, &Annotation)> {
        self.anns
            .iter()
            .enumerate()
            .map(|(ix, a)| (AnnId::from_index(ix), a))
    }

    /// All base annotations an id stands for: `[id]` when base, its flattened
    /// members when a summary.
    pub fn base_of(&self, id: AnnId) -> Vec<AnnId> {
        match &self.anns[id.index()].kind {
            AnnKind::Base => vec![id],
            AnnKind::Summary { members } => members.clone(),
        }
    }

    /// Convenience: intern a base annotation giving attribute name/value
    /// strings directly.
    pub fn add_base_with(&mut self, name: &str, domain: &str, attrs: &[(&str, &str)]) -> AnnId {
        let dom = self.domain(domain);
        let attrs = attrs
            .iter()
            .map(|&(a, v)| (self.attr(a), self.value(v)))
            .collect();
        self.add_base(name, dom, attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut s = AnnStore::new();
        let d1 = s.domain("users");
        let d2 = s.domain("users");
        assert_eq!(d1, d2);
        let a1 = s.attr("gender");
        let a2 = s.attr("gender");
        assert_eq!(a1, a2);
        let v1 = s.value("Female");
        let v2 = s.value("Female");
        assert_eq!(v1, v2);
    }

    #[test]
    fn base_annotation_roundtrip() {
        let mut s = AnnStore::new();
        let id = s.add_base_with("U1", "users", &[("gender", "F"), ("age", "25-34")]);
        assert_eq!(s.name(id), "U1");
        assert_eq!(s.by_name("U1"), Some(id));
        let gender = s.attr("gender");
        let f = s.value("F");
        assert_eq!(s.get(id).attr(gender), Some(f));
        assert_eq!(s.base_of(id), vec![id]);
    }

    #[test]
    fn summary_keeps_shared_attributes_only() {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F"), ("age", "25-34")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "F"), ("age", "35-44")]);
        let dom = s.domain("users");
        let g = s.add_summary("Female", dom, &[u1, u2]);
        let gender = s.attr("gender");
        let age = s.attr("age");
        let f = s.value("F");
        assert_eq!(s.get(g).attr(gender), Some(f));
        assert_eq!(s.get(g).attr(age), None);
        assert_eq!(s.base_of(g), vec![u1, u2]);
        assert!(s.get(g).kind.is_summary());
    }

    #[test]
    fn nested_summary_flattens_members() {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "F")]);
        let u3 = s.add_base_with("U3", "users", &[("gender", "F")]);
        let dom = s.domain("users");
        let g1 = s.add_summary("Female", dom, &[u1, u2]);
        let g2 = s.add_summary("FemaleAll", dom, &[g1, u3]);
        assert_eq!(s.base_of(g2), vec![u1, u2, u3]);
    }

    #[test]
    fn summary_name_collision_is_disambiguated() {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[]);
        let u2 = s.add_base_with("U2", "users", &[]);
        let u3 = s.add_base_with("U3", "users", &[]);
        let dom = s.domain("users");
        let g1 = s.add_summary("G", dom, &[u1, u2]);
        let g2 = s.add_summary("G", dom, &[g1, u3]);
        assert_ne!(s.name(g1), s.name(g2));
    }

    #[test]
    #[should_panic(expected = "different domain")]
    fn reusing_a_name_across_domains_panics() {
        let mut s = AnnStore::new();
        s.add_base_with("X", "users", &[]);
        s.add_base_with("X", "movies", &[]);
    }
}
