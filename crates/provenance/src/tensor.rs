//! Tensors: provenance ⊗ value pairs (§2.2).
//!
//! A tensor couples an `N[Ann]` provenance term (optionally guarded by
//! comparison expressions) with an aggregation-monoid value, e.g.
//! `U₁ · [S₁·U₁ ⊗ 5 > 2] ⊗ (3, 1)`.

use crate::annot::AnnId;
use crate::guard::Guard;
use crate::mapping::Mapping;
use crate::monoid::AggValue;
use crate::polynomial::Polynomial;
use crate::valuation::Valuation;

/// One summand of an aggregated value's formal sum.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    /// Tuple provenance (the `tᵢ` part).
    pub prov: Polynomial,
    /// Conditional guards multiplied into the provenance.
    pub guards: Vec<Guard>,
    /// The paired monoid value (the `vᵢ` part).
    pub value: AggValue,
}

impl Tensor {
    /// Unguarded tensor.
    pub fn new(prov: Polynomial, value: AggValue) -> Self {
        Tensor {
            prov,
            guards: Vec::new(),
            value,
        }
    }

    /// Guarded tensor.
    pub fn guarded(prov: Polynomial, guards: Vec<Guard>, value: AggValue) -> Self {
        Tensor {
            prov,
            guards,
            value,
        }
    }

    /// Is this tensor live under `v`? (Its provenance evaluates truthy and
    /// every guard is satisfied: `0 ⊗ m ≡ 0`.)
    pub fn live(&self, v: &Valuation) -> bool {
        self.prov.eval_bool(v) && self.guards.iter().all(|g| g.eval(v))
    }

    /// Apply an annotation mapping (`h(k ⊗ m) = h(k) ⊗ m`).
    pub fn map(&self, h: &Mapping) -> Tensor {
        Tensor {
            prov: self.prov.map(h),
            guards: self.guards.iter().map(|g| g.map(h)).collect(),
            value: self.value,
        }
    }

    /// Annotation occurrences (provenance + guards), with repetitions.
    pub fn size(&self) -> usize {
        self.prov.size() + self.guards.iter().map(Guard::size).sum::<usize>()
    }

    /// Distinct annotations mentioned.
    pub fn annotations(&self) -> Vec<AnnId> {
        let mut out = self.prov.annotations();
        for g in &self.guards {
            out.extend(g.annotations());
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::CmpOp;

    fn a(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    #[test]
    fn liveness_requires_prov_and_guards() {
        let t = Tensor::guarded(
            Polynomial::var(a(0)),
            vec![Guard::single(Polynomial::var(a(1)), 5.0, CmpOp::Gt, 2.0)],
            AggValue::single(3.0),
        );
        assert!(t.live(&Valuation::all_true()));

        let mut v = Valuation::all_true();
        v.set(a(0), false);
        assert!(!t.live(&v), "dead provenance kills the tensor");

        let mut v = Valuation::all_true();
        v.set(a(1), false);
        assert!(!t.live(&v), "failed guard kills the tensor");
    }

    #[test]
    fn mapping_preserves_value() {
        let t = Tensor::new(Polynomial::var(a(0)), AggValue::single(4.0));
        let mapped = t.map(&Mapping::group(&[a(0)], a(7)));
        assert_eq!(mapped.value, AggValue::single(4.0));
        assert_eq!(mapped.annotations(), vec![a(7)]);
    }

    #[test]
    fn size_includes_guards() {
        let t = Tensor::guarded(
            Polynomial::var(a(0)),
            vec![Guard::single(
                Polynomial::var(a(1)).mul(&Polynomial::var(a(2))),
                5.0,
                CmpOp::Gt,
                2.0,
            )],
            AggValue::single(1.0),
        );
        assert_eq!(t.size(), 3);
    }
}
