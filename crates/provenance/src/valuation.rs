//! Truth valuations over annotations (§2.3).
//!
//! A valuation assigns `true`/`false` to annotations and extends to
//! `N[Ann]` expressions by the semiring axioms: `·` becomes conjunction,
//! `+` disjunction (for the boolean image) or counting (for the numeric
//! image). Provisioning applies a valuation to provenance to observe how a
//! result changes without re-running the application.

use std::collections::HashMap;

use crate::annot::AnnId;
use crate::mapping::Mapping;
use crate::phi::{Phi, PhiMap};
use crate::store::AnnStore;

/// A truth valuation with a default for unmentioned annotations.
///
/// The paper's valuation classes ("cancel single annotation", "cancel single
/// attribute") are sparse — almost everything is `true` — so we store only
/// the exceptions.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Valuation {
    assign: HashMap<AnnId, bool>,
    default: bool,
    /// Optional human-readable label ("cancel U2", "cancel gender=Male").
    pub label: Option<String>,
}

impl Valuation {
    /// The valuation assigning `true` everywhere.
    pub fn all_true() -> Self {
        Valuation {
            assign: HashMap::new(),
            default: true,
            label: None,
        }
    }

    /// The valuation assigning `false` everywhere.
    pub fn all_false() -> Self {
        Valuation {
            assign: HashMap::new(),
            default: false,
            label: None,
        }
    }

    /// Valuation canceling exactly the given annotations (default `true`).
    pub fn cancel(anns: &[AnnId]) -> Self {
        let mut v = Valuation::all_true();
        for &a in anns {
            v.set(a, false);
        }
        v
    }

    /// Attach a label (builder style).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Set the truth value of one annotation.
    pub fn set(&mut self, a: AnnId, value: bool) {
        if value == self.default {
            self.assign.remove(&a);
        } else {
            self.assign.insert(a, value);
        }
    }

    /// Truth value of an annotation.
    #[inline]
    pub fn truth(&self, a: AnnId) -> bool {
        self.assign.get(&a).copied().unwrap_or(self.default)
    }

    /// Annotations explicitly assigned the non-default value.
    pub fn exceptions(&self) -> impl Iterator<Item = (AnnId, bool)> + '_ {
        self.assign.iter().map(|(&a, &b)| (a, b))
    }

    /// The default truth value.
    pub fn default_value(&self) -> bool {
        self.default
    }

    /// Lift this valuation (on original annotations) to one on summary
    /// annotations via the mapping `h` and combiner `φ` (§3.2): for every
    /// summary annotation `a'` in the store,
    /// `v'(a') = φ( v(a) : h(a) = a' )`.
    ///
    /// Base annotations keep their value, so the lifted valuation can be
    /// applied to partially summarized expressions.
    pub fn lift(&self, h: &Mapping, phi: Phi, store: &AnnStore) -> Valuation {
        self.lift_map(h, &PhiMap::uniform(phi), store)
    }

    /// Like [`Valuation::lift`] but with a per-domain combiner assignment
    /// (Table 5.1's DDP row: OR for DB variables, MAX for cost variables).
    pub fn lift_map(&self, h: &Mapping, phis: &PhiMap, store: &AnnStore) -> Valuation {
        let mut out = self.clone();
        out.label = self.label.clone();
        for (id, ann) in store.iter() {
            if !ann.kind.is_summary() {
                continue;
            }
            let phi = phis.for_domain(ann.domain);
            // φ over the *base members'* truth values. Using members rather
            // than the mapping's preimage makes the lift independent of how
            // many steps produced the summary.
            let truths = ann.base_members().iter().map(|&a| self.truth(a));
            let value = phi.combine_bool(truths);
            out.set(id, value);
        }
        // Also honour explicit mapping targets that are base annotations
        // (e.g. equivalence grouping maps onto a representative member).
        for (_, to) in h.iter() {
            if store.get(to).kind.is_summary() {
                continue;
            }
            let members: Vec<AnnId> = h
                .preimage_of(to, store.ids())
                .filter(|&a| !store.get(a).kind.is_summary())
                .collect();
            if members.len() > 1 {
                let phi = phis.for_domain(store.get(to).domain);
                let value = phi.combine_bool(members.iter().map(|&a| self.truth(a)));
                out.set(to, value);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::AnnStore;

    #[test]
    fn defaults_and_exceptions() {
        let a0 = AnnId::from_index(0);
        let a1 = AnnId::from_index(1);
        let mut v = Valuation::all_true();
        assert!(v.truth(a0));
        v.set(a0, false);
        assert!(!v.truth(a0));
        assert!(v.truth(a1));
        // Setting back to the default removes the exception.
        v.set(a0, true);
        assert_eq!(v.exceptions().count(), 0);
    }

    #[test]
    fn cancel_builds_sparse_valuation() {
        let a0 = AnnId::from_index(0);
        let v = Valuation::cancel(&[a0]).labeled("cancel a0");
        assert!(!v.truth(a0));
        assert!(v.truth(AnnId::from_index(5)));
        assert_eq!(v.label.as_deref(), Some("cancel a0"));
    }

    #[test]
    fn lift_or_cancels_summary_only_when_all_members_cancelled() {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[]);
        let u2 = s.add_base_with("U2", "users", &[]);
        let dom = s.domain("users");
        let g = s.add_summary("G", dom, &[u1, u2]);
        let h = Mapping::group(&[u1, u2], g);

        let v = Valuation::cancel(&[u1]);
        let lifted = v.lift(&h, Phi::Or, &s);
        assert!(lifted.truth(g), "OR: one live member keeps the group alive");

        let v2 = Valuation::cancel(&[u1, u2]);
        let lifted2 = v2.lift(&h, Phi::Or, &s);
        assert!(!lifted2.truth(g));
    }

    #[test]
    fn lift_and_cancels_summary_when_any_member_cancelled() {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[]);
        let u2 = s.add_base_with("U2", "users", &[]);
        let dom = s.domain("users");
        let g = s.add_summary("G", dom, &[u1, u2]);
        let h = Mapping::group(&[u1, u2], g);

        let v = Valuation::cancel(&[u1]);
        let lifted = v.lift(&h, Phi::And, &s);
        assert!(!lifted.truth(g));
    }
}
