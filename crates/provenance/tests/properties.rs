//! Property-based tests for the provenance substrate's core data
//! structures: monoid/semiring laws, simplification idempotence, mapping
//! homomorphism at the expression level, and DDP invariants.
//!
//! Random cases come from the workspace's deterministic splitmix64
//! generator ([`prox_robust::fault::DetRng`]) rather than an external
//! property-testing framework: every failure replays from the fixed seed,
//! and the harness runs identically offline.

use prox_provenance::{
    AggExpr, AggKind, AggValue, AnnId, DbCondOp, DdpExecution, DdpExpr, DdpTransition, Mapping,
    Monomial, Polynomial, ProvExpr, Tensor, Valuation,
};
use prox_robust::fault::DetRng;

/// Cases per property.
const CASES: usize = 64;

const KINDS: [AggKind; 4] = [AggKind::Max, AggKind::Min, AggKind::Sum, AggKind::Count];

fn ann(ix: usize) -> AnnId {
    AnnId::from_index(ix)
}

/// Equality up to f64 rounding (SUM is only approximately associative).
fn agg_eq(a: AggValue, b: AggValue) -> bool {
    a.count == b.count && (a.value - b.value).abs() < 1e-9
}

/// A random value in `[0, 10)` with two decimal digits of precision.
fn random_value(rng: &mut DetRng) -> f64 {
    (rng.next_u64() % 1000) as f64 / 100.0
}

/// A random aggregation value: count 0–4, the empty element when 0.
fn random_aggvalue(rng: &mut DetRng) -> AggValue {
    let count = rng.next_u64() % 5;
    if count == 0 {
        AggValue::empty()
    } else {
        AggValue::new(random_value(rng), count)
    }
}

fn random_kind(rng: &mut DetRng) -> AggKind {
    KINDS[(rng.next_u64() as usize) % KINDS.len()]
}

/// A random tensor: monomial of degree 1–3 over 6 variables, one value.
fn random_tensor(rng: &mut DetRng) -> Tensor {
    let degree = (rng.next_u64() % 3 + 1) as usize;
    let vars: Vec<AnnId> = (0..degree)
        .map(|_| ann((rng.next_u64() as usize) % 6))
        .collect();
    Tensor::new(
        Polynomial::from_monomial(Monomial::from_factors(vars)),
        AggValue::single(random_value(rng)),
    )
}

/// A random vector of tensors with `lo..hi` elements.
fn random_tensors(rng: &mut DetRng, lo: u64, hi: u64) -> Vec<Tensor> {
    let n = (rng.next_u64() % (hi - lo) + lo) as usize;
    (0..n).map(|_| random_tensor(rng)).collect()
}

/// A random valuation over 8 variables.
fn random_valuation(rng: &mut DetRng) -> Valuation {
    let mut v = Valuation::all_true();
    for ix in 0..8 {
        v.set(ann(ix), rng.next_u64().is_multiple_of(2));
    }
    v
}

/// The (value, count) aggregation monoid is commutative, associative
/// (up to f64 rounding for SUM), and absorbs the empty element — for
/// every aggregation kind.
#[test]
fn aggvalue_monoid_laws() {
    let mut rng = DetRng::new(0x5eed_0200);
    for case in 0..CASES {
        let a = random_aggvalue(&mut rng);
        let b = random_aggvalue(&mut rng);
        let c = random_aggvalue(&mut rng);
        let kind = random_kind(&mut rng);
        assert!(
            agg_eq(a.combine(b, kind), b.combine(a, kind)),
            "commutativity (case {case})"
        );
        assert!(
            agg_eq(
                a.combine(b, kind).combine(c, kind),
                a.combine(b.combine(c, kind), kind)
            ),
            "associativity (case {case})"
        );
        assert!(
            agg_eq(a.combine(AggValue::empty(), kind), a),
            "right identity (case {case})"
        );
        assert!(
            agg_eq(AggValue::empty().combine(a, kind), a),
            "left identity (case {case})"
        );
    }
}

/// Simplification is idempotent and preserves evaluation under every
/// valuation.
#[test]
fn simplify_is_idempotent_and_sound() {
    let mut rng = DetRng::new(0x5eed_0201);
    for case in 0..CASES {
        let tensors = random_tensors(&mut rng, 0, 8);
        let kind = random_kind(&mut rng);
        let v = random_valuation(&mut rng);
        let raw = {
            let mut e = AggExpr::new(kind);
            for t in tensors.clone() {
                e.push(t);
            }
            e
        };
        let once = AggExpr::from_tensors(tensors, kind);
        let twice = {
            let mut e = once.clone();
            e.simplify();
            e
        };
        assert_eq!(once, twice, "simplify is idempotent (case {case})");
        // SUM folds in a different order after merging; allow f64 rounding.
        assert!(
            agg_eq(raw.eval(&v), once.eval(&v)),
            "simplify preserves eval (case {case}): {:?} vs {:?}",
            raw.eval(&v),
            once.eval(&v)
        );
    }
}

/// Mapping application commutes with evaluation when the valuation
/// treats every merged annotation identically (the congruence that
/// justifies homomorphic summarization).
#[test]
fn mapping_commutes_with_uniform_valuations() {
    let mut rng = DetRng::new(0x5eed_0202);
    for case in 0..CASES {
        let tensors = random_tensors(&mut rng, 1, 6);
        let kind = random_kind(&mut rng);
        let all = rng.next_u64().is_multiple_of(2);
        let e = AggExpr::from_tensors(tensors, kind);
        let h = Mapping::group(&(0..6).map(ann).collect::<Vec<_>>(), ann(10));
        let mapped = e.map(&h);
        let v = if all {
            Valuation::all_true()
        } else {
            Valuation::all_false()
        };
        // Uniform valuations assign the group the same value as members.
        let mut v2 = v.clone();
        v2.set(ann(10), all);
        // SUM folds in a different order after merging; allow f64 rounding.
        let lhs = e.eval(&v).result();
        let rhs = mapped.eval(&v2).result();
        assert!((lhs - rhs).abs() < 1e-9, "case {case}: {lhs} vs {rhs}");
    }
}

/// Expression size is the sum of tensor degrees and never grows under
/// mapping.
#[test]
fn size_accounting() {
    let mut rng = DetRng::new(0x5eed_0203);
    for case in 0..CASES {
        let tensors = random_tensors(&mut rng, 0, 8);
        let kind = random_kind(&mut rng);
        let e = AggExpr::from_tensors(tensors, kind);
        let total: usize = e.tensors().iter().map(Tensor::size).sum();
        assert_eq!(e.size(), total, "size is sum of degrees (case {case})");
        let h = Mapping::group(&[ann(0), ann(1), ann(2)], ann(10));
        assert!(
            e.map(&h).size() <= e.size(),
            "size grew under mapping (case {case})"
        );
    }
}

/// ProvExpr evaluation restricted to one object equals that object's
/// AggExpr evaluation.
#[test]
fn provexpr_coordinates_are_independent() {
    let mut rng = DetRng::new(0x5eed_0204);
    for case in 0..CASES {
        let t1 = random_tensors(&mut rng, 1, 4);
        let t2 = random_tensors(&mut rng, 1, 4);
        let kind = random_kind(&mut rng);
        let v = random_valuation(&mut rng);
        let o1 = ann(20);
        let o2 = ann(21);
        let mut p = ProvExpr::new(kind);
        for t in t1.clone() {
            p.push(o1, t);
        }
        for t in t2 {
            p.push(o2, t);
        }
        p.simplify();
        let vec = p.eval(&v);
        let solo = AggExpr::from_tensors(t1, kind);
        assert_eq!(
            vec.scalar_for(o1),
            Some(solo.eval(&v).result()),
            "coordinate independence (case {case})"
        );
    }
}

/// DDP mapping never increases size.
#[test]
fn ddp_mapping_size_monotone() {
    let mut rng = DetRng::new(0x5eed_0205);
    for case in 0..CASES {
        let nexecs = (rng.next_u64() % 4 + 1) as usize;
        let mut p = DdpExpr::new();
        for _ in 0..nexecs {
            let ntrans = (rng.next_u64() % 3 + 1) as usize;
            let transitions = (0..ntrans)
                .map(|_| {
                    let var = (rng.next_u64() as usize) % 6;
                    let is_user = rng.next_u64().is_multiple_of(2);
                    let extra = (rng.next_u64() as usize) % 3;
                    if is_user {
                        p.set_cost(ann(var), (var + 1) as f64);
                        DdpTransition::user(ann(var))
                    } else {
                        DdpTransition::db(vec![ann(var), ann(extra)], DbCondOp::NonZero)
                    }
                })
                .collect();
            p.push(DdpExecution::new(transitions));
        }
        let h = Mapping::group(&[ann(0), ann(1)], ann(10));
        let mapped = p.map(&h);
        assert!(
            mapped.size() <= p.size(),
            "DDP size grew under mapping (case {case})"
        );
    }
}
