//! Property-based tests for the provenance substrate's core data
//! structures: monoid/semiring laws, simplification idempotence, mapping
//! homomorphism at the expression level, and DDP invariants.

use proptest::prelude::*;
use prox_provenance::{
    AggExpr, AggKind, AggValue, AnnId, DbCondOp, DdpExecution, DdpExpr, DdpTransition, Mapping,
    Monomial, Polynomial, ProvExpr, Tensor, Valuation,
};

fn ann(ix: usize) -> AnnId {
    AnnId::from_index(ix)
}

/// Equality up to f64 rounding (SUM is only approximately associative).
fn agg_eq(a: AggValue, b: AggValue) -> bool {
    a.count == b.count && (a.value - b.value).abs() < 1e-9
}

fn arb_aggvalue() -> impl Strategy<Value = AggValue> {
    (0.0f64..10.0, 0u64..5).prop_map(|(v, c)| {
        if c == 0 {
            AggValue::empty()
        } else {
            AggValue::new(v, c)
        }
    })
}

fn arb_kind() -> impl Strategy<Value = AggKind> {
    prop_oneof![
        Just(AggKind::Max),
        Just(AggKind::Min),
        Just(AggKind::Sum),
        Just(AggKind::Count),
    ]
}

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    (prop::collection::vec(0usize..6, 1..=3), 0.0f64..10.0).prop_map(|(vars, value)| {
        Tensor::new(
            Polynomial::from_monomial(Monomial::from_factors(vars.into_iter().map(ann).collect())),
            AggValue::single(value),
        )
    })
}

fn arb_valuation() -> impl Strategy<Value = Valuation> {
    prop::collection::vec(any::<bool>(), 8).prop_map(|bits| {
        let mut v = Valuation::all_true();
        for (ix, b) in bits.into_iter().enumerate() {
            v.set(ann(ix), b);
        }
        v
    })
}

proptest! {
    /// The (value, count) aggregation monoid is commutative, associative
    /// (up to f64 rounding for SUM), and absorbs the empty element — for
    /// every aggregation kind.
    #[test]
    fn aggvalue_monoid_laws(
        a in arb_aggvalue(),
        b in arb_aggvalue(),
        c in arb_aggvalue(),
        kind in arb_kind(),
    ) {
        prop_assert!(agg_eq(a.combine(b, kind), b.combine(a, kind)));
        prop_assert!(agg_eq(
            a.combine(b, kind).combine(c, kind),
            a.combine(b.combine(c, kind), kind)
        ));
        prop_assert!(agg_eq(a.combine(AggValue::empty(), kind), a));
        prop_assert!(agg_eq(AggValue::empty().combine(a, kind), a));
    }

    /// Simplification is idempotent and preserves evaluation under every
    /// valuation.
    #[test]
    fn simplify_is_idempotent_and_sound(
        tensors in prop::collection::vec(arb_tensor(), 0..8),
        kind in arb_kind(),
        v in arb_valuation(),
    ) {
        let raw = {
            let mut e = AggExpr::new(kind);
            for t in tensors.clone() {
                e.push(t);
            }
            e
        };
        let once = AggExpr::from_tensors(tensors.clone(), kind);
        let twice = {
            let mut e = once.clone();
            e.simplify();
            e
        };
        prop_assert_eq!(&once, &twice, "simplify is idempotent");
        // SUM folds in a different order after merging; allow f64 rounding.
        prop_assert!(
            agg_eq(raw.eval(&v), once.eval(&v)),
            "simplify preserves eval: {:?} vs {:?}",
            raw.eval(&v),
            once.eval(&v)
        );
    }

    /// Mapping application commutes with evaluation when the valuation
    /// treats every merged annotation identically (the congruence that
    /// justifies homomorphic summarization).
    #[test]
    fn mapping_commutes_with_uniform_valuations(
        tensors in prop::collection::vec(arb_tensor(), 1..6),
        kind in arb_kind(),
        all in any::<bool>(),
    ) {
        let e = AggExpr::from_tensors(tensors, kind);
        let h = Mapping::group(&(0..6).map(ann).collect::<Vec<_>>(), ann(10));
        let mapped = e.map(&h);
        let v = if all { Valuation::all_true() } else { Valuation::all_false() };
        // Uniform valuations assign the group the same value as members.
        let mut v2 = v.clone();
        v2.set(ann(10), all);
        // SUM folds in a different order after merging; allow f64 rounding.
        let lhs = e.eval(&v).result();
        let rhs = mapped.eval(&v2).result();
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    /// Expression size is the sum of tensor degrees and never grows under
    /// mapping.
    #[test]
    fn size_accounting(tensors in prop::collection::vec(arb_tensor(), 0..8), kind in arb_kind()) {
        let e = AggExpr::from_tensors(tensors, kind);
        let total: usize = e.tensors().iter().map(|t| t.size()).sum();
        prop_assert_eq!(e.size(), total);
        let h = Mapping::group(&[ann(0), ann(1), ann(2)], ann(10));
        prop_assert!(e.map(&h).size() <= e.size());
    }

    /// ProvExpr evaluation restricted to one object equals that object's
    /// AggExpr evaluation.
    #[test]
    fn provexpr_coordinates_are_independent(
        t1 in prop::collection::vec(arb_tensor(), 1..4),
        t2 in prop::collection::vec(arb_tensor(), 1..4),
        kind in arb_kind(),
        v in arb_valuation(),
    ) {
        let o1 = ann(20);
        let o2 = ann(21);
        let mut p = ProvExpr::new(kind);
        for t in t1.clone() {
            p.push(o1, t);
        }
        for t in t2 {
            p.push(o2, t);
        }
        p.simplify();
        let vec = p.eval(&v);
        let solo = AggExpr::from_tensors(t1, kind);
        prop_assert_eq!(vec.scalar_for(o1), Some(solo.eval(&v).result()));
    }

    /// DDP mapping never increases size, and deduplication keeps
    /// evaluation under the all-true valuation unchanged when no condition
    /// polarity conflicts exist.
    #[test]
    fn ddp_mapping_size_monotone(
        execs in prop::collection::vec(
            prop::collection::vec((0usize..6, any::<bool>(), 0usize..3), 1..4),
            1..5,
        ),
    ) {
        let mut p = DdpExpr::new();
        for (ix, spec) in execs.iter().enumerate() {
            let transitions = spec
                .iter()
                .map(|&(var, is_user, extra)| {
                    if is_user {
                        p.set_cost(ann(var), (var + 1) as f64);
                        DdpTransition::user(ann(var))
                    } else {
                        DdpTransition::db(vec![ann(var), ann(extra)], DbCondOp::NonZero)
                    }
                })
                .collect();
            let _ = ix;
            p.push(DdpExecution::new(transitions));
        }
        let h = Mapping::group(&[ann(0), ann(1)], ann(10));
        let mapped = p.map(&h);
        prop_assert!(mapped.size() <= p.size());
    }
}
