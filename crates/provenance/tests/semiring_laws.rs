//! Property tests for the semiring laws (§2.2) on randomly generated
//! elements.
//!
//! `N[Ann]` (the [`Polynomial`] semiring) and its homomorphic images
//! ([`Bool`], [`Count`], [`Tropical`]) must each form a commutative
//! semiring: `⊕` and `⊗` are commutative monoids with identities `0` and
//! `1`, `⊗` distributes over `⊕`, and `0` annihilates. Random elements
//! come from the workspace's deterministic splitmix64 generator
//! ([`prox_robust::fault::DetRng`]) so failures replay from the seed.

use prox_provenance::{AnnId, AnnStore, Bool, Count, Monomial, Polynomial, Semiring, Tropical};
use prox_robust::fault::DetRng;

const CASES: usize = 64;

/// A small annotation pool for random polynomials.
fn pool() -> Vec<AnnId> {
    let mut store = AnnStore::new();
    (0..6)
        .map(|ix| store.add_base_with(&format!("a{ix}"), "users", &[]))
        .collect()
}

/// A random polynomial: up to 4 terms of degree ≤ 3 with coefficient ≤ 3,
/// occasionally the constants 0 and 1 so identity edge cases are hit.
fn random_poly(rng: &mut DetRng, pool: &[AnnId]) -> Polynomial {
    match rng.next_u64() % 8 {
        0 => return Polynomial::zero(),
        1 => return Polynomial::one(),
        _ => {}
    }
    let terms = (rng.next_u64() % 4 + 1) as usize;
    Polynomial::from_terms((0..terms).map(|_| {
        let degree = (rng.next_u64() % 4) as usize;
        let factors: Vec<AnnId> = (0..degree)
            .map(|_| pool[(rng.next_u64() as usize) % pool.len()])
            .collect();
        let coeff = rng.next_u64() % 3 + 1;
        (Monomial::from_factors(factors), coeff)
    }))
}

/// Assert every commutative-semiring law on one triple of elements.
fn check_laws<K: Semiring + std::fmt::Debug>(a: &K, b: &K, c: &K, case: usize) {
    let zero = K::zero();
    let one = K::one();
    // ⊕ is a commutative monoid with identity 0.
    assert_eq!(a.add(b).add(c), a.add(&b.add(c)), "⊕ assoc (case {case})");
    assert_eq!(a.add(b), b.add(a), "⊕ comm (case {case})");
    assert_eq!(a.add(&zero), *a, "0 is ⊕-identity (case {case})");
    // ⊗ is a commutative monoid with identity 1.
    assert_eq!(a.mul(b).mul(c), a.mul(&b.mul(c)), "⊗ assoc (case {case})");
    assert_eq!(a.mul(b), b.mul(a), "⊗ comm (case {case})");
    assert_eq!(a.mul(&one), *a, "1 is ⊗-identity (case {case})");
    // 0 annihilates and ⊗ distributes over ⊕.
    assert!(a.mul(&zero).is_zero(), "0 annihilates (case {case})");
    assert_eq!(
        a.mul(&b.add(c)),
        a.mul(b).add(&a.mul(c)),
        "distributivity (case {case})"
    );
}

#[test]
fn polynomial_semiring_laws_hold() {
    let pool = pool();
    let mut rng = DetRng::new(0x5eed_0001);
    for case in 0..CASES {
        let a = random_poly(&mut rng, &pool);
        let b = random_poly(&mut rng, &pool);
        let c = random_poly(&mut rng, &pool);
        // Polynomial's inherent add/mul are the semiring ops; route through
        // a thin wrapper so `check_laws` sees the Semiring trait surface.
        check_laws(&Poly(a), &Poly(b), &Poly(c), case);
    }
}

/// Wrapper giving [`Polynomial`] the [`Semiring`] trait surface (its
/// inherent `add`/`mul`/`zero`/`one` already implement the operations).
#[derive(Clone, Debug, PartialEq)]
struct Poly(Polynomial);

impl Semiring for Poly {
    fn zero() -> Self {
        Poly(Polynomial::zero())
    }
    fn one() -> Self {
        Poly(Polynomial::one())
    }
    fn add(&self, other: &Self) -> Self {
        Poly(self.0.add(&other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        Poly(self.0.mul(&other.0))
    }
}

#[test]
fn bool_semiring_laws_hold() {
    let mut rng = DetRng::new(0x5eed_0002);
    for case in 0..CASES {
        let mut next = || Bool(rng.next_u64().is_multiple_of(2));
        let (a, b, c) = (next(), next(), next());
        check_laws(&a, &b, &c, case);
    }
}

#[test]
fn count_semiring_laws_hold() {
    let mut rng = DetRng::new(0x5eed_0003);
    for case in 0..CASES {
        // Small values: the laws must hold exactly, away from saturation.
        let mut next = || Count(rng.next_u64() % 17);
        let (a, b, c) = (next(), next(), next());
        check_laws(&a, &b, &c, case);
    }
}

#[test]
fn tropical_semiring_laws_hold() {
    let mut rng = DetRng::new(0x5eed_0004);
    for case in 0..CASES {
        // Whole-valued costs keep `+` exact so associativity is strict.
        let mut next = || match rng.next_u64() % 4 {
            0 => Tropical::Infinity,
            _ => Tropical::Cost((rng.next_u64() % 100) as f64),
        };
        let (a, b, c) = (next(), next(), next());
        check_laws(&a, &b, &c, case);
    }
}

#[test]
fn eval_in_is_a_semiring_homomorphism() {
    // h(p ⊕ q) = h(p) ⊕ h(q) and h(p ⊗ q) = h(p) ⊗ h(q) for the
    // evaluation homomorphism into Count induced by any assignment.
    let pool = pool();
    let mut rng = DetRng::new(0x5eed_0005);
    for case in 0..CASES {
        let p = random_poly(&mut rng, &pool);
        let q = random_poly(&mut rng, &pool);
        let weights: Vec<u64> = pool.iter().map(|_| rng.next_u64() % 4).collect();
        let assign = |a: AnnId| {
            let ix = pool.iter().position(|&x| x == a).unwrap_or(0);
            Count(weights[ix])
        };
        let hp = p.eval_in::<Count>(&assign);
        let hq = q.eval_in::<Count>(&assign);
        assert_eq!(
            p.add(&q).eval_in::<Count>(&assign),
            hp.add(&hq),
            "⊕ preserved (case {case})"
        );
        assert_eq!(
            p.mul(&q).eval_in::<Count>(&assign),
            hp.mul(&hq),
            "⊗ preserved (case {case})"
        );
    }
}
