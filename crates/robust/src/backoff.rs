//! Deterministic retry backoff with decorrelated jitter.
//!
//! The serve-layer bench clients retry shed responses (429/503) and
//! transport drops; their sleep schedule must be a pure function of the
//! seed so same-seed runs replay identically (rule L2). [`Backoff`] wraps
//! the in-tree splitmix64 [`DetRng`](crate::fault::DetRng) with the
//! decorrelated-jitter recurrence from the AWS architecture blog:
//!
//! ```text
//! delay[n] = min(cap, uniform(base, max(base, delay[n-1] * 3)))
//! ```
//!
//! Each step widens the window threefold (up to `cap`) while the jitter
//! decorrelates concurrent retriers, and the whole sequence is replayable
//! from the seed.

use crate::fault::DetRng;

/// A seeded decorrelated-jitter backoff schedule.
#[derive(Clone, Debug)]
pub struct Backoff {
    rng: DetRng,
    base_ms: u64,
    cap_ms: u64,
    prev_ms: u64,
    attempts: u32,
    max_attempts: u32,
}

impl Backoff {
    /// A schedule starting at `base_ms`, capped at `cap_ms`, allowing at
    /// most `max_attempts` retries. `base_ms` is clamped to at least 1 and
    /// `cap_ms` to at least `base_ms`.
    pub fn new(seed: u64, base_ms: u64, cap_ms: u64, max_attempts: u32) -> Backoff {
        let base_ms = base_ms.max(1);
        Backoff {
            rng: DetRng::new(seed),
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            prev_ms: base_ms,
            attempts: 0,
            max_attempts,
        }
    }

    /// Retries consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The next delay in milliseconds, or `None` once `max_attempts`
    /// retries have been handed out.
    pub fn next_delay_ms(&mut self) -> Option<u64> {
        if self.attempts >= self.max_attempts {
            return None;
        }
        self.attempts += 1;
        let upper = self.prev_ms.saturating_mul(3).max(self.base_ms);
        let span = upper - self.base_ms + 1;
        let delay = (self.base_ms + self.rng.next_u64() % span).min(self.cap_ms);
        self.prev_ms = delay;
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut b = Backoff::new(seed, 2, 50, 8);
            std::iter::from_fn(|| b.next_delay_ms()).collect::<Vec<_>>()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10), "different seeds should jitter");
    }

    #[test]
    fn delays_stay_within_base_and_cap() {
        let mut b = Backoff::new(1, 5, 40, 16);
        let mut prev = 5u64;
        while let Some(d) = b.next_delay_ms() {
            assert!((5..=40).contains(&d), "delay {d} out of [base, cap]");
            assert!(d <= prev.saturating_mul(3).clamp(5, 40));
            prev = d;
        }
        assert_eq!(b.attempts(), 16);
    }

    #[test]
    fn budget_exhausts_after_max_attempts() {
        let mut b = Backoff::new(3, 1, 10, 2);
        assert!(b.next_delay_ms().is_some());
        assert!(b.next_delay_ms().is_some());
        assert_eq!(b.next_delay_ms(), None);
        assert_eq!(b.next_delay_ms(), None);
    }

    #[test]
    fn degenerate_bounds_are_clamped() {
        let mut b = Backoff::new(4, 0, 0, 4);
        while let Some(d) = b.next_delay_ms() {
            assert_eq!(d, 1, "base and cap clamp to 1ms");
        }
    }
}
