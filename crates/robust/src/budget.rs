//! Execution budgets: bounded work with an anytime best-so-far contract.
//!
//! An [`ExecutionBudget`] bundles the four limits the summarization loops
//! honor — a wall-clock deadline, a step ceiling, a cap on how many
//! valuations the distance memo may hold, and a cooperative cancel flag.
//! [`ExecutionBudget::start`] freezes it into a [`BudgetSession`] whose
//! `check`/`note_step` calls report exhaustion as a [`BudgetStop`].
//!
//! The contract every consumer follows: exhaustion *mid-run* is not an
//! error — the loop breaks and returns the best summary committed so far,
//! with the stop recorded in the result's `StopReason`. Only exhaustion
//! *before any work* (the very first check) surfaces as
//! `ProxError::Budget`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use prox_obs::{Counter, TraceContext, TraceSpan};

use crate::fault;

static DEADLINE_TRIPS: Counter = Counter::new("budget/deadline_exceeded");
static STEP_TRIPS: Counter = Counter::new("budget/steps_exhausted");
static CANCEL_TRIPS: Counter = Counter::new("budget/cancelled");
static INJECTED_TRIPS: Counter = Counter::new("budget/injected");
static MEMO_CAPPED: Counter = Counter::new("budget/memo_capped");

/// Why a budget session stopped the computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BudgetStop {
    /// The wall-clock deadline passed.
    Deadline,
    /// The budget's own step ceiling was reached (distinct from the
    /// algorithm's `max_steps` stopping rule).
    Steps,
    /// The cooperative cancel flag was raised.
    Cancelled,
    /// The fault-injection harness tripped the budget (`PROX_FAULT=budget@N:seed`).
    Injected,
}

impl std::fmt::Display for BudgetStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BudgetStop::Deadline => "wall-clock deadline exceeded",
            BudgetStop::Steps => "step budget exhausted",
            BudgetStop::Cancelled => "cancelled by caller",
            BudgetStop::Injected => "budget exhaustion injected by fault harness",
        };
        f.write_str(s)
    }
}

/// A shared, thread-safe cancel flag for cooperative cancellation.
///
/// Clone it, hand one copy to the summarizer via
/// [`ExecutionBudget::with_cancel`], keep the other, and call
/// [`CancelFlag::cancel`] from anywhere (another thread, a signal handler's
/// deferred path, a UI). The running loop notices at its next budget check.
#[derive(Clone, Debug, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-raised flag.
    pub fn new() -> Self {
        CancelFlag::default()
    }

    /// Raise the flag.
    ///
    /// Relaxed ordering suffices (L7): the flag is advisory and carries
    /// no data — it only ever flips false→true, the polling loop acts on
    /// it by *stopping* (never by reading shared state the canceller
    /// wrote), and a late observation just means one more budget-bounded
    /// step.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has the flag been raised?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Limits on a single summarization (or clustering) run.
///
/// The default budget is unlimited; every limit is opt-in.
#[derive(Clone, Debug, Default)]
pub struct ExecutionBudget {
    /// Relative wall-clock limit, applied from [`ExecutionBudget::start`].
    pub max_millis: Option<u64>,
    /// Absolute deadline; combined with `max_millis` by taking the minimum.
    pub deadline: Option<Instant>,
    /// Ceiling on committed merge steps.
    pub max_steps: Option<usize>,
    /// Cap on how many valuations the distance memo may hold. Exceeding it
    /// silently degrades (the class is truncated), it does not stop the run.
    pub max_memo_entries: Option<usize>,
    /// Cooperative cancel flag.
    pub cancel: Option<CancelFlag>,
    /// Request-scoped trace context. Rides along so the serve request
    /// path reaches the summarizer, HAC, and candidate enumeration with
    /// no extra parameter threading. Not a limit: it does not affect
    /// [`ExecutionBudget::is_unlimited`] or the session fast path.
    pub trace: Option<TraceContext>,
}

impl ExecutionBudget {
    /// The unlimited budget.
    pub fn unlimited() -> Self {
        ExecutionBudget::default()
    }

    /// Limit wall-clock time, measured from the moment the run starts.
    pub fn with_deadline_ms(mut self, millis: u64) -> Self {
        self.max_millis = Some(millis);
        self
    }

    /// Impose an absolute deadline; tightens (never loosens) an existing one.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(self.deadline.map_or(at, |d| d.min(at)));
        self
    }

    /// Limit the number of committed merge steps.
    pub fn with_max_steps(mut self, steps: usize) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Cap the distance memo (number of valuations evaluated per distance).
    pub fn with_memo_cap(mut self, entries: usize) -> Self {
        self.max_memo_entries = Some(entries);
        self
    }

    /// Attach a cooperative cancel flag.
    pub fn with_cancel(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Attach a request-scoped trace context (see [`TraceContext`]).
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }

    /// True when no limit is set (the common case; sessions short-circuit).
    /// The trace context is *not* a limit: a traced-but-unlimited budget
    /// still takes the session fast path.
    pub fn is_unlimited(&self) -> bool {
        self.max_millis.is_none()
            && self.deadline.is_none()
            && self.max_steps.is_none()
            && self.max_memo_entries.is_none()
            && self.cancel.is_none()
    }

    /// Freeze the budget into a running session. The relative `max_millis`
    /// clock starts now.
    pub fn start(&self) -> BudgetSession {
        let relative = self
            .max_millis
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let deadline = match (self.deadline, relative) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let trip_at = fault::budget_trip_after();
        BudgetSession {
            limited: !self.is_unlimited() || trip_at.is_some(),
            deadline,
            max_steps: self.max_steps,
            memo_entries: self.max_memo_entries,
            cancel: self.cancel.clone(),
            trace: self.trace.clone(),
            trip_at,
            steps: 0,
            checks: 0,
            tripped: None,
        }
    }
}

/// A running budget: tracks elapsed steps/checks and reports exhaustion.
///
/// Once a session trips it stays tripped — every later `check` returns the
/// same [`BudgetStop`], so loops may poll freely without double-counting.
#[derive(Debug)]
pub struct BudgetSession {
    limited: bool,
    deadline: Option<Instant>,
    max_steps: Option<usize>,
    memo_entries: Option<usize>,
    cancel: Option<CancelFlag>,
    trace: Option<TraceContext>,
    /// Fault harness: trip with `Injected` after this many checks.
    trip_at: Option<u64>,
    steps: usize,
    checks: u64,
    tripped: Option<BudgetStop>,
}

impl BudgetSession {
    /// Poll the budget. Cheap when the budget is unlimited.
    pub fn check(&mut self) -> Result<(), BudgetStop> {
        if let Some(stop) = self.tripped {
            return Err(stop);
        }
        if !self.limited {
            return Ok(());
        }
        self.checks += 1;
        if let Some(at) = self.trip_at {
            if self.checks > at {
                return Err(self.trip(BudgetStop::Injected));
            }
        }
        if let Some(flag) = &self.cancel {
            if flag.is_cancelled() {
                return Err(self.trip(BudgetStop::Cancelled));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.trip(BudgetStop::Deadline));
            }
        }
        Ok(())
    }

    /// Record one committed-step attempt, then poll. Call at the top of
    /// each merge-loop iteration.
    pub fn note_step(&mut self) -> Result<(), BudgetStop> {
        self.steps += 1;
        if let Some(max) = self.max_steps {
            if self.steps > max {
                return Err(self.trip(BudgetStop::Steps));
            }
        }
        self.check()
    }

    /// How many valuations the distance memo may hold, given `available`.
    /// Capping is silent degradation, not a stop.
    pub fn memo_cap(&self, available: usize) -> usize {
        match self.memo_entries {
            Some(cap) if cap < available => {
                MEMO_CAPPED.incr();
                cap
            }
            _ => available,
        }
    }

    /// Steps recorded so far via [`BudgetSession::note_step`].
    pub fn steps_taken(&self) -> usize {
        self.steps
    }

    /// The request-scoped trace riding on this session, if any.
    pub fn trace(&self) -> Option<&TraceContext> {
        self.trace.as_ref()
    }

    /// Open a named trace span under this session's trace context, or
    /// `None` (a free no-op) when the request is untraced. Instrumented
    /// phases hold the guard for the phase's extent:
    ///
    /// ```ignore
    /// let _phase = session.span("enumerate");
    /// ```
    pub fn span(&self, name: &'static str) -> Option<TraceSpan> {
        self.trace.as_ref().map(|t| t.span(name))
    }

    /// Attach an attribute to the trace's innermost open span (no-op when
    /// untraced).
    pub fn trace_note(&self, key: &str, value: impl Into<prox_obs::Json>) {
        if let Some(trace) = &self.trace {
            trace.note(key, value);
        }
    }

    /// The stop this session tripped on, if any.
    pub fn stopped(&self) -> Option<BudgetStop> {
        self.tripped
    }

    fn trip(&mut self, stop: BudgetStop) -> BudgetStop {
        match stop {
            BudgetStop::Deadline => DEADLINE_TRIPS.incr(),
            BudgetStop::Steps => STEP_TRIPS.incr(),
            BudgetStop::Cancelled => CANCEL_TRIPS.incr(),
            BudgetStop::Injected => INJECTED_TRIPS.incr(),
        }
        self.tripped = Some(stop);
        stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut s = ExecutionBudget::unlimited().start();
        for _ in 0..10_000 {
            assert!(s.check().is_ok());
            assert!(s.note_step().is_ok());
        }
    }

    #[test]
    fn expired_deadline_trips_immediately_and_stays_tripped() {
        let budget = ExecutionBudget::unlimited().with_deadline_at(Instant::now());
        let mut s = budget.start();
        assert_eq!(s.check(), Err(BudgetStop::Deadline));
        assert_eq!(s.check(), Err(BudgetStop::Deadline));
        assert_eq!(s.stopped(), Some(BudgetStop::Deadline));
    }

    #[test]
    fn deadline_at_tightens_not_loosens() {
        let near = Instant::now();
        let far = near + Duration::from_secs(3600);
        let b = ExecutionBudget::unlimited()
            .with_deadline_at(far)
            .with_deadline_at(near);
        assert_eq!(b.deadline, Some(near));
        let b2 = ExecutionBudget::unlimited()
            .with_deadline_at(near)
            .with_deadline_at(far);
        assert_eq!(b2.deadline, Some(near));
    }

    #[test]
    fn step_budget_allows_exactly_max_steps() {
        let mut s = ExecutionBudget::unlimited().with_max_steps(3).start();
        assert!(s.note_step().is_ok());
        assert!(s.note_step().is_ok());
        assert!(s.note_step().is_ok());
        assert_eq!(s.note_step(), Err(BudgetStop::Steps));
        assert_eq!(s.steps_taken(), 4);
    }

    #[test]
    fn cancel_flag_is_noticed_at_next_check() {
        let flag = CancelFlag::new();
        let mut s = ExecutionBudget::unlimited()
            .with_cancel(flag.clone())
            .start();
        assert!(s.check().is_ok());
        flag.cancel();
        assert_eq!(s.check(), Err(BudgetStop::Cancelled));
    }

    #[test]
    fn memo_cap_truncates_silently() {
        let s = ExecutionBudget::unlimited().with_memo_cap(5).start();
        assert_eq!(s.memo_cap(100), 5);
        assert_eq!(s.memo_cap(3), 3);
        let unlimited = ExecutionBudget::unlimited().start();
        assert_eq!(unlimited.memo_cap(100), 100);
    }

    #[test]
    fn trace_rides_the_session_without_becoming_a_limit() {
        let trace = TraceContext::new(0xabcd);
        let budget = ExecutionBudget::unlimited().with_trace(trace.clone());
        assert!(budget.is_unlimited(), "trace must not count as a limit");
        let mut s = budget.start();
        assert!(s.check().is_ok());
        {
            let _phase = s.span("enumerate");
            s.trace_note("candidates", 3u64);
        }
        assert_eq!(
            s.trace().map(TraceContext::trace_id),
            Some(trace.trace_id())
        );
        let tree = trace.to_json().render();
        assert!(tree.contains("enumerate"), "{tree}");
        assert!(tree.contains("candidates"), "{tree}");
        let untraced = ExecutionBudget::unlimited().start();
        assert!(untraced.span("enumerate").is_none());
    }

    #[test]
    fn relative_deadline_holds_for_a_while() {
        let mut s = ExecutionBudget::unlimited()
            .with_deadline_ms(60_000)
            .start();
        assert!(s.check().is_ok());
    }
}
