//! The typed error hierarchy shared by the whole workspace.
//!
//! Library crates return [`ProxError`] instead of `String` so callers can
//! distinguish *bad input* (reject, fix the data), *budget exhaustion*
//! (retry with a bigger budget or accept a partial answer), and *internal
//! invariant violations* (a bug — report it). The CLI maps the three
//! [`ErrorKind`]s to distinct non-zero exit codes.

use std::fmt;

use crate::budget::BudgetStop;

/// Coarse classification of a [`ProxError`], used for exit codes and retry
/// policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The caller handed us something malformed: unparsable provenance,
    /// corrupt persisted bytes, an invalid configuration, a degenerate
    /// taxonomy, or a request the engine does not support.
    Input,
    /// An execution budget was exhausted before any work could be done.
    /// (Mid-run exhaustion is *not* an error: the anytime contract returns
    /// the best-so-far summary instead.)
    Budget,
    /// An internal invariant broke; this is a bug in PROX, not bad input.
    Internal,
}

impl ErrorKind {
    /// The CLI exit code for this kind: input → 2, budget → 3, internal → 4.
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorKind::Input => 2,
            ErrorKind::Budget => 3,
            ErrorKind::Internal => 4,
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::Input => "input",
            ErrorKind::Budget => "budget",
            ErrorKind::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// The workspace-wide typed error.
#[derive(Clone, Debug, PartialEq)]
pub enum ProxError {
    /// A provenance expression failed to parse.
    Parse {
        /// Human-readable description of the syntax problem.
        message: String,
        /// Byte offset into the input where parsing failed.
        offset: usize,
    },
    /// An I/O operation failed (reading or writing persisted workloads).
    Io {
        /// What we were doing (e.g. the path involved).
        context: String,
        /// The underlying OS error, stringified.
        message: String,
    },
    /// Persisted or generated data violated a structural invariant
    /// (truncated file, annotation id out of range, bad JSON shape).
    Corrupt {
        /// What was being validated.
        context: String,
        /// Which invariant broke.
        detail: String,
    },
    /// A summarization configuration failed validation.
    Config(String),
    /// An execution budget was exhausted before any work was done.
    Budget(BudgetStop),
    /// The taxonomy is degenerate (e.g. contains a cycle).
    Taxonomy(String),
    /// The request is well-formed but outside what the engine supports
    /// (e.g. exact optimum on a workload too large to enumerate).
    Unsupported(String),
    /// An internal invariant broke — a bug in PROX.
    Internal(String),
}

impl ProxError {
    /// Build a [`ProxError::Config`].
    pub fn config(message: impl Into<String>) -> Self {
        ProxError::Config(message.into())
    }

    /// Build a [`ProxError::Corrupt`].
    pub fn corrupt(context: impl Into<String>, detail: impl Into<String>) -> Self {
        ProxError::Corrupt {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// Build a [`ProxError::Io`] from a context and an `std::io::Error`.
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        ProxError::Io {
            context: context.into(),
            message: err.to_string(),
        }
    }

    /// Build a [`ProxError::Taxonomy`].
    pub fn taxonomy(message: impl Into<String>) -> Self {
        ProxError::Taxonomy(message.into())
    }

    /// Build a [`ProxError::Unsupported`].
    pub fn unsupported(message: impl Into<String>) -> Self {
        ProxError::Unsupported(message.into())
    }

    /// Build a [`ProxError::Internal`].
    pub fn internal(message: impl Into<String>) -> Self {
        ProxError::Internal(message.into())
    }

    /// Coarse classification (drives CLI exit codes).
    pub fn kind(&self) -> ErrorKind {
        match self {
            ProxError::Parse { .. }
            | ProxError::Io { .. }
            | ProxError::Corrupt { .. }
            | ProxError::Config(_)
            | ProxError::Taxonomy(_)
            | ProxError::Unsupported(_) => ErrorKind::Input,
            ProxError::Budget(_) => ErrorKind::Budget,
            ProxError::Internal(_) => ErrorKind::Internal,
        }
    }
}

impl fmt::Display for ProxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            ProxError::Io { context, message } => write!(f, "io error ({context}): {message}"),
            ProxError::Corrupt { context, detail } => {
                write!(f, "corrupt data ({context}): {detail}")
            }
            ProxError::Config(m) => write!(f, "invalid configuration: {m}"),
            ProxError::Budget(stop) => write!(f, "budget exhausted before any work: {stop}"),
            ProxError::Taxonomy(m) => write!(f, "degenerate taxonomy: {m}"),
            ProxError::Unsupported(m) => write!(f, "unsupported request: {m}"),
            ProxError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ProxError {}

impl From<BudgetStop> for ProxError {
    fn from(stop: BudgetStop) -> Self {
        ProxError::Budget(stop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_distinct_exit_codes() {
        assert_eq!(ProxError::config("w").kind().exit_code(), 2);
        assert_eq!(ProxError::corrupt("f", "d").kind().exit_code(), 2);
        assert_eq!(ProxError::taxonomy("cycle").kind().exit_code(), 2);
        assert_eq!(ProxError::unsupported("n").kind().exit_code(), 2);
        assert_eq!(
            ProxError::Budget(BudgetStop::Deadline).kind().exit_code(),
            3
        );
        assert_eq!(ProxError::internal("bug").kind().exit_code(), 4);
    }

    #[test]
    fn display_is_informative() {
        let e = ProxError::Parse {
            message: "unexpected '+'".into(),
            offset: 7,
        };
        let s = e.to_string();
        assert!(s.contains("byte 7") && s.contains("unexpected"), "{s}");
        assert!(ProxError::Budget(BudgetStop::Cancelled)
            .to_string()
            .contains("cancel"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(ProxError::internal("x"));
        assert!(e.to_string().contains("internal"));
    }
}
