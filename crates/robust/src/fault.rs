//! Seeded, deterministic fault injection.
//!
//! Activated by the `PROX_FAULT` environment variable (call
//! [`init_from_env`] once from a binary's `main`, or install a plan
//! programmatically in tests via [`FaultGuard`]). The spec grammar is a
//! comma-separated list of `site[@param]:seed` clauses:
//!
//! ```text
//! PROX_FAULT="corrupt@0.01:42,budget@3:7"
//! ```
//!
//! | site       | param meaning                              | hook                      |
//! |------------|--------------------------------------------|---------------------------|
//! | `corrupt`  | per-byte flip probability in `[0, 1]`      | [`corrupt_bytes`]         |
//! | `truncate` | fraction of the dataset to *keep*, `[0, 1]`| [`truncate_keep`]         |
//! | `budget`   | trip the budget after this many checks     | [`budget_trip_after`]     |
//! | `taxflip`  | number of taxonomy edges to reverse        | [`taxonomy_flip_edges`]   |
//! | `slowread` | injected request-read delay in ms          | [`slowread_delay_ms`]     |
//! | `conndrop` | per-request connection-drop probability    | [`conndrop_fire`]         |
//! | `panic`    | per-request worker-panic probability       | [`maybe_panic`]           |
//!
//! Determinism: each clause carries its own seed, and every hook call mixes
//! the seed with the clause's call counter through splitmix64, so the same
//! spec replays the same faults in the same order regardless of timing.
//!
//! Cost when disabled: every hook starts with one relaxed atomic load and
//! returns immediately — no lock, no RNG, no allocation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once};

use prox_obs::Counter;

use crate::error::ProxError;

static ENABLED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
static INIT: Once = Once::new();
/// Serializes tests that install plans; see [`FaultGuard`].
static TEST_LOCK: Mutex<()> = Mutex::new(());

static CORRUPTIONS: Counter = Counter::new("fault/corrupt_calls");
static TRUNCATIONS: Counter = Counter::new("fault/truncate_calls");
static BUDGET_ARMS: Counter = Counter::new("fault/budget_arms");
static TAXFLIPS: Counter = Counter::new("fault/taxflip_calls");
static SLOWREADS: Counter = Counter::new("fault/slowread_calls");
static CONNDROPS: Counter = Counter::new("fault/conndrop_calls");
static PANICS: Counter = Counter::new("fault/panic_calls");

/// Where a fault clause applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Flip bits in persisted provenance bytes as they are read.
    Corrupt,
    /// Truncate generated datasets.
    Truncate,
    /// Trip execution budgets after a fixed number of checks.
    Budget,
    /// Reverse taxonomy edges.
    TaxFlip,
    /// Stall the serve-layer request read by a fixed delay.
    SlowRead,
    /// Drop accepted connections before a response is written.
    ConnDrop,
    /// Panic inside the serve-layer request handler.
    Panic,
}

impl FaultSite {
    fn parse(s: &str) -> Option<FaultSite> {
        match s {
            "corrupt" => Some(FaultSite::Corrupt),
            "truncate" => Some(FaultSite::Truncate),
            "budget" => Some(FaultSite::Budget),
            "taxflip" => Some(FaultSite::TaxFlip),
            "slowread" => Some(FaultSite::SlowRead),
            "conndrop" => Some(FaultSite::ConnDrop),
            "panic" => Some(FaultSite::Panic),
            _ => None,
        }
    }
}

#[derive(Clone, Debug)]
struct FaultSpec {
    site: FaultSite,
    param: f64,
    seed: u64,
    calls: u64,
}

/// A parsed `PROX_FAULT` plan: one clause per site (later clauses for the
/// same site win).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    fn get_mut(&mut self, site: FaultSite) -> Option<&mut FaultSpec> {
        self.specs.iter_mut().rev().find(|s| s.site == site)
    }
}

/// Parse a `PROX_FAULT` spec string into a plan.
///
/// Grammar: `clause ("," clause)*` where `clause = site ["@" param] ":" seed`.
/// `param` defaults to `1.0`. Errors are [`ProxError::Config`].
pub fn parse_spec(spec: &str) -> Result<FaultPlan, ProxError> {
    let mut specs = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (head, seed) = part.rsplit_once(':').ok_or_else(|| {
            ProxError::config(format!("fault clause {part:?}: missing ':<seed>'"))
        })?;
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|_| ProxError::config(format!("fault clause {part:?}: seed must be a u64")))?;
        let (site_str, param) = match head.split_once('@') {
            Some((s, p)) => {
                let param: f64 = p.trim().parse().map_err(|_| {
                    ProxError::config(format!("fault clause {part:?}: param must be a number"))
                })?;
                (s.trim(), param)
            }
            None => (head.trim(), 1.0),
        };
        let site = FaultSite::parse(site_str).ok_or_else(|| {
            ProxError::config(format!(
                "fault clause {part:?}: unknown site {site_str:?} \
                 (expected corrupt|truncate|budget|taxflip|slowread|conndrop|panic)"
            ))
        })?;
        let in_range = match site {
            FaultSite::Corrupt | FaultSite::Truncate | FaultSite::ConnDrop | FaultSite::Panic => {
                (0.0..=1.0).contains(&param)
            }
            FaultSite::Budget | FaultSite::TaxFlip | FaultSite::SlowRead => {
                param >= 0.0 && param.fract() == 0.0
            }
        };
        if !in_range {
            return Err(ProxError::config(format!(
                "fault clause {part:?}: param {param} out of range for {site:?}"
            )));
        }
        specs.push(FaultSpec {
            site,
            param,
            seed,
            calls: 0,
        });
    }
    if specs.is_empty() {
        return Err(ProxError::config("empty PROX_FAULT spec"));
    }
    Ok(FaultPlan { specs })
}

/// Install a plan (or clear with `None`). Used by [`init_from_env`] and
/// [`FaultGuard`]; binaries normally call [`init_from_env`] instead.
pub fn install(plan: Option<FaultPlan>) {
    let enabled = plan.is_some();
    *lock(&PLAN) = plan;
    ENABLED.store(enabled, Ordering::SeqCst);
}

/// Read `PROX_FAULT` once and install the resulting plan. Unset, empty,
/// `"0"`, and `"off"` leave the harness disabled. A malformed spec prints
/// a diagnostic to stderr and leaves the harness disabled — init never
/// panics.
pub fn init_from_env() {
    INIT.call_once(|| {
        let Ok(spec) = std::env::var("PROX_FAULT") else {
            return;
        };
        let spec = spec.trim();
        if spec.is_empty() || spec == "0" || spec == "off" {
            return;
        }
        match parse_spec(spec) {
            Ok(plan) => install(Some(plan)),
            Err(e) => eprintln!("PROX_FAULT ignored: {e}"),
        }
    });
}

/// Is any fault plan installed? (One relaxed load — the hot-path guard.)
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` against the active clause for `site`, bumping its call counter.
fn with_site<R>(site: FaultSite, f: impl FnOnce(&FaultSpec) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let mut plan = lock(&PLAN);
    let spec = plan.as_mut()?.get_mut(site)?;
    spec.calls += 1;
    let frozen = spec.clone();
    drop(plan);
    Some(f(&frozen))
}

/// Deterministic splitmix64 generator (no external RNG dependency).
#[derive(Clone, Debug)]
pub struct DetRng(u64);

impl DetRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        DetRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }
}

fn call_seed(spec: &FaultSpec) -> u64 {
    // calls was bumped before we got here, so the first call mixes in 1.
    spec.seed ^ spec.calls.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Corrupt bytes in place per the active `corrupt` clause. Returns whether
/// anything was flipped. When the clause is active with a positive
/// probability and the buffer is nonempty, at least one bit is flipped —
/// tests rely on the fault actually firing.
pub fn corrupt_bytes(bytes: &mut [u8]) -> bool {
    with_site(FaultSite::Corrupt, |spec| {
        if bytes.is_empty() || spec.param <= 0.0 {
            return false;
        }
        CORRUPTIONS.incr();
        let mut rng = DetRng::new(call_seed(spec));
        let mut hit = false;
        for b in bytes.iter_mut() {
            if rng.next_f64() < spec.param {
                *b ^= 1 << (rng.next_u64() % 8);
                hit = true;
            }
        }
        if !hit {
            let ix = rng.below(bytes.len());
            bytes[ix] ^= 1 << (rng.next_u64() % 8);
            hit = true;
        }
        hit
    })
    .unwrap_or(false)
}

/// How many of `len` generated items to keep per the active `truncate`
/// clause (`len` itself when the harness is off).
pub fn truncate_keep(len: usize) -> usize {
    with_site(FaultSite::Truncate, |spec| {
        TRUNCATIONS.incr();
        (((len as f64) * spec.param).floor() as usize).min(len)
    })
    .unwrap_or(len)
}

/// If a `budget` clause is active, the number of budget checks after which
/// sessions should trip with `BudgetStop::Injected`.
pub fn budget_trip_after() -> Option<u64> {
    with_site(FaultSite::Budget, |spec| {
        BUDGET_ARMS.incr();
        spec.param.max(0.0) as u64
    })
}

/// Indices (into an edge list of length `edge_count`) of taxonomy edges to
/// reverse per the active `taxflip` clause. Empty when the harness is off.
pub fn taxonomy_flip_edges(edge_count: usize) -> Vec<usize> {
    with_site(FaultSite::TaxFlip, |spec| {
        let n = (spec.param as usize).min(edge_count);
        if n == 0 {
            return Vec::new();
        }
        TAXFLIPS.incr();
        let mut rng = DetRng::new(call_seed(spec));
        let mut picked: Vec<usize> = Vec::with_capacity(n);
        while picked.len() < n {
            let ix = rng.below(edge_count);
            if !picked.contains(&ix) {
                picked.push(ix);
            }
        }
        picked
    })
    .unwrap_or_default()
}

/// If a `slowread` clause is active, the delay in milliseconds the serve
/// layer should inject before reading a request. `None` when the harness
/// is off — the caller then reads at full speed.
pub fn slowread_delay_ms() -> Option<u64> {
    with_site(FaultSite::SlowRead, |spec| {
        SLOWREADS.incr();
        spec.param.max(0.0) as u64
    })
}

/// Should the server drop this connection without responding, per the
/// active `conndrop` clause? Fires with probability `param`, seeded per
/// call, so the drop schedule is a pure function of the spec.
pub fn conndrop_fire() -> bool {
    with_site(FaultSite::ConnDrop, |spec| {
        let fire = DetRng::new(call_seed(spec)).next_f64() < spec.param;
        if fire {
            CONNDROPS.incr();
        }
        fire
    })
    .unwrap_or(false)
}

/// Panic with probability `param` per the active `panic` clause — the
/// worker-supervision fault site. The panic unwinds to the worker pool's
/// `catch_unwind` boundary, which converts it to a typed 500 and keeps
/// the worker alive; the counter is bumped *before* unwinding so
/// recoveries stay observable.
pub fn maybe_panic() {
    let fire = with_site(FaultSite::Panic, |spec| {
        let fire = DetRng::new(call_seed(spec)).next_f64() < spec.param;
        if fire {
            PANICS.incr();
        }
        fire
    })
    .unwrap_or(false);
    if fire {
        panic!("injected fault: panic site fired");
    }
}

/// RAII plan installer for tests.
///
/// Holds a global lock so fault-injection tests serialize (the plan is
/// process-global state), installs the given spec, and restores the prior
/// plan on drop. [`FaultGuard::hold`] takes the lock without changing the
/// plan — use it in tests that must observe the harness *disabled*.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
    prior: Option<FaultPlan>,
    prior_enabled: bool,
}

impl FaultGuard {
    /// Lock, parse `spec`, and install it as the active plan.
    pub fn install(spec: &str) -> Result<FaultGuard, ProxError> {
        let guard = lock(&TEST_LOCK);
        let plan = parse_spec(spec)?;
        let (prior, prior_enabled) = (lock(&PLAN).clone(), ENABLED.load(Ordering::SeqCst));
        install(Some(plan));
        Ok(FaultGuard {
            _lock: guard,
            prior,
            prior_enabled,
        })
    }

    /// Lock and force the harness off for the guard's lifetime.
    pub fn disabled() -> FaultGuard {
        let guard = lock(&TEST_LOCK);
        let (prior, prior_enabled) = (lock(&PLAN).clone(), ENABLED.load(Ordering::SeqCst));
        install(None);
        FaultGuard {
            _lock: guard,
            prior,
            prior_enabled,
        }
    }

    /// Lock without changing the active plan (serialize against other
    /// fault tests while observing the current state).
    pub fn hold() -> FaultGuard {
        let guard = lock(&TEST_LOCK);
        let (prior, prior_enabled) = (lock(&PLAN).clone(), ENABLED.load(Ordering::SeqCst));
        FaultGuard {
            _lock: guard,
            prior,
            prior_enabled,
        }
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *lock(&PLAN) = self.prior.take();
        ENABLED.store(self.prior_enabled, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_accepts_the_documented_forms() {
        let plan = parse_spec("corrupt@0.01:42,budget@3:7").unwrap();
        assert_eq!(plan.specs.len(), 2);
        assert_eq!(plan.specs[0].site, FaultSite::Corrupt);
        assert!((plan.specs[0].param - 0.01).abs() < 1e-12);
        assert_eq!(plan.specs[0].seed, 42);
        assert_eq!(plan.specs[1].site, FaultSite::Budget);
        // param defaults to 1.0
        let plan = parse_spec("taxflip:9").unwrap();
        assert!((plan.specs[0].param - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grammar_rejects_malformed_clauses() {
        for bad in [
            "",
            "corrupt",
            "corrupt@0.5",
            "corrupt@2.0:1",
            "corrupt@-0.1:1",
            "budget@1.5:1",
            "explode:3",
            "corrupt@x:1",
            "corrupt@0.1:notaseed",
        ] {
            assert!(parse_spec(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn disabled_harness_hooks_are_identity() {
        let _g = FaultGuard::disabled();
        let mut bytes = vec![1, 2, 3];
        assert!(!corrupt_bytes(&mut bytes));
        assert_eq!(bytes, vec![1, 2, 3]);
        assert_eq!(truncate_keep(17), 17);
        assert_eq!(budget_trip_after(), None);
        assert!(taxonomy_flip_edges(5).is_empty());
        assert_eq!(slowread_delay_ms(), None);
        assert!(!conndrop_fire());
        maybe_panic(); // must be a no-op, not a panic
    }

    #[test]
    fn corruption_is_deterministic_per_seed_and_always_fires() {
        let run = |spec: &str| {
            let _g = FaultGuard::install(spec).unwrap();
            let mut bytes = b"the quick brown fox".to_vec();
            assert!(corrupt_bytes(&mut bytes));
            bytes
        };
        let a = run("corrupt@0.05:42");
        let b = run("corrupt@0.05:42");
        let c = run("corrupt@0.05:43");
        assert_eq!(a, b, "same seed must replay the same corruption");
        assert_ne!(a, b"the quick brown fox".as_slice());
        // Different seed *may* coincide but practically never does here.
        assert_ne!(a, c);
    }

    #[test]
    fn truncate_keeps_the_requested_fraction() {
        let _g = FaultGuard::install("truncate@0.5:1").unwrap();
        assert_eq!(truncate_keep(100), 50);
        assert_eq!(truncate_keep(1), 0);
        assert_eq!(truncate_keep(0), 0);
    }

    #[test]
    fn taxflip_picks_distinct_in_range_edges() {
        let _g = FaultGuard::install("taxflip@3:9").unwrap();
        let picked = taxonomy_flip_edges(10);
        assert_eq!(picked.len(), 3);
        for &ix in &picked {
            assert!(ix < 10);
        }
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
        // Asking for more flips than edges clamps.
        let picked = taxonomy_flip_edges(2);
        assert_eq!(picked.len(), 2);
        assert!(taxonomy_flip_edges(0).is_empty());
    }

    #[test]
    fn budget_clause_arms_sessions() {
        let _g = FaultGuard::install("budget@2:5").unwrap();
        assert_eq!(budget_trip_after(), Some(2));
        let mut s = crate::budget::ExecutionBudget::unlimited().start();
        assert!(s.check().is_ok());
        assert!(s.check().is_ok());
        assert_eq!(s.check(), Err(crate::budget::BudgetStop::Injected));
    }

    #[test]
    fn slowread_reports_the_configured_delay() {
        let _g = FaultGuard::install("slowread@7:3").unwrap();
        assert_eq!(slowread_delay_ms(), Some(7));
        assert_eq!(slowread_delay_ms(), Some(7));
        // Non-integer delays are rejected at parse time.
        assert!(parse_spec("slowread@0.5:3").is_err());
    }

    #[test]
    fn conndrop_schedule_is_deterministic_per_seed() {
        let run = |spec: &str| {
            let _g = FaultGuard::install(spec).unwrap();
            (0..32).map(|_| conndrop_fire()).collect::<Vec<_>>()
        };
        let a = run("conndrop@0.3:11");
        let b = run("conndrop@0.3:11");
        assert_eq!(a, b, "same seed must replay the same drop schedule");
        assert!(a.iter().any(|&f| f), "p=0.3 over 32 calls should fire");
        assert!(!a.iter().all(|&f| f), "p=0.3 must not always fire");
        let _g = FaultGuard::install("conndrop@0:1").unwrap();
        assert!(!(0..16).any(|_| conndrop_fire()));
    }

    #[test]
    fn panic_site_fires_probabilistically_and_is_catchable() {
        let _g = FaultGuard::install("panic@1:7").unwrap();
        let caught = std::panic::catch_unwind(maybe_panic);
        assert!(caught.is_err(), "panic@1 must always unwind");
        drop(_g);
        let _g = FaultGuard::install("panic@0:7").unwrap();
        maybe_panic(); // p=0 never fires
    }

    #[test]
    fn guard_restores_prior_plan() {
        let outer = FaultGuard::install("truncate@0.5:1").unwrap();
        assert_eq!(truncate_keep(10), 5);
        drop(outer);
        let _g = FaultGuard::hold();
        // Whatever the ambient state is, the inner guard restored it; with
        // no env plan installed in unit tests, the harness is off again.
    }
}
