//! # prox-robust
//!
//! The workspace's fault-tolerance substrate. Three pieces:
//!
//! * [`error`] — the typed [`ProxError`] hierarchy replacing bare
//!   `Result<_, String>` across the library crates, with a coarse
//!   [`ErrorKind`] classification that maps to CLI exit codes (input
//!   errors → 2, budget exhaustion → 3, internal errors → 4);
//! * [`budget`] — [`ExecutionBudget`], a wall-clock deadline / max-steps /
//!   memo-cap / cooperative-cancel bundle threaded through every
//!   summarization loop. Exhaustion mid-run yields the **best-so-far valid
//!   summary** (the anytime contract); exhaustion before any work is done
//!   is a [`ProxError::Budget`] error;
//! * [`fault`] — a seeded, deterministic fault-injection harness driven by
//!   the `PROX_FAULT` environment variable (`site@param:seed`, comma
//!   separated). Zero-cost when disabled: every hook is a single relaxed
//!   atomic load;
//! * [`backoff`] — a seeded decorrelated-jitter retry schedule used by the
//!   serve-layer bench clients, replayable from its seed.
//!
//! The crate deliberately sits at the bottom of the dependency graph
//! (std + `prox-obs` only) so `prox-provenance` and everything above it
//! can share one error type.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backoff;
pub mod budget;
pub mod error;
pub mod fault;

pub use backoff::Backoff;
pub use budget::{BudgetSession, BudgetStop, CancelFlag, ExecutionBudget};
pub use error::{ErrorKind, ProxError};
pub use fault::{FaultGuard, FaultPlan, FaultSite};
