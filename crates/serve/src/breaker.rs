//! A circuit breaker around the summarize path.
//!
//! Consecutive *internal* failures (typed 500s and caught worker panics —
//! never client 400s or budget 408s) trip the breaker from `closed` to
//! `open`. While open, summarize requests are shed immediately with
//! `503` + `Retry-After` instead of queueing doomed work. The open
//! window is measured in *arrivals*, not wall time: after
//! `open_arrivals` shed requests the breaker moves to `half-open` and
//! admits a seeded fraction of probes. `probe_successes` consecutive
//! successful probes close it; any probe failure re-opens it.
//!
//! Counting arrivals instead of seconds keeps every transition a pure
//! function of the request schedule and the seed, so chaos runs under
//! `PROX_DETERMINISTIC` replay the exact transition sequence (rule L2) —
//! and under real traffic an open breaker still backs off, because the
//! arrivals it sheds are exactly the load it is protecting against.
//!
//! Transitions are counted in `serve/breaker_opened`,
//! `serve/breaker_half_open`, and `serve/breaker_closed`; the live state
//! is mirrored in the `serve/breaker_state` gauge (0 closed, 1 open,
//! 2 half-open).

use std::sync::Mutex;

use prox_obs::{Counter, Gauge};
use prox_robust::fault::DetRng;

use crate::lock;

static OPENED: Counter = Counter::new("serve/breaker_opened");
static HALF_OPENED: Counter = Counter::new("serve/breaker_half_open");
static CLOSED: Counter = Counter::new("serve/breaker_closed");
static STATE: Gauge = Gauge::new("serve/breaker_state");

/// Breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Failures below threshold; all requests admitted.
    Closed,
    /// Tripped; shedding every arrival for the open window.
    Open,
    /// Probing: a seeded fraction of arrivals is admitted.
    HalfOpen,
}

impl BreakerState {
    /// The lowercase wire name (metrics, `prox stats`).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    fn code(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// The breaker's verdict for one summarize arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerAdmission {
    /// Run the request (and report the outcome back).
    Allow,
    /// Shed with `503` and this `Retry-After`.
    Shed {
        /// Seconds the client should wait before retrying.
        retry_after_secs: u64,
    },
}

/// Tunables; [`BreakerConfig::default`] matches the server defaults.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive internal failures that trip the breaker.
    pub threshold: u32,
    /// Arrivals shed while open before moving to half-open.
    pub open_arrivals: u32,
    /// Fraction of half-open arrivals admitted as probes, in `[0, 1]`.
    pub probe_ratio: f64,
    /// Consecutive successful probes required to close.
    pub probe_successes: u32,
    /// Seed for the half-open probe coin.
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 5,
            open_arrivals: 8,
            probe_ratio: 0.5,
            probe_successes: 2,
            seed: 0,
        }
    }
}

struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    open_remaining: u32,
    probe_streak: u32,
    rng: DetRng,
}

/// The breaker: shared per-server, internally locked (the critical
/// section is a handful of integer ops).
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tunables. `threshold == 0`
    /// disables tripping entirely (the breaker stays closed).
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_remaining: 0,
                probe_streak: 0,
                rng: DetRng::new(config.seed),
            }),
            config,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        lock(&self.inner).state
    }

    /// Gate one summarize arrival.
    pub fn admit(&self) -> BreakerAdmission {
        let mut inner = lock(&self.inner);
        match inner.state {
            BreakerState::Closed => BreakerAdmission::Allow,
            BreakerState::Open => {
                inner.open_remaining = inner.open_remaining.saturating_sub(1);
                if inner.open_remaining == 0 {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_streak = 0;
                    HALF_OPENED.incr();
                    STATE.set(BreakerState::HalfOpen.code());
                }
                // This arrival is still shed; the *next* one may probe.
                BreakerAdmission::Shed {
                    retry_after_secs: 1,
                }
            }
            BreakerState::HalfOpen => {
                if inner.rng.next_f64() < self.config.probe_ratio {
                    BreakerAdmission::Allow
                } else {
                    BreakerAdmission::Shed {
                        retry_after_secs: 1,
                    }
                }
            }
        }
    }

    /// Report a successful summarize (cache hits count: serving from
    /// cache proves the path is healthy enough to answer).
    pub fn record_success(&self) {
        let mut inner = lock(&self.inner);
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.probe_streak += 1;
                if inner.probe_streak >= self.config.probe_successes {
                    inner.state = BreakerState::Closed;
                    inner.consecutive_failures = 0;
                    CLOSED.incr();
                    STATE.set(BreakerState::Closed.code());
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Report an internal failure (typed 500 or a caught worker panic).
    pub fn record_failure(&self) {
        if self.config.threshold == 0 {
            return;
        }
        let mut inner = lock(&self.inner);
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.threshold {
                    self.trip(&mut inner);
                }
            }
            BreakerState::HalfOpen => self.trip(&mut inner),
            BreakerState::Open => {}
        }
    }

    fn trip(&self, inner: &mut Inner) {
        inner.state = BreakerState::Open;
        inner.open_remaining = self.config.open_arrivals.max(1);
        inner.consecutive_failures = 0;
        OPENED.incr();
        STATE.set(BreakerState::Open.code());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, open_arrivals: u32, probe_ratio: f64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            threshold,
            open_arrivals,
            probe_ratio,
            probe_successes: 2,
            seed: 7,
        })
    }

    #[test]
    fn full_cycle_closed_open_half_open_closed() {
        let b = breaker(3, 2, 1.0);
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert_eq!(b.admit(), BreakerAdmission::Allow);
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        // The open window sheds `open_arrivals` requests...
        assert!(matches!(b.admit(), BreakerAdmission::Shed { .. }));
        assert!(matches!(b.admit(), BreakerAdmission::Shed { .. }));
        // ...then probes (ratio 1.0 admits every probe).
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(), BreakerAdmission::Allow);
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(), BreakerAdmission::Allow);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn a_probe_failure_reopens() {
        let b = breaker(1, 1, 1.0);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(matches!(b.admit(), BreakerAdmission::Shed { .. }));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(), BreakerAdmission::Allow);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn successes_reset_the_failure_streak() {
        let b = breaker(3, 2, 1.0);
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was interrupted");
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn half_open_probe_coin_is_seeded_and_deterministic() {
        let run = || {
            let b = breaker(1, 1, 0.5);
            b.record_failure();
            let _ = b.admit(); // consume the open window
            (0..16)
                .map(|_| b.admit() == BreakerAdmission::Allow)
                .collect::<Vec<_>>()
        };
        let first = run();
        assert_eq!(first, run(), "same seed, same probe schedule");
        assert!(first.iter().any(|&p| p), "ratio 0.5 must admit some probes");
        assert!(first.iter().any(|&p| !p), "ratio 0.5 must shed some probes");
    }

    #[test]
    fn threshold_zero_disables_tripping() {
        let b = breaker(0, 1, 1.0);
        for _ in 0..100 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), BreakerAdmission::Allow);
    }
}
