//! The summary cache: an LRU over rendered response bodies.
//!
//! Keys are canonical request fingerprints (see [`fingerprint`] and
//! `service::canonical_key`): every parameter that determines the result —
//! dataset generator seed and shape, selection, weights, bounds, the
//! deterministic step cap — and nothing that does not (wall-clock
//! deadlines). Values are the exact rendered response body, so a cache hit
//! is byte-identical to the recompute it replaces. Hits, misses, and
//! evictions are counted in the prox-obs registry (`serve/cache_*`).
//!
//! The store is a plain `Vec` scanned linearly with most-recently-used at
//! the back: capacities are small (tens of entries) and the scan is
//! deterministic, which keeps rule L2 trivially satisfied.

use prox_obs::Counter;

static CACHE_HIT: Counter = Counter::new("serve/cache_hit");
static CACHE_MISS: Counter = Counter::new("serve/cache_miss");
static CACHE_EVICT: Counter = Counter::new("serve/cache_evict");

/// FNV-1a 64-bit over `key`, rendered as 16 hex digits. Stable across
/// processes and platforms (unlike `DefaultHasher`, whose keys are
/// randomized per process — rule L2 forbids that leaking into output).
pub fn fingerprint(key: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Fixed-capacity LRU mapping canonical request keys to response bodies.
pub struct SummaryCache {
    entries: Vec<(String, String)>,
    capacity: usize,
}

impl SummaryCache {
    /// A cache holding at most `capacity` responses (minimum 1).
    pub fn new(capacity: usize) -> Self {
        SummaryCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Look up `key`, refreshing its recency on a hit. Counts the lookup
    /// as `serve/cache_hit` or `serve/cache_miss`.
    pub fn get(&mut self, key: &str) -> Option<String> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(ix) => {
                let entry = self.entries.remove(ix);
                let body = entry.1.clone();
                self.entries.push(entry);
                CACHE_HIT.incr();
                Some(body)
            }
            None => {
                CACHE_MISS.incr();
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used entry
    /// when full (counted as `serve/cache_evict`).
    pub fn put(&mut self, key: String, body: String) {
        if let Some(ix) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(ix);
        } else if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            CACHE_EVICT.incr();
        }
        self.entries.push((key, body));
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        // FNV-1a reference value for "a".
        assert_eq!(fingerprint("a"), "af63dc4c8601ec8c");
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
    }

    #[test]
    fn get_after_put_round_trips() {
        let mut c = SummaryCache::new(4);
        assert!(c.get("k").is_none());
        c.put("k".into(), "body".into());
        assert_eq!(c.get("k").as_deref(), Some("body"));
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut c = SummaryCache::new(2);
        c.put("a".into(), "1".into());
        c.put("b".into(), "2".into());
        assert!(c.get("a").is_some(), "refresh a; b is now LRU");
        c.put("c".into(), "3".into());
        assert!(c.get("b").is_none(), "b evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_refreshes_existing_key_without_evicting() {
        let mut c = SummaryCache::new(2);
        c.put("a".into(), "1".into());
        c.put("b".into(), "2".into());
        c.put("a".into(), "1b".into());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a").as_deref(), Some("1b"));
        assert!(c.get("b").is_some());
    }
}
