//! The process health state machine: `healthy` → `degraded` → back, and a
//! sticky `draining` terminal state.
//!
//! Worker supervision (see [`crate::server`]) reports every caught panic
//! through [`Health::note_panic`] and every cleanly handled connection
//! through [`Health::note_ok`]. One panic degrades the process; a streak
//! of [`RECOVERY_STREAK`] panic-free connections restores it. The streak
//! is counted in *requests*, not wall time, so recovery is deterministic
//! under `PROX_DETERMINISTIC` (rule L2) — same schedule, same transitions.
//!
//! `draining` is entered exactly once, when shutdown begins (SIGTERM or
//! [`crate::server::ServerHandle::shutdown`]), and never left: load
//! balancers polling `/healthz` see `503` + `Retry-After` and stop
//! routing to the dying process (the drain still answers everything
//! already admitted).
//!
//! The current state is mirrored into the `serve/health_state` gauge
//! (0 = healthy, 1 = degraded, 2 = draining) and panics are counted in
//! `serve/worker_panics`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use prox_obs::{Counter, Gauge};

static WORKER_PANICS: Counter = Counter::new("serve/worker_panics");
static HEALTH_STATE: Gauge = Gauge::new("serve/health_state");

/// Panic-free connections required to climb from `degraded` back to
/// `healthy`.
pub const RECOVERY_STREAK: u64 = 32;

/// The three process health states, ordered by severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// No recent worker panics; serve normally.
    Healthy,
    /// At least one worker panicked recently; still serving.
    Degraded,
    /// Shutdown has begun; `/healthz` answers `503` so traffic drains.
    Draining,
}

impl HealthState {
    /// The lowercase wire name (healthz bodies, `prox stats`).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Draining => "draining",
        }
    }

    fn code(self) -> usize {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Draining => 2,
        }
    }

    fn from_code(code: usize) -> HealthState {
        match code {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            _ => HealthState::Draining,
        }
    }
}

/// Cheaply clonable handle on the shared health state (atomics behind an
/// `Arc`; every accessor is lock-free).
#[derive(Clone, Default)]
pub struct Health {
    inner: Arc<Inner>,
}

#[derive(Default)]
struct Inner {
    state: AtomicUsize,
    ok_streak: AtomicU64,
}

impl Health {
    /// A fresh handle starting `healthy`.
    pub fn new() -> Health {
        Health::default()
    }

    /// The current state.
    pub fn state(&self) -> HealthState {
        HealthState::from_code(self.inner.state.load(Ordering::Relaxed))
    }

    /// Record a caught worker panic: count it and degrade (unless already
    /// draining — drain severity is sticky).
    pub fn note_panic(&self) {
        WORKER_PANICS.incr();
        self.inner.ok_streak.store(0, Ordering::Relaxed);
        let _ = self.inner.state.compare_exchange(
            HealthState::Healthy.code(),
            HealthState::Degraded.code(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.publish();
    }

    /// Record a panic-free connection; [`RECOVERY_STREAK`] of these in a
    /// row restore `degraded` to `healthy`.
    pub fn note_ok(&self) {
        if self.state() != HealthState::Degraded {
            return;
        }
        let streak = self.inner.ok_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= RECOVERY_STREAK {
            let _ = self.inner.state.compare_exchange(
                HealthState::Degraded.code(),
                HealthState::Healthy.code(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            self.publish();
        }
    }

    /// Enter the sticky `draining` state (shutdown has begun).
    pub fn begin_drain(&self) {
        self.inner
            .state
            .store(HealthState::Draining.code(), Ordering::Relaxed);
        self.publish();
    }

    fn publish(&self) {
        HEALTH_STATE.set(self.state().code() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_panic_degrades_and_a_streak_recovers() {
        let h = Health::new();
        assert_eq!(h.state(), HealthState::Healthy);
        h.note_panic();
        assert_eq!(h.state(), HealthState::Degraded);
        for _ in 0..RECOVERY_STREAK - 1 {
            h.note_ok();
            assert_eq!(h.state(), HealthState::Degraded);
        }
        h.note_ok();
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn a_panic_mid_streak_resets_recovery() {
        let h = Health::new();
        h.note_panic();
        for _ in 0..RECOVERY_STREAK - 1 {
            h.note_ok();
        }
        h.note_panic(); // streak resets
        h.note_ok();
        assert_eq!(h.state(), HealthState::Degraded);
    }

    #[test]
    fn draining_is_sticky() {
        let h = Health::new();
        h.begin_drain();
        assert_eq!(h.state(), HealthState::Draining);
        h.note_panic();
        assert_eq!(h.state(), HealthState::Draining);
        for _ in 0..2 * RECOVERY_STREAK {
            h.note_ok();
        }
        assert_eq!(h.state(), HealthState::Draining);
    }

    #[test]
    fn state_names_match_the_wire_contract() {
        assert_eq!(HealthState::Healthy.name(), "healthy");
        assert_eq!(HealthState::Degraded.name(), "degraded");
        assert_eq!(HealthState::Draining.name(), "draining");
    }
}
