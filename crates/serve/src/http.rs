//! A minimal HTTP/1.1 subset: just enough to carry JSON requests and
//! responses for the service endpoints, with hard caps and budgeted I/O.
//!
//! The parser is deliberately small: request line + headers + an optional
//! `Content-Length` body, `Connection: close` semantics on every exchange.
//! All read loops poll a [`BudgetSession`] (rule L3), so a stalled or
//! byte-dribbling client cannot pin a worker — the read deadline trips and
//! the connection is answered with `408`. Request bytes pass through the
//! fault-injection hook ([`prox_robust::fault::corrupt_bytes`]), so
//! `PROX_FAULT=corrupt:<seed>` exercises the server's malformed-input
//! path end to end.

use std::io::{ErrorKind as IoKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use prox_robust::{BudgetSession, ExecutionBudget, ProxError};

/// Cap on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request. Header names are lowercased at parse time.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercase as sent).
    pub method: String,
    /// Request target, e.g. `/summarize` (query strings are not split off).
    pub path: String,
    /// `(name, value)` pairs, names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let needle = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == needle)
            .map(|(_, v)| v.as_str())
    }
}

/// A response ready to serialize: status + body + optional extras.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body (already rendered).
    pub body: String,
    /// Optional `Retry-After` seconds (load shedding).
    pub retry_after: Option<u64>,
    /// `Content-Type` of the body; `None` means `application/json`.
    pub content_type: Option<&'static str>,
    /// Extra response headers (e.g. `X-Prox-Trace-Id`), in emission order.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            body,
            retry_after: None,
            content_type: None,
            headers: Vec::new(),
        }
    }

    /// A plain-text response with an explicit content type (used by the
    /// Prometheus exposition endpoint).
    pub fn text(status: u16, content_type: &'static str, body: String) -> Self {
        Response {
            content_type: Some(content_type),
            ..Response::json(status, body)
        }
    }

    /// Append an extra response header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_owned(), value.into()));
        self
    }
}

fn parse_err(message: impl Into<String>, offset: usize) -> ProxError {
    ProxError::Parse {
        message: message.into(),
        offset,
    }
}

/// Where the CRLFCRLF head terminator ends, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// A read-budget trip means the client stalled before delivering a full
/// request: no work was admitted, so it maps to `ProxError::Budget` (408).
fn io_budget_stop(stop: prox_robust::BudgetStop) -> ProxError {
    ProxError::Budget(stop)
}

/// Read and parse one request from `stream`, polling `session` so a slow
/// client cannot hold the worker past its I/O deadline.
pub fn read_request(
    stream: &mut TcpStream,
    session: &mut BudgetSession,
) -> Result<Request, ProxError> {
    // Fault site: a `slowread` clause stalls the worker here, modelling a
    // byte-dribbling client — the injected delay is bounded by the read
    // deadline, so the 408 path stays reachable under it.
    if let Some(delay_ms) = prox_robust::fault::slowread_delay_ms() {
        std::thread::sleep(Duration::from_millis(delay_ms));
    }
    // Short socket timeouts make the budget poll effective: each blocking
    // read wakes up at least this often to re-check the deadline.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    while head_end(&buf).is_none() {
        session.check().map_err(io_budget_stop)?;
        if buf.len() > MAX_HEAD_BYTES {
            return Err(parse_err("request head exceeds 8 KiB", buf.len()));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(parse_err("connection closed mid-request", buf.len())),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {}
            Err(e) => return Err(ProxError::io("reading request head", &e)),
        }
    }
    let end = head_end(&buf).unwrap_or(buf.len());
    let head = std::str::from_utf8(&buf[..end])
        .map_err(|e| parse_err("request head is not UTF-8", e.valid_up_to()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_owned();
    let path = parts.next().unwrap_or("").to_owned();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(parse_err(
            format!("malformed request line {request_line:?}"),
            0,
        ));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| parse_err(format!("malformed header line {line:?}"), 0))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };

    let content_length = match request.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| parse_err(format!("bad Content-Length {v:?}"), 0))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(parse_err("request body exceeds 1 MiB", 0));
    }
    let mut body: Vec<u8> = buf[end..].to_vec();
    while body.len() < content_length {
        session.check().map_err(io_budget_stop)?;
        match stream.read(&mut chunk) {
            Ok(0) => return Err(parse_err("connection closed mid-body", body.len())),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {}
            Err(e) => return Err(ProxError::io("reading request body", &e)),
        }
    }
    body.truncate(content_length);
    // Fault-injection hook: a corrupt-site fault flips bits in the body so
    // the malformed-input path (400, never a panic) is exercised.
    prox_robust::fault::corrupt_bytes(&mut body);
    Ok(Request { body, ..request })
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serialize `resp` onto the stream (`Connection: close` semantics).
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> Result<(), ProxError> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type.unwrap_or("application/json"),
        resp.body.len(),
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    for (name, value) in &resp.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(resp.body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| ProxError::io("writing response", &e))
}

/// A blocking HTTP client for tests and the bench load generator: one
/// request, one response, connection closed. Returns `(status, body)`.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, String)],
    body: &[u8],
    deadline_ms: u64,
) -> Result<(u16, String), ProxError> {
    client_request_full(addr, method, path, headers, body, deadline_ms)
        .map(|(status, _, body)| (status, body))
}

/// Status code, lowercased response headers, and body of a client response.
pub type ClientResponse = (u16, Vec<(String, String)>, String);

/// [`client_request`], but also returning the response headers
/// (names lowercased) so callers can read `X-Prox-Trace-Id`.
pub fn client_request_full(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, String)],
    body: &[u8],
    deadline_ms: u64,
) -> Result<ClientResponse, ProxError> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| ProxError::io(format!("connect {addr}"), &e))?;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| ProxError::io("writing request", &e))?;

    let budget = ExecutionBudget::unlimited().with_deadline_ms(deadline_ms);
    let mut session = budget.start();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let mut closed = false;
    while !closed {
        session
            .check()
            .map_err(|stop| parse_err(format!("response read budget exhausted: {stop}"), 0))?;
        match stream.read(&mut chunk) {
            Ok(0) => closed = true,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {}
            Err(e) => return Err(ProxError::io("reading response", &e)),
        }
    }
    let end = head_end(&buf).ok_or_else(|| parse_err("response missing header end", 0))?;
    let head = std::str::from_utf8(&buf[..end])
        .map_err(|e| parse_err("response head is not UTF-8", e.valid_up_to()))?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(format!("malformed status line in {head:?}"), 0))?;
    let resp_headers: Vec<(String, String)> = head
        .split("\r\n")
        .skip(1)
        .filter(|line| !line.is_empty())
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    let body = String::from_utf8_lossy(&buf[end..]).into_owned();
    Ok((status, resp_headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_finds_terminator() {
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn status_text_covers_emitted_codes() {
        for code in [200u16, 400, 404, 405, 408, 429, 503, 500] {
            assert!(!status_text(code).is_empty());
        }
        assert_eq!(status_text(599), "Internal Server Error");
    }

    #[test]
    fn request_header_lookup_is_case_insensitive() {
        let req = Request {
            method: "GET".into(),
            path: "/".into(),
            headers: vec![("x-prox-budget-ms".into(), "250".into())],
            body: Vec::new(),
        };
        assert_eq!(req.header("X-Prox-Budget-Ms"), Some("250"));
        assert_eq!(req.header("absent"), None);
    }
}
